// focus_cli — end-to-end command-line tool over the library:
//
//   focus_cli generate --dataset=PEMS08 --out=data.csv
//   focus_cli cluster  --data=data.csv --p=16 --k=16 --out=protos.bin
//   focus_cli train    --data=data.csv --prototypes=protos.bin
//                      --lookback=192 --horizon=96 --steps=200
//                      --out=model.ckpt
//   focus_cli evaluate --data=data.csv --prototypes=protos.bin
//                      --model=model.ckpt --lookback=192 --horizon=96
//   focus_cli forecast --data=data.csv --prototypes=protos.bin
//                      --model=model.ckpt --lookback=192 --horizon=96
//                      [--entity=0] [--window=-1]
//
// The offline artifacts (CSV data, prototype file, checkpoint) are exactly
// what a production deployment would move between the offline clustering
// job and the online forecasting service.
#include <cstdio>
#include <memory>

#include "cluster/segment_clustering.h"
#include "core/focus_model.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/registry.h"
#include "harness/ascii_plot.h"
#include "harness/experiments.h"
#include "nn/serialize.h"
#include "obs/prof/run_report.h"
#include "obs/trace.h"
#include "utils/flags.h"

namespace {

using namespace focus;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::printf(
      "usage: focus_cli <generate|cluster|train|evaluate|forecast> "
      "[--flags]\n"
      "  generate --dataset=<PEMS04|...|Weather> --out=FILE "
      "[--profile=quick|full] [--seed=N]\n"
      "  cluster  --data=FILE --out=FILE [--p=16] [--k=16] [--alpha=0.2] "
      "[--rec-only]\n"
      "  train    --data=FILE --prototypes=FILE --out=FILE [--lookback=192] "
      "[--horizon=96]\n"
      "           [--d=32] [--steps=200] [--batch=6] [--lr=0.01] [--seed=1]\n"
      "  evaluate --data=FILE --prototypes=FILE --model=FILE "
      "[--lookback=192] [--horizon=96]\n"
      "  forecast --data=FILE --prototypes=FILE --model=FILE "
      "[--lookback=192] [--horizon=96]\n"
      "           [--entity=0] [--window=-1]\n"
      "common flags:\n"
      "  --trace[=FILE]              write a span trace on exit "
      "(default trace.json)\n"
      "  --trace-format=chrome|jsonl override the format inferred from the "
      "file suffix\n"
      "  --report                    print a top-span run report on exit\n"
      "  --report-json=FILE          also write the run report as JSON\n");
  return 2;
}

harness::PreparedData LoadPrepared(const std::string& path) {
  auto loaded = data::LoadCsv(path);
  FOCUS_CHECK(loaded.ok()) << loaded.status().ToString();
  return harness::PrepareDataset(std::move(loaded).value());
}

core::FocusConfig ModelConfig(const FlagParser& flags,
                              const harness::PreparedData& data,
                              const Tensor& prototypes) {
  core::FocusConfig cfg;
  cfg.lookback = flags.GetInt("lookback", 192);
  cfg.horizon = flags.GetInt("horizon", 96);
  cfg.num_entities = data.dataset.num_entities();
  cfg.patch_len = prototypes.size(1);
  cfg.d_model = flags.GetInt("d", 32);
  cfg.readout_queries = harness::ReadoutQueriesFor(cfg.horizon);
  cfg.alpha = static_cast<float>(flags.GetDouble("alpha", 0.2));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  return cfg;
}

int RunGenerate(const FlagParser& flags) {
  const std::string name = flags.GetString("dataset", "");
  const std::string out = flags.GetString("out", "");
  if (name.empty() || out.empty()) return Usage();
  const auto profile = flags.GetString("profile", "quick") == "full"
                           ? data::Profile::kFull
                           : data::Profile::kQuick;
  auto cfg = data::PaperDatasetConfig(
      name, profile, static_cast<uint64_t>(flags.GetInt("seed", 0)));
  auto dataset = data::Generate(cfg);
  Status status = data::SaveCsv(dataset, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s: %ld entities x %ld steps\n", out.c_str(),
              static_cast<long>(dataset.num_entities()),
              static_cast<long>(dataset.num_steps()));
  return 0;
}

int RunCluster(const FlagParser& flags) {
  const std::string data_path = flags.GetString("data", "");
  const std::string out = flags.GetString("out", "");
  if (data_path.empty() || out.empty()) return Usage();
  auto data = LoadPrepared(data_path);

  cluster::ClusteringConfig cc;
  cc.segment_length = flags.GetInt("p", 16);
  cc.num_prototypes = flags.GetInt("k", 16);
  cc.alpha = static_cast<float>(flags.GetDouble("alpha", 0.2));
  cc.use_correlation = !flags.Has("rec-only");
  cc.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  Tensor train_region = Slice(data.normalized, 1, 0, data.splits.train_end);
  Tensor segments = cluster::ExtractSegments(train_region, cc.segment_length,
                                             /*normalize=*/true);
  auto result = cluster::SegmentClustering(cc).Fit(segments);
  std::printf("clustered %ld segments into %ld prototypes in %ld iterations "
              "(%.2fs); objective %.4f\n",
              static_cast<long>(segments.size(0)),
              static_cast<long>(cc.num_prototypes),
              static_cast<long>(result.iterations), result.seconds,
              result.objective_history.back());
  Status status = cluster::SavePrototypes(out, result.prototypes);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int RunTrain(const FlagParser& flags) {
  const std::string data_path = flags.GetString("data", "");
  const std::string proto_path = flags.GetString("prototypes", "");
  const std::string out = flags.GetString("out", "");
  if (data_path.empty() || proto_path.empty() || out.empty()) return Usage();
  auto data = LoadPrepared(data_path);
  auto protos = cluster::LoadPrototypes(proto_path);
  if (!protos.ok()) return Fail(protos.status().ToString());

  auto cfg = ModelConfig(flags, data, protos.value());
  core::FocusModel model(cfg, protos.value());
  std::printf("FOCUS: %ld parameters, l=%ld tokens of p=%ld\n",
              static_cast<long>(model.NumParameters()),
              static_cast<long>(cfg.lookback / cfg.patch_len),
              static_cast<long>(cfg.patch_len));

  auto train = harness::TrainWindows(data, cfg.lookback, cfg.horizon);
  auto val = harness::ValWindows(data, cfg.lookback, cfg.horizon);
  harness::TrainConfig tc;
  tc.max_steps = flags.GetInt("steps", 200);
  tc.batch_size = flags.GetInt("batch", 6);
  tc.lr = static_cast<float>(flags.GetDouble("lr", 0.01));
  tc.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  tc.val = &val;
  tc.verbose = flags.GetBool("verbose", false);
  auto result = harness::TrainModel(model, train, tc);
  std::printf("trained %ld steps in %.1fs: loss %.4f -> %.4f, best val MSE "
              "%.4f%s\n",
              static_cast<long>(result.steps), result.seconds,
              result.first_loss, result.final_loss, result.best_val_mse,
              result.early_stopped ? " (early stopped)" : "");
  Status status = nn::SaveStateDict(model, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

// Shared by evaluate / forecast.
std::unique_ptr<core::FocusModel> LoadModel(const FlagParser& flags,
                                            const harness::PreparedData& data,
                                            Tensor prototypes,
                                            std::string* error) {
  auto cfg = ModelConfig(flags, data, prototypes);
  auto model = std::make_unique<core::FocusModel>(cfg, std::move(prototypes));
  Status status = nn::LoadStateDict(*model, flags.GetString("model", ""));
  if (!status.ok()) {
    *error = status.ToString();
    return nullptr;
  }
  model->SetTraining(false);
  return model;
}

int RunEvaluate(const FlagParser& flags) {
  const std::string data_path = flags.GetString("data", "");
  const std::string proto_path = flags.GetString("prototypes", "");
  if (data_path.empty() || proto_path.empty() || !flags.Has("model")) {
    return Usage();
  }
  auto data = LoadPrepared(data_path);
  auto protos = cluster::LoadPrototypes(proto_path);
  if (!protos.ok()) return Fail(protos.status().ToString());
  std::string error;
  auto model = LoadModel(flags, data, protos.value(), &error);
  if (!model) return Fail(error);

  auto test = harness::TestWindows(data, model->config().lookback,
                                   model->config().horizon);
  auto metrics = harness::EvaluateModel(*model, test, 8, 1);
  std::printf("test windows: %ld\n", static_cast<long>(test.NumWindows()));
  std::printf("MSE %.4f  MAE %.4f  RMSE %.4f\n", metrics.mse, metrics.mae,
              metrics.rmse);
  return 0;
}

int RunForecast(const FlagParser& flags) {
  const std::string data_path = flags.GetString("data", "");
  const std::string proto_path = flags.GetString("prototypes", "");
  if (data_path.empty() || proto_path.empty() || !flags.Has("model")) {
    return Usage();
  }
  auto data = LoadPrepared(data_path);
  auto protos = cluster::LoadPrototypes(proto_path);
  if (!protos.ok()) return Fail(protos.status().ToString());
  std::string error;
  auto model = LoadModel(flags, data, protos.value(), &error);
  if (!model) return Fail(error);

  auto test = harness::TestWindows(data, model->config().lookback,
                                   model->config().horizon);
  long window = flags.GetInt("window", -1);
  if (window < 0) window = test.NumWindows() / 2;
  const long entity = flags.GetInt("entity", 0);
  FOCUS_CHECK(entity >= 0 && entity < data.dataset.num_entities());
  auto batch = test.GetWindow(window);
  NoGradGuard no_grad;
  Tensor pred = model->Forward(batch.x);

  const int64_t horizon = model->config().horizon;
  std::vector<double> truth, forecast;
  for (int64_t i = 0; i < horizon; ++i) {
    truth.push_back(batch.y.At({0, entity, i}));
    forecast.push_back(pred.At({0, entity, i}));
  }
  std::printf("entity %ld, test window %ld, next %ld steps:\n", entity,
              window, static_cast<long>(horizon));
  std::printf("%s", harness::AsciiChart({truth, forecast},
                                        {"observed", "forecast"})
                        .c_str());
  auto metrics = metrics::ComputeMetrics(pred, batch.y);
  std::printf("window MSE %.4f MAE %.4f (all entities)\n", metrics.mse,
              metrics.mae);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  obs::ApplyTraceFlag(flags);
  obs::prof::ApplyReportFlag(flags);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  if (command == "generate") return RunGenerate(flags);
  if (command == "cluster") return RunCluster(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "forecast") return RunForecast(flags);
  return Usage();
}
