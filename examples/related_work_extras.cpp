// Related-work extras: FOCUS vs the two efficiency-focused transformer
// lines the paper contrasts in Secs. I and IX — Informer's ProbSparse
// attention (O(L log L) by sparsifying queries) and Autoformer's
// Auto-Correlation (O(L log L) by period-level aggregation). Neither is in
// the paper's Table III zoo; this example shows where FOCUS's offline
// clustering sits relative to those online approximations on both accuracy
// and measured FLOPs.
//
// Build & run:  cmake --build build && ./build/examples/related_work_extras
#include <cstdio>
#include <memory>

#include "baselines/autoformer.h"
#include "baselines/informer.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  profile.train_steps = std::min<int64_t>(profile.train_steps, 200);
  const int64_t horizon = 96;
  auto data = harness::PrepareDataset("Electricity", profile);
  const int64_t n = data.dataset.num_entities();

  auto build = [&](const std::string& name) -> std::unique_ptr<ForecastModel> {
    if (name == "Informer") {
      baselines::InformerConfig cfg;
      cfg.lookback = profile.lookback;
      cfg.horizon = horizon;
      cfg.patch_len = profile.patch_len;
      cfg.d_model = profile.d_model;
      return std::make_unique<baselines::InformerLite>(cfg);
    }
    if (name == "Autoformer") {
      baselines::AutoformerConfig cfg;
      cfg.lookback = profile.lookback;
      cfg.horizon = horizon;
      cfg.d_model = 8;
      return std::make_unique<baselines::AutoformerLite>(cfg);
    }
    return harness::BuildModel(name, data, profile.lookback, horizon,
                               profile);
  };

  std::printf("=== FOCUS vs efficiency-focused related work "
              "(Electricity, horizon 96) ===\n");
  Table table({"Model", "Mechanism", "MSE", "MAE", "FLOPs(M)", "Params(K)"});
  const char* mechanisms[] = {
      "offline prototypes, O(kL)",
      "ProbSparse queries, O(L log L)",
      "auto-correlation lags, O(L log L)",
      "all-pairs patches, O(L^2)",
  };
  const char* names[] = {"FOCUS", "Informer", "Autoformer", "PatchTST"};
  Rng rng(9);
  for (int i = 0; i < 4; ++i) {
    auto model = build(names[i]);
    auto outcome = harness::TrainAndEvaluate(*model, data, profile.lookback,
                                             horizon, profile);
    Tensor sample = Tensor::Randn({1, n, profile.lookback}, rng);
    auto eff = metrics::ProbeEfficiency(*model, sample);
    table.AddRow({names[i], mechanisms[i], Table::Num(outcome.test.mse),
                  Table::Num(outcome.test.mae),
                  Table::Num(eff.flops / 1e6, 2),
                  Table::Num(eff.parameters / 1e3, 1)});
    std::fprintf(stderr, "[extras] %s mse=%.4f\n", names[i],
                 outcome.test.mse);
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
