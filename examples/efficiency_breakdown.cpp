// Where do FOCUS's FLOPs go? Splits one inference pass into the embed /
// temporal-branch / entity-branch / proto-attn / fusion stages via
// obs::TraceSpan attribution, across input lengths — the per-component view
// behind the paper's complexity analysis (Secs. VI-B, VII-B).
//
// Each stage's `self_flops` excludes nested spans, so the columns add up to
// the total without double counting (proto_attn runs inside the branches).
// Pass FOCUS_TRACE=breakdown.json to additionally dump the raw spans for
// chrome://tracing / Perfetto.
//
// Build & run:  cmake --build build && ./build/examples/efficiency_breakdown
#include <cstdio>

#include "core/focus_model.h"
#include "obs/trace.h"
#include "tensor/flops.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  Rng rng(3);
  const int64_t entities = 8, patch = 16, k = 16;
  Tensor prototypes = Tensor::Randn({k, patch}, rng);

  auto& tracer = obs::Tracer::Get();
  tracer.Enable();

  std::printf("=== FOCUS per-stage FLOP breakdown (batch 1, N=%ld) ===\n",
              static_cast<long>(entities));
  Table table({"L", "embed(M)", "temporal(M)", "entity(M)", "proto_attn(M)",
               "fusion(M)", "other(M)", "total(M)"});
  for (int64_t length : {128, 256, 512, 1024}) {
    core::FocusConfig cfg;
    cfg.lookback = length;
    cfg.horizon = 96;
    cfg.num_entities = entities;
    cfg.patch_len = patch;
    cfg.d_model = 64;
    cfg.readout_queries = 6;
    cfg.seed = 4;
    core::FocusModel model(cfg, prototypes);
    model.SetTraining(false);

    Tensor x = Tensor::Randn({1, entities, length}, rng);
    NoGradGuard no_grad;
    FlopCounter::Reset();
    tracer.Clear();
    model.Forward(x);

    double embed = 0, temporal = 0, entity = 0, proto = 0, fusion = 0;
    for (const auto& [name, stats] : obs::AggregateSpans(tracer.Snapshot())) {
      const double self = static_cast<double>(stats.self_flops);
      if (name == "focus/embed") embed += self;
      if (name == "focus/temporal_branch") temporal += self;
      if (name == "focus/entity_branch") entity += self;
      if (name == "focus/proto_attn") proto += self;
      if (name == "focus/fusion") fusion += self;
    }
    const double total = static_cast<double>(FlopCounter::Count());
    const double other = total - embed - temporal - entity - proto - fusion;
    table.AddRow({std::to_string(length), Table::Num(embed / 1e6, 2),
                  Table::Num(temporal / 1e6, 2), Table::Num(entity / 1e6, 2),
                  Table::Num(proto / 1e6, 2), Table::Num(fusion / 1e6, 2),
                  Table::Num(other / 1e6, 2), Table::Num(total / 1e6, 2)});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "Every stage grows ~linearly in L; no component hides an O(L^2) "
      "term.\n");
  return 0;
}
