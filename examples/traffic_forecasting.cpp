// Traffic-management scenario (the paper's motivating application): a road
// network with recurring rush hours. Compares FOCUS against a linear
// baseline (DLinear) and a transformer baseline (PatchTST) on the same
// PEMS08-shaped workload, reporting accuracy AND the efficiency metrics a
// deployment on a resource-constrained roadside unit would care about.
//
// Build & run:  cmake --build build && ./build/examples/traffic_forecasting
#include <cstdio>

#include "harness/ascii_plot.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  profile.train_steps = std::min<int64_t>(profile.train_steps, 120);
  const int64_t horizon = 96;

  auto data = harness::PrepareDataset("PEMS08", profile);
  std::printf("Road network: %ld sensors, %ld five-minute readings\n",
              static_cast<long>(data.dataset.num_entities()),
              static_cast<long>(data.dataset.num_steps()));

  Table table({"Model", "MSE", "MAE", "FLOPs(M)", "PeakMem(MB)", "Params(K)",
               "TrainSec"});
  Tensor best_pred, truth;
  Rng rng(11);
  for (const std::string name : {"FOCUS", "PatchTST", "DLinear"}) {
    auto model = harness::BuildModel(name, data, profile.lookback, horizon,
                                     profile);
    auto outcome = harness::TrainAndEvaluate(*model, data, profile.lookback,
                                             horizon, profile);
    Tensor sample =
        Tensor::Randn({1, data.dataset.num_entities(), profile.lookback}, rng);
    auto eff = metrics::ProbeEfficiency(*model, sample);
    table.AddRow({name, Table::Num(outcome.test.mse),
                  Table::Num(outcome.test.mae), Table::Num(eff.flops / 1e6, 2),
                  Table::Num(eff.peak_bytes / (1024.0 * 1024.0), 2),
                  Table::Num(eff.parameters / 1e3, 1),
                  Table::Num(outcome.train.seconds, 1)});

    if (name == "FOCUS") {
      // Keep one forecast for the chart below.
      auto test = harness::TestWindows(data, profile.lookback, horizon);
      auto window = test.GetWindow(test.NumWindows() / 3);
      model->SetTraining(false);
      NoGradGuard no_grad;
      best_pred = model->Forward(window.x);
      truth = window.y;
    }
  }
  std::printf("%s", table.ToAscii().c_str());

  std::printf("Sensor 0, next %ld steps (8 hours):\n",
              static_cast<long>(horizon));
  std::vector<double> truth_v, pred_v;
  for (int64_t i = 0; i < horizon; ++i) {
    truth_v.push_back(truth.At({0, 0, i}));
    pred_v.push_back(best_pred.At({0, 0, i}));
  }
  std::printf("%s", harness::AsciiChart({truth_v, pred_v},
                                        {"observed", "FOCUS forecast"})
                        .c_str());
  return 0;
}
