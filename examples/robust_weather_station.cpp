// Weather-station scenario with unreliable sensors: a fraction of the
// training readings are corrupted (stuck/spiking sensors, >3-sigma
// outliers). Shows how FOCUS's nearest-prototype assignment absorbs the
// corruption compared to retraining a PatchTST on the same dirty data —
// the deployment story behind the paper's Fig. 10.
//
// Build & run:  cmake --build build && ./build/examples/robust_weather_station
#include <cstdio>

#include "data/generator.h"
#include "data/perturb.h"
#include "data/registry.h"
#include "harness/experiments.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  profile.train_steps = std::min<int64_t>(profile.train_steps, 120);
  const int64_t horizon = 96;
  const double corruption = 0.08;  // 8% of training readings are bad

  std::printf("Weather station with %.0f%% corrupted training readings\n",
              corruption * 100);

  // Clean and corrupted copies of the same workload.
  auto cfg = data::PaperDatasetConfig("Weather", profile.profile);
  auto clean = data::Generate(cfg);
  auto dirty = data::Generate(cfg);
  auto splits = data::ComputeSplits(dirty);
  Rng rng(21);
  const int64_t replaced =
      data::InjectOutliers(&dirty, corruption, splits.train_end, rng);
  std::printf("injected %ld outlier readings into the training region\n",
              static_cast<long>(replaced));

  // Normalize both variants with the CLEAN training statistics so test
  // errors are comparable across training conditions.
  auto clean_prepared = harness::PrepareDataset(clean);

  Table table({"Model", "TrainData", "Test MSE", "Test MAE"});
  for (const std::string name : {"FOCUS", "PatchTST"}) {
    for (bool use_dirty : {false, true}) {
      harness::PreparedData data;
      data.dataset = use_dirty ? dirty : clean;
      data.splits = splits;
      data.normalizer = clean_prepared.normalizer;
      data.normalized = data.normalizer.Normalize(data.dataset.values);
      auto model = harness::BuildModel(name, data, profile.lookback, horizon,
                                       profile);
      auto outcome = harness::TrainAndEvaluate(*model, data, profile.lookback,
                                               horizon, profile);
      table.AddRow({name, use_dirty ? "corrupted" : "clean",
                    Table::Num(outcome.test.mse),
                    Table::Num(outcome.test.mae)});
      std::fprintf(stderr, "[weather] %s %s mse=%.4f\n", name.c_str(),
                   use_dirty ? "dirty" : "clean", outcome.test.mse);
    }
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "Compare each model's corrupted-vs-clean gap: FOCUS's prototype "
      "assignment is the shock absorber.\n");
  return 0;
}
