// Prototype explorer: runs the offline clustering phase on an
// electricity-consumption workload, inspects what the prototypes look
// like, how segments distribute over them, and round-trips the prototype
// file format a production deployment would ship to the online service.
//
// Build & run:  cmake --build build && ./build/examples/prototype_explorer
#include <cstdio>
#include <vector>

#include "cluster/segment_clustering.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/registry.h"
#include "harness/ascii_plot.h"
#include "tensor/ops.h"
#include "utils/table.h"

int main() {
  using namespace focus;

  auto cfg = data::PaperDatasetConfig("Electricity", data::Profile::kQuick);
  auto dataset = data::Generate(cfg);
  auto splits = data::ComputeSplits(dataset);
  auto normalizer = data::Normalizer::Fit(dataset.values, splits.train_end);
  Tensor normalized = normalizer.Normalize(dataset.values);

  // Cluster one-day segments of the training region.
  const int64_t p = 24;
  Tensor segments = cluster::ExtractSegments(
      Slice(normalized, 1, 0, splits.train_end), p, /*normalize=*/true);
  std::printf("extracted %ld day-long segments from %ld meters\n",
              static_cast<long>(segments.size(0)),
              static_cast<long>(dataset.num_entities()));

  cluster::ClusteringConfig cc;
  cc.segment_length = p;
  cc.num_prototypes = 6;
  cc.alpha = 0.2f;
  cc.seed = 3;
  auto result = cluster::SegmentClustering(cc).Fit(segments);
  std::printf("clustering converged after %ld iterations (%.2fs); objective "
              "%.4f -> %.4f\n",
              static_cast<long>(result.iterations), result.seconds,
              result.objective_history.front(),
              result.objective_history.back());

  // Bucket occupancy.
  std::vector<int64_t> counts(6, 0);
  for (int64_t a : result.assignments) ++counts[static_cast<size_t>(a)];
  Table occupancy({"Prototype", "Segments", "Share%"});
  for (int64_t j = 0; j < 6; ++j) {
    occupancy.AddRow({std::to_string(j), std::to_string(counts[j]),
                      Table::Num(100.0 * counts[j] / result.assignments.size(),
                                 1)});
  }
  std::printf("%s", occupancy.ToAscii().c_str());

  // Visualize the prototypes (daily consumption shapes).
  std::vector<std::vector<double>> series;
  std::vector<std::string> labels;
  for (int64_t j = 0; j < 3; ++j) {
    series.emplace_back(result.prototypes.data() + j * p,
                        result.prototypes.data() + (j + 1) * p);
    labels.push_back("prototype " + std::to_string(j));
  }
  std::printf("three most common daily shapes (normalized):\n%s",
              harness::AsciiChart(series, labels, 72, 12).c_str());

  // Ship to disk and back — the artifact the online phase consumes.
  const std::string path = "/tmp/focus_prototypes.bin";
  Status save = cluster::SavePrototypes(path, result.prototypes);
  std::printf("SavePrototypes: %s\n", save.ToString().c_str());
  auto loaded = cluster::LoadPrototypes(path);
  std::printf("LoadPrototypes: %s (k=%ld, p=%ld)\n",
              loaded.status().ToString().c_str(),
              static_cast<long>(loaded.value().size(0)),
              static_cast<long>(loaded.value().size(1)));
  return 0;
}
