// Quickstart: the full FOCUS pipeline on a small synthetic dataset in
// ~40 lines of user code — generate data, run the offline clustering
// phase, train the forecaster, and evaluate it.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/focus_model.h"
#include "core/offline.h"
#include "data/generator.h"
#include "data/window.h"
#include "harness/trainer.h"

int main() {
  using namespace focus;

  // 1. A small multivariate series: 6 entities, ~2 weeks of hourly data.
  data::GeneratorConfig gen;
  gen.name = "quickstart";
  gen.num_entities = 6;
  gen.num_steps = 24 * 70;
  gen.steps_per_day = 24;
  gen.seed = 7;
  data::TimeSeriesDataset dataset = data::Generate(gen);
  std::printf("dataset: %ld entities x %ld steps\n",
              static_cast<long>(dataset.num_entities()),
              static_cast<long>(dataset.num_steps()));

  // 2. Normalize with train-split statistics.
  auto splits = data::ComputeSplits(dataset);
  auto normalizer = data::Normalizer::Fit(dataset.values, splits.train_end);
  Tensor normalized = normalizer.Normalize(dataset.values);

  // 3. Offline phase: cluster training segments into prototypes (Alg. 1).
  core::OfflineConfig offline;
  offline.patch_len = 24;      // one segment = one day
  offline.num_prototypes = 8;  // k
  auto clustering = core::RunOfflineClustering(
      Slice(normalized, 1, 0, splits.train_end), offline);
  std::printf("offline clustering: %ld prototypes, %ld iterations, %.2fs\n",
              static_cast<long>(clustering.prototypes.size(0)),
              static_cast<long>(clustering.iterations), clustering.seconds);

  // 4. Online phase: build and train the FOCUS forecaster.
  core::FocusConfig cfg;
  cfg.lookback = 96;   // 4 days in
  cfg.horizon = 24;    // 1 day out
  cfg.num_entities = dataset.num_entities();
  cfg.patch_len = offline.patch_len;
  cfg.d_model = 32;
  cfg.readout_queries = 2;
  core::FocusModel model(cfg, clustering.prototypes);
  std::printf("model: %s with %ld parameters\n", model.name().c_str(),
              static_cast<long>(model.NumParameters()));

  data::WindowDataset train(normalized, cfg.lookback, cfg.horizon, 0,
                            splits.train_end);
  harness::TrainConfig tc;
  tc.max_steps = 120;
  tc.batch_size = 8;
  tc.lr = 1e-2f;
  auto result = harness::TrainModel(model, train, tc);
  std::printf("training: loss %.3f -> %.3f in %.1fs\n", result.first_loss,
              result.final_loss, result.seconds);

  // 5. Evaluate on the held-out test region.
  data::WindowDataset test(normalized, cfg.lookback, cfg.horizon,
                           splits.val_end - cfg.lookback, splits.total);
  auto metrics = harness::EvaluateModel(model, test);
  std::printf("test MSE %.4f  MAE %.4f\n", metrics.mse, metrics.mae);
  return 0;
}
