// Fig. 7 — Parameter study on PEMS08: (a) number of prototypes k,
// (b) embedding size d, (c) input window size L, (d) patch length p.
//
// Reproduction targets (paper Sec. VIII-B): accuracy improves then
// plateaus in k; diminishing returns in d while cost escalates; longer L
// steadily reduces error at higher cost; shorter p improves accuracy but
// raises overhead.
#include <cstdio>

#include "core/focus_model.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "utils/table.h"

namespace {

using namespace focus;

struct Row {
  double mse, mae, flops_m, mem_mb;
};

Row RunFocus(const harness::PreparedData& data,
             const harness::ExperimentProfile& profile, int64_t lookback,
             int64_t patch, int64_t k, int64_t d) {
  Tensor prototypes = harness::FitPrototypes(data, patch, k, profile.alpha,
                                             /*use_correlation=*/true, 1);
  core::FocusConfig cfg;
  cfg.lookback = lookback;
  cfg.horizon = 96;
  cfg.num_entities = data.dataset.num_entities();
  cfg.patch_len = patch;
  cfg.d_model = d;
  cfg.readout_queries = harness::ReadoutQueriesFor(cfg.horizon);
  cfg.alpha = profile.alpha;
  cfg.seed = 1;
  core::FocusModel model(cfg, prototypes);

  auto outcome =
      harness::TrainAndEvaluate(model, data, lookback, cfg.horizon, profile);
  Rng rng(3);
  Tensor sample =
      Tensor::Randn({1, data.dataset.num_entities(), lookback}, rng);
  auto eff = metrics::ProbeEfficiency(model, sample);
  return {outcome.test.mse, outcome.test.mae, eff.flops / 1e6,
          eff.peak_bytes / (1024.0 * 1024.0)};
}

}  // namespace

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  auto data = harness::PrepareDataset("PEMS08", profile);
  const int64_t L = profile.lookback;
  const int64_t base_p = 16, base_k = profile.num_prototypes,
                base_d = profile.d_model;

  std::printf("=== Fig. 7: parameter study on PEMS08 (horizon 96) ===\n");

  {
    std::printf("--- (a) number of prototypes k ---\n");
    Table t({"k", "MSE", "MAE", "FLOPs(M)", "PeakMem(MB)"});
    for (int64_t k : {2, 4, 8, 16, 32, 64}) {
      Row r = RunFocus(data, profile, L, base_p, k, base_d);
      t.AddRow({std::to_string(k), Table::Num(r.mse), Table::Num(r.mae),
                Table::Num(r.flops_m, 2), Table::Num(r.mem_mb, 2)});
      std::fprintf(stderr, "[fig7a] k=%ld mse=%.4f\n", static_cast<long>(k),
                   r.mse);
    }
    std::printf("%s", t.ToAscii().c_str());
  }
  {
    std::printf("--- (b) embedding size d ---\n");
    Table t({"d", "MSE", "MAE", "FLOPs(M)", "PeakMem(MB)"});
    for (int64_t d : {16, 32, 64, 128}) {
      Row r = RunFocus(data, profile, L, base_p, base_k, d);
      t.AddRow({std::to_string(d), Table::Num(r.mse), Table::Num(r.mae),
                Table::Num(r.flops_m, 2), Table::Num(r.mem_mb, 2)});
      std::fprintf(stderr, "[fig7b] d=%ld mse=%.4f\n", static_cast<long>(d),
                   r.mse);
    }
    std::printf("%s", t.ToAscii().c_str());
  }
  {
    std::printf("--- (c) input window size L ---\n");
    Table t({"L", "MSE", "MAE", "FLOPs(M)", "PeakMem(MB)"});
    for (int64_t length : {64, 96, 128, 192, 256}) {
      Row r = RunFocus(data, profile, length, base_p, base_k, base_d);
      t.AddRow({std::to_string(length), Table::Num(r.mse), Table::Num(r.mae),
                Table::Num(r.flops_m, 2), Table::Num(r.mem_mb, 2)});
      std::fprintf(stderr, "[fig7c] L=%ld mse=%.4f\n",
                   static_cast<long>(length), r.mse);
    }
    std::printf("%s", t.ToAscii().c_str());
  }
  {
    std::printf("--- (d) patch length p ---\n");
    Table t({"p", "MSE", "MAE", "FLOPs(M)", "PeakMem(MB)"});
    for (int64_t p : {4, 8, 16, 32}) {
      Row r = RunFocus(data, profile, L, p, base_k, base_d);
      t.AddRow({std::to_string(p), Table::Num(r.mse), Table::Num(r.mae),
                Table::Num(r.flops_m, 2), Table::Num(r.mem_mb, 2)});
      std::fprintf(stderr, "[fig7d] p=%ld mse=%.4f\n", static_cast<long>(p),
                   r.mse);
    }
    std::printf("%s", t.ToAscii().c_str());
  }
  return 0;
}
