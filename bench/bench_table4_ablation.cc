// Table IV — Ablation study: FOCUS vs FOCUS-Attn / FOCUS-LnrFusion /
// FOCUS-AllLnr on PEMS08- and Electricity-shaped data.
//
// Reproduction targets: FOCUS-Attn costs more FLOPs/memory for ~no accuracy
// gain; FOCUS-LnrFusion cuts cost but loses accuracy and carries MORE
// parameters; FOCUS-AllLnr is cheapest and least accurate.
#include <cstdio>

#include "core/focus_model.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  const int64_t horizon = 96;

  std::printf("=== Table IV: ablation study ===\n");
  Table table({"Dataset", "Model", "MSE", "MAE", "FLOPs(M)", "Mem(MB)",
               "Params(K)"});

  for (const std::string dataset : {"PEMS08", "Electricity"}) {
    auto data = harness::PrepareDataset(dataset, profile);
    const int64_t patch = harness::FocusPatchLenFor(dataset, profile);
    Tensor prototypes =
        harness::FitPrototypes(data, patch, profile.num_prototypes,
                               profile.alpha, /*use_correlation=*/true, 1);
    for (auto variant :
         {core::FocusVariant::kFull, core::FocusVariant::kAttn,
          core::FocusVariant::kLnrFusion, core::FocusVariant::kAllLnr}) {
      core::FocusConfig cfg;
      cfg.lookback = profile.lookback;
      cfg.horizon = horizon;
      cfg.num_entities = data.dataset.num_entities();
      cfg.patch_len = patch;
      cfg.d_model = profile.d_model;
      cfg.readout_queries = harness::ReadoutQueriesFor(horizon);
      cfg.alpha = profile.alpha;
      cfg.variant = variant;
      cfg.seed = 1;
      core::FocusModel model(cfg, prototypes);

      auto outcome = harness::TrainAndEvaluate(model, data, profile.lookback,
                                               horizon, profile);
      Rng rng(5);
      Tensor sample = Tensor::Randn(
          {1, data.dataset.num_entities(), profile.lookback}, rng);
      auto eff = metrics::ProbeEfficiency(model, sample);

      table.AddRow({dataset, model.name(), Table::Num(outcome.test.mse),
                    Table::Num(outcome.test.mae),
                    Table::Num(eff.flops / 1e6, 1),
                    Table::Num(eff.peak_bytes / (1024.0 * 1024.0), 2),
                    Table::Num(eff.parameters / 1e3, 0)});
      std::fprintf(stderr, "[table4] %s %s mse=%.4f\n", dataset.c_str(),
                   model.name().c_str(), outcome.test.mse);
    }
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
