// Fig. 9 — Generalization to unseen test-set segment patterns.
//
// Operationalization: the test-region *inputs* receive steeper
// intra-segment trends never seen in training (data::InjectTestShift), but
// the forecast targets remain the clean continuation — i.e. "the input
// sequences contain unseen segments" (paper Sec. VIII-D) and the model
// must still recover the true dynamics. FOCUS and PatchTST (also
// segmentation-based) are trained on identical clean data.
//
// Reproduction target: both models degrade on unseen input patterns, but
// FOCUS degrades less — its assignment step associates new segments with
// the nearest known prototype.
#include <cstdio>

#include "data/generator.h"
#include "data/perturb.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  const int64_t horizon = 96;

  // Clean and input-shifted copies of the same Electricity-shaped series.
  auto cfg = data::PaperDatasetConfig("Electricity", profile.profile);
  auto clean = data::Generate(cfg);
  auto shifted = data::Generate(cfg);
  const auto splits = data::ComputeSplits(clean);
  {
    Rng rng(42);
    data::InjectTestShift(&shifted, splits.val_end,
                          harness::FocusPatchLenFor("Electricity", profile),
                          /*magnitude=*/1.5f, rng);
  }
  auto clean_data = harness::PrepareDataset(clean);
  // Same train region => identical normalizer; normalize the shifted copy
  // with it so inputs are in the same space.
  harness::PreparedData shifted_data;
  shifted_data.dataset = shifted;
  shifted_data.splits = splits;
  shifted_data.normalizer = clean_data.normalizer;
  shifted_data.normalized =
      shifted_data.normalizer.Normalize(shifted_data.dataset.values);

  std::printf("=== Fig. 9: generalization to unseen input segments ===\n");
  Table table({"Model", "CleanMSE", "UnseenInputMSE", "Degradation%"});
  for (const std::string name : {"FOCUS", "PatchTST"}) {
    auto model = harness::BuildModel(name, clean_data, profile.lookback,
                                     horizon, profile);
    auto train = harness::TrainWindows(clean_data, profile.lookback, horizon);
    auto val = harness::ValWindows(clean_data, profile.lookback, horizon);
    harness::TrainConfig tc;
    tc.max_steps = profile.train_steps;
    tc.batch_size = profile.batch_size;
    tc.lr = profile.lr;
    tc.val = &val;
    harness::TrainModel(*model, train, tc);
    model->SetTraining(false);

    // Paired evaluation: x from the shifted series, y from the clean one.
    auto clean_test =
        harness::TestWindows(clean_data, profile.lookback, horizon);
    auto shifted_test =
        harness::TestWindows(shifted_data, profile.lookback, horizon);
    NoGradGuard no_grad;
    metrics::ForecastMetrics normal, unseen;
    for (int64_t w = 0; w < clean_test.NumWindows();
         w += profile.eval_stride) {
      auto cw = clean_test.GetWindow(w);
      auto sw = shifted_test.GetWindow(w);
      normal.Accumulate(model->Forward(cw.x), cw.y);
      unseen.Accumulate(model->Forward(sw.x), cw.y);
    }
    normal.Finalize();
    unseen.Finalize();
    const double degradation =
        100.0 * (unseen.mse - normal.mse) / normal.mse;
    table.AddRow({name, Table::Num(normal.mse), Table::Num(unseen.mse),
                  Table::Num(degradation, 1)});
    std::fprintf(stderr, "[fig9] %s clean=%.4f unseen=%.4f (+%.1f%%)\n",
                 name.c_str(), normal.mse, unseen.mse, degradation);
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "Unseen inputs carry steeper intra-segment trends absent from "
      "training; targets are the clean continuation.\n");
  return 0;
}
