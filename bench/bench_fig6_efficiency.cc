// Fig. 6 — FLOPs, peak memory occupation and parameter count vs. input
// length for all 8 models, plus FOCUS's per-component breakdown.
//
// Models are probed untrained (efficiency is training-independent) on a
// Traffic-shaped input. The reproduction target: FOCUS's FLOPs and peak
// memory grow linearly in L and sit below the attention baselines, whose
// all-pairs terms grow super-linearly.
//
// The per-component section attributes FLOPs / peak memory / wall-clock to
// the embed / branch / fusion spans via obs::TraceSpan and cross-checks the
// FLOP numbers against the legacy FlopCounter::Breakdown() region path
// (they must agree within 1%).
//
// --bench-json=<path> additionally records every (model, L) latency/FLOP
// probe in the unified bench-result schema (obs/bench_report.h) so
// scripts/bench_diff.py can gate efficiency regressions across PRs.
// --plan-json=<path> records the planned-vs-eager single-thread latency
// section (src/plan execution path) in the same schema; the committed
// recording lives at results/BENCH_plan.json.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/planned_forecaster.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "obs/bench_report.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/flops.h"
#include "utils/flags.h"
#include "utils/stopwatch.h"
#include "utils/table.h"

int main(int argc, char** argv) {
  using namespace focus;
  FlagParser flags(argc, argv);
  obs::ApplyTraceFlag(flags);
  const std::string bench_json = flags.GetString("bench-json", "");
  obs::BenchReport bench_report = obs::MakeBenchReport(
      static_cast<int>(ThreadPool::Global().num_threads()));
  bench_report.note = "fig6 efficiency probes (1 fwd pass, batch 1)";
  auto profile = harness::MakeProfile();
  const std::vector<int64_t> lengths = {96, 192, 384, 512, 768};
  const int64_t horizon = 96;

  auto data = harness::PrepareDataset("Traffic", profile);
  const int64_t n = data.dataset.num_entities();

  std::printf("=== Fig. 6: FLOPs / peak memory / params vs input length ===\n");
  std::printf("entities=%ld horizon=%ld batch=1\n", static_cast<long>(n),
              static_cast<long>(horizon));

  Table table({"Model", "L", "FLOPs(M)", "PeakMem(MB)", "Params(K)",
               "Latency(ms)"});
  Rng rng(7);
  for (const auto& model_name : harness::ModelZooNames()) {
    for (int64_t length : lengths) {
      auto model =
          harness::BuildModel(model_name, data, length, horizon, profile);
      Tensor sample = Tensor::Randn({1, n, length}, rng);
      auto report = metrics::ProbeEfficiency(*model, sample);
      table.AddRow({model_name, std::to_string(length),
                    Table::Num(report.flops / 1e6, 2),
                    Table::Num(report.peak_bytes / (1024.0 * 1024.0), 2),
                    Table::Num(report.parameters / 1e3, 1),
                    Table::Num(report.latency_ms, 1)});
      obs::BenchEntry entry;
      entry.name = "fig6/" + model_name + "/L=" + std::to_string(length);
      entry.ns_per_op = report.latency_ms * 1e6;
      if (report.latency_ms > 0.0) {
        // flops / (latency_ms * 1e6) == GFLOP/s achieved by the probe.
        entry.gflops = static_cast<double>(report.flops) /
                       (report.latency_ms * 1e6);
      }
      entry.threads = static_cast<double>(bench_report.threads);
      entry.label = bench_report.simd_backend;
      bench_report.entries.push_back(std::move(entry));
    }
  }
  std::printf("%s", table.ToAscii().c_str());

  // Growth-factor summary: FLOPs(768) / FLOPs(96) per model — 8x is
  // perfectly linear; attention baselines exceed it.
  std::printf("FLOPs growth factor L=96 -> L=768 (8x input):\n");
  for (const auto& model_name : harness::ModelZooNames()) {
    auto small =
        harness::BuildModel(model_name, data, 96, horizon, profile);
    auto large =
        harness::BuildModel(model_name, data, 768, horizon, profile);
    Tensor x_small = Tensor::Randn({1, n, 96}, rng);
    Tensor x_large = Tensor::Randn({1, n, 768}, rng);
    const double f_small =
        static_cast<double>(metrics::ProbeEfficiency(*small, x_small).flops);
    const double f_large =
        static_cast<double>(metrics::ProbeEfficiency(*large, x_large).flops);
    std::printf("  %-14s %.1fx\n", model_name.c_str(), f_large / f_small);
  }

  // Planned-vs-eager single-thread forecast latency on the same fig6
  // configs: eager is the inference-mode tape-free path, planned replays
  // a compiled execution plan (static slab, fused sweeps, zero
  // allocator calls). Both are best-of-3 after one warm-up; single
  // thread isolates the plan's overhead removal from pool scaling.
  const std::string plan_json = flags.GetString("plan-json", "");
  obs::BenchReport plan_report = obs::MakeBenchReport(1);
  plan_report.note =
      "planned vs eager single-thread forecast latency (fig6 configs)";
  std::printf("\n=== Planned vs eager inference latency (1 thread) ===\n");
  const int pool_threads =
      static_cast<int>(ThreadPool::Global().num_threads());
  ThreadPool::Global().Resize(1);
  Table plan_table({"Model", "L", "Eager(ms)", "Planned(ms)", "Speedup"});
  for (const std::string model_name : {"FOCUS", "PatchTST", "DLinear"}) {
    for (int64_t length : lengths) {
      auto model =
          harness::BuildModel(model_name, data, length, horizon, profile);
      model->SetTraining(false);
      Tensor sample = Tensor::Randn({1, n, length}, rng);
      const int reps = 3;
      double eager_ms = 1e30;
      {
        InferenceModeGuard inference;
        model->Forward(sample);  // warm (allocator caches, code paths)
        for (int r = 0; r < reps; ++r) {
          Stopwatch timer;
          model->Forward(sample);
          eager_ms = std::min(eager_ms, timer.ElapsedMillis());
        }
      }
      core::PlannedForecaster planned(model.get());
      planned.Forward(sample);  // capture + compile outside the timing
      double planned_ms = 1e30;
      for (int r = 0; r < reps; ++r) {
        Stopwatch timer;
        planned.Forward(sample);
        planned_ms = std::min(planned_ms, timer.ElapsedMillis());
      }
      const bool was_planned = planned.last_was_planned();
      plan_table.AddRow({model_name, std::to_string(length),
                         Table::Num(eager_ms, 2), Table::Num(planned_ms, 2),
                         was_planned
                             ? Table::Num(eager_ms / planned_ms, 2) + "x"
                             : std::string("(eager fallback)")});
      for (const char* path : {"eager", "planned"}) {
        obs::BenchEntry entry;
        entry.name = "plan/" + model_name + "/L=" + std::to_string(length) +
                     "/" + path;
        entry.ns_per_op =
            (path[0] == 'e' ? eager_ms : planned_ms) * 1e6;
        entry.threads = 1.0;
        entry.label = plan_report.simd_backend;
        plan_report.entries.push_back(std::move(entry));
      }
    }
  }
  ThreadPool::Global().Resize(pool_threads);
  std::printf("%s", plan_table.ToAscii().c_str());
  if (!plan_json.empty()) {
    const Status status = obs::WriteBenchReport(plan_report, plan_json);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_fig6: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("plan report written to %s (%zu entries)\n",
                plan_json.c_str(), plan_report.entries.size());
  }

  // FOCUS per-component attribution via obs::TraceSpan, cross-checked
  // against the legacy FlopCounter::Breakdown() region path.
  std::printf("\nFOCUS per-component breakdown (TraceSpan vs legacy):\n");
  auto& tracer = obs::Tracer::Get();
  const bool was_enabled = tracer.enabled();
  tracer.Enable();
  bool parity_ok = true;
  Table breakdown({"L", "Component", "FLOPs(M)", "Legacy(M)", "Delta(%)",
                   "PeakMem(MB)", "Wall(ms)"});
  for (int64_t length : {96, 384, 768}) {
    auto model = harness::BuildModel("FOCUS", data, length, horizon, profile);
    Tensor sample = Tensor::Randn({1, n, length}, rng);
    tracer.Clear();
    metrics::ProbeEfficiency(*model, sample);
    const auto legacy = FlopCounter::Breakdown();
    for (const auto& [name, stats] : obs::AggregateSpans(tracer.Snapshot())) {
      if (name.rfind("focus/", 0) != 0) continue;
      double legacy_flops = 0.0;
      for (const auto& [region, flops] : legacy) {
        if (region == name) legacy_flops = static_cast<double>(flops);
      }
      const double span_flops = static_cast<double>(stats.self_flops);
      const double delta_pct =
          legacy_flops > 0.0
              ? 100.0 * std::fabs(span_flops - legacy_flops) / legacy_flops
              : (span_flops > 0.0 ? 100.0 : 0.0);
      if (delta_pct > 1.0) parity_ok = false;
      breakdown.AddRow({std::to_string(length), name,
                        Table::Num(span_flops / 1e6, 2),
                        Table::Num(legacy_flops / 1e6, 2),
                        Table::Num(delta_pct, 3),
                        Table::Num(stats.peak_bytes / (1024.0 * 1024.0), 2),
                        Table::Num(stats.wall_us / 1e3, 2)});
    }
  }
  if (!was_enabled) tracer.Disable();
  std::printf("%s", breakdown.ToAscii().c_str());
  std::printf("span/legacy FLOP parity (<=1%%): %s\n",
              parity_ok ? "OK" : "MISMATCH");
  if (!bench_json.empty()) {
    const Status status = obs::WriteBenchReport(bench_report, bench_json);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_fig6: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("bench report written to %s (%zu entries)\n",
                bench_json.c_str(), bench_report.entries.size());
  }
  return parity_ok ? 0 : 1;
}
