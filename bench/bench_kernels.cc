// Kernel microbenchmarks (google-benchmark): matmul / softmax throughput,
// ProtoAttn vs full self-attention scaling in the token count (the paper's
// O(kl) vs O(l^2) claim at kernel granularity), and offline clustering
// throughput.
#include <benchmark/benchmark.h>

#include "cluster/segment_clustering.h"
#include "core/proto_attn.h"
#include "nn/attention.h"
#include "tensor/ops.h"

namespace focus {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxLastDim(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(x).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SoftmaxLastDim)->Arg(128)->Arg(512);

// ProtoAttn forward cost as the token count l grows: expect ~linear time.
void BM_ProtoAttnForward(benchmark::State& state) {
  const int64_t l = state.range(0);
  const int64_t p = 16, d = 64, k = 16;
  Rng rng(3);
  auto embed = std::make_shared<nn::Linear>(p, d, rng);
  Tensor protos = Tensor::Randn({k, p}, rng);
  core::ProtoAttn attn(protos, embed, d, 0.2f, rng);
  Tensor raw = Tensor::Randn({1, l, p}, rng);
  Tensor emb = embed->Forward(raw).Detach();
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(raw, emb).data());
  }
  state.SetItemsProcessed(state.iterations() * l);
}
BENCHMARK(BM_ProtoAttnForward)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Full self-attention forward cost: expect ~quadratic time in l.
void BM_SelfAttnForward(benchmark::State& state) {
  const int64_t l = state.range(0);
  const int64_t d = 64;
  Rng rng(4);
  nn::MultiheadSelfAttention attn(d, 4, rng);
  Tensor x = Tensor::Randn({1, l, d}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(x).data());
  }
  state.SetItemsProcessed(state.iterations() * l);
}
BENCHMARK(BM_SelfAttnForward)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Offline clustering throughput (segments / second).
void BM_SegmentClustering(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  Rng rng(5);
  Tensor segments = Tensor::Randn({num_segments, 16}, rng);
  for (auto _ : state) {
    cluster::ClusteringConfig cfg;
    cfg.segment_length = 16;
    cfg.num_prototypes = 8;
    cfg.max_iters = 5;
    cfg.refine_steps = 5;
    cfg.seed = 6;
    auto result = cluster::SegmentClustering(cfg).Fit(segments);
    benchmark::DoNotOptimize(result.prototypes.data());
  }
  state.SetItemsProcessed(state.iterations() * num_segments);
}
BENCHMARK(BM_SegmentClustering)->Arg(512)->Arg(2048);

void BM_NearestPrototypeAssignment(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  Rng rng(7);
  Tensor segments = Tensor::Randn({num_segments, 16}, rng);
  Tensor protos = Tensor::Randn({16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::SegmentClustering::Assign(segments, protos, 0.2f));
  }
  state.SetItemsProcessed(state.iterations() * num_segments);
}
BENCHMARK(BM_NearestPrototypeAssignment)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace focus

BENCHMARK_MAIN();
