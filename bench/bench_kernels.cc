// Kernel microbenchmarks (google-benchmark): matmul / softmax throughput,
// ProtoAttn vs full self-attention scaling in the token count (the paper's
// O(kl) vs O(l^2) claim at kernel granularity), and offline clustering
// throughput. The hot kernels additionally report achieved GFLOP/s and the
// active FOCUS_SIMD backend (JSON `label`), so scalar-vs-AVX2 runs are
// directly comparable in results/BENCH_simd.json.
//
// The __has_include guard lets this exact file build against a pre-SIMD
// checkout too — that is how the PR-over-PR baseline numbers are taken.
//
// Output: besides google-benchmark's console/JSON output, the binary can
// emit the unified bench-result schema (obs/bench_report.h) that
// scripts/bench_diff.py consumes: pass --focus-bench-json=<path> (or set
// FOCUS_BENCH_JSON). --smoke restricts the run to one fast shape per hot
// kernel family with a short min-time — the perf leg of scripts/check.sh
// uses it to gate regressions against results/BENCH_smoke_baseline.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/segment_clustering.h"
#include "core/proto_attn.h"
#include "nn/attention.h"
#include "optim/optimizer.h"
#include "parallel/thread_pool.h"
#include "tensor/allocator.h"
#include "tensor/ops.h"

#if __has_include("tensor/simd/vec.h")
#include "tensor/simd/vec.h"
#define FOCUS_BENCH_HAVE_SIMD 1
#endif

#if __has_include("tensor/bf16.h")
#include "tensor/bf16.h"
#include "tensor/precision.h"
#define FOCUS_BENCH_HAVE_BF16 1
#endif

#if __has_include("plan/plan.h")
#include "core/focus_model.h"
#include "plan/plan.h"
#define FOCUS_BENCH_HAVE_PLAN 1
#endif

#if __has_include("obs/bench_report.h")
#include "obs/bench_report.h"
#include "utils/env.h"
#define FOCUS_BENCH_HAVE_REPORT 1
#endif

namespace focus {
namespace {

// Every benchmark reports the pool size so serial/pooled runs recorded with
// different FOCUS_NUM_THREADS are distinguishable in the JSON output
// (results/BENCH_kernels.json keeps one run of each).
void ReportThreads(benchmark::State& state) {
  state.counters["threads"] =
      static_cast<double>(ThreadPool::Global().num_threads());
}

// Achieved GFLOP/s from the op's true per-iteration FLOP count (the same
// figure FlopCounter records), plus the active SIMD backend as the run
// label ("pre-simd" on checkouts that predate the vector layer).
void ReportGflops(benchmark::State& state, int64_t flops_per_iter) {
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(flops_per_iter) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
#ifdef FOCUS_BENCH_HAVE_SIMD
  state.SetLabel(simd::BackendName());
#else
  state.SetLabel("pre-simd");
#endif
}

// Operand bytes moved per op (inputs read + outputs written, ideal
// cache behaviour). Feeds the schema's optional bytes_per_op field so
// bench_diff can attribute a speedup to bytes-moved reduction (the
// mixed-precision benches halve this against their f32 twins).
void ReportBytes(benchmark::State& state, int64_t bytes_per_iter) {
  state.counters["bytes_per_op"] = static_cast<double>(bytes_per_iter);
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  ReportGflops(state, 2 * n * n * n);
  ReportBytes(state, 3 * n * n * 4);  // A + B read, C written, f32
  ReportThreads(state);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

#ifdef FOCUS_BENCH_HAVE_BF16
// The same square matmul with bf16 weight storage (f32 accumulate):
// eager MatMul routes through pack + MatMulBf16Kernel when the ambient
// precision is not f32 and B is a parameter (requires_grad). The eager
// loop re-packs B every call, so this measures the worst case — plan
// replay folds the pack into a pinned bf16 constant. bytes_per_op
// counts the matmul step's operands (4-byte A, 2-byte B16, 4-byte C).
void BM_MatMulBf16(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  b.SetRequiresGrad(true);  // mark as a parameter: enables the bf16 route
  NoGradGuard no_grad;
  PrecisionGuard precision(Precision::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  ReportGflops(state, 2 * n * n * n);
  ReportBytes(state, n * n * (4 + 2 + 4));
  ReportThreads(state);
}
BENCHMARK(BM_MatMulBf16)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
#endif  // FOCUS_BENCH_HAVE_BF16

// Batched matmul at the shapes the fig6 efficiency bench drives through
// ProtoAttn / the transformer baselines: (B, l, d) @ (B, d, d).
void BM_MatMulBatched(benchmark::State& state) {
  const int64_t b = state.range(0), l = state.range(1), d = state.range(2);
  Rng rng(1);
  Tensor a = Tensor::Randn({b, l, d}, rng);
  Tensor w = Tensor::Randn({b, d, d}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, w).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * b * l * d * d);
  ReportGflops(state, 2 * b * l * d * d);
  ReportBytes(state, (b * l * d + b * d * d + b * l * d) * 4);
  ReportThreads(state);
}
BENCHMARK(BM_MatMulBatched)->Args({32, 96, 64})->Args({8, 512, 64});

void BM_Conv1d(benchmark::State& state) {
  const int64_t B = state.range(0), C = state.range(1), L = state.range(2);
  Rng rng(1);
  Tensor x = Tensor::Randn({B, C, L}, rng);
  Tensor w = Tensor::Randn({C, C, 3}, rng);
  Tensor bias = Tensor::Randn({C}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Conv1d(x, w, bias, /*stride=*/1, /*padding=*/1, /*dilation=*/1)
            .data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * B * C * L * C * 3);
  ReportThreads(state);
}
BENCHMARK(BM_Conv1d)->Args({16, 32, 96})->Args({16, 64, 512});

void BM_LayerNormLastDim(benchmark::State& state) {
  const int64_t rows = state.range(0), n = state.range(1);
  Rng rng(1);
  Tensor x = Tensor::Randn({rows, n}, rng);
  Tensor gamma = Tensor::Ones({n});
  Tensor beta = Tensor::Zeros({n});
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LayerNormLastDim(x, gamma, beta, 1e-5f).data());
  }
  state.SetItemsProcessed(state.iterations() * rows * n);
  ReportGflops(state, 8 * rows * n);  // FlopCounter's layernorm figure
  ReportThreads(state);
}
BENCHMARK(BM_LayerNormLastDim)->Args({3072, 64})->Args({4096, 512});

void BM_SoftmaxLastDim(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(x).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
  ReportGflops(state, 5 * n * n);  // FlopCounter's softmax figure
  ReportThreads(state);
}
BENCHMARK(BM_SoftmaxLastDim)->Arg(128)->Arg(512);

// Elementwise transcendental throughput: Exp over a large contiguous
// tensor. Pre-SIMD this was a std::exp loop; the vector layer evaluates
// the shared polynomial 8 lanes at a time.
void BM_ElementwiseExp(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::Randn({n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exp(x).data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  ReportGflops(state, 2 * n);  // FlopCounter's elementwise-unary figure
  ReportBytes(state, 2 * n * 4);  // x read, y written
  ReportThreads(state);
}
BENCHMARK(BM_ElementwiseExp)->Arg(1 << 16)->Arg(1 << 20);

#ifdef FOCUS_BENCH_HAVE_SIMD
// Raw kernel-table exp: no tensor allocation, no autograd, no pool — the
// cost of the vectorized polynomial itself, elements/second.
void BM_VecExp(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> x(static_cast<size_t>(n));
  std::vector<float> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] =
        -10.0f + 20.0f * static_cast<float>(i) / static_cast<float>(n);
  }
  const auto kern = simd::Kernels().exp_fwd;
  for (auto _ : state) {
    kern(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::BackendName());
}
BENCHMARK(BM_VecExp)->Arg(4096)->Arg(1 << 16);

#ifdef FOCUS_BENCH_HAVE_BF16
// Raw bf16 elementwise add: load-convert two bf16 streams, add in f32,
// round-store bf16. 6 bytes/element vs the f32 kernel's 12.
void BM_VecAddBf16(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> src(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    src[static_cast<size_t>(i)] =
        -4.0f + 8.0f * static_cast<float>(i) / static_cast<float>(n);
  }
  std::vector<uint16_t> a(static_cast<size_t>(n));
  std::vector<uint16_t> b(static_cast<size_t>(n));
  std::vector<uint16_t> y(static_cast<size_t>(n));
  const auto& table = simd::Kernels();
  table.pack_bf16(src.data(), a.data(), n);
  table.pack_bf16(src.data(), b.data(), n);
  const auto kern = table.add_bf16;
  for (auto _ : state) {
    kern(a.data(), b.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  ReportBytes(state, 3 * n * 2);
  state.SetLabel(simd::BackendName());
}
BENCHMARK(BM_VecAddBf16)->Arg(4096)->Arg(1 << 16);

// Raw int8 dot product — the inner loop of the int8proto assignment
// sweep (one call per token/prototype pair).
void BM_VecDotI8(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int8_t> a(static_cast<size_t>(n));
  std::vector<int8_t> b(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    a[static_cast<size_t>(i)] = static_cast<int8_t>((i * 37 + 11) % 255 - 127);
    b[static_cast<size_t>(i)] = static_cast<int8_t>((i * 53 + 5) % 255 - 127);
  }
  const auto kern = simd::Kernels().dot_i8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
  ReportBytes(state, 2 * n);
  state.SetLabel(simd::BackendName());
}
BENCHMARK(BM_VecDotI8)->Arg(16)->Arg(64)->Arg(4096);
#endif  // FOCUS_BENCH_HAVE_BF16
#endif  // FOCUS_BENCH_HAVE_SIMD

// ProtoAttn forward cost as the token count l grows: expect ~linear time.
void BM_ProtoAttnForward(benchmark::State& state) {
  const int64_t l = state.range(0);
  const int64_t p = 16, d = 64, k = 16;
  Rng rng(3);
  auto embed = std::make_shared<nn::Linear>(p, d, rng);
  Tensor protos = Tensor::Randn({k, p}, rng);
  core::ProtoAttn attn(protos, embed, d, 0.2f, rng);
  Tensor raw = Tensor::Randn({1, l, p}, rng);
  Tensor emb = embed->Forward(raw).Detach();
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(raw, emb).data());
  }
  state.SetItemsProcessed(state.iterations() * l);
}
BENCHMARK(BM_ProtoAttnForward)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Full self-attention forward cost: expect ~quadratic time in l.
void BM_SelfAttnForward(benchmark::State& state) {
  const int64_t l = state.range(0);
  const int64_t d = 64;
  Rng rng(4);
  nn::MultiheadSelfAttention attn(d, 4, rng);
  Tensor x = Tensor::Randn({1, l, d}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(x).data());
  }
  state.SetItemsProcessed(state.iterations() * l);
}
BENCHMARK(BM_SelfAttnForward)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Offline clustering throughput (segments / second).
void BM_SegmentClustering(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  Rng rng(5);
  Tensor segments = Tensor::Randn({num_segments, 16}, rng);
  for (auto _ : state) {
    cluster::ClusteringConfig cfg;
    cfg.segment_length = 16;
    cfg.num_prototypes = 8;
    cfg.max_iters = 5;
    cfg.refine_steps = 5;
    cfg.seed = 6;
    auto result = cluster::SegmentClustering(cfg).Fit(segments);
    benchmark::DoNotOptimize(result.prototypes.data());
  }
  state.SetItemsProcessed(state.iterations() * num_segments);
}
BENCHMARK(BM_SegmentClustering)->Arg(512)->Arg(2048);

void BM_NearestPrototypeAssignment(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  Rng rng(7);
  Tensor segments = Tensor::Randn({num_segments, 16}, rng);
  Tensor protos = Tensor::Randn({16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::SegmentClustering::Assign(segments, protos, 0.2f));
  }
  state.SetItemsProcessed(state.iterations() * num_segments);
  ReportThreads(state);
}
BENCHMARK(BM_NearestPrototypeAssignment)->Arg(1024)->Arg(8192);

// Allocation-churn microbench for the caching allocator: a full train step
// (forward, backward, AdamW) whose activations/gradients are ~35 MB each —
// past glibc's mmap-threshold ceiling, so with the cache bypassed every
// step pays mmap/munmap round trips and page-fault-plus-zero storms for
// the same shapes it just freed. Arg = FOCUS_ALLOC_CACHE_MB equivalent
// (set programmatically): 0 = bypass (seed behaviour), 512 = cached.
// steps/sec is items_per_second; alloc_hits / alloc_misses show where the
// buffers came from. The elementwise chain keeps per-step compute cheap so
// the allocator path dominates the delta; outputs are bit-identical
// across both settings (tests/parity_test.cc enforces this).
void BM_TrainStepLoop(benchmark::State& state) {
  const int64_t cap_mb = state.range(0);
  Allocator& alloc = Allocator::Get();
  const int64_t prev_cap = alloc.cap_bytes();
  alloc.SetCapBytes(cap_mb * (int64_t{1} << 20));
  const AllocatorStats before = alloc.Stats();

  // 2048 x 4224 floats = 34.6 MB: above DEFAULT_MMAP_THRESHOLD_MAX (32 MiB
  // on 64-bit glibc), so a system allocation can never be malloc-cached.
  Rng rng(21);
  Tensor x = Tensor::Randn({2048, 4224}, rng);
  x.SetRequiresGrad(true);
  Tensor w = Tensor::Full({1}, 0.5f);
  w.SetRequiresGrad(true);
  optim::AdamW opt({w}, /*lr=*/1e-3f);

  for (auto _ : state) {
    opt.ZeroGrad();
    x.ZeroGrad();
    Tensor h = Mul(x, x);
    Tensor h2 = Add(h, x);
    Tensor h3 = Sub(h2, h);
    Tensor loss = Mul(SumAll(h3), w);
    loss.Backward();
    opt.Step();
    benchmark::DoNotOptimize(loss.data());
  }
  state.SetItemsProcessed(state.iterations());

  const AllocatorStats after = alloc.Stats();
  state.counters["cap_mb"] = static_cast<double>(cap_mb);
  state.counters["alloc_hits"] = static_cast<double>(after.hits - before.hits);
  state.counters["alloc_misses"] =
      static_cast<double>(after.misses - before.misses);
  ReportThreads(state);
  alloc.Trim();
  alloc.SetCapBytes(prev_cap);
}
BENCHMARK(BM_TrainStepLoop)->Arg(0)->Arg(512)
    ->Unit(benchmark::kMillisecond);

#ifdef FOCUS_BENCH_HAVE_PLAN
// Planned vs eager inference on a compact FOCUS configuration — the
// execution-plan layer's end-to-end effect (no tape bookkeeping, zero
// allocator calls, folded constant subgraphs, fused elementwise
// sweeps). The planned numbers are steady state: capture + compile
// happen once before the timed loop.
core::FocusModel MakeBenchFocusModel(int64_t lookback) {
  core::FocusConfig cfg;
  cfg.lookback = lookback;
  cfg.horizon = 24;
  cfg.num_entities = 8;
  cfg.patch_len = 16;
  cfg.d_model = 64;
  cfg.readout_queries = 6;
  cfg.seed = 9;
  Rng rng(10);
  return core::FocusModel(cfg, Tensor::Randn({16, 16}, rng));
}

void BM_FocusForecastEager(benchmark::State& state) {
  const int64_t lookback = state.range(0);
  core::FocusModel model = MakeBenchFocusModel(lookback);
  model.SetTraining(false);
  Rng rng(11);
  Tensor x = Tensor::Randn({1, 8, lookback}, rng);
  InferenceModeGuard inference;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x).data());
  }
  state.SetItemsProcessed(state.iterations());
  ReportThreads(state);
}
BENCHMARK(BM_FocusForecastEager)->Arg(96)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_FocusForecastPlanned(benchmark::State& state) {
  const int64_t lookback = state.range(0);
  core::FocusModel model = MakeBenchFocusModel(lookback);
  model.SetTraining(false);
  Rng rng(11);
  Tensor x = Tensor::Randn({1, 8, lookback}, rng);
  model.ForecastPlanned(x);  // capture + compile outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ForecastPlanned(x).data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["planned"] =
      model.last_forecast_planned() ? 1.0 : 0.0;
  ReportThreads(state);
}
BENCHMARK(BM_FocusForecastPlanned)->Arg(96)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

// Fusion in isolation: the same captured elementwise chain
// (add+gelu, mul_scalar+sigmoid) replayed with fusion off (Arg 0)
// and on (Arg 1).
void BM_ElemChainPlanned(benchmark::State& state) {
  const bool fuse = state.range(0) != 0;
  const int64_t n = 1 << 16;
  Rng rng(12);
  Tensor c = Tensor::Randn({n}, rng);
  Tensor x = Tensor::Randn({n}, rng);
  auto fn = [&](const Tensor& in) {
    return Sigmoid(MulScalar(Gelu(Add(in, c)), 0.7f));
  };
  plan::Options opts;
  opts.fuse = fuse;
  auto compiled = plan::ExecutionPlan::Capture(fn, x, opts);
  if (compiled == nullptr) {
    state.SkipWithError("plan capture failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->Run(x).data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["fused"] = static_cast<double>(compiled->stats().fused);
  ReportThreads(state);
}
BENCHMARK(BM_ElemChainPlanned)->Arg(0)->Arg(1);
#endif  // FOCUS_BENCH_HAVE_PLAN

#ifdef FOCUS_BENCH_HAVE_REPORT
// Console reporter that additionally captures every finished run as a
// schema entry (obs/bench_report.h). ns_per_op comes from the raw
// accumulated real time so entries are comparable regardless of each
// benchmark's display time unit.
class SchemaCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      obs::BenchEntry entry;
      entry.name = run.benchmark_name();
      if (run.iterations > 0) {
        entry.ns_per_op = run.real_accumulated_time * 1e9 /
                          static_cast<double>(run.iterations);
      }
      entry.label = run.report_label;
      // Counters are finalized (rates already divided by time) before
      // reporters see them.
      auto it = run.counters.find("gflops");
      if (it != run.counters.end()) entry.gflops = it->second.value;
      it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        entry.items_per_second = it->second.value;
      }
      it = run.counters.find("threads");
      if (it != run.counters.end()) entry.threads = it->second.value;
      it = run.counters.find("bytes_per_op");
      if (it != run.counters.end()) entry.bytes_per_op = it->second.value;
      entries.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<obs::BenchEntry> entries;
};
#endif  // FOCUS_BENCH_HAVE_REPORT

}  // namespace
}  // namespace focus

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
#ifdef FOCUS_BENCH_HAVE_REPORT
  json_path = focus::GetEnvOr("FOCUS_BENCH_JSON", "");
#endif
  std::vector<char*> args;
  const std::string kJsonFlag = "--focus-bench-json=";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg.rfind(kJsonFlag, 0) == 0) {
      json_path = arg.substr(kJsonFlag.size());
      continue;
    }
    args.push_back(argv[i]);
  }
  // --smoke: one fast shape per hot kernel family, short min-time. The
  // strings must outlive Initialize (it keeps the pointers).
  static std::string smoke_filter =
      "--benchmark_filter="
      "BM_MatMul/256$|BM_MatMulBf16/256$|BM_MatMulBatched/32/96/64$|"
      "BM_Conv1d/16/32/96$|"
      "BM_LayerNormLastDim/3072/64$|BM_SoftmaxLastDim/128$|"
      "BM_ElementwiseExp/65536$|BM_ProtoAttnForward/64$|"
      "BM_NearestPrototypeAssignment/1024$|BM_FocusForecastEager/96$|"
      "BM_FocusForecastPlanned/96$|BM_ElemChainPlanned/1$";
  static std::string smoke_min_time = "--benchmark_min_time=0.05";
  if (smoke) {
    args.push_back(smoke_filter.data());
    args.push_back(smoke_min_time.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
#ifdef FOCUS_BENCH_HAVE_REPORT
  focus::SchemaCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) {
    focus::obs::BenchReport report = focus::obs::MakeBenchReport(
        static_cast<int>(focus::ThreadPool::Global().num_threads()));
    report.note = smoke ? "bench_kernels --smoke" : "bench_kernels";
    report.entries = std::move(reporter.entries);
    const focus::Status status =
        focus::obs::WriteBenchReport(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_kernels: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("bench report written to %s (%zu entries)\n",
                json_path.c_str(), report.entries.size());
  }
#else
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) {
    std::fprintf(stderr,
                 "bench_kernels: schema output unavailable pre-obs\n");
  }
#endif
  benchmark::Shutdown();
  return 0;
}
