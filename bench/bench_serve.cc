// Closed-loop load generator for the forecast serving engine (src/serve).
//
// Sweeps offered load (concurrent closed-loop clients) x admission
// batching (batch-1 vs micro-batched) x serving thread count, and
// reports per-config forecasts/sec plus p50/p95/p99 request latency from
// the engine's "serve/latency_us" histogram. Each client thread submits
// synchronously (Forecast = Submit + Wait), so offered load saturates at
// clients / latency — the standard closed-loop model.
//
// Three admission modes per load level:
//   batch1         — max_batch=1, window=0, plans off: every request is
//                    its own eager batch-1 forward ("N batch-1 forwards",
//                    the pre-serving baseline; eager forwards serialize
//                    on the model, as any naive server's would).
//   batch1_planned — max_batch=1, window=0, plans on: per-request planned
//                    replay, no coalescing (isolates the plan win).
//   batched        — max_batch=8, window=200us, plans on: the engine
//                    proper — concurrent requests coalesce into one
//                    planned batch-N forward from prewarmed plans, staged
//                    through an arena lease.
// At saturation `batched` must deliver >= 2x the forecasts/sec of
// `batch1` at every serving thread count — results/BENCH_serve.json
// records the sweep.
//
// Output: the unified bench-result schema (obs/bench_report.h) via
// --focus-bench-json=<path> (or FOCUS_BENCH_JSON). ns_per_op is
// 1e9 / forecasts-per-second — the throughput axis scripts/bench_diff.py
// gates on; mean/p99 latency ride along as console output. --smoke runs
// a reduced sweep with short measurement windows for the perf leg of
// scripts/check.sh (baseline: results/BENCH_smoke_baseline.json).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/focus_model.h"
#include "obs/bench_report.h"
#include "obs/metrics_registry.h"
#include "parallel/thread_pool.h"
#include "serve/engine.h"
#include "tensor/tensor.h"
#include "utils/env.h"
#include "utils/rng.h"

namespace focus {
namespace {

constexpr int64_t kEntities = 8;
constexpr int64_t kLookback = 96;

core::FocusModel MakeServeModel() {
  core::FocusConfig cfg;
  cfg.lookback = kLookback;
  cfg.horizon = 24;
  cfg.num_entities = kEntities;
  cfg.patch_len = 16;
  cfg.d_model = 64;
  cfg.readout_queries = 6;
  cfg.seed = 9;
  Rng rng(10);
  return core::FocusModel(cfg, Tensor::Randn({16, 16}, rng));
}

enum class Mode { kBatch1Eager, kBatch1Planned, kBatched };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kBatch1Eager: return "batch1";
    case Mode::kBatch1Planned: return "batch1_planned";
    case Mode::kBatched: return "batched";
  }
  return "?";
}

struct SweepPoint {
  int clients;        // concurrent closed-loop submitters (offered load)
  int serve_threads;  // engine workers
  Mode mode;
};

struct SweepResult {
  double forecasts_per_sec = 0.0;
  obs::MetricsRegistry::HistogramSummary latency;  // microseconds
  serve::EngineStats stats;
  double mean_batch = 0.0;
};

std::string PointName(const SweepPoint& p) {
  return "BM_ServeThroughput/clients:" + std::to_string(p.clients) +
         "/serve_threads:" + std::to_string(p.serve_threads) + "/" +
         ModeName(p.mode);
}

SweepResult RunPoint(core::FocusModel& model, const SweepPoint& point,
                     double warmup_s, double measure_s) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  serve::ServeOptions opts;
  opts.threads = point.serve_threads;
  opts.batch_window_us = point.mode == Mode::kBatched ? 200 : 0;
  opts.max_batch = point.mode == Mode::kBatched ? 8 : 1;
  opts.use_plans = point.mode != Mode::kBatch1Eager;
  serve::ForecastEngine engine(&model, kEntities, kLookback, opts);

  // Each client cycles through its own pre-generated windows so the
  // request path measures serving, not input synthesis.
  std::vector<std::vector<Tensor>> windows(
      static_cast<size_t>(point.clients));
  for (int c = 0; c < point.clients; ++c) {
    for (int i = 0; i < 4; ++i) {
      Rng rng(100 + static_cast<uint64_t>(c) * 10 + i);
      windows[static_cast<size_t>(c)].push_back(
          Tensor::Randn({kEntities, kLookback}, rng));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(point.clients));
  for (int c = 0; c < point.clients; ++c) {
    clients.emplace_back([&, c] {
      const auto& mine = windows[static_cast<size_t>(c)];
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        (void)engine.Forecast(mine[i % mine.size()]);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
  registry.ResetHistogram(serve::ForecastEngine::kLatencyMetric);
  registry.ResetHistogram(serve::ForecastEngine::kBatchSizeMetric);
  const serve::EngineStats warm = engine.stats();
  const int64_t completed_before = completed.load();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(measure_s));
  const int64_t completed_after = completed.load();
  const auto t1 = std::chrono::steady_clock::now();

  SweepResult result;
  result.latency =
      registry.Summarize(serve::ForecastEngine::kLatencyMetric);
  stop.store(true);
  for (std::thread& t : clients) t.join();
  engine.Shutdown();

  const double elapsed =
      std::chrono::duration<double>(t1 - t0).count();
  result.forecasts_per_sec =
      static_cast<double>(completed_after - completed_before) / elapsed;
  result.stats = engine.stats();
  const int64_t measured_batches = result.stats.batches - warm.batches;
  if (measured_batches > 0) {
    result.mean_batch =
        static_cast<double>(result.stats.requests - warm.requests) /
        static_cast<double>(measured_batches);
  }
  return result;
}

int Run(bool smoke, const std::string& json_path) {
  ThreadPool::Global().Resize(1);  // kernel pool out of the way: the sweep
                                   // axis is serving concurrency
  core::FocusModel model = MakeServeModel();
  model.SetTraining(false);

  std::vector<SweepPoint> sweep;
  if (smoke) {
    // One saturated load level, baseline + batched: enough signal for
    // the ns/op regression gate without a quiet-machine-length run.
    sweep = {{4, 1, Mode::kBatch1Eager}, {4, 1, Mode::kBatched}};
  } else {
    for (int serve_threads : {1, 2}) {
      for (int clients : {1, 4, 16}) {
        for (Mode mode : {Mode::kBatch1Eager, Mode::kBatch1Planned,
                          Mode::kBatched}) {
          sweep.push_back({clients, serve_threads, mode});
        }
      }
    }
  }
  const double warmup_s = smoke ? 0.05 : 0.15;
  const double measure_s = smoke ? 0.2 : 0.6;

  obs::BenchReport report = obs::MakeBenchReport(
      static_cast<int>(ThreadPool::Global().num_threads()));
  report.note = smoke ? "bench_serve --smoke" : "bench_serve";
  std::printf(
      "%-48s %14s %10s %10s %10s %8s\n", "config", "forecasts/s", "p50_us",
      "p95_us", "p99_us", "batch");
  for (const SweepPoint& point : sweep) {
    const SweepResult r = RunPoint(model, point, warmup_s, measure_s);
    std::printf("%-48s %14.1f %10.1f %10.1f %10.1f %8.2f\n",
                PointName(point).c_str(), r.forecasts_per_sec,
                r.latency.p50, r.latency.p95, r.latency.p99, r.mean_batch);
    obs::BenchEntry entry;
    entry.name = PointName(point);
    entry.ns_per_op =
        r.forecasts_per_sec > 0.0 ? 1e9 / r.forecasts_per_sec : 0.0;
    entry.items_per_second = r.forecasts_per_sec;
    entry.threads = static_cast<double>(point.serve_threads);
    entry.label = ModeName(point.mode);
    report.entries.push_back(std::move(entry));
  }

  if (!json_path.empty()) {
    const Status status = obs::WriteBenchReport(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_serve: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("bench report written to %s (%zu entries)\n",
                json_path.c_str(), report.entries.size());
  }
  return 0;
}

}  // namespace
}  // namespace focus

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = focus::GetEnvOr("FOCUS_BENCH_JSON", "");
  const std::string kJsonFlag = "--focus-bench-json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind(kJsonFlag, 0) == 0) {
      json_path = arg.substr(kJsonFlag.size());
    } else {
      std::fprintf(stderr,
                   "bench_serve: unknown argument '%s' "
                   "(want --smoke / --focus-bench-json=<path>)\n",
                   arg.c_str());
      return 2;
    }
  }
  return focus::Run(smoke, json_path);
}
