// Figs. 12 & 13 — Case study on a sampled PEMS08-like sequence.
//
// Fig. 12: input window and FOCUS's forecast vs ground truth (ASCII chart).
// Fig. 13: the long-range dependency matrix extracted by multiplying the
// temporal-branch assignment matrix A with the online attention matrix
// alpha — the paper's example links the morning rise to the night decline.
#include <cstdio>
#include <vector>

#include "core/focus_model.h"
#include "harness/ascii_plot.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  const int64_t horizon = 96;
  auto data = harness::PrepareDataset("PEMS08", profile);

  auto model_ptr = harness::BuildModel("FOCUS", data, profile.lookback,
                                       horizon, profile);
  auto outcome = harness::TrainAndEvaluate(*model_ptr, data, profile.lookback,
                                           horizon, profile);
  std::fprintf(stderr, "[fig12] trained FOCUS: test mse=%.4f\n",
               outcome.test.mse);
  auto* model = static_cast<core::FocusModel*>(model_ptr.get());

  // A test window (mid test region, entity 0).
  auto test = harness::TestWindows(data, profile.lookback, horizon);
  auto window = test.GetWindow(test.NumWindows() / 2);
  model->SetTraining(false);
  NoGradGuard no_grad;
  Tensor pred = model->Forward(window.x);

  std::printf("=== Fig. 12: case-study input and forecast (entity 0) ===\n");
  const int64_t l_in = profile.lookback;
  std::vector<double> input_v, truth_v, pred_v;
  for (int64_t i = 0; i < l_in; ++i) {
    input_v.push_back(window.x.At({0, 0, i}));
  }
  std::printf("--- (a) input sequence ---\n%s",
              harness::AsciiChart({input_v}, {"input"}).c_str());
  for (int64_t i = 0; i < horizon; ++i) {
    truth_v.push_back(window.y.At({0, 0, i}));
    pred_v.push_back(pred.At({0, 0, i}));
  }
  std::printf("--- (b) forecast vs ground truth ---\n%s",
              harness::AsciiChart({truth_v, pred_v},
                                  {"ground truth", "FOCUS"})
                  .c_str());
  metrics::ForecastMetrics window_metrics =
      metrics::ComputeMetrics(pred, window.y);
  std::printf("window MSE %.4f MAE %.4f (test-set MSE %.4f)\n",
              window_metrics.mse, window_metrics.mae, outcome.test.mse);

  // Fig. 13: long-range dependency D = A x alpha of the temporal branch
  // (last forward; first sequence in the batch = entity 0).
  const core::ProtoAttn* attn = model->temporal_proto_attn();
  const Tensor& assignment = attn->last_assignment();  // (B', l, k)
  const Tensor& attention = attn->last_attention();    // (B', k, l)
  const int64_t l = assignment.size(1), k = assignment.size(2);
  std::vector<double> dependency(static_cast<size_t>(l * l), 0.0);
  for (int64_t i = 0; i < l; ++i) {
    for (int64_t j = 0; j < l; ++j) {
      double acc = 0;
      for (int64_t c = 0; c < k; ++c) {
        acc += assignment.At({0, i, c}) * attention.At({0, c, j});
      }
      dependency[static_cast<size_t>(i * l + j)] = acc;
    }
  }
  std::printf(
      "=== Fig. 13: long-range dependency matrix (A x alpha, %ld x %ld "
      "segments) ===\n",
      static_cast<long>(l), static_cast<long>(l));
  std::printf("%s", harness::AsciiHeatmap(dependency, static_cast<int>(l),
                                          static_cast<int>(l))
                        .c_str());
  std::printf("rows = query segments, cols = attended segments; darker = "
              "stronger dependency.\n");
  return 0;
}
