// Table II — Statistics of multivariate time series datasets.
//
// Prints the paper's dataset table next to this reproduction's synthetic
// stand-ins (scaled per profile; see DESIGN.md Sec. 1).
#include <cstdio>

#include "data/dataset.h"
#include "data/generator.h"
#include "data/registry.h"
#include "harness/experiments.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  const auto profile = harness::MakeProfile();

  std::printf("=== Table II: dataset statistics (paper vs this repro) ===\n");
  Table table({"Dataset", "Domain", "Frequency", "Paper Len", "Ours Len",
               "Paper Dim", "Ours Dim", "Split"});
  for (const auto& name : data::PaperDatasetNames()) {
    const auto stats = data::PaperStats(name);
    const auto cfg = data::PaperDatasetConfig(name, profile.profile);
    const auto ds = data::Generate(cfg);
    table.AddRow({name, ds.domain, ds.frequency,
                  std::to_string(stats.paper_length),
                  std::to_string(ds.num_steps()),
                  std::to_string(stats.paper_dim),
                  std::to_string(ds.num_entities()), stats.split});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "Synthetic stand-ins keep each dataset's frequency, split and "
      "periodic/cluster structure at reduced scale (FOCUS_PROFILE=%s).\n",
      profile.profile == data::Profile::kFull ? "full" : "quick");
  return 0;
}
