// Fig. 8 — Effect of the clustering objective: prototypes optimized with
// reconstruction error only ("Rec Only") vs reconstruction + correlation
// error ("Rec+Corr"), evaluated by downstream forecasting accuracy on
// PEMS08- and Electricity-shaped data.
//
// Reproduction targets: Rec+Corr improves MSE and MAE, and the extra
// offline clustering time is negligible.
#include <cstdio>

#include "core/focus_model.h"
#include "core/offline.h"
#include "harness/experiments.h"
#include "utils/stopwatch.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  const int64_t horizon = 96;

  std::printf("=== Fig. 8: Rec Only vs Rec+Corr clustering objective ===\n");
  Table table({"Dataset", "Objective", "MSE", "MAE", "ClusterSec"});

  for (const std::string dataset : {"PEMS08", "Electricity"}) {
    auto data = harness::PrepareDataset(dataset, profile);
    const int64_t patch = harness::FocusPatchLenFor(dataset, profile);
    for (bool use_corr : {false, true}) {
      // Time the offline phase itself.
      Stopwatch timer;
      Tensor train_region = Slice(data.normalized, 1, 0,
                                  data.splits.train_end);
      core::OfflineConfig off;
      off.patch_len = patch;
      off.num_prototypes = profile.num_prototypes;
      off.alpha = profile.alpha;
      off.use_correlation = use_corr;
      off.seed = 1;
      auto clustering = core::RunOfflineClustering(train_region, off);
      const double cluster_sec = timer.ElapsedSeconds();

      core::FocusConfig cfg;
      cfg.lookback = profile.lookback;
      cfg.horizon = horizon;
      cfg.num_entities = data.dataset.num_entities();
      cfg.patch_len = patch;
      cfg.d_model = profile.d_model;
      cfg.readout_queries = harness::ReadoutQueriesFor(horizon);
      cfg.alpha = use_corr ? profile.alpha : 0.0f;
      cfg.seed = 1;
      core::FocusModel model(cfg, clustering.prototypes);
      auto outcome = harness::TrainAndEvaluate(model, data, profile.lookback,
                                               horizon, profile);
      table.AddRow({dataset, use_corr ? "Rec+Corr" : "Rec Only",
                    Table::Num(outcome.test.mse), Table::Num(outcome.test.mae),
                    Table::Num(cluster_sec, 3)});
      std::fprintf(stderr, "[fig8] %s %s mse=%.4f cluster=%.3fs\n",
                   dataset.c_str(), use_corr ? "Rec+Corr" : "RecOnly",
                   outcome.test.mse, cluster_sec);
    }
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
