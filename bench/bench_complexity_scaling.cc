// Complexity validation (paper Secs. VI-B and VII-B): measured forward
// FLOPs of FOCUS must scale linearly in both the input length L and the
// entity count N, while the FOCUS-Attn ablation picks up a quadratic term
// in the token count. We fit log-log slopes over measured FLOP counts.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/focus_model.h"
#include "harness/experiments.h"
#include "metrics/metrics.h"
#include "utils/table.h"

namespace {

using namespace focus;

// Least-squares slope of log(flops) vs log(x): ~1 linear, ~2 quadratic.
double LogLogSlope(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  const size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double lx = std::log(xs[i]), ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

int64_t FocusFlops(core::FocusVariant variant, int64_t length,
                   int64_t entities, int64_t patch) {
  Rng rng(1);
  Tensor protos = Tensor::Randn({16, patch}, rng);
  core::FocusConfig cfg;
  cfg.lookback = length;
  cfg.horizon = 96;
  cfg.num_entities = entities;
  cfg.patch_len = patch;
  cfg.d_model = 32;
  cfg.readout_queries = 6;
  cfg.variant = variant;
  cfg.seed = 2;
  core::FocusModel model(cfg, protos);
  Tensor sample = Tensor::Randn({1, entities, length}, rng);
  return metrics::ProbeEfficiency(model, sample).flops;
}

}  // namespace

int main() {
  std::printf("=== Complexity scaling: measured FLOPs vs L and N ===\n");

  {
    Table t({"L", "FOCUS FLOPs(M)", "FOCUS-Attn FLOPs(M)"});
    std::vector<double> ls, focus_f, attn_f;
    for (int64_t length : {128, 256, 512, 1024, 2048}) {
      const double f_focus = static_cast<double>(
          FocusFlops(core::FocusVariant::kFull, length, 8, 16));
      const double f_attn = static_cast<double>(
          FocusFlops(core::FocusVariant::kAttn, length, 8, 16));
      ls.push_back(static_cast<double>(length));
      focus_f.push_back(f_focus);
      attn_f.push_back(f_attn);
      t.AddRow({std::to_string(length), Table::Num(f_focus / 1e6, 2),
                Table::Num(f_attn / 1e6, 2)});
    }
    std::printf("%s", t.ToAscii().c_str());
    std::printf("log-log slope in L:  FOCUS %.2f (linear target 1.0), "
                "FOCUS-Attn %.2f (super-linear)\n\n",
                LogLogSlope(ls, focus_f), LogLogSlope(ls, attn_f));
  }

  {
    Table t({"N", "FOCUS FLOPs(M)", "FOCUS-Attn FLOPs(M)"});
    std::vector<double> ns, focus_f, attn_f;
    for (int64_t entities : {4, 8, 16, 32, 64}) {
      const double f_focus = static_cast<double>(
          FocusFlops(core::FocusVariant::kFull, 256, entities, 16));
      const double f_attn = static_cast<double>(
          FocusFlops(core::FocusVariant::kAttn, 256, entities, 16));
      ns.push_back(static_cast<double>(entities));
      focus_f.push_back(f_focus);
      attn_f.push_back(f_attn);
      t.AddRow({std::to_string(entities), Table::Num(f_focus / 1e6, 2),
                Table::Num(f_attn / 1e6, 2)});
    }
    std::printf("%s", t.ToAscii().c_str());
    std::printf("log-log slope in N:  FOCUS %.2f (linear target 1.0), "
                "FOCUS-Attn %.2f (super-linear)\n",
                LogLogSlope(ns, focus_f), LogLogSlope(ns, attn_f));
  }
  return 0;
}
