// Mixed-precision accuracy-budget gate + efficiency recording.
//
// Sweeps the Table III datasets with the FOCUS model: trains once in f32,
// then evaluates the SAME trained model under each inference precision
// (FOCUS_PRECISION ladder: f32 -> bf16 storage -> int8 prototype
// assignment) and records the MSE deltas against the f32 reference into
// the unified bench-result schema. Each (dataset, precision) pair has a
// hard committed MSE budget below; any violation prints loudly and exits
// nonzero, which is how ctest turns this binary into the accuracy gate
// (label "quant" — see tests/CMakeLists.txt and the precision leg of
// scripts/check.sh).
//
// Entry names:
//   quant_mse/<dataset>/<precision>  ns_per_op carries the MSE (these
//       names never appear in the perf baselines, so bench_diff.py never
//       misreads an accuracy number as a latency regression)
//   BM_QuantForecastPlanned/<lookback>/<precision>  steady-state planned
//       forward latency on the fig6 compact config; bytes_per_op is the
//       plan's measured per-replay operand traffic (PlanStats
//       bytes_per_run), which drops under bf16 storage
//   BM_QuantServe/<precision>  closed-loop saturated forecasts/sec on a
//       micro-batching engine serving at that precision (one engine per
//       tenant tier)
//
// --smoke: two datasets, capped train steps, short measure windows — the
// ctest entry. Full runs record results/BENCH_quant.json via
// --focus-bench-json=<path> (or FOCUS_BENCH_JSON).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/focus_model.h"
#include "core/planned_forecaster.h"
#include "harness/experiments.h"
#include "obs/bench_report.h"
#include "parallel/thread_pool.h"
#include "serve/engine.h"
#include "tensor/precision.h"
#include "utils/env.h"

namespace focus {
namespace {

// Hard per-model MSE budgets: the absolute increase over the f32 MSE a
// reduced-precision evaluation may show on the z-scored test windows.
// Committed from measured deltas with ~10x headroom (see
// results/BENCH_quant.json for the recorded runs); bf16 keeps ~8
// mantissa bits so its budget is tight, int8proto additionally requantizes
// the assignment argmin and may flip borderline tokens, so it gets the
// looser bound. A dataset missing from the table uses kDefaultBudget.
struct QuantBudget {
  const char* dataset;
  double bf16;       // max allowed (mse_bf16 - mse_f32)
  double int8proto;  // max allowed (mse_int8proto - mse_f32)
};
constexpr QuantBudget kBudgets[] = {
    {"PEMS04", 0.02, 0.05},      {"PEMS08", 0.02, 0.05},
    {"ETTh1", 0.02, 0.05},       {"ETTm1", 0.02, 0.05},
    {"Traffic", 0.02, 0.05},     {"Electricity", 0.02, 0.05},
    {"Weather", 0.02, 0.05},
};
constexpr QuantBudget kDefaultBudget = {"", 0.02, 0.05};

const QuantBudget& BudgetFor(const std::string& dataset) {
  for (const QuantBudget& b : kBudgets) {
    if (dataset == b.dataset) return b;
  }
  return kDefaultBudget;
}

constexpr Precision kSweep[] = {Precision::kF32, Precision::kBf16,
                                Precision::kInt8Proto};

// --- accuracy sweep ---------------------------------------------------------

int RunAccuracy(bool smoke, obs::BenchReport& report) {
  harness::ExperimentProfile profile = harness::MakeProfile();
  if (smoke && profile.train_steps > 40) profile.train_steps = 40;
  const int64_t horizon = 96;

  std::vector<std::string> datasets = data::PaperDatasetNames();
  if (smoke) datasets = {"ETTh1", "PEMS04"};

  int violations = 0;
  std::printf("=== quant accuracy gate (horizon=%ld, %s) ===\n",
              static_cast<long>(horizon), smoke ? "smoke" : "full");
  std::printf("%-12s %-10s %12s %12s %12s %6s\n", "dataset", "precision",
              "mse", "delta_f32", "budget", "ok");
  for (const std::string& dataset : datasets) {
    auto data = harness::PrepareDataset(dataset, profile);
    auto model = harness::BuildModel("FOCUS", data, profile.lookback,
                                     horizon, profile);
    // Train once in f32; the sweep below re-evaluates the same frozen
    // weights, so every delta is purely the inference-precision effect.
    (void)harness::TrainAndEvaluate(*model, data, profile.lookback, horizon,
                                    profile);
    const auto test = harness::TestWindows(data, profile.lookback, horizon);
    double mse_f32 = 0.0;
    for (Precision precision : kSweep) {
      PrecisionGuard guard(precision);
      const auto m = harness::EvaluateModel(*model, test, profile.eval_batch,
                                            profile.eval_stride);
      if (precision == Precision::kF32) mse_f32 = m.mse;
      const double delta = m.mse - mse_f32;
      const QuantBudget& budget = BudgetFor(dataset);
      const double allowed = precision == Precision::kBf16 ? budget.bf16
                             : precision == Precision::kInt8Proto
                                 ? budget.int8proto
                                 : 0.0;
      const bool ok = precision == Precision::kF32 || delta <= allowed;
      if (!ok) ++violations;
      std::printf("%-12s %-10s %12.6f %12.6f %12.6f %6s\n", dataset.c_str(),
                  PrecisionName(precision), m.mse, delta, allowed,
                  ok ? "yes" : "NO");
      obs::BenchEntry entry;
      entry.name = "quant_mse/" + dataset + "/" + PrecisionName(precision);
      entry.ns_per_op = m.mse;  // the gate axis carries the MSE here
      entry.label = PrecisionName(precision);
      report.entries.push_back(std::move(entry));
    }
  }
  return violations;
}

// --- latency probe (fig6 compact config) ------------------------------------

core::FocusModel MakeCompactModel(int64_t lookback) {
  core::FocusConfig cfg;
  cfg.lookback = lookback;
  cfg.horizon = 24;
  cfg.num_entities = 8;
  cfg.patch_len = 16;
  cfg.d_model = 64;
  cfg.readout_queries = 6;
  cfg.seed = 9;
  Rng rng(10);
  return core::FocusModel(cfg, Tensor::Randn({16, 16}, rng));
}

void RunLatency(bool smoke, obs::BenchReport& report) {
  std::vector<int64_t> lookbacks = smoke ? std::vector<int64_t>{96}
                                         : std::vector<int64_t>{96, 512};
  const int iters = smoke ? 50 : 400;
  std::printf("=== planned forward latency (fig6 compact config) ===\n");
  std::printf("%-40s %12s %14s\n", "config", "ns_per_op", "bytes_per_run");
  for (int64_t lookback : lookbacks) {
    for (Precision precision : kSweep) {
      PrecisionGuard guard(precision);
      core::FocusModel model = MakeCompactModel(lookback);
      model.SetTraining(false);
      Rng rng(11);
      Tensor x = Tensor::Randn({1, 8, lookback}, rng);
      core::PlannedForecaster forecaster(&model);
      (void)forecaster.Forward(x);  // capture + compile outside the timing
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) (void)forecaster.Forward(x);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
      const plan::ExecutionPlan* plan = forecaster.plan_for(x.shape());
      const double bytes =
          plan != nullptr ? static_cast<double>(plan->stats().bytes_per_run)
                          : 0.0;
      obs::BenchEntry entry;
      entry.name = "BM_QuantForecastPlanned/" + std::to_string(lookback) +
                   "/" + PrecisionName(precision);
      entry.ns_per_op = ns;
      entry.bytes_per_op = bytes;
      entry.threads =
          static_cast<double>(ThreadPool::Global().num_threads());
      entry.label = PrecisionName(precision);
      std::printf("%-40s %12.0f %14.0f\n", entry.name.c_str(), ns, bytes);
      report.entries.push_back(std::move(entry));
    }
  }
}

// --- serving saturation point -----------------------------------------------

void RunServe(bool smoke, obs::BenchReport& report) {
  const int64_t lookback = 96;
  const int64_t entities = 8;
  const int clients = 4;
  const double warmup_s = smoke ? 0.05 : 0.15;
  const double measure_s = smoke ? 0.2 : 0.6;
  core::FocusModel model = MakeCompactModel(lookback);
  model.SetTraining(false);
  std::printf("=== saturated serving throughput per precision tier ===\n");
  std::printf("%-32s %14s\n", "config", "forecasts/s");
  for (Precision precision : kSweep) {
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.batch_window_us = 200;
    opts.max_batch = 8;
    opts.precision = precision;
    serve::ForecastEngine engine(&model, entities, lookback, opts);

    std::vector<Tensor> windows;
    for (int i = 0; i < 4; ++i) {
      Rng rng(100 + i);
      windows.push_back(Tensor::Randn({entities, lookback}, rng));
    }
    std::atomic<bool> stop{false};
    std::atomic<int64_t> completed{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          (void)engine.Forecast(windows[i % windows.size()]);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
    const int64_t before = completed.load();
    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(measure_s));
    const int64_t after = completed.load();
    const auto t1 = std::chrono::steady_clock::now();
    stop.store(true);
    for (std::thread& t : threads) t.join();
    engine.Shutdown();

    const double per_sec = static_cast<double>(after - before) /
                           std::chrono::duration<double>(t1 - t0).count();
    obs::BenchEntry entry;
    entry.name = std::string("BM_QuantServe/") + PrecisionName(precision);
    entry.ns_per_op = per_sec > 0.0 ? 1e9 / per_sec : 0.0;
    entry.items_per_second = per_sec;
    entry.threads = 1.0;
    entry.label = PrecisionName(precision);
    std::printf("%-32s %14.1f\n", entry.name.c_str(), per_sec);
    report.entries.push_back(std::move(entry));
  }
}

int Run(bool smoke, const std::string& json_path) {
  obs::BenchReport report = obs::MakeBenchReport(
      static_cast<int>(ThreadPool::Global().num_threads()));
  report.note = smoke ? "bench_quant --smoke" : "bench_quant";

  const int violations = RunAccuracy(smoke, report);
  RunLatency(smoke, report);
  RunServe(smoke, report);

  if (!json_path.empty()) {
    const Status status = obs::WriteBenchReport(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_quant: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("bench report written to %s (%zu entries)\n",
                json_path.c_str(), report.entries.size());
  }
  if (violations > 0) {
    std::fprintf(stderr,
                 "bench_quant: %d accuracy-budget violation(s) — reduced "
                 "precision exceeded its committed MSE budget\n",
                 violations);
    return 1;
  }
  std::printf("accuracy gate passed: every precision within budget\n");
  return 0;
}

}  // namespace
}  // namespace focus

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = focus::GetEnvOr("FOCUS_BENCH_JSON", "");
  const std::string kJsonFlag = "--focus-bench-json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind(kJsonFlag, 0) == 0) {
      json_path = arg.substr(kJsonFlag.size());
    } else {
      std::fprintf(stderr,
                   "bench_quant: unknown argument '%s' "
                   "(want --smoke / --focus-bench-json=<path>)\n",
                   arg.c_str());
      return 2;
    }
  }
  return focus::Run(smoke, json_path);
}
