// Theorem 1 (Sec. VI-B) — empirical validation of the low-rank
// approximation argument behind ProtoAttn.
//
// Construct segment matrices P (l x p) with planted rank r, decompose them
// as P~ = A C where A is the one-hot nearest-prototype assignment and C the
// k cluster centroids of P's rows, and measure the relative error
// ||P~ w - P w|| / ||P w|| for random projection vectors w (standing in for
// columns of W_Q W_K^T).
//
// Reproduction targets: the error falls as k grows, is small once k reaches
// the planted rank r, and is insensitive to l (the token count) — the
// property that lets a fixed prototype budget serve arbitrarily long
// inputs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "cluster/segment_clustering.h"
#include "tensor/ops.h"
#include "utils/rng.h"
#include "utils/table.h"

namespace {

using namespace focus;

// Rows are noisy copies of r base patterns (scaled per row): rank ~ r, and
// rows concentrate around r directions — the paper's actual data
// assumption ("the number of fixed patterns ... is independent of the
// length of historical data", Sec. VI-B).
Tensor MakeLowRank(int64_t l, int64_t p, int64_t r, Rng& rng) {
  Tensor patterns = Tensor::Randn({r, p}, rng);
  Tensor out = Tensor::Empty({l, p});
  for (int64_t i = 0; i < l; ++i) {
    const int64_t j = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(r)));
    const float scale = static_cast<float>(rng.Uniform(0.5, 1.5));
    for (int64_t d = 0; d < p; ++d) {
      out.data()[i * p + d] =
          scale * patterns.data()[j * p + d] +
          0.05f * static_cast<float>(rng.Gaussian());
    }
  }
  return out;
}

double RelativeError(const Tensor& p_mat, int64_t k, Rng& rng) {
  const int64_t l = p_mat.size(0), p = p_mat.size(1);
  // Cluster the rows of P into k prototypes (pure L2: the theorem's
  // construction has no correlation term).
  cluster::ClusteringConfig cfg;
  cfg.segment_length = p;
  cfg.num_prototypes = k;
  cfg.alpha = 0.0f;
  cfg.use_correlation = false;
  cfg.max_iters = 20;
  cfg.refine_steps = 5;
  cfg.seed = rng.NextU64();
  auto result = cluster::SegmentClustering(cfg).Fit(p_mat);

  // P~ row i = prototype of row i's bucket.
  Tensor approx = Tensor::Empty({l, p});
  for (int64_t i = 0; i < l; ++i) {
    const int64_t j = result.assignments[static_cast<size_t>(i)];
    for (int64_t d = 0; d < p; ++d) {
      approx.data()[i * p + d] = result.prototypes.data()[j * p + d];
    }
  }

  // Median relative error over random projection vectors w.
  std::vector<double> errors;
  for (int trial = 0; trial < 8; ++trial) {
    Tensor w = Tensor::Randn({p, 1}, rng);
    Tensor exact = MatMul(p_mat, w);
    Tensor tilde = MatMul(approx, w);
    double num = 0, den = 0;
    for (int64_t i = 0; i < l; ++i) {
      const double d = tilde.data()[i] - exact.data()[i];
      num += d * d;
      den += exact.data()[i] * exact.data()[i];
    }
    errors.push_back(std::sqrt(num / (den + 1e-12)));
  }
  std::nth_element(errors.begin(), errors.begin() + errors.size() / 2,
                   errors.end());
  return errors[errors.size() / 2];
}

}  // namespace

int main() {
  using namespace focus;
  Rng rng(17);
  const int64_t p = 16;

  std::printf("=== Theorem 1: relative error of the A*C decomposition ===\n");
  {
    std::printf("--- error vs k (l=256 rows, planted rank r=4) ---\n");
    Table t({"k", "median rel. error"});
    Tensor mat = MakeLowRank(256, p, 4, rng);
    for (int64_t k : {1, 2, 4, 8, 16, 32}) {
      t.AddRow({std::to_string(k), Table::Num(RelativeError(mat, k, rng), 4)});
    }
    std::printf("%s", t.ToAscii().c_str());
  }
  {
    std::printf("--- error vs planted rank r (k=16, l=256) ---\n");
    Table t({"r", "median rel. error"});
    for (int64_t r : {1, 2, 4, 8, 16}) {
      Tensor mat = MakeLowRank(256, p, r, rng);
      t.AddRow({std::to_string(r), Table::Num(RelativeError(mat, 16, rng), 4)});
    }
    std::printf("%s", t.ToAscii().c_str());
  }
  {
    std::printf("--- error vs token count l (k=16, r=4): the fixed prototype"
                " budget serves longer inputs ---\n");
    Table t({"l", "median rel. error"});
    for (int64_t l : {64, 128, 256, 512, 1024}) {
      Tensor mat = MakeLowRank(l, p, 4, rng);
      t.AddRow({std::to_string(l), Table::Num(RelativeError(mat, 16, rng), 4)});
    }
    std::printf("%s", t.ToAscii().c_str());
  }
  return 0;
}
