// Fig. 10 — Forecasting accuracy under training-data outlier perturbation.
//
// A fraction of training points is replaced with outliers sampled beyond
// 3 sigma (paper Fig. 10a); FOCUS and PatchTST are retrained per ratio and
// evaluated on the clean test region.
//
// Reproduction target: FOCUS's accuracy stays flatter as the ratio grows —
// nearest-prototype assignment absorbs outliers — while PatchTST spikes
// earlier/harder.
#include <cstdio>

#include "data/generator.h"
#include "data/perturb.h"
#include "harness/experiments.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  const int64_t horizon = 96;
  const double ratios[] = {0.0, 0.02, 0.06, 0.10, 0.14};

  std::printf("=== Fig. 10: robustness to training outliers (PEMS08) ===\n");
  Table table({"Ratio%", "FOCUS MSE", "PatchTST MSE"});

  // Reference normalizer from the clean dataset: all ratios are evaluated
  // in the SAME normalized space, otherwise outlier-inflated train
  // statistics would shrink the normalized test errors and corruption
  // would spuriously look helpful.
  auto cfg = data::PaperDatasetConfig("PEMS08", profile.profile);
  auto clean_prepared = harness::PrepareDataset(data::Generate(cfg));

  for (double ratio : ratios) {
    auto dataset = data::Generate(cfg);
    const auto splits = data::ComputeSplits(dataset);
    if (ratio > 0.0) {
      Rng rng(99);
      data::InjectOutliers(&dataset, ratio, splits.train_end, rng);
    }
    harness::PreparedData data;
    data.dataset = std::move(dataset);
    data.splits = splits;
    data.normalizer = clean_prepared.normalizer;
    data.normalized = data.normalizer.Normalize(data.dataset.values);

    std::vector<double> mses;
    for (const std::string name : {"FOCUS", "PatchTST"}) {
      auto model = harness::BuildModel(name, data, profile.lookback, horizon,
                                       profile);
      auto outcome = harness::TrainAndEvaluate(*model, data, profile.lookback,
                                               horizon, profile);
      mses.push_back(outcome.test.mse);
      std::fprintf(stderr, "[fig10] ratio=%.0f%% %s mse=%.4f\n", ratio * 100,
                   name.c_str(), outcome.test.mse);
    }
    table.AddRow({Table::Num(ratio * 100, 0), Table::Num(mses[0]),
                  Table::Num(mses[1])});
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
