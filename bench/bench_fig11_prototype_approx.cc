// Fig. 11 — Series approximation via prototypes (k = 8).
//
// A sampled PEMS08-like day is reconstructed from its per-segment nearest
// prototypes, each re-scaled to the segment's local mean/std. The paper's
// point: a handful of prototypes plus local statistics captures the
// essential patterns (morning rise, spikes).
#include <cstdio>
#include <vector>

#include "cluster/segment_clustering.h"
#include "core/offline.h"
#include "harness/ascii_plot.h"
#include "harness/experiments.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  auto data = harness::PrepareDataset("PEMS08", profile);

  const int64_t p = 16;
  const int64_t k = 8;  // paper Fig. 11 uses k = 8
  Tensor train_region = Slice(data.normalized, 1, 0, data.splits.train_end);
  core::OfflineConfig off;
  off.patch_len = p;
  off.num_prototypes = k;
  off.alpha = profile.alpha;
  off.seed = 1;
  auto clustering = core::RunOfflineClustering(train_region, off);

  // One day of entity 0 from the test region.
  const int64_t day = 96;
  const int64_t start = data.splits.val_end;
  Tensor series = Slice(Slice(data.normalized, 0, 0, 1), 1, start,
                        start + 2 * day)
                      .Reshape({2 * day});
  Tensor approx = cluster::ApproximateSeries(series, clustering.prototypes,
                                             profile.alpha);

  // Errors vs a per-segment-constant-mean baseline.
  double err = 0, base_err = 0;
  for (int64_t i = 0; i < approx.numel(); ++i) {
    const double truth = series.data()[i];
    err += (approx.data()[i] - truth) * (approx.data()[i] - truth);
    const int64_t seg = i / p;
    double mean = 0;
    for (int64_t d = 0; d < p; ++d) mean += series.data()[seg * p + d];
    mean /= p;
    base_err += (mean - truth) * (mean - truth);
  }
  err /= approx.numel();
  base_err /= approx.numel();

  std::printf("=== Fig. 11: series approximation with k=8 prototypes ===\n");
  std::vector<double> truth_v(series.data(), series.data() + approx.numel());
  std::vector<double> approx_v(approx.data(), approx.data() + approx.numel());
  std::printf("%s", harness::AsciiChart({truth_v, approx_v},
                                        {"original", "prototype approx"})
                        .c_str());
  Table t({"Reconstruction", "MSE"});
  t.AddRow({"k=8 prototypes + local mean/std", Table::Num(err)});
  t.AddRow({"per-segment constant mean", Table::Num(base_err)});
  std::printf("%s", t.ToAscii().c_str());
  std::printf("Prototype reconstruction improves on the constant baseline by "
              "%.1fx.\n", base_err / err);

  // Print the learned prototypes themselves.
  std::printf("--- learned prototypes (shape space) ---\n");
  for (int64_t j = 0; j < k; ++j) {
    std::vector<double> proto(clustering.prototypes.data() + j * p,
                              clustering.prototypes.data() + (j + 1) * p);
    std::printf("prototype %ld:", static_cast<long>(j));
    for (double v : proto) std::printf(" %+.2f", v);
    std::printf("\n");
  }
  return 0;
}
