// Table III — Comparison of long-range forecasting accuracy with baselines.
//
// Trains all 8 models on every dataset x horizon {96, 336} cell and prints
// MSE / MAE per cell with the winner starred, plus a top-1 summary. The
// paper reports FOCUS best on 26 / 28 settings; the reproduction target is
// the *shape*: FOCUS top-1 or near-tie everywhere, with clear wins on the
// PEMS traffic datasets (see EXPERIMENTS.md).
//
// Env knobs: FOCUS_PROFILE=quick|full, FOCUS_TRAIN_STEPS=<n>,
// FOCUS_TABLE3_DATASETS=<comma list> to restrict datasets.
#include <cstdio>
#include <map>
#include <sstream>

#include "harness/experiments.h"
#include "utils/env.h"
#include "utils/stopwatch.h"
#include "utils/table.h"

int main() {
  using namespace focus;
  const auto profile = harness::MakeProfile();
  const std::vector<int64_t> horizons = {96, 336};

  std::vector<std::string> datasets = data::PaperDatasetNames();
  const std::string filter = GetEnvOr("FOCUS_TABLE3_DATASETS", "");
  if (!filter.empty()) {
    datasets.clear();
    std::stringstream ss(filter);
    std::string token;
    while (std::getline(ss, token, ',')) datasets.push_back(token);
  }

  std::printf("=== Table III: long-range forecasting accuracy ===\n");
  std::printf("profile=%s lookback=%ld steps=%ld (winner per cell marked *)\n",
              profile.profile == data::Profile::kFull ? "full" : "quick",
              static_cast<long>(profile.lookback),
              static_cast<long>(profile.train_steps));

  Table table({"Dataset", "Hz", "Model", "MSE", "MAE", "TrainSec"});
  std::map<std::string, int> top1_mse, top1_mae;
  Stopwatch total;

  for (const auto& dataset_name : datasets) {
    auto data = harness::PrepareDataset(dataset_name, profile);
    for (int64_t horizon : horizons) {
      struct Cell {
        std::string model;
        double mse, mae, secs;
      };
      std::vector<Cell> cells;
      for (const auto& model_name : harness::ModelZooNames()) {
        auto model = harness::BuildModel(model_name, data, profile.lookback,
                                         horizon, profile);
        auto outcome = harness::TrainAndEvaluate(*model, data,
                                                 profile.lookback, horizon,
                                                 profile);
        cells.push_back({model_name, outcome.test.mse, outcome.test.mae,
                         outcome.train.seconds});
        std::fprintf(stderr, "[table3] %s h=%ld %s mse=%.4f (%.1fs)\n",
                     dataset_name.c_str(), static_cast<long>(horizon),
                     model_name.c_str(), outcome.test.mse,
                     outcome.train.seconds);
      }
      size_t best_mse = 0, best_mae = 0;
      for (size_t i = 1; i < cells.size(); ++i) {
        if (cells[i].mse < cells[best_mse].mse) best_mse = i;
        if (cells[i].mae < cells[best_mae].mae) best_mae = i;
      }
      ++top1_mse[cells[best_mse].model];
      ++top1_mae[cells[best_mae].model];
      for (size_t i = 0; i < cells.size(); ++i) {
        table.AddRow({dataset_name, std::to_string(horizon), cells[i].model,
                      Table::Num(cells[i].mse) + (i == best_mse ? " *" : ""),
                      Table::Num(cells[i].mae) + (i == best_mae ? " *" : ""),
                      Table::Num(cells[i].secs, 1)});
      }
    }
  }

  std::printf("%s", table.ToAscii().c_str());
  std::printf("Top-1 count (MSE):");
  for (const auto& [model, count] : top1_mse) {
    std::printf("  %s=%d", model.c_str(), count);
  }
  std::printf("\nTop-1 count (MAE):");
  for (const auto& [model, count] : top1_mae) {
    std::printf("  %s=%d", model.c_str(), count);
  }
  std::printf("\nTotal wall clock: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
