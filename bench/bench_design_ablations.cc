// Design-decision ablations (beyond the paper's Table IV) for the choices
// DESIGN.md Sec. 3 calls out:
//   1. positional/entity embeddings on the tokens (off = the literal
//      content-only reading of the paper),
//   2. instance normalization around the model,
//   3. shape-space (z-normalized) segments for the offline clustering,
//   4. extractor depth (paper: single layer; 2 = stacked extension).
// Run on PEMS08, horizon 96.
#include <cstdio>

#include "core/focus_model.h"
#include "core/offline.h"
#include "harness/experiments.h"
#include "utils/table.h"

namespace {

using namespace focus;

core::FocusConfig BaseConfig(const harness::PreparedData& data,
                             const harness::ExperimentProfile& profile,
                             int64_t patch) {
  core::FocusConfig cfg;
  cfg.lookback = profile.lookback;
  cfg.horizon = 96;
  cfg.num_entities = data.dataset.num_entities();
  cfg.patch_len = patch;
  cfg.d_model = profile.d_model;
  cfg.readout_queries = harness::ReadoutQueriesFor(96);
  cfg.alpha = profile.alpha;
  cfg.seed = 1;
  return cfg;
}

}  // namespace

int main() {
  using namespace focus;
  auto profile = harness::MakeProfile();
  auto data = harness::PrepareDataset("PEMS08", profile);
  const int64_t patch = harness::FocusPatchLenFor("PEMS08", profile);
  const int64_t k = harness::FocusPrototypesFor("PEMS08", profile);

  Tensor protos_shape =
      harness::FitPrototypes(data, patch, k, profile.alpha, true, 1);
  // Variant 3: cluster raw (non-normalized) segments instead.
  Tensor protos_raw;
  {
    Tensor train_region = Slice(data.normalized, 1, 0, data.splits.train_end);
    Tensor segments = cluster::ExtractSegments(train_region, patch,
                                               /*normalize=*/false);
    cluster::ClusteringConfig cc;
    cc.segment_length = patch;
    cc.num_prototypes = k;
    cc.alpha = profile.alpha;
    cc.seed = 1;
    protos_raw = cluster::SegmentClustering(cc).Fit(segments).prototypes;
  }

  std::printf("=== Design ablations (PEMS08, horizon 96) ===\n");
  Table table({"Variant", "MSE", "MAE", "Params(K)"});

  struct Case {
    const char* name;
    core::FocusConfig cfg;
    Tensor protos;
  };
  std::vector<Case> cases;
  {
    Case c{"FOCUS (as built)", BaseConfig(data, profile, patch), protos_shape};
    cases.push_back(c);
  }
  {
    Case c{"- positional embeddings", BaseConfig(data, profile, patch),
           protos_shape};
    c.cfg.positional_embedding = false;
    cases.push_back(c);
  }
  {
    Case c{"- instance norm", BaseConfig(data, profile, patch), protos_shape};
    c.cfg.instance_norm = false;
    cases.push_back(c);
  }
  {
    Case c{"- shape-space clustering", BaseConfig(data, profile, patch),
           protos_raw};
    cases.push_back(c);
  }
  {
    Case c{"+ second extractor layer", BaseConfig(data, profile, patch),
           protos_shape};
    c.cfg.num_layers = 2;
    cases.push_back(c);
  }

  for (auto& c : cases) {
    core::FocusModel model(c.cfg, c.protos);
    auto outcome = harness::TrainAndEvaluate(model, data, profile.lookback,
                                             96, profile);
    table.AddRow({c.name, Table::Num(outcome.test.mse),
                  Table::Num(outcome.test.mae),
                  Table::Num(model.NumParameters() / 1e3, 1)});
    std::fprintf(stderr, "[design] %s mse=%.4f\n", c.name, outcome.test.mse);
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
