// Module base class: parameter registry, recursive traversal, train/eval
// mode, and simple binary state serialization.
#ifndef FOCUS_NN_MODULE_H_
#define FOCUS_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace focus {
namespace nn {

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and registered submodules, in registration
  // order. The returned handles share state with the module.
  std::vector<Tensor> Parameters() const;
  // Dotted-path names, e.g. "encoder.wq.weight".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;
  int64_t NumParameters() const;

  void ZeroGrad();

  // Training mode toggles stochastic layers (Dropout).
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  // Returns the stored handle; parameters always require grad.
  Tensor& RegisterParameter(const std::string& name, Tensor value);
  void RegisterModule(const std::string& name, std::shared_ptr<Module> module);

  // Hook for subclasses that need to react to train/eval flips.
  virtual void OnSetTraining(bool /*training*/) {}

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

// A module computing a single-tensor function; composable via Sequential.
class UnaryModule : public Module {
 public:
  virtual Tensor Forward(const Tensor& x) = 0;
};

}  // namespace nn
}  // namespace focus

#endif  // FOCUS_NN_MODULE_H_
