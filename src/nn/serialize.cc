#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <map>

namespace focus {
namespace nn {

namespace {
constexpr char kMagic[8] = {'F', 'O', 'C', 'U', 'S', 'S', 'T', 'D'};
}  // namespace

Status SaveStateDict(const Module& module, const std::string& path) {
  const auto named = module.NamedParameters();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  bool ok = std::fwrite(kMagic, 1, 8, f) == 8;
  const int64_t count = static_cast<int64_t>(named.size());
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  for (const auto& [name, tensor] : named) {
    const int64_t name_len = static_cast<int64_t>(name.size());
    const int64_t numel = tensor.numel();
    ok = ok && std::fwrite(&name_len, sizeof(name_len), 1, f) == 1 &&
         std::fwrite(name.data(), 1, name.size(), f) == name.size() &&
         std::fwrite(&numel, sizeof(numel), 1, f) == 1 &&
         std::fwrite(tensor.data(), sizeof(float),
                     static_cast<size_t>(numel),
                     f) == static_cast<size_t>(numel);
  }
  std::fclose(f);
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadStateDict(Module& module, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);

  auto fail = [&](Status status) {
    std::fclose(f);
    return status;
  };

  char magic[8];
  if (std::fread(magic, 1, 8, f) != 8 || std::memcmp(magic, kMagic, 8) != 0) {
    return fail(Status::Corruption("bad state-dict magic in " + path));
  }
  int64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1 || count < 0 ||
      count > (int64_t{1} << 24)) {
    return fail(Status::Corruption("bad state-dict header in " + path));
  }

  std::map<std::string, std::vector<float>> entries;
  for (int64_t i = 0; i < count; ++i) {
    int64_t name_len = 0, numel = 0;
    if (std::fread(&name_len, sizeof(name_len), 1, f) != 1 || name_len <= 0 ||
        name_len > 4096) {
      return fail(Status::Corruption("bad entry name in " + path));
    }
    std::string name(static_cast<size_t>(name_len), '\0');
    if (std::fread(name.data(), 1, name.size(), f) != name.size() ||
        std::fread(&numel, sizeof(numel), 1, f) != 1 || numel < 0 ||
        numel > (int64_t{1} << 30)) {
      return fail(Status::Corruption("bad entry header in " + path));
    }
    std::vector<float> values(static_cast<size_t>(numel));
    if (std::fread(values.data(), sizeof(float), values.size(), f) !=
        values.size()) {
      return fail(Status::Corruption("truncated entry in " + path));
    }
    entries.emplace(std::move(name), std::move(values));
  }
  std::fclose(f);

  // Validate everything against the module before mutating anything.
  auto named = module.NamedParameters();
  for (const auto& [name, tensor] : named) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      return Status::InvalidArgument("state dict missing parameter " + name);
    }
    if (static_cast<int64_t>(it->second.size()) != tensor.numel()) {
      return Status::InvalidArgument("size mismatch for parameter " + name);
    }
  }
  for (auto& [name, tensor] : named) {
    const auto& values = entries.at(name);
    Tensor t = tensor;
    std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  }
  return Status::Ok();
}

std::vector<std::vector<float>> SnapshotParameters(const Module& module) {
  std::vector<std::vector<float>> snapshot;
  for (const Tensor& p : module.Parameters()) {
    snapshot.push_back(p.ToVector());
  }
  return snapshot;
}

void RestoreParameters(Module& module,
                       const std::vector<std::vector<float>>& snapshot) {
  auto params = module.Parameters();
  FOCUS_CHECK_EQ(params.size(), snapshot.size())
      << "snapshot does not match module";
  for (size_t i = 0; i < params.size(); ++i) {
    FOCUS_CHECK_EQ(params[i].numel(),
                   static_cast<int64_t>(snapshot[i].size()));
    std::memcpy(params[i].data(), snapshot[i].data(),
                snapshot[i].size() * sizeof(float));
  }
}

}  // namespace nn
}  // namespace focus
