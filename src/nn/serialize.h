// Module checkpointing: binary state-dict persistence (name -> tensor) and
// cheap in-memory snapshots for early stopping / best-checkpoint restore.
#ifndef FOCUS_NN_SERIALIZE_H_
#define FOCUS_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "utils/status.h"

namespace focus {
namespace nn {

// Writes all named parameters to `path`. Format: magic "FOCUSSTD",
// int64 count, then per entry (int64 name_len, bytes, int64 numel, floats).
Status SaveStateDict(const Module& module, const std::string& path);

// Loads parameters by name into an architecturally identical module.
// Fails with InvalidArgument on missing names or shape mismatches and with
// Corruption on malformed files; the module is only mutated on success.
Status LoadStateDict(Module& module, const std::string& path);

// In-memory parameter snapshot (values only, registration order).
std::vector<std::vector<float>> SnapshotParameters(const Module& module);

// Restores a snapshot taken from the same module.
void RestoreParameters(Module& module,
                       const std::vector<std::vector<float>>& snapshot);

}  // namespace nn
}  // namespace focus

#endif  // FOCUS_NN_SERIALIZE_H_
