// Multi-head self-attention and a standard post-LN transformer encoder
// layer. Used by the PatchTST / Crossformer baselines and by the paper's
// FOCUS-Attn ablation variant (Table IV).
#ifndef FOCUS_NN_ATTENTION_H_
#define FOCUS_NN_ATTENTION_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace focus {
namespace nn {

// Classic O(T^2) scaled-dot-product multi-head self-attention over inputs
// of shape (B, T, dim).
class MultiheadSelfAttention : public UnaryModule {
 public:
  MultiheadSelfAttention(int64_t dim, int64_t num_heads, Rng& rng);

  Tensor Forward(const Tensor& x) override;

  // Cross attention: queries from `q` (B, Tq, dim), keys/values from `kv`
  // (B, Tk, dim). Forward(x) == CrossForward(x, x).
  Tensor CrossForward(const Tensor& q, const Tensor& kv);

 private:
  // (B, T, dim) -> (B*heads, T, head_dim)
  Tensor SplitHeads(const Tensor& x) const;
  // (B*heads, T, head_dim) -> (B, T, dim)
  Tensor MergeHeads(const Tensor& x, int64_t batch) const;

  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::shared_ptr<Linear> wq_, wk_, wv_, wo_;
};

// Post-LN encoder block: x = LN(x + MSA(x)); x = LN(x + FFN(x)).
class TransformerEncoderLayer : public UnaryModule {
 public:
  TransformerEncoderLayer(int64_t dim, int64_t num_heads, int64_t ffn_dim,
                          Rng& rng, float dropout = 0.0f);

  Tensor Forward(const Tensor& x) override;

 private:
  std::shared_ptr<MultiheadSelfAttention> attn_;
  std::shared_ptr<FeedForward> ffn_;
  std::shared_ptr<LayerNorm> norm1_, norm2_;
  std::shared_ptr<Dropout> dropout_;  // null when dropout == 0
};

}  // namespace nn
}  // namespace focus

#endif  // FOCUS_NN_ATTENTION_H_
