#include "nn/layers.h"

#include <cmath>

namespace focus {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  FOCUS_CHECK_GT(in_features, 0);
  FOCUS_CHECK_GT(out_features, 0);
  // Kaiming-uniform fan-in init, matching the PyTorch default for Linear.
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = RegisterParameter(
      "weight",
      Tensor::RandUniform({in_features, out_features}, rng, -bound, bound));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", Tensor::RandUniform({out_features}, rng, -bound, bound));
  }
}

Tensor Linear::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.size(-1), in_features_)
      << "Linear expected last dim " << in_features_ << ", got "
      << ShapeToString(x.shape());
  Tensor out;
  if (x.dim() <= 3) {
    out = MatMul(x, weight_);
  } else {
    // Flatten leading dims for matmul, then restore.
    Shape orig = x.shape();
    Tensor flat = Reshape(x, {-1, in_features_});
    out = MatMul(flat, weight_);
    Shape out_shape = orig;
    out_shape.back() = out_features_;
    out = Reshape(out, out_shape);
  }
  if (bias_.defined()) out = Add(out, bias_);
  return out;
}

LayerNorm::LayerNorm(int64_t normalized_dim, float eps) : eps_(eps) {
  FOCUS_CHECK_GT(normalized_dim, 0);
  gamma_ = RegisterParameter("gamma", Tensor::Ones({normalized_dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({normalized_dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) {
  return LayerNormLastDim(x, gamma_, beta_, eps_);
}

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.Fork()) {
  FOCUS_CHECK(p >= 0.0f && p < 1.0f) << "dropout p must be in [0, 1)";
}

Tensor Dropout::Forward(const Tensor& x) {
  // An inference pass never drops units, whatever the training flag
  // says — and a plan capture must not bake one random mask into the
  // compiled program as a constant.
  if (InferenceMode::IsEnabled()) return x;
  if (!training() || p_ == 0.0f) return x;
  // Inverted dropout mask; the mask is a constant wrt autograd.
  Tensor mask = Tensor::Empty(x.shape());
  const float scale = 1.0f / (1.0f - p_);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng_.Uniform() < p_ ? 0.0f : scale;
  }
  return Mul(x, mask);
}

Sequential& Sequential::Append(std::shared_ptr<UnaryModule> layer) {
  RegisterModule("layer" + std::to_string(layers_.size()), layer);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::Forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

FeedForward::FeedForward(int64_t dim, int64_t hidden_dim, Rng& rng,
                         float dropout) {
  fc1_ = std::make_shared<Linear>(dim, hidden_dim, rng);
  fc2_ = std::make_shared<Linear>(hidden_dim, dim, rng);
  RegisterModule("fc1", fc1_);
  RegisterModule("fc2", fc2_);
  if (dropout > 0.0f) {
    dropout_ = std::make_shared<Dropout>(dropout, rng);
    RegisterModule("dropout", dropout_);
  }
}

Tensor FeedForward::Forward(const Tensor& x) {
  Tensor h = Gelu(fc1_->Forward(x));
  if (dropout_) h = dropout_->Forward(h);
  return fc2_->Forward(h);
}

}  // namespace nn
}  // namespace focus
