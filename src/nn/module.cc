#include "nn/module.h"

#include "utils/check.h"

namespace focus {
namespace nn {

Tensor& Module::RegisterParameter(const std::string& name, Tensor value) {
  FOCUS_CHECK(value.defined()) << "registering undefined parameter " << name;
  value.SetRequiresGrad(true);
  params_.emplace_back(name, std::move(value));
  return params_.back().second;
}

void Module::RegisterModule(const std::string& name,
                            std::shared_ptr<Module> module) {
  FOCUS_CHECK(module != nullptr) << "registering null module " << name;
  children_.emplace_back(name, std::move(module));
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, tensor] : NamedParameters()) out.push_back(tensor);
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const Tensor& p : Parameters()) n += p.numel();
  return n;
}

void Module::ZeroGrad() {
  for (Tensor& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  OnSetTraining(training);
  for (auto& [name, child] : children_) child->SetTraining(training);
}

}  // namespace nn
}  // namespace focus
