// Core NN layers: Linear, LayerNorm, Dropout, activations, FeedForward,
// Sequential. All layers accept inputs whose last dimension is the feature
// dimension; leading dimensions are treated as batch.
#ifndef FOCUS_NN_LAYERS_H_
#define FOCUS_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "utils/rng.h"

namespace focus {
namespace nn {

// y = x @ W + b, W: (in, out), b: (out). Kaiming-uniform init.
class Linear : public UnaryModule {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& x) override;

  const Tensor& weight() const { return weight_; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;
  Tensor bias_;  // undefined when bias == false
};

// LayerNorm over the last dimension with learnable affine parameters.
class LayerNorm : public UnaryModule {
 public:
  explicit LayerNorm(int64_t normalized_dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) override;

 private:
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

// Inverted dropout: active only in training mode.
class Dropout : public UnaryModule {
 public:
  Dropout(float p, Rng& rng);

  Tensor Forward(const Tensor& x) override;

 private:
  float p_;
  Rng rng_;
};

// Stateless activation wrappers for use in Sequential.
class ReluLayer : public UnaryModule {
 public:
  Tensor Forward(const Tensor& x) override { return Relu(x); }
};

class GeluLayer : public UnaryModule {
 public:
  Tensor Forward(const Tensor& x) override { return Gelu(x); }
};

class TanhLayer : public UnaryModule {
 public:
  Tensor Forward(const Tensor& x) override { return Tanh(x); }
};

class SigmoidLayer : public UnaryModule {
 public:
  Tensor Forward(const Tensor& x) override { return Sigmoid(x); }
};

// Applies registered layers in order.
class Sequential : public UnaryModule {
 public:
  Sequential() = default;

  // Returns *this for chaining.
  Sequential& Append(std::shared_ptr<UnaryModule> layer);

  Tensor Forward(const Tensor& x) override;

  size_t size() const { return layers_.size(); }

 private:
  std::vector<std::shared_ptr<UnaryModule>> layers_;
};

// Position-wise feed-forward: Linear -> GELU -> Linear (+ optional dropout).
class FeedForward : public UnaryModule {
 public:
  FeedForward(int64_t dim, int64_t hidden_dim, Rng& rng, float dropout = 0.0f);

  Tensor Forward(const Tensor& x) override;

 private:
  std::shared_ptr<Linear> fc1_;
  std::shared_ptr<Linear> fc2_;
  std::shared_ptr<Dropout> dropout_;  // null when dropout == 0
};

}  // namespace nn
}  // namespace focus

#endif  // FOCUS_NN_LAYERS_H_
