#include "nn/attention.h"

#include <cmath>

namespace focus {
namespace nn {

MultiheadSelfAttention::MultiheadSelfAttention(int64_t dim, int64_t num_heads,
                                               Rng& rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  FOCUS_CHECK_EQ(dim % num_heads, 0) << "dim must divide into heads";
  wq_ = std::make_shared<Linear>(dim, dim, rng);
  wk_ = std::make_shared<Linear>(dim, dim, rng);
  wv_ = std::make_shared<Linear>(dim, dim, rng);
  wo_ = std::make_shared<Linear>(dim, dim, rng);
  RegisterModule("wq", wq_);
  RegisterModule("wk", wk_);
  RegisterModule("wv", wv_);
  RegisterModule("wo", wo_);
}

Tensor MultiheadSelfAttention::SplitHeads(const Tensor& x) const {
  // (B, T, dim) -> (B, T, H, hd) -> (B, H, T, hd) -> (B*H, T, hd)
  const int64_t b = x.size(0), t = x.size(1);
  Tensor h = Reshape(x, {b, t, num_heads_, head_dim_});
  h = Permute(h, {0, 2, 1, 3});
  return Reshape(h, {b * num_heads_, t, head_dim_});
}

Tensor MultiheadSelfAttention::MergeHeads(const Tensor& x,
                                          int64_t batch) const {
  const int64_t t = x.size(1);
  Tensor h = Reshape(x, {batch, num_heads_, t, head_dim_});
  h = Permute(h, {0, 2, 1, 3});
  return Reshape(h, {batch, t, dim_});
}

Tensor MultiheadSelfAttention::Forward(const Tensor& x) {
  return CrossForward(x, x);
}

Tensor MultiheadSelfAttention::CrossForward(const Tensor& q_in,
                                            const Tensor& kv_in) {
  FOCUS_CHECK_EQ(q_in.dim(), 3) << "attention expects (B, T, dim)";
  FOCUS_CHECK_EQ(kv_in.dim(), 3);
  FOCUS_CHECK_EQ(q_in.size(-1), dim_);
  FOCUS_CHECK_EQ(kv_in.size(-1), dim_);
  const int64_t b = q_in.size(0);
  FOCUS_CHECK_EQ(kv_in.size(0), b);

  Tensor q = SplitHeads(wq_->Forward(q_in));   // (B*H, Tq, hd)
  Tensor k = SplitHeads(wk_->Forward(kv_in));  // (B*H, Tk, hd)
  Tensor v = SplitHeads(wv_->Forward(kv_in));

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor scores = MulScalar(MatMul(q, Transpose(k, 1, 2)), scale);
  Tensor attn = SoftmaxLastDim(scores);        // (B*H, Tq, Tk)
  Tensor out = MatMul(attn, v);                // (B*H, Tq, hd)
  return wo_->Forward(MergeHeads(out, b));
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t dim,
                                                 int64_t num_heads,
                                                 int64_t ffn_dim, Rng& rng,
                                                 float dropout) {
  attn_ = std::make_shared<MultiheadSelfAttention>(dim, num_heads, rng);
  ffn_ = std::make_shared<FeedForward>(dim, ffn_dim, rng, dropout);
  norm1_ = std::make_shared<LayerNorm>(dim);
  norm2_ = std::make_shared<LayerNorm>(dim);
  RegisterModule("attn", attn_);
  RegisterModule("ffn", ffn_);
  RegisterModule("norm1", norm1_);
  RegisterModule("norm2", norm2_);
  if (dropout > 0.0f) {
    dropout_ = std::make_shared<Dropout>(dropout, rng);
    RegisterModule("dropout", dropout_);
  }
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x) {
  Tensor a = attn_->Forward(x);
  if (dropout_) a = dropout_->Forward(a);
  Tensor h = norm1_->Forward(Add(x, a));
  Tensor f = ffn_->Forward(h);
  if (dropout_) f = dropout_->Forward(f);
  return norm2_->Forward(Add(h, f));
}

}  // namespace nn
}  // namespace focus
