// Bounded MPMC forecast-request queue with admission micro-batching.
//
// Producers (request threads) Push one item per forecast request;
// consumers (the engine's serving workers) PopBatch: block for the first
// request, then keep admitting more until either `max_batch` requests are
// in hand or the admission window (`window_us`) has elapsed since the
// first pop. A burst of concurrent single-window requests therefore
// leaves the queue as ONE batch and runs as one planned batch-N forward
// instead of N batch-1 forwards (src/serve/engine.h).
//
// Lock discipline: one mutex, short critical sections. The ring is
// preallocated at construction — Push/Pop move Tensor handles in and out
// of fixed slots (a refcount each way, no container growth), so the
// steady-state queue makes no allocator calls of any kind. PopBatch
// drains every admitted request under a single lock hold, which is what
// makes admission batching cheaper than N independent pops.
//
// Shutdown: Close() wakes everyone; Push fails from then on, PopBatch
// keeps draining what was already admitted and returns 0 only once the
// queue is empty — pending requests are never dropped.
#ifndef FOCUS_SERVE_REQUEST_QUEUE_H_
#define FOCUS_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace focus {
namespace serve {

class PendingForecast;

// One queued forecast request. The Tensor handle keeps the caller's
// lookback window alive until the batch that admitted it completes.
struct Request {
  Tensor window;                    // (N, L) lookback, all entities
  int64_t entity = -1;              // >= 0: answer only this entity's row
  PendingForecast* done = nullptr;  // caller-owned completion slot
  int64_t enqueue_ns = 0;           // steady-clock stamp at submission
};

class RequestQueue {
 public:
  explicit RequestQueue(int capacity);

  // Blocks while the queue is full. Returns false once closed (the
  // request was not admitted).
  bool Push(Request request);

  // Non-blocking admission; false when the queue is full or closed.
  bool TryPush(Request request);

  // Pops between 1 and `max_batch` requests into `out`. Blocks until at
  // least one request is available (or the queue is closed and drained —
  // then returns 0). After the first request, admits more arrivals until
  // `max_batch` or until `window_us` microseconds have passed since the
  // first pop; `window_us == 0` takes only what is already queued.
  int PopBatch(Request* out, int max_batch, int64_t window_us);

  // Wakes all waiters; Push fails afterwards, PopBatch drains the rest.
  void Close();

  int64_t depth() const;
  int capacity() const { return static_cast<int>(ring_.size()); }

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

 private:
  // Moves up to `max_count` requests out of the ring. Caller holds mu_.
  int DrainLocked(Request* out, int max_count);

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<Request> ring_;
  int64_t head_ = 0;  // index of the oldest queued request
  int64_t size_ = 0;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace focus

#endif  // FOCUS_SERVE_REQUEST_QUEUE_H_
