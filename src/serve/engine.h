// Multi-tenant forecast serving engine.
//
// ForecastEngine turns a frozen ForecastModel (+ its prototype bank — for
// FOCUS the bank is baked into the model by offline clustering) into a
// request-driven serving core, the online half of the paper's efficiency
// argument: offline clustering made inference linear in prototypes, this
// engine keeps that inference saturated under concurrent traffic.
//
//   * Shared immutable state: all workers serve the SAME model object.
//     The steady-state path replays per-worker compiled execution plans
//     (core::PlannedForecaster, prewarmed at construction for the
//     admitted batch-size ladder), which touch the model's weights
//     read-only and replay no side effects — so workers never synchronize
//     on the model. Only the eager fallback (shape not prewarmed, capture
//     failed, or stale SIMD backend) serializes on a model mutex, because
//     the eager forward records diagnostics into the model. The engine
//     never captures plans while serving: captures are process-global,
//     so they happen in the constructor (Prewarm) only.
//   * Admission micro-batching: requests land on a lock-minimal MPMC
//     queue (request_queue.h); a worker blocks for the first request,
//     admits stragglers for FOCUS_SERVE_BATCH_WINDOW_US, stages the
//     admitted windows contiguously and runs ONE batch-N planned forward
//     instead of N batch-1 forwards. Batch sizes snap up the prewarmed
//     ladder (padding rows replicate the last request and are discarded),
//     so the plan cache stays ladder-sized.
//   * Arena-leased scratch: each in-flight batch checks one ArenaLease
//     slab out of the caching allocator and carves its staging buffer
//     from it with a bump pointer, returning the slab wholesale when the
//     batch completes. With warmed caches the request path performs zero
//     global-allocator calls (AllocatorStats misses/frees_released stay
//     flat — asserted in tests/serve_test.cc).
//
// Determinism contract (enforced in tests/parity_test.cc): a served
// forecast is BIT-IDENTICAL to the eager single-request forward of the
// same window, regardless of which requests it was batched with, the
// batch padding, the SIMD backend, the kernel thread count, or the number
// of serving workers. This holds because every batched kernel accumulates
// each output element in a batch-position-independent order (the PR-2
// contract) and plan replay is bit-identical to eager by construction.
//
// Telemetry: per-request latency lands on the "serve/latency_us"
// histogram (p50/p95/p99 via MetricsRegistry::Summarize), batch sizes on
// "serve/batch_size", and monotonic counters "serve/requests",
// "serve/batches", "serve/padded_rows" flow through the standard
// Tracer/RunReport export path.
#ifndef FOCUS_SERVE_ENGINE_H_
#define FOCUS_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/forecast_model.h"
#include "core/planned_forecaster.h"
#include "obs/metrics_registry.h"
#include "serve/request_queue.h"
#include "tensor/precision.h"
#include "tensor/tensor.h"

namespace focus {
namespace serve {

struct ServeOptions {
  // Serving workers. <= 0 reads FOCUS_SERVE_THREADS (default 1). Workers
  // scale concurrency across batches; kernel-level parallelism inside a
  // batch is still FOCUS_NUM_THREADS.
  int threads = 0;
  // Admission window in microseconds. < 0 reads
  // FOCUS_SERVE_BATCH_WINDOW_US (default 100). 0 disables waiting: a
  // batch takes only what is already queued.
  int64_t batch_window_us = -1;
  int max_batch = 16;       // most requests coalesced into one forward
  int queue_capacity = 256;  // bound on queued (unadmitted) requests
  // Serve through prewarmed execution plans; false = always eager (the
  // serialized baseline bench_serve compares against).
  bool use_plans = true;
  // Snap batch sizes up the prewarm ladder by replicating the last
  // request's window (padded rows are computed and discarded). Keeps the
  // plan cache ladder-sized and every steady-state shape prewarmed.
  bool pad_to_prewarmed = true;
  // Ladder of batch sizes prewarmed at construction. Empty = powers of
  // two up to and including max_batch.
  std::vector<int64_t> prewarm_batch_sizes;
  // Construct without serving threads; callers enqueue with Submit and
  // then Start(). Tests use this to pin batch compositions exactly.
  bool start_paused = false;
  // Inference precision this engine serves at (per-tenant precision =
  // one engine per tier sharing the frozen model). Defaults to the
  // constructing thread's ambient PrecisionMode, i.e. FOCUS_PRECISION
  // unless overridden. Plans are captured at this precision and every
  // worker thread runs under it; f32 engines are bit-identical to the
  // historical path.
  Precision precision = PrecisionMode::Get();
};

// Caller-owned single-use completion slot for one submitted request.
// Stack-allocatable: the submitting thread keeps it alive until Wait()
// returns (Shutdown fulfills every admitted request, so Wait never
// blocks forever once the request was accepted).
class PendingForecast {
 public:
  PendingForecast() = default;
  PendingForecast(const PendingForecast&) = delete;
  PendingForecast& operator=(const PendingForecast&) = delete;

  // Blocks until the engine answers; returns the forecast — (N, Lf) for
  // whole-window requests, (Lf) for single-entity requests.
  Tensor Wait();
  bool ready() const;

 private:
  friend class ForecastEngine;
  void Fulfill(Tensor result);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;
  Tensor result_;
};

// Monotonic engine counters (mirrored into MetricsRegistry).
struct EngineStats {
  int64_t requests = 0;         // requests answered
  int64_t batches = 0;          // forwards executed
  int64_t planned_batches = 0;  // forwards replayed from a compiled plan
  int64_t eager_batches = 0;    // forwards on the serialized eager path
  int64_t padded_rows = 0;      // ladder-padding rows computed+discarded
  int64_t rejected = 0;         // TrySubmit refusals (queue full/closed)
};

class ForecastEngine {
 public:
  // `model` must be frozen (SetTraining(false)) and outlive the engine;
  // forecasts are (entity-count × lookback) -> (entity-count × horizon)
  // with the given input geometry.
  ForecastEngine(ForecastModel* model, int64_t num_entities,
                 int64_t lookback, ServeOptions opts = {});
  ~ForecastEngine();

  // Launches the serving workers (idempotent; the constructor already
  // called it unless opts.start_paused).
  void Start();

  // Asynchronous admission. `window` is the (N, L) lookback for all
  // entities; `entity >= 0` answers only that entity's horizon row.
  // `done` is caller-owned and must outlive the request. Blocks while
  // the queue is full; false once the engine shut down.
  bool Submit(const Tensor& window, PendingForecast* done);
  bool Submit(const Tensor& window, int64_t entity, PendingForecast* done);
  // Non-blocking admission; counts a rejection instead of waiting.
  bool TrySubmit(const Tensor& window, int64_t entity,
                 PendingForecast* done);

  // Synchronous convenience: Submit + Wait.
  Tensor Forecast(const Tensor& window);
  Tensor Forecast(const Tensor& window, int64_t entity);

  // Closes admission, drains every queued request, joins the workers.
  // Idempotent; the destructor calls it.
  void Shutdown();

  EngineStats stats() const;
  // p50/p95/p99 over "serve/latency_us" (microseconds per request,
  // submission to fulfillment) since the histogram was last reset.
  obs::MetricsRegistry::HistogramSummary LatencySummary() const;

  int threads() const { return threads_; }
  int64_t batch_window_us() const { return batch_window_us_; }
  int max_batch() const { return max_batch_; }
  Precision precision() const { return precision_; }
  const std::vector<int64_t>& prewarm_ladder() const { return ladder_; }

  static constexpr const char* kLatencyMetric = "serve/latency_us";
  static constexpr const char* kBatchSizeMetric = "serve/batch_size";

  ForecastEngine(const ForecastEngine&) = delete;
  ForecastEngine& operator=(const ForecastEngine&) = delete;

 private:
  struct Worker {
    std::unique_ptr<core::PlannedForecaster> forecaster;
  };

  void WorkerLoop(int worker_index);
  void ProcessBatch(Worker& worker, Request* requests, int count);
  // Smallest ladder entry >= count (ladder_.back() is max_batch_).
  int64_t PaddedRows(int count) const;

  ForecastModel* model_;  // not owned
  int64_t num_entities_;
  int64_t lookback_;

  int threads_;
  int64_t batch_window_us_;
  int max_batch_;
  bool use_plans_;
  bool pad_to_prewarmed_;
  Precision precision_;
  std::vector<int64_t> ladder_;

  RequestQueue queue_;
  std::vector<Worker> workers_;
  std::vector<std::thread> worker_threads_;
  std::mutex lifecycle_mu_;  // guards Start/Shutdown transitions
  bool started_ = false;
  bool shut_down_ = false;

  // Serializes the eager fallback: the eager forward writes diagnostics
  // into the shared model, so it cannot run concurrently. Plan replays
  // never take it.
  std::mutex model_mu_;

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> planned_batches_{0};
  std::atomic<int64_t> eager_batches_{0};
  std::atomic<int64_t> padded_rows_{0};
  std::atomic<int64_t> rejected_{0};
};

}  // namespace serve
}  // namespace focus

#endif  // FOCUS_SERVE_ENGINE_H_
