#include "serve/request_queue.h"

#include <chrono>
#include <utility>

#include "utils/check.h"

namespace focus {
namespace serve {

RequestQueue::RequestQueue(int capacity) {
  FOCUS_CHECK_GT(capacity, 0) << "request queue needs capacity >= 1";
  ring_.resize(static_cast<size_t>(capacity));
}

bool RequestQueue::Push(Request request) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return size_ < static_cast<int64_t>(ring_.size()) || closed_;
    });
    if (closed_) return false;
    ring_[static_cast<size_t>((head_ + size_) %
                              static_cast<int64_t>(ring_.size()))] =
        std::move(request);
    ++size_;
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::TryPush(Request request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || size_ >= static_cast<int64_t>(ring_.size())) return false;
    ring_[static_cast<size_t>((head_ + size_) %
                              static_cast<int64_t>(ring_.size()))] =
        std::move(request);
    ++size_;
  }
  not_empty_.notify_one();
  return true;
}

int RequestQueue::DrainLocked(Request* out, int max_count) {
  int taken = 0;
  while (taken < max_count && size_ > 0) {
    Request& slot = ring_[static_cast<size_t>(head_)];
    out[taken] = std::move(slot);
    slot = Request{};  // drop the window reference promptly
    head_ = (head_ + 1) % static_cast<int64_t>(ring_.size());
    --size_;
    ++taken;
  }
  return taken;
}

int RequestQueue::PopBatch(Request* out, int max_batch, int64_t window_us) {
  FOCUS_CHECK_GT(max_batch, 0);
  int got = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return 0;  // closed and fully drained
    got = DrainLocked(out, max_batch);
    if (got < max_batch && window_us > 0 && !closed_) {
      // Admission window: keep the batch open for stragglers arriving
      // within window_us of the first admitted request.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(window_us);
      while (got < max_batch && !closed_) {
        if (!not_empty_.wait_until(lock, deadline, [&] {
              return size_ > 0 || closed_;
            })) {
          break;  // window elapsed
        }
        got += DrainLocked(out + got, max_batch - got);
      }
    }
  }
  not_full_.notify_all();
  return got;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

int64_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace serve
}  // namespace focus
