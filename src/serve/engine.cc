#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "tensor/allocator.h"
#include "utils/env.h"

namespace focus {
namespace serve {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wraps arena memory as a Tensor without touching the tensor allocator:
// the aliasing TensorImpl constructor takes ownership of nothing (no-op
// deleter) — the lease stays the sole owner and must outlive every use
// of the returned tensor (ProcessBatch guarantees this: the batch tensor
// dies before the lease does).
Tensor WrapArenaBuffer(Shape shape, float* data) {
  return Tensor::FromImpl(std::make_shared<TensorImpl>(
      std::move(shape), std::shared_ptr<float[]>(data, [](float*) {})));
}

}  // namespace

Tensor PendingForecast::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return ready_; });
  return result_;
}

bool PendingForecast::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_;
}

void PendingForecast::Fulfill(Tensor result) {
  // Notify while still holding the lock: the moment ready_ is visible to
  // an unlocked waiter, Wait() can return and the caller can destroy this
  // object, so the notify must complete before the unlock publishes
  // ready_ — notifying after the critical section would race with the
  // destructor.
  std::lock_guard<std::mutex> lock(mu_);
  FOCUS_CHECK(!ready_) << "PendingForecast fulfilled twice";
  result_ = std::move(result);
  ready_ = true;
  cv_.notify_all();
}

ForecastEngine::ForecastEngine(ForecastModel* model, int64_t num_entities,
                               int64_t lookback, ServeOptions opts)
    : model_(model),
      num_entities_(num_entities),
      lookback_(lookback),
      threads_(opts.threads > 0
                   ? opts.threads
                   : static_cast<int>(GetEnvIntInRangeOr(
                         "FOCUS_SERVE_THREADS", 1, 1, 1024))),
      batch_window_us_(opts.batch_window_us >= 0
                           ? opts.batch_window_us
                           : GetEnvIntInRangeOr(
                                 "FOCUS_SERVE_BATCH_WINDOW_US", 100, 0,
                                 10 * 1000 * 1000)),
      max_batch_(std::max(opts.max_batch, 1)),
      use_plans_(opts.use_plans),
      pad_to_prewarmed_(opts.pad_to_prewarmed),
      precision_(opts.precision),
      queue_(opts.queue_capacity) {
  FOCUS_CHECK(model_ != nullptr);
  FOCUS_CHECK_GT(num_entities_, 0);
  FOCUS_CHECK_GT(lookback_, 0);

  if (!opts.prewarm_batch_sizes.empty()) {
    ladder_ = opts.prewarm_batch_sizes;
    std::sort(ladder_.begin(), ladder_.end());
    ladder_.erase(std::unique(ladder_.begin(), ladder_.end()),
                  ladder_.end());
    FOCUS_CHECK_GT(ladder_.front(), 0) << "batch ladder must be positive";
  } else {
    for (int64_t b = 1; b < max_batch_; b <<= 1) ladder_.push_back(b);
    ladder_.push_back(max_batch_);
  }
  FOCUS_CHECK_EQ(ladder_.back(), max_batch_)
      << "prewarm ladder must top out at max_batch so every admitted "
         "batch snaps to a prewarmed size";

  workers_.resize(static_cast<size_t>(threads_));
  {
    // Prewarm at the engine's serving precision: captured plans embed
    // the precision-resolved kernel sequence (and pre-packed bf16
    // weights), and Plan::Matches() pins the mode at replay.
    PrecisionGuard precision(precision_);
    for (Worker& worker : workers_) {
      worker.forecaster = std::make_unique<core::PlannedForecaster>(model_);
      if (use_plans_) {
        // Captures are process-global; they all happen here, serially,
        // before any serving thread exists. Workers never capture.
        worker.forecaster->PrewarmBatchSizes(
            {1, num_entities_, lookback_}, ladder_);
      }
    }
  }

  if (!opts.start_paused) Start();
}

ForecastEngine::~ForecastEngine() { Shutdown(); }

void ForecastEngine::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || shut_down_) return;
  started_ = true;
  worker_threads_.reserve(static_cast<size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    worker_threads_.emplace_back(&ForecastEngine::WorkerLoop, this, i);
  }
}

void ForecastEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    // Workers must exist to drain requests admitted while paused.
    if (!started_) {
      started_ = true;
      for (int i = 0; i < threads_; ++i) {
        worker_threads_.emplace_back(&ForecastEngine::WorkerLoop, this, i);
      }
    }
  }
  queue_.Close();
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();
}

bool ForecastEngine::Submit(const Tensor& window, PendingForecast* done) {
  return Submit(window, -1, done);
}

bool ForecastEngine::Submit(const Tensor& window, int64_t entity,
                            PendingForecast* done) {
  FOCUS_CHECK(done != nullptr);
  FOCUS_CHECK(window.defined());
  FOCUS_CHECK(window.shape() == (Shape{num_entities_, lookback_}))
      << "expected (" << num_entities_ << ", " << lookback_
      << ") window, got " << ShapeToString(window.shape());
  FOCUS_CHECK_GE(entity, -1);
  FOCUS_CHECK_LT(entity, num_entities_);
  Request request;
  request.window = window;
  request.entity = entity;
  request.done = done;
  request.enqueue_ns = NowNs();
  return queue_.Push(std::move(request));
}

bool ForecastEngine::TrySubmit(const Tensor& window, int64_t entity,
                               PendingForecast* done) {
  FOCUS_CHECK(done != nullptr);
  FOCUS_CHECK(window.defined());
  FOCUS_CHECK(window.shape() == (Shape{num_entities_, lookback_}));
  FOCUS_CHECK_LT(entity, num_entities_);
  Request request;
  request.window = window;
  request.entity = entity;
  request.done = done;
  request.enqueue_ns = NowNs();
  if (!queue_.TryPush(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Tensor ForecastEngine::Forecast(const Tensor& window) {
  return Forecast(window, -1);
}

Tensor ForecastEngine::Forecast(const Tensor& window, int64_t entity) {
  PendingForecast done;
  FOCUS_CHECK(Submit(window, entity, &done))
      << "Forecast() on a shut-down engine";
  return done.Wait();
}

int64_t ForecastEngine::PaddedRows(int count) const {
  for (int64_t b : ladder_) {
    if (b >= count) return b;
  }
  return ladder_.back();
}

void ForecastEngine::WorkerLoop(int worker_index) {
  // Thread-local mode: covers plan Matches() and the eager fallback,
  // and lets engines at different precisions serve concurrently.
  PrecisionGuard precision(precision_);
  Worker& worker = workers_[static_cast<size_t>(worker_index)];
  std::vector<Request> admitted(static_cast<size_t>(max_batch_));
  while (true) {
    const int got =
        queue_.PopBatch(admitted.data(), max_batch_, batch_window_us_);
    if (got == 0) return;  // closed and drained
    ProcessBatch(worker, admitted.data(), got);
    for (int i = 0; i < got; ++i) admitted[static_cast<size_t>(i)] =
        Request{};  // release window references between batches
  }
}

void ForecastEngine::ProcessBatch(Worker& worker, Request* requests,
                                  int count) {
  const int64_t window_floats = num_entities_ * lookback_;
  const int64_t rows =
      pad_to_prewarmed_ ? PaddedRows(count) : static_cast<int64_t>(count);

  Tensor output;
  bool planned = false;
  {
    // Per-in-flight-batch scratch: one slab checked out, returned
    // wholesale when this scope ends. Steady state this is a free-list
    // hit + a cached free — no global-allocator traffic. The scope
    // closes before any Fulfill: once a caller's Wait() returns, the
    // batch that answered it no longer holds a lease (serve_test asserts
    // arena_leased_bytes drains back to its baseline).
    ArenaLease arena(rows * window_floats);
    float* staging = arena.AllocFloats(rows * window_floats);
    for (int i = 0; i < count; ++i) {
      std::memcpy(staging + i * window_floats, requests[i].window.data(),
                  static_cast<size_t>(window_floats) * sizeof(float));
    }
    // Padding rows replicate the last admitted window; their outputs are
    // discarded. Row independence of every batched kernel keeps the real
    // rows' bits unaffected.
    for (int64_t i = count; i < rows; ++i) {
      std::memcpy(staging + i * window_floats,
                  staging + (count - 1) * window_floats,
                  static_cast<size_t>(window_floats) * sizeof(float));
    }

    Tensor batch = WrapArenaBuffer({rows, num_entities_, lookback_},
                                   staging);
    if (use_plans_) {
      const plan::ExecutionPlan* plan =
          worker.forecaster->plan_for(batch.shape());
      if (plan != nullptr && plan->Matches(batch)) {
        // Lock-free replay: the plan is this worker's own, the model's
        // weights are read-only under it, and no side effects replay.
        output = worker.forecaster->Forward(batch);
        planned = true;
      }
    }
    if (!planned) {
      // Eager fallback (plans disabled, capture failed at prewarm, or
      // the SIMD backend changed under us): the eager forward records
      // diagnostics into the shared model, so it serializes.
      std::lock_guard<std::mutex> lock(model_mu_);
      InferenceModeGuard inference;
      output = model_->Forward(batch);
    }
  }

  FOCUS_CHECK_EQ(output.shape().size(), 3u);
  const int64_t horizon = output.shape()[2];
  const float* out_data = output.data();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();

  // Account before fulfilling: a caller returning from Wait() must see
  // its own request reflected in stats() and the registry counters.
  requests_.fetch_add(count, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  padded_rows_.fetch_add(rows - count, std::memory_order_relaxed);
  (planned ? planned_batches_ : eager_batches_)
      .fetch_add(1, std::memory_order_relaxed);
  registry.AddCounter("serve/requests", count);
  registry.AddCounter("serve/batches");
  if (rows > count) registry.AddCounter("serve/padded_rows", rows - count);
  registry.Observe(kBatchSizeMetric, static_cast<double>(count));

  for (int i = 0; i < count; ++i) {
    const float* row = out_data + i * num_entities_ * horizon;
    Tensor result;
    if (requests[i].entity >= 0) {
      result = Tensor::Empty({horizon});
      std::memcpy(result.data(), row + requests[i].entity * horizon,
                  static_cast<size_t>(horizon) * sizeof(float));
    } else {
      result = Tensor::Empty({num_entities_, horizon});
      std::memcpy(result.data(), row,
                  static_cast<size_t>(num_entities_ * horizon) *
                      sizeof(float));
    }
    registry.Observe(kLatencyMetric,
                     static_cast<double>(NowNs() - requests[i].enqueue_ns) /
                         1e3);
    requests[i].done->Fulfill(std::move(result));
  }
}

EngineStats ForecastEngine::stats() const {
  EngineStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.planned_batches = planned_batches_.load(std::memory_order_relaxed);
  stats.eager_batches = eager_batches_.load(std::memory_order_relaxed);
  stats.padded_rows = padded_rows_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  return stats;
}

obs::MetricsRegistry::HistogramSummary ForecastEngine::LatencySummary()
    const {
  return obs::MetricsRegistry::Get().Summarize(kLatencyMetric);
}

}  // namespace serve
}  // namespace focus
