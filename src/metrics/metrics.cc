#include "metrics/metrics.h"

#include <cmath>

#include "tensor/flops.h"
#include "tensor/memory.h"
#include "utils/check.h"
#include "utils/stopwatch.h"

namespace focus {
namespace metrics {

void ForecastMetrics::Accumulate(const Tensor& pred, const Tensor& truth) {
  FOCUS_CHECK(pred.shape() == truth.shape())
      << "metrics shape mismatch: " << ShapeToString(pred.shape()) << " vs "
      << ShapeToString(truth.shape());
  const float* pp = pred.data();
  const float* pt = truth.data();
  const int64_t n = pred.numel();
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    mse += d * d;
    mae += std::fabs(d);
  }
  count += n;
}

void ForecastMetrics::Finalize() {
  FOCUS_CHECK_GT(count, 0) << "no predictions accumulated";
  mse /= count;
  mae /= count;
  rmse = std::sqrt(mse);
}

ForecastMetrics ComputeMetrics(const Tensor& pred, const Tensor& truth) {
  ForecastMetrics m;
  m.Accumulate(pred, truth);
  m.Finalize();
  return m;
}

EfficiencyReport ProbeEfficiency(ForecastModel& model, const Tensor& sample) {
  EfficiencyReport report;
  report.parameters = model.NumParameters();

  const bool was_training = model.training();
  model.SetTraining(false);
  {
    // Inference mode (not just no-grad): the probe measures the
    // inference path, which must neither build tape nodes nor allocate
    // gradient buffers — MakeResult asserts the former.
    InferenceModeGuard inference;
    MemoryStats::ResetPeak();
    FlopCounter::Reset();
    Stopwatch timer;
    Tensor out = model.Forward(sample);
    report.latency_ms = timer.ElapsedMillis();
    report.flops = FlopCounter::Count();
    report.peak_bytes = MemoryStats::PeakBytes() - MemoryStats::CurrentBytes() +
                        static_cast<int64_t>(sizeof(float)) * out.numel();
  }
  model.SetTraining(was_training);
  return report;
}

}  // namespace metrics
}  // namespace focus
