// Forecast accuracy metrics (paper Sec. VIII-A: MSE / MAE) and efficiency
// probes (FLOPs / peak memory / parameter count, Fig. 6 and Table IV).
#ifndef FOCUS_METRICS_METRICS_H_
#define FOCUS_METRICS_METRICS_H_

#include <cstdint>

#include "core/forecast_model.h"
#include "tensor/tensor.h"

namespace focus {
namespace metrics {

struct ForecastMetrics {
  double mse = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  int64_t count = 0;  // number of scalar predictions aggregated

  // Streaming aggregation across evaluation batches.
  void Accumulate(const Tensor& pred, const Tensor& truth);
  void Finalize();
};

// One-shot convenience.
ForecastMetrics ComputeMetrics(const Tensor& pred, const Tensor& truth);

struct EfficiencyReport {
  int64_t flops = 0;        // scalar FLOPs for one forward pass
  int64_t peak_bytes = 0;   // peak live tensor bytes during that pass
  int64_t parameters = 0;   // model parameter count
  double latency_ms = 0.0;  // wall-clock of the probed pass
};

// Runs one inference-mode forward pass on `sample` under instrumentation.
// Restores the model's training mode afterwards.
EfficiencyReport ProbeEfficiency(ForecastModel& model, const Tensor& sample);

}  // namespace metrics
}  // namespace focus

#endif  // FOCUS_METRICS_METRICS_H_
