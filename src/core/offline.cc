#include "core/offline.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace focus {
namespace core {

cluster::ClusteringResult RunOfflineClustering(const Tensor& train_values,
                                               const OfflineConfig& config) {
  Tensor segments = cluster::ExtractSegments(train_values, config.patch_len,
                                             /*normalize=*/true);
  cluster::ClusteringConfig cc;
  cc.segment_length = config.patch_len;
  cc.num_prototypes = config.num_prototypes;
  cc.alpha = config.alpha;
  cc.use_correlation = config.use_correlation;
  cc.max_iters = config.max_iters;
  cc.refine_steps = config.refine_steps;
  cc.seed = config.seed;
  return cluster::SegmentClustering(cc).Fit(segments);
}

QuantizedPrototypeBank QuantizePrototypeBank(const Tensor& prototypes) {
  FOCUS_CHECK_EQ(prototypes.dim(), 2) << "prototype bank must be (k, p)";
  QuantizedPrototypeBank bank;
  bank.k = prototypes.size(0);
  bank.p = prototypes.size(1);
  bank.q.resize(static_cast<size_t>(bank.k * bank.p));
  bank.scale.resize(static_cast<size_t>(bank.k));
  bank.zero_point.resize(static_cast<size_t>(bank.k));
  bank.row_sum_q.resize(static_cast<size_t>(bank.k));
  bank.sq_norm.resize(static_cast<size_t>(bank.k));
  bank.mean.resize(static_cast<size_t>(bank.k));
  bank.var.resize(static_cast<size_t>(bank.k));
  for (int64_t j = 0; j < bank.k; ++j) {
    const float* row = prototypes.data() + j * bank.p;
    float lo = row[0], hi = row[0];
    for (int64_t d = 1; d < bank.p; ++d) {
      lo = std::min(lo, row[d]);
      hi = std::max(hi, row[d]);
    }
    // 254 quantization steps leave one code of slack on each end so
    // round(hi/scale)+zp cannot clip. A constant row degenerates to a
    // symmetric scale around its magnitude.
    float scale = (hi - lo) / 254.0f;
    int32_t zp = 0;
    if (scale > 0.0f) {
      zp = -128 - static_cast<int32_t>(std::lrintf(lo / scale));
    } else {
      scale = std::max(std::fabs(lo), 1e-8f) / 127.0f;
    }
    int8_t* q = bank.q.data() + j * bank.p;
    int32_t sum_q = 0;
    double sum = 0.0, sq = 0.0;
    for (int64_t d = 0; d < bank.p; ++d) {
      const int32_t qi = std::clamp(
          static_cast<int32_t>(std::lrintf(row[d] / scale)) + zp, -128,
          127);
      q[d] = static_cast<int8_t>(qi);
      sum_q += qi;
      const double deq = static_cast<double>(scale) * (qi - zp);
      sum += deq;
      sq += deq * deq;
    }
    const double mean = sum / static_cast<double>(bank.p);
    bank.scale[static_cast<size_t>(j)] = scale;
    bank.zero_point[static_cast<size_t>(j)] = zp;
    bank.row_sum_q[static_cast<size_t>(j)] = sum_q;
    bank.sq_norm[static_cast<size_t>(j)] = static_cast<float>(sq);
    bank.mean[static_cast<size_t>(j)] = static_cast<float>(mean);
    bank.var[static_cast<size_t>(j)] = static_cast<float>(
        sq - static_cast<double>(bank.p) * mean * mean);
  }
  return bank;
}

}  // namespace core
}  // namespace focus
