#include "core/offline.h"

namespace focus {
namespace core {

cluster::ClusteringResult RunOfflineClustering(const Tensor& train_values,
                                               const OfflineConfig& config) {
  Tensor segments = cluster::ExtractSegments(train_values, config.patch_len,
                                             /*normalize=*/true);
  cluster::ClusteringConfig cc;
  cc.segment_length = config.patch_len;
  cc.num_prototypes = config.num_prototypes;
  cc.alpha = config.alpha;
  cc.use_correlation = config.use_correlation;
  cc.max_iters = config.max_iters;
  cc.refine_steps = config.refine_steps;
  cc.seed = config.seed;
  return cluster::SegmentClustering(cc).Fit(segments);
}

}  // namespace core
}  // namespace focus
