// Plan-or-eager forecasting front end.
//
// Wraps any ForecastModel with a per-shape cache of compiled execution
// plans (src/plan): the first Forward() for an input shape captures and
// compiles a plan; subsequent calls replay it (zero tensor-allocator
// calls, fused kernels, no tape). Shapes whose capture failed — the
// model used an op without a capture hook — are remembered and served
// eagerly (under InferenceModeGuard) without re-trying every call. A
// SIMD backend switch invalidates cached plans via the plan guard; the
// wrapper then recaptures. The failed-shape memo is likewise keyed by
// the backend that failed: after a backend switch the capture is
// re-attempted once instead of pinning the shape eager forever.
//
// Serving fronts (src/serve) call Prewarm() at startup so the first
// request at each admitted batch size never pays capture+compile
// latency inline; every prewarmed plan bumps the "plan/prewarm"
// counter in obs::MetricsRegistry.
//
// Contract inherited from ExecutionPlan: the model must be frozen (plans
// pin parameter values at capture time) and the returned tensor of a
// planned call is overwritten by the next one. Not thread-safe: one
// forecaster per thread; captures (Forward on a new shape, Prewarm) are
// process-global and must not run concurrently with each other or with
// tensor work on other threads.
#ifndef FOCUS_CORE_PLANNED_FORECASTER_H_
#define FOCUS_CORE_PLANNED_FORECASTER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/forecast_model.h"
#include "plan/plan.h"
#include "tensor/simd/vec.h"

namespace focus {
namespace core {

class PlannedForecaster {
 public:
  explicit PlannedForecaster(ForecastModel* model,
                             plan::Options opts = {});

  // Planned when a plan exists or can be captured for x's shape;
  // eager (inference-mode) otherwise.
  Tensor Forward(const Tensor& x);

  // Captures and compiles plans for every shape ahead of traffic, so a
  // later Forward() at that shape replays immediately. Shapes that
  // already have a live plan are skipped; shapes whose capture fails
  // land in the failed-shape memo exactly as an inline capture would.
  // Returns the number of plans newly compiled (each also counted on
  // the "plan/prewarm" metric).
  int Prewarm(const std::vector<Shape>& shapes);

  // Batched-shape convenience for serving: prewarms `base_shape` with
  // its leading (batch) dimension replaced by each of `batch_sizes`.
  int PrewarmBatchSizes(const Shape& base_shape,
                        const std::vector<int64_t>& batch_sizes);

  // Whether the last Forward() ran on a compiled plan.
  bool last_was_planned() const { return last_was_planned_; }

  // The cached plan for `shape`, or nullptr (none yet / capture failed).
  const plan::ExecutionPlan* plan_for(const Shape& shape) const;

 private:
  // Captures `shape`, caching the plan on success and memoizing the
  // (shape, backend) on failure. Returns the new plan or nullptr.
  plan::ExecutionPlan* CaptureShape(const Shape& shape, const Tensor& example);
  // True when capture already failed for this shape on the *current*
  // backend; a stale-backend entry is dropped so capture retries.
  bool KnownBadShape(const Shape& shape);

  ForecastModel* model_;  // not owned; must outlive the wrapper
  plan::Options opts_;
  std::vector<std::pair<Shape, std::unique_ptr<plan::ExecutionPlan>>>
      plans_;
  // Shapes whose capture failed, with the SIMD backend active at the
  // time: a backend change invalidates the memo entry (regression-tested
  // in tests/plan_test.cc).
  std::vector<std::pair<Shape, simd::Backend>> failed_shapes_;
  bool last_was_planned_ = false;
};

}  // namespace core
}  // namespace focus

#endif  // FOCUS_CORE_PLANNED_FORECASTER_H_
