// Plan-or-eager forecasting front end.
//
// Wraps any ForecastModel with a per-shape cache of compiled execution
// plans (src/plan): the first Forward() for an input shape captures and
// compiles a plan; subsequent calls replay it (zero tensor-allocator
// calls, fused kernels, no tape). Shapes whose capture failed — the
// model used an op without a capture hook — are remembered and served
// eagerly (under InferenceModeGuard) without re-trying every call. A
// SIMD backend switch invalidates cached plans via the plan guard; the
// wrapper then recaptures.
//
// Contract inherited from ExecutionPlan: the model must be frozen (plans
// pin parameter values at capture time) and the returned tensor of a
// planned call is overwritten by the next one.
#ifndef FOCUS_CORE_PLANNED_FORECASTER_H_
#define FOCUS_CORE_PLANNED_FORECASTER_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/forecast_model.h"
#include "plan/plan.h"

namespace focus {
namespace core {

class PlannedForecaster {
 public:
  explicit PlannedForecaster(ForecastModel* model,
                             plan::Options opts = {});

  // Planned when a plan exists or can be captured for x's shape;
  // eager (inference-mode) otherwise.
  Tensor Forward(const Tensor& x);

  // Whether the last Forward() ran on a compiled plan.
  bool last_was_planned() const { return last_was_planned_; }

  // The cached plan for `shape`, or nullptr (none yet / capture failed).
  const plan::ExecutionPlan* plan_for(const Shape& shape) const;

 private:
  ForecastModel* model_;  // not owned; must outlive the wrapper
  plan::Options opts_;
  std::vector<std::pair<Shape, std::unique_ptr<plan::ExecutionPlan>>>
      plans_;
  std::vector<Shape> failed_shapes_;
  bool last_was_planned_ = false;
};

}  // namespace core
}  // namespace focus

#endif  // FOCUS_CORE_PLANNED_FORECASTER_H_
