// FOCUS — the paper's dual-branch forecasting network (Sec. VII).
//
// Online pipeline per lookback window X (N entities x L steps):
//   1. Instance-normalize each (entity, window) row (non-stationarity).
//   2. Segment into l = L/p patches; embed with a shared Linear(p -> d).
//   3. Temporal branch (Algorithm 3 l.2-6): ProtoAttn over each entity's l
//      temporal tokens; residual + LayerNorm.
//   4. Entity branch (Algorithm 3 l.7-11): ProtoAttn over the N entity
//      tokens at each temporal position; residual + LayerNorm.
//   5. Parallel Fusion Module (Algorithm 4): m learned readout queries
//      cross-attend to each branch, a sigmoid gate mixes the two readouts,
//      and a linear head maps (m * d) to the horizon.
//   6. De-instance-normalize.
//
// The Table IV ablation variants swap specific components:
//   kAttn       — extractors use full self-attention instead of ProtoAttn.
//   kLnrFusion  — fusion replaced by a gated linear layer over flattened
//                 branch features.
//   kAllLnr     — extractors are Linear layers AND fusion is gated-linear.
#ifndef FOCUS_CORE_FOCUS_MODEL_H_
#define FOCUS_CORE_FOCUS_MODEL_H_

#include <memory>
#include <string>

#include "core/forecast_model.h"
#include "core/planned_forecaster.h"
#include "core/proto_attn.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace focus {
namespace core {

enum class FocusVariant {
  kFull,       // FOCUS
  kAttn,       // FOCUS-Attn
  kLnrFusion,  // FOCUS-LnrFusion
  kAllLnr,     // FOCUS-AllLnr
};

std::string FocusVariantName(FocusVariant variant);

struct FocusConfig {
  int64_t lookback = 512;        // L
  int64_t horizon = 96;          // L_f
  int64_t num_entities = 8;      // N
  int64_t patch_len = 16;        // p; must divide lookback
  int64_t d_model = 64;          // d
  int64_t readout_queries = 6;   // m (6 for Lf=96, 21 for Lf=336 per paper)
  float alpha = 0.2f;            // Eq. 6 correlation weight
  bool instance_norm = true;
  // Learned positional / entity embeddings added to the tokens. The paper
  // leaves this implicit; without it every stage is content-based (see
  // DESIGN.md Sec. 3). Exposed for the design-ablation bench.
  bool positional_embedding = true;
  // Extractor depth. The paper uses a single-layer structure (Sec. VIII-A);
  // >1 stacks extractor blocks with shared prototypes (extension).
  int64_t num_layers = 1;
  FocusVariant variant = FocusVariant::kFull;
  uint64_t seed = 1;
};

class FocusModel : public ForecastModel {
 public:
  // `prototypes` is the (k, p) output of the offline clustering phase.
  FocusModel(const FocusConfig& config, Tensor prototypes);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override;
  int64_t horizon() const override { return config_.horizon; }

  // Tape-free inference: first call per input shape captures and
  // compiles an execution plan (src/plan); later calls replay it with
  // zero allocator traffic, falling back to eager when capture fails
  // or the shape/backend changed. Bit-identical to Forward() under
  // inference mode. The model must be frozen; the returned tensor is
  // overwritten by the next planned call.
  Tensor ForecastPlanned(const Tensor& x);

  // Whether the last ForecastPlanned() actually ran on a plan.
  bool last_forecast_planned() const {
    return planned_ != nullptr && planned_->last_was_planned();
  }

  const FocusConfig& config() const { return config_; }
  // Case-study hooks (Fig. 13): first-layer temporal-branch ProtoAttn of
  // the last forward. Null for kAttn / kAllLnr variants.
  const ProtoAttn* temporal_proto_attn() const {
    return temporal_protos_.empty() ? nullptr : temporal_protos_[0].get();
  }

 private:
  // Extractor dispatch for one branch: tokens (B', T, p/d) -> (B', T, d).
  Tensor ExtractFeatures(const Tensor& raw, const Tensor& emb, bool temporal);
  // Fusion dispatch: per-entity branch features (B*N, l, d) x2 -> (B*N, Lf).
  Tensor Fuse(const Tensor& h_t, const Tensor& h_e);

  FocusConfig config_;
  int64_t num_patches_;  // l

  std::shared_ptr<nn::Linear> embed_;
  // Learned positional information: without it every stage of FOCUS is
  // purely content-based and the head cannot tell recent segments from old
  // ones (see DESIGN.md Sec. 3).
  Tensor temporal_pos_;  // (l, d) added to temporal-branch tokens
  Tensor entity_pos_;    // (N, d) added to entity-branch tokens
  // Per-layer extractor stacks (index = layer). Exactly one family is
  // populated depending on the variant.
  // ProtoAttn extractors (kFull, kLnrFusion).
  std::vector<std::shared_ptr<ProtoAttn>> temporal_protos_, entity_protos_;
  // Self-attention extractors (kAttn).
  std::vector<std::shared_ptr<nn::MultiheadSelfAttention>> temporal_attns_,
      entity_attns_;
  // Linear extractors (kAllLnr).
  std::vector<std::shared_ptr<nn::Linear>> temporal_lnrs_, entity_lnrs_;
  std::vector<std::shared_ptr<nn::LayerNorm>> temporal_norms_, entity_norms_;

  // Parallel Fusion Module (kFull, kAttn). Readout queries are *generated
  // from the input features* (Algorithm 4 l.1): Q = P H with learned
  // per-branch projections P in R^(m x l).
  Tensor readout_proj_t_;                // (m, l)
  Tensor readout_proj_e_;                // (m, l)
  std::shared_ptr<nn::Linear> gate_;     // (2d -> d), sigmoid gate
  std::shared_ptr<nn::Linear> head_;     // (m*d -> Lf)
  // Gated-linear fusion (kLnrFusion, kAllLnr).
  std::shared_ptr<nn::Linear> lnr_gate_;  // (2*l*d -> l*d)
  std::shared_ptr<nn::Linear> lnr_head_;  // (l*d -> Lf)

  // Lazy plan cache behind ForecastPlanned().
  std::unique_ptr<PlannedForecaster> planned_;
};

}  // namespace core
}  // namespace focus

#endif  // FOCUS_CORE_FOCUS_MODEL_H_
