// ProtoAttn — Prototypes Attentive Modeling (paper Sec. VI, Algorithm 2).
//
// Instead of all-pairs self-attention over l tokens (O(l^2 d)), queries are
// the k offline prototypes (Eq. 14-15); each token is hard-assigned to its
// nearest prototype under the Eq. 6 composite distance, and tokens sharing
// an assignment receive identical attention rows (Eq. 19):
//
//   A      in {0,1}^(l x k)     one-hot assignments (constant wrt autograd)
//   C_Q  = (C W_emb) W_E        embedded prototype queries      (k x d)
//   K, V = Z W_K, Z W_V         token projections               (l x d)
//   out  = A softmax(C_Q K^T / sqrt(d)) V                       (Eq. 18)
//
// Total cost is O(l k d) — linear in the number of tokens.
#ifndef FOCUS_CORE_PROTO_ATTN_H_
#define FOCUS_CORE_PROTO_ATTN_H_

#include <memory>
#include <vector>

#include "core/offline.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace focus {
namespace core {

class ProtoAttn : public nn::Module {
 public:
  // `prototypes` is the (k, p) shape-space prototype set from the offline
  // clustering phase; it is a fixed buffer, not a trained parameter.
  // `embed` is the shared segment-embedding Linear(p -> d), owned by the
  // enclosing model so both branches and the prototypes use one embedding.
  ProtoAttn(Tensor prototypes, std::shared_ptr<nn::Linear> embed,
            int64_t d_model, float alpha, Rng& rng);

  // tokens_raw: (B', l, p) raw (window-normalized) segments, used only for
  // the non-differentiable nearest-prototype assignment.
  // tokens_emb: (B', l, d) embedded segments (shared embedding output).
  // Returns (B', l, d).
  Tensor Forward(const Tensor& tokens_raw, const Tensor& tokens_emb);

  // Case-study introspection (paper Fig. 13): the last forward's one-hot
  // assignment matrix (B', l, k) and attention matrix (B', k, l), detached.
  const Tensor& last_assignment() const { return last_assignment_; }
  const Tensor& last_attention() const { return last_attention_; }

  // Hard assignment indices for a (B', l, p) raw-token tensor. Under
  // FOCUS_PRECISION=int8proto (and grad mode off) the nearest-prototype
  // search runs against the frozen bank's int8 quantization with int32
  // accumulation and f32 requantize; training and the other precision
  // modes use the full-precision composite distance.
  std::vector<int64_t> AssignTokens(const Tensor& tokens_raw) const;

  int64_t num_prototypes() const { return prototypes_.size(0); }

 private:
  Tensor prototypes_;  // (k, p), constant
  // int8 quantization of the frozen bank, computed once at construction
  // ("freeze time", core/offline.h). shared_ptr so plan-capture closures
  // keep it alive past the module (k*p int8 + O(k) stats — tiny).
  std::shared_ptr<const QuantizedPrototypeBank> qbank_;
  std::shared_ptr<nn::Linear> embed_;
  int64_t d_model_;
  float alpha_;
  std::shared_ptr<nn::Linear> we_, wk_, wv_, wo_;
  Tensor last_assignment_;
  Tensor last_attention_;
};

}  // namespace core
}  // namespace focus

#endif  // FOCUS_CORE_PROTO_ATTN_H_
