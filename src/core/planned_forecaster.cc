#include "core/planned_forecaster.h"

#include <algorithm>

#include "obs/metrics_registry.h"
#include "utils/rng.h"

namespace focus {
namespace core {

PlannedForecaster::PlannedForecaster(ForecastModel* model,
                                     plan::Options opts)
    : model_(model), opts_(opts) {
  FOCUS_CHECK(model_ != nullptr);
}

const plan::ExecutionPlan* PlannedForecaster::plan_for(
    const Shape& shape) const {
  for (const auto& [s, p] : plans_) {
    if (s == shape) return p.get();
  }
  return nullptr;
}

bool PlannedForecaster::KnownBadShape(const Shape& shape) {
  const simd::Backend backend = simd::ActiveBackend();
  for (auto it = failed_shapes_.begin(); it != failed_shapes_.end(); ++it) {
    if (it->first != shape) continue;
    if (it->second == backend) return true;
    // The capture failed under a different backend; forget the memo and
    // let the caller retry under the current one.
    failed_shapes_.erase(it);
    return false;
  }
  return false;
}

plan::ExecutionPlan* PlannedForecaster::CaptureShape(const Shape& shape,
                                                     const Tensor& example) {
  auto plan = plan::ExecutionPlan::Capture(
      [this](const Tensor& in) { return model_->Forward(in); }, example,
      opts_);
  if (plan == nullptr) {
    failed_shapes_.emplace_back(shape, simd::ActiveBackend());
    return nullptr;
  }
  plans_.emplace_back(shape, std::move(plan));
  return plans_.back().second.get();
}

int PlannedForecaster::Prewarm(const std::vector<Shape>& shapes) {
  int compiled = 0;
  for (const Shape& shape : shapes) {
    const plan::ExecutionPlan* existing = plan_for(shape);
    // A live plan for the current backend needs no work; a stale one is
    // dropped and recaptured exactly like Forward() would.
    if (existing != nullptr) {
      Rng probe_rng(1);
      Tensor probe = Tensor::Randn(shape, probe_rng);
      if (existing->Matches(probe)) continue;
      plans_.erase(std::remove_if(plans_.begin(), plans_.end(),
                                  [&](const auto& entry) {
                                    return entry.first == shape;
                                  }),
                   plans_.end());
    }
    if (KnownBadShape(shape)) continue;
    // The example's values are irrelevant to the captured program —
    // capture records kernel launches, not data — but they do flow
    // through the forward once, so use well-formed random windows.
    Rng rng(1);
    Tensor example = Tensor::Randn(shape, rng);
    if (CaptureShape(shape, example) != nullptr) {
      ++compiled;
      obs::MetricsRegistry::Get().AddCounter("plan/prewarm");
    }
  }
  return compiled;
}

int PlannedForecaster::PrewarmBatchSizes(
    const Shape& base_shape, const std::vector<int64_t>& batch_sizes) {
  FOCUS_CHECK(!base_shape.empty());
  std::vector<Shape> shapes;
  shapes.reserve(batch_sizes.size());
  for (int64_t b : batch_sizes) {
    FOCUS_CHECK_GT(b, 0) << "batch sizes must be positive";
    Shape shape = base_shape;
    shape[0] = b;
    shapes.push_back(std::move(shape));
  }
  return Prewarm(shapes);
}

Tensor PlannedForecaster::Forward(const Tensor& x) {
  FOCUS_CHECK(x.defined());
  for (auto& [shape, p] : plans_) {
    if (shape != x.shape()) continue;
    if (p->Matches(x)) {
      last_was_planned_ = true;
      return p->Run(x);
    }
    // Same shape but stale backend: drop and recapture below.
    plans_.erase(std::remove_if(plans_.begin(), plans_.end(),
                                [&](const auto& entry) {
                                  return entry.first == x.shape();
                                }),
                 plans_.end());
    break;
  }
  if (!KnownBadShape(x.shape())) {
    plan::ExecutionPlan* plan = CaptureShape(x.shape(), x);
    if (plan != nullptr) {
      last_was_planned_ = true;
      return plan->Run(x);
    }
  }
  last_was_planned_ = false;
  InferenceModeGuard inference;
  return model_->Forward(x);
}

}  // namespace core
}  // namespace focus
