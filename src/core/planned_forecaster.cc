#include "core/planned_forecaster.h"

#include <algorithm>

namespace focus {
namespace core {

PlannedForecaster::PlannedForecaster(ForecastModel* model,
                                     plan::Options opts)
    : model_(model), opts_(opts) {
  FOCUS_CHECK(model_ != nullptr);
}

const plan::ExecutionPlan* PlannedForecaster::plan_for(
    const Shape& shape) const {
  for (const auto& [s, p] : plans_) {
    if (s == shape) return p.get();
  }
  return nullptr;
}

Tensor PlannedForecaster::Forward(const Tensor& x) {
  FOCUS_CHECK(x.defined());
  for (auto& [shape, p] : plans_) {
    if (shape != x.shape()) continue;
    if (p->Matches(x)) {
      last_was_planned_ = true;
      return p->Run(x);
    }
    // Same shape but stale backend: drop and recapture below.
    plans_.erase(std::remove_if(plans_.begin(), plans_.end(),
                                [&](const auto& entry) {
                                  return entry.first == x.shape();
                                }),
                 plans_.end());
    break;
  }
  const bool known_bad =
      std::find(failed_shapes_.begin(), failed_shapes_.end(),
                x.shape()) != failed_shapes_.end();
  if (!known_bad) {
    auto plan = plan::ExecutionPlan::Capture(
        [this](const Tensor& in) { return model_->Forward(in); }, x,
        opts_);
    if (plan != nullptr) {
      last_was_planned_ = true;
      Tensor out = plan->Run(x);
      plans_.emplace_back(x.shape(), std::move(plan));
      return out;
    }
    failed_shapes_.push_back(x.shape());
  }
  last_was_planned_ = false;
  InferenceModeGuard inference;
  return model_->Forward(x);
}

}  // namespace core
}  // namespace focus
