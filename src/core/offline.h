// Convenience driver for the offline phase: extract shape-space segments
// from the (normalized) training region and fit prototypes (Algorithm 1).
#ifndef FOCUS_CORE_OFFLINE_H_
#define FOCUS_CORE_OFFLINE_H_

#include "cluster/segment_clustering.h"
#include "tensor/tensor.h"

namespace focus {
namespace core {

struct OfflineConfig {
  int64_t patch_len = 16;       // p
  int64_t num_prototypes = 16;  // k
  float alpha = 0.2f;
  bool use_correlation = true;  // Fig. 8 ablation switch
  int64_t max_iters = 25;
  int64_t refine_steps = 10;
  uint64_t seed = 1;
};

// `train_values` is the z-scored (N, T_train) training region.
cluster::ClusteringResult RunOfflineClustering(const Tensor& train_values,
                                               const OfflineConfig& config);

}  // namespace core
}  // namespace focus

#endif  // FOCUS_CORE_OFFLINE_H_
