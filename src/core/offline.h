// Convenience driver for the offline phase: extract shape-space segments
// from the (normalized) training region and fit prototypes (Algorithm 1),
// plus freeze-time int8 quantization of the fitted prototype bank for the
// FOCUS_PRECISION=int8proto inference path (DESIGN §13).
#ifndef FOCUS_CORE_OFFLINE_H_
#define FOCUS_CORE_OFFLINE_H_

#include <cstdint>
#include <vector>

#include "cluster/segment_clustering.h"
#include "tensor/tensor.h"

namespace focus {
namespace core {

struct OfflineConfig {
  int64_t patch_len = 16;       // p
  int64_t num_prototypes = 16;  // k
  float alpha = 0.2f;
  bool use_correlation = true;  // Fig. 8 ablation switch
  int64_t max_iters = 25;
  int64_t refine_steps = 10;
  uint64_t seed = 1;
};

// `train_values` is the z-scored (N, T_train) training region.
cluster::ClusteringResult RunOfflineClustering(const Tensor& train_values,
                                               const OfflineConfig& config);

// Per-prototype affine int8 quantization of a frozen (k, p) prototype
// bank, computed ONCE at freeze time: q = clamp(round(x / scale) + zp,
// -128, 127) with one (scale, zero_point) pair per prototype row, plus
// the row statistics the int8 assignment path needs to evaluate the
// Eq. 6 composite distance from a single int32 dot product per
// (token, prototype) pair: sq_norm (sum of dequantized squares), mean
// and var (Pearson terms), row_sum_q (zero-point correction of the raw
// dot). All statistics are over the DEQUANTIZED values, so the int8
// distance is exactly the f32 composite distance of the dequantized
// bank against the quantized-then-dequantized token.
struct QuantizedPrototypeBank {
  int64_t k = 0, p = 0;
  std::vector<int8_t> q;            // (k, p) row-major quantized values
  std::vector<float> scale;         // (k) dequantize: scale*(q - zp)
  std::vector<int32_t> zero_point;  // (k)
  std::vector<int32_t> row_sum_q;   // (k) sum of q over the row
  std::vector<float> sq_norm;       // (k) sum of dequant(q)^2
  std::vector<float> mean;          // (k) mean of dequant(q)
  std::vector<float> var;           // (k) sum of (dequant(q) - mean)^2
};

QuantizedPrototypeBank QuantizePrototypeBank(const Tensor& prototypes);

}  // namespace core
}  // namespace focus

#endif  // FOCUS_CORE_OFFLINE_H_
