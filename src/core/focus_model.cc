#include "core/focus_model.h"

#include <cmath>

#include "data/instance_norm.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace focus {
namespace core {

std::string FocusVariantName(FocusVariant variant) {
  switch (variant) {
    case FocusVariant::kFull: return "FOCUS";
    case FocusVariant::kAttn: return "FOCUS-Attn";
    case FocusVariant::kLnrFusion: return "FOCUS-LnrFusion";
    case FocusVariant::kAllLnr: return "FOCUS-AllLnr";
  }
  return "FOCUS";
}

FocusModel::FocusModel(const FocusConfig& config, Tensor prototypes)
    : config_(config) {
  FOCUS_CHECK_EQ(config.lookback % config.patch_len, 0)
      << "patch_len must divide lookback";
  num_patches_ = config.lookback / config.patch_len;
  Rng rng(config.seed);

  embed_ = std::make_shared<nn::Linear>(config.patch_len, config.d_model, rng);
  RegisterModule("embed", embed_);
  const float pos_bound = 1.0f / std::sqrt(static_cast<float>(config.d_model));
  temporal_pos_ = RegisterParameter(
      "temporal_pos", Tensor::RandUniform({num_patches_, config.d_model}, rng,
                                          -pos_bound, pos_bound));
  entity_pos_ = RegisterParameter(
      "entity_pos", Tensor::RandUniform({config.num_entities, config.d_model},
                                        rng, -pos_bound, pos_bound));

  FOCUS_CHECK_GE(config.num_layers, 1);
  const bool proto_extractor = config.variant == FocusVariant::kFull ||
                               config.variant == FocusVariant::kLnrFusion;
  for (int64_t layer = 0; layer < config.num_layers; ++layer) {
    const std::string suffix = std::to_string(layer);
    if (proto_extractor) {
      FOCUS_CHECK(prototypes.defined()) << "FOCUS needs offline prototypes";
      FOCUS_CHECK_EQ(prototypes.size(1), config.patch_len)
          << "prototype length must equal patch_len";
      temporal_protos_.push_back(std::make_shared<ProtoAttn>(
          prototypes, embed_, config.d_model, config.alpha, rng));
      entity_protos_.push_back(std::make_shared<ProtoAttn>(
          prototypes, embed_, config.d_model, config.alpha, rng));
      RegisterModule("temporal_proto" + suffix, temporal_protos_.back());
      RegisterModule("entity_proto" + suffix, entity_protos_.back());
    } else if (config.variant == FocusVariant::kAttn) {
      const int64_t heads = config.d_model % 4 == 0 ? 4 : 1;
      temporal_attns_.push_back(std::make_shared<nn::MultiheadSelfAttention>(
          config.d_model, heads, rng));
      entity_attns_.push_back(std::make_shared<nn::MultiheadSelfAttention>(
          config.d_model, heads, rng));
      RegisterModule("temporal_attn" + suffix, temporal_attns_.back());
      RegisterModule("entity_attn" + suffix, entity_attns_.back());
    } else {  // kAllLnr
      temporal_lnrs_.push_back(
          std::make_shared<nn::Linear>(config.d_model, config.d_model, rng));
      entity_lnrs_.push_back(
          std::make_shared<nn::Linear>(config.d_model, config.d_model, rng));
      RegisterModule("temporal_lnr" + suffix, temporal_lnrs_.back());
      RegisterModule("entity_lnr" + suffix, entity_lnrs_.back());
    }
    temporal_norms_.push_back(std::make_shared<nn::LayerNorm>(config.d_model));
    entity_norms_.push_back(std::make_shared<nn::LayerNorm>(config.d_model));
    RegisterModule("temporal_norm" + suffix, temporal_norms_.back());
    RegisterModule("entity_norm" + suffix, entity_norms_.back());
  }

  const bool fusion_module = config.variant == FocusVariant::kFull ||
                             config.variant == FocusVariant::kAttn;
  if (fusion_module) {
    const float bound = 1.0f / std::sqrt(static_cast<float>(num_patches_));
    readout_proj_t_ = RegisterParameter(
        "readout_proj_t",
        Tensor::RandUniform({config.readout_queries, num_patches_}, rng,
                            -bound, bound));
    readout_proj_e_ = RegisterParameter(
        "readout_proj_e",
        Tensor::RandUniform({config.readout_queries, num_patches_}, rng,
                            -bound, bound));
    gate_ = std::make_shared<nn::Linear>(2 * config.d_model, config.d_model,
                                         rng);
    head_ = std::make_shared<nn::Linear>(
        config.readout_queries * config.d_model, config.horizon, rng);
    RegisterModule("gate", gate_);
    RegisterModule("head", head_);
  } else {
    const int64_t flat = num_patches_ * config.d_model;
    lnr_gate_ = std::make_shared<nn::Linear>(2 * flat, flat, rng);
    lnr_head_ = std::make_shared<nn::Linear>(flat, config.horizon, rng);
    RegisterModule("lnr_gate", lnr_gate_);
    RegisterModule("lnr_head", lnr_head_);
  }
}

std::string FocusModel::name() const {
  return FocusVariantName(config_.variant);
}

Tensor FocusModel::ForecastPlanned(const Tensor& x) {
  if (planned_ == nullptr) {
    planned_ = std::make_unique<PlannedForecaster>(this);
  }
  return planned_->Forward(x);
}

Tensor FocusModel::ExtractFeatures(const Tensor& raw, const Tensor& emb,
                                   bool temporal) {
  Tensor h = emb;
  for (int64_t layer = 0; layer < config_.num_layers; ++layer) {
    const size_t i = static_cast<size_t>(layer);
    Tensor features;
    switch (config_.variant) {
      case FocusVariant::kFull:
      case FocusVariant::kLnrFusion:
        features = temporal ? temporal_protos_[i]->Forward(raw, h)
                            : entity_protos_[i]->Forward(raw, h);
        break;
      case FocusVariant::kAttn:
        features = temporal ? temporal_attns_[i]->Forward(h)
                            : entity_attns_[i]->Forward(h);
        break;
      case FocusVariant::kAllLnr:
        features = temporal ? temporal_lnrs_[i]->Forward(h)
                            : entity_lnrs_[i]->Forward(h);
        break;
    }
    // Residual + LayerNorm (Algorithm 3).
    Tensor summed = Add(features, h);
    h = temporal ? temporal_norms_[i]->Forward(summed)
                 : entity_norms_[i]->Forward(summed);
  }
  return h;
}

Tensor FocusModel::Fuse(const Tensor& h_t, const Tensor& h_e) {
  const int64_t bn = h_t.size(0);
  const int64_t l = h_t.size(1);
  const int64_t d = config_.d_model;

  if (config_.variant == FocusVariant::kFull ||
      config_.variant == FocusVariant::kAttn) {
    // Readout queries generated from the input features (Algorithm 4 l.1),
    // then cross-attention over the l branch tokens (l.2-4).
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    Tensor q_t = MatMul(readout_proj_t_, h_t);  // (bn, m, d)
    Tensor q_e = MatMul(readout_proj_e_, h_e);
    Tensor a_t = SoftmaxLastDim(
        MulScalar(MatMul(q_t, Transpose(h_t, 1, 2)), scale));
    Tensor a_e = SoftmaxLastDim(
        MulScalar(MatMul(q_e, Transpose(h_e, 1, 2)), scale));
    Tensor f_t = MatMul(a_t, h_t);  // (bn, m, d)
    Tensor f_e = MatMul(a_e, h_e);  // (bn, m, d)
    // Gate (Algorithm 4 l.5-7).
    Tensor f_proj = Cat({f_t, f_e}, -1);            // (bn, m, 2d)
    Tensor g = Sigmoid(gate_->Forward(f_proj));     // (bn, m, d)
    Tensor mixed = Add(Mul(g, f_t),
                       Mul(AddScalar(Neg(g), 1.0f), f_e));  // g*t + (1-g)*e
    return head_->Forward(
        Reshape(mixed, {bn, config_.readout_queries * d}));
  }

  // Gated-linear fusion (FOCUS-LnrFusion / FOCUS-AllLnr).
  Tensor flat_t = Reshape(h_t, {bn, l * d});
  Tensor flat_e = Reshape(h_e, {bn, l * d});
  Tensor g = Sigmoid(lnr_gate_->Forward(Cat({flat_t, flat_e}, -1)));
  Tensor mixed =
      Add(Mul(g, flat_t), Mul(AddScalar(Neg(g), 1.0f), flat_e));
  return lnr_head_->Forward(mixed);
}

Tensor FocusModel::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "FocusModel expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1);
  const int64_t l = num_patches_, p = config_.patch_len;

  data::InstanceNorm inorm;
  Tensor xn = config_.instance_norm ? inorm.Normalize(x) : x;

  // --- Temporal branch: tokens are an entity's l consecutive segments. ---
  Tensor raw_t = Reshape(xn, {b * n, l, p});
  Tensor emb_t;
  {
    obs::TraceSpan span("focus/embed");
    emb_t = embed_->Forward(raw_t);                      // (b*n, l, d)
    if (config_.positional_embedding) emb_t = Add(emb_t, temporal_pos_);
  }
  Tensor h_t;
  {
    obs::TraceSpan span("focus/temporal_branch");
    h_t = ExtractFeatures(raw_t, emb_t, /*temporal=*/true);
  }

  // --- Entity branch: tokens are the N entities at one temporal position. --
  Tensor raw_e = Reshape(xn, {b, n, l, p});
  raw_e = Permute(raw_e, {0, 2, 1, 3});                  // (b, l, n, p)
  raw_e = Reshape(raw_e, {b * l, n, p});
  FOCUS_CHECK_EQ(n, config_.num_entities)
      << "input entity count differs from the configured model";
  Tensor emb_e;
  {
    obs::TraceSpan span("focus/embed");
    emb_e = embed_->Forward(raw_e);                      // (b*l, n, d)
    if (config_.positional_embedding) emb_e = Add(emb_e, entity_pos_);
  }
  Tensor h_e;
  {
    obs::TraceSpan span("focus/entity_branch");
    h_e = ExtractFeatures(raw_e, emb_e, /*temporal=*/false);
  }

  // Regroup entity-branch features per entity: (b*l, n, d) -> (b*n, l, d).
  h_e = Reshape(h_e, {b, l, n, config_.d_model});
  h_e = Permute(h_e, {0, 2, 1, 3});
  h_e = Reshape(h_e, {b * n, l, config_.d_model});

  Tensor forecast;
  {
    obs::TraceSpan span("focus/fusion");
    forecast = Fuse(h_t, h_e);                           // (b*n, Lf)
  }
  forecast = Reshape(forecast, {b, n, config_.horizon});
  return config_.instance_norm ? inorm.Denormalize(forecast) : forecast;
}

}  // namespace core
}  // namespace focus
