// Common interface implemented by FOCUS and every baseline: map a batch of
// lookback windows (B, N, L) to horizon forecasts (B, N, Lf). Inputs are in
// the dataset's z-scored space; models handle per-window instance
// normalization internally.
#ifndef FOCUS_CORE_FORECAST_MODEL_H_
#define FOCUS_CORE_FORECAST_MODEL_H_

#include <string>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace focus {

class ForecastModel : public nn::Module {
 public:
  // x: (B, N, L) -> (B, N, Lf).
  virtual Tensor Forward(const Tensor& x) = 0;
  virtual std::string name() const = 0;
  virtual int64_t horizon() const = 0;
};

}  // namespace focus

#endif  // FOCUS_CORE_FORECAST_MODEL_H_
