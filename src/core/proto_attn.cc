#include "core/proto_attn.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/segment_clustering.h"
#include "obs/trace.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/plan_hooks.h"
#include "tensor/precision.h"
#include "tensor/simd/vec.h"

namespace focus {
namespace core {

namespace {

// Shared assignment sweep: z-normalize each raw segment (f32, identical
// in every precision mode) and take the argmin composite distance over
// the prototype bank. With `bank` set, the distance is evaluated from
// int8 quantized operands: the token quantizes symmetrically
// (tscale = max|t|/127, zero point 0), each (token, prototype) pair
// costs ONE int32 dot_i8, and every Eq. 6 term — squared Euclidean and
// Pearson — requantizes from that dot plus the bank's precomputed row
// statistics in f32. Serial over rows; both AssignTokens and the plan
// replay closure call exactly this function, so eager and planned
// int8proto forwards are bit-identical.
void AssignRows(const float* raw, int64_t rows, const float* protos,
                int64_t k, int64_t p, float alpha,
                const QuantizedPrototypeBank* bank, int64_t* out_idx) {
  std::vector<float> shape(static_cast<size_t>(p));
  std::vector<int8_t> tq(static_cast<size_t>(p));
  const auto dot_i8 = simd::Kernels().dot_i8;
  for (int64_t r = 0; r < rows; ++r) {
    const float* seg = raw + r * p;
    // Match the offline clustering's shape space: z-normalize the token.
    double mean = 0;
    for (int64_t d = 0; d < p; ++d) mean += seg[d];
    mean /= p;
    double var = 0;
    for (int64_t d = 0; d < p; ++d) var += (seg[d] - mean) * (seg[d] - mean);
    const float inv_std =
        1.0f / (static_cast<float>(std::sqrt(var / p)) + 1e-4f);
    for (int64_t d = 0; d < p; ++d) {
      shape[static_cast<size_t>(d)] =
          (seg[d] - static_cast<float>(mean)) * inv_std;
    }
    float best = std::numeric_limits<float>::max();
    int64_t best_j = 0;
    if (bank == nullptr) {
      for (int64_t j = 0; j < k; ++j) {
        const float dist = cluster::CompositeDistance(
            shape.data(), protos + j * p, p, alpha);
        if (dist < best) {
          best = dist;
          best_j = j;
        }
      }
    } else {
      float amax = 0.0f;
      for (int64_t d = 0; d < p; ++d) {
        amax = std::max(amax, std::fabs(shape[static_cast<size_t>(d)]));
      }
      const float tscale = amax > 0.0f ? amax / 127.0f : 1.0f;
      int32_t tsum = 0;
      for (int64_t d = 0; d < p; ++d) {
        const int32_t qi = std::clamp(
            static_cast<int32_t>(
                std::lrintf(shape[static_cast<size_t>(d)] / tscale)),
            -128, 127);
        tq[static_cast<size_t>(d)] = static_cast<int8_t>(qi);
        tsum += qi;
      }
      const int32_t tsq = dot_i8(tq.data(), tq.data(), p);
      const float sq_t = tscale * tscale * static_cast<float>(tsq);
      const float m_t =
          tscale * static_cast<float>(tsum) / static_cast<float>(p);
      const float da = sq_t - static_cast<float>(p) * m_t * m_t;
      for (int64_t j = 0; j < k; ++j) {
        const size_t sj = static_cast<size_t>(j);
        const int32_t dot = dot_i8(tq.data(), bank->q.data() + j * p, p);
        // f32 requantize of the int32 accumulator: sum of t_hat*c_hat.
        const float cross =
            tscale * bank->scale[sj] *
            static_cast<float>(dot - bank->zero_point[sj] * tsum);
        float dist = sq_t + bank->sq_norm[sj] - 2.0f * cross;
        if (alpha != 0.0f) {
          float corr = 0.0f;
          if (da >= 1e-12f && bank->var[sj] >= 1e-12f) {
            corr = (cross -
                    static_cast<float>(p) * m_t * bank->mean[sj]) /
                   std::sqrt(da * bank->var[sj]);
          }
          dist += alpha * (1.0f - corr);
        }
        if (dist < best) {
          best = dist;
          best_j = j;
        }
      }
    }
    out_idx[r] = best_j;
  }
}

}  // namespace

ProtoAttn::ProtoAttn(Tensor prototypes, std::shared_ptr<nn::Linear> embed,
                     int64_t d_model, float alpha, Rng& rng)
    : prototypes_(std::move(prototypes)),
      embed_(std::move(embed)),
      d_model_(d_model),
      alpha_(alpha) {
  FOCUS_CHECK_EQ(prototypes_.dim(), 2) << "prototypes must be (k, p)";
  FOCUS_CHECK_EQ(embed_->in_features(), prototypes_.size(1))
      << "embedding input dim must equal segment length p";
  FOCUS_CHECK_EQ(embed_->out_features(), d_model);
  // Freeze-time quantization: the bank is fixed for the module's
  // lifetime, so its int8 image and row statistics are computed once.
  qbank_ = std::make_shared<const QuantizedPrototypeBank>(
      QuantizePrototypeBank(prototypes_));
  we_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  wk_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  wv_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  wo_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  RegisterModule("we", we_);
  RegisterModule("wk", wk_);
  RegisterModule("wv", wv_);
  RegisterModule("wo", wo_);
  // NOTE: `embed` is registered by the owning model, not here, to avoid
  // double-counting shared parameters.
}

std::vector<int64_t> ProtoAttn::AssignTokens(const Tensor& tokens_raw) const {
  FOCUS_CHECK_EQ(tokens_raw.dim(), 3);
  const int64_t p = prototypes_.size(1);
  FOCUS_CHECK_EQ(tokens_raw.size(2), p);
  const int64_t rows = tokens_raw.size(0) * tokens_raw.size(1);
  const int64_t k = prototypes_.size(0);
  std::vector<int64_t> assignments(static_cast<size_t>(rows));
  const bool use_int8 = !GradMode::IsEnabled() &&
                        PrecisionMode::Get() == Precision::kInt8Proto;
  AssignRows(tokens_raw.data(), rows, prototypes_.data(), k, p, alpha_,
             use_int8 ? qbank_.get() : nullptr, assignments.data());
  // Assignment cost (counted so the FLOPs metric reflects Algorithm 2's
  // O(l * k * p) step; the int8 path does the same multiply-add count
  // in narrower arithmetic).
  FlopCounter::Add(3 * rows * k * p);
  return assignments;
}

Tensor ProtoAttn::Forward(const Tensor& tokens_raw, const Tensor& tokens_emb) {
  obs::TraceSpan span("focus/proto_attn");
  FOCUS_CHECK_EQ(tokens_emb.dim(), 3);
  FOCUS_CHECK_EQ(tokens_emb.size(-1), d_model_);
  const int64_t b = tokens_emb.size(0), l = tokens_emb.size(1);
  FOCUS_CHECK_EQ(tokens_raw.size(0), b);
  FOCUS_CHECK_EQ(tokens_raw.size(1), l);
  const int64_t k = prototypes_.size(0);

  // One-hot assignment matrix A (constant wrt autograd; Algorithm 2 l.1-4).
  const std::vector<int64_t> assign = AssignTokens(tokens_raw);
  Tensor a = Tensor::Zeros({b, l, k});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t li = 0; li < l; ++li) {
      a.data()[(bi * l + li) * k +
               assign[static_cast<size_t>(bi * l + li)]] = 1.0f;
    }
  }
  last_assignment_ = a;
  if (plan_hooks::CaptureActive()) {
    // A is built by value-DEPENDENT raw writes, so without this step a
    // capture would pin one assignment pattern as a constant. The
    // closure recomputes AssignTokens' serial z-norm + argmin sweep
    // from the live token buffer — same accumulation order, same bits.
    // Member diagnostics (last_assignment_/last_attention_) are NOT
    // replayed by plans.
    Tensor protos = prototypes_.Detach();
    const float alpha = alpha_;
    const int64_t p = prototypes_.size(1);
    // Capture the precision-resolved sweep: a plan captured under
    // int8proto replays the int8 bank (the shared_ptr keeps it alive),
    // any other mode replays the f32 distance. Plan::Matches() pins the
    // ambient PrecisionMode, so a plan never replays the wrong variant.
    std::shared_ptr<const QuantizedPrototypeBank> qb =
        (PrecisionMode::Get() == Precision::kInt8Proto) ? qbank_
                                                        : nullptr;
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "ProtoAssign", {tokens_raw}, a,
        [protos, alpha, b, l, k, p, qb](float* const* bufs) {
          const float* raw = bufs[0];
          float* pa = bufs[1];
          std::fill_n(pa, b * l * k, 0.0f);
          const int64_t rows = b * l;
          std::vector<int64_t> idx(static_cast<size_t>(rows));
          AssignRows(raw, rows, protos.data(), k, p, alpha, qb.get(),
                     idx.data());
          for (int64_t r = 0; r < rows; ++r) {
            pa[r * k + idx[static_cast<size_t>(r)]] = 1.0f;
          }
        });
  }

  // Projections (Eq. 14).
  Tensor c_emb = embed_->Forward(prototypes_);  // (k, d)
  Tensor c_q = we_->Forward(c_emb);             // (k, d)
  Tensor key = wk_->Forward(tokens_emb);        // (b, l, d)
  Tensor value = wv_->Forward(tokens_emb);      // (b, l, d)

  // Attention of prototype queries over tokens (Eq. 16): (b, k, l).
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_model_));
  Tensor scores = MulScalar(MatMul(c_q, Transpose(key, 1, 2)), scale);
  Tensor attn = SoftmaxLastDim(scores);
  last_attention_ = attn.Detach();

  // Per-prototype context, then scatter back to tokens via A (Eq. 17-18).
  Tensor context = MatMul(attn, value);  // (b, k, d)
  Tensor out = MatMul(a, context);       // (b, l, d)
  return wo_->Forward(out);
}

}  // namespace core
}  // namespace focus
