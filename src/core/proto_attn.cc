#include "core/proto_attn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cluster/segment_clustering.h"
#include "obs/trace.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/plan_hooks.h"

namespace focus {
namespace core {

ProtoAttn::ProtoAttn(Tensor prototypes, std::shared_ptr<nn::Linear> embed,
                     int64_t d_model, float alpha, Rng& rng)
    : prototypes_(std::move(prototypes)),
      embed_(std::move(embed)),
      d_model_(d_model),
      alpha_(alpha) {
  FOCUS_CHECK_EQ(prototypes_.dim(), 2) << "prototypes must be (k, p)";
  FOCUS_CHECK_EQ(embed_->in_features(), prototypes_.size(1))
      << "embedding input dim must equal segment length p";
  FOCUS_CHECK_EQ(embed_->out_features(), d_model);
  we_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  wk_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  wv_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  wo_ = std::make_shared<nn::Linear>(d_model, d_model, rng);
  RegisterModule("we", we_);
  RegisterModule("wk", wk_);
  RegisterModule("wv", wv_);
  RegisterModule("wo", wo_);
  // NOTE: `embed` is registered by the owning model, not here, to avoid
  // double-counting shared parameters.
}

std::vector<int64_t> ProtoAttn::AssignTokens(const Tensor& tokens_raw) const {
  FOCUS_CHECK_EQ(tokens_raw.dim(), 3);
  const int64_t p = prototypes_.size(1);
  FOCUS_CHECK_EQ(tokens_raw.size(2), p);
  const int64_t rows = tokens_raw.size(0) * tokens_raw.size(1);
  const int64_t k = prototypes_.size(0);
  std::vector<int64_t> assignments(static_cast<size_t>(rows));
  std::vector<float> shape(static_cast<size_t>(p));
  for (int64_t r = 0; r < rows; ++r) {
    const float* seg = tokens_raw.data() + r * p;
    // Match the offline clustering's shape space: z-normalize the token.
    double mean = 0;
    for (int64_t d = 0; d < p; ++d) mean += seg[d];
    mean /= p;
    double var = 0;
    for (int64_t d = 0; d < p; ++d) var += (seg[d] - mean) * (seg[d] - mean);
    const float inv_std =
        1.0f / (static_cast<float>(std::sqrt(var / p)) + 1e-4f);
    for (int64_t d = 0; d < p; ++d) {
      shape[static_cast<size_t>(d)] =
          (seg[d] - static_cast<float>(mean)) * inv_std;
    }
    float best = std::numeric_limits<float>::max();
    int64_t best_j = 0;
    for (int64_t j = 0; j < k; ++j) {
      const float dist = cluster::CompositeDistance(
          shape.data(), prototypes_.data() + j * p, p, alpha_);
      if (dist < best) {
        best = dist;
        best_j = j;
      }
    }
    assignments[static_cast<size_t>(r)] = best_j;
  }
  // Assignment cost (counted so the FLOPs metric reflects Algorithm 2's
  // O(l * k * p) step).
  FlopCounter::Add(3 * rows * k * p);
  return assignments;
}

Tensor ProtoAttn::Forward(const Tensor& tokens_raw, const Tensor& tokens_emb) {
  obs::TraceSpan span("focus/proto_attn");
  FOCUS_CHECK_EQ(tokens_emb.dim(), 3);
  FOCUS_CHECK_EQ(tokens_emb.size(-1), d_model_);
  const int64_t b = tokens_emb.size(0), l = tokens_emb.size(1);
  FOCUS_CHECK_EQ(tokens_raw.size(0), b);
  FOCUS_CHECK_EQ(tokens_raw.size(1), l);
  const int64_t k = prototypes_.size(0);

  // One-hot assignment matrix A (constant wrt autograd; Algorithm 2 l.1-4).
  const std::vector<int64_t> assign = AssignTokens(tokens_raw);
  Tensor a = Tensor::Zeros({b, l, k});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t li = 0; li < l; ++li) {
      a.data()[(bi * l + li) * k +
               assign[static_cast<size_t>(bi * l + li)]] = 1.0f;
    }
  }
  last_assignment_ = a;
  if (plan_hooks::CaptureActive()) {
    // A is built by value-DEPENDENT raw writes, so without this step a
    // capture would pin one assignment pattern as a constant. The
    // closure recomputes AssignTokens' serial z-norm + argmin sweep
    // from the live token buffer — same accumulation order, same bits.
    // Member diagnostics (last_assignment_/last_attention_) are NOT
    // replayed by plans.
    Tensor protos = prototypes_.Detach();
    const float alpha = alpha_;
    const int64_t p = prototypes_.size(1);
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "ProtoAssign", {tokens_raw}, a,
        [protos, alpha, b, l, k, p](float* const* bufs) {
          const float* raw = bufs[0];
          float* pa = bufs[1];
          std::fill_n(pa, b * l * k, 0.0f);
          std::vector<float> shape(static_cast<size_t>(p));
          const int64_t rows = b * l;
          for (int64_t r = 0; r < rows; ++r) {
            const float* seg = raw + r * p;
            double mean = 0;
            for (int64_t d = 0; d < p; ++d) mean += seg[d];
            mean /= p;
            double var = 0;
            for (int64_t d = 0; d < p; ++d) {
              var += (seg[d] - mean) * (seg[d] - mean);
            }
            const float inv_std =
                1.0f / (static_cast<float>(std::sqrt(var / p)) + 1e-4f);
            for (int64_t d = 0; d < p; ++d) {
              shape[static_cast<size_t>(d)] =
                  (seg[d] - static_cast<float>(mean)) * inv_std;
            }
            float best = std::numeric_limits<float>::max();
            int64_t best_j = 0;
            for (int64_t j = 0; j < k; ++j) {
              const float dist = cluster::CompositeDistance(
                  shape.data(), protos.data() + j * p, p, alpha);
              if (dist < best) {
                best = dist;
                best_j = j;
              }
            }
            pa[r * k + best_j] = 1.0f;
          }
        });
  }

  // Projections (Eq. 14).
  Tensor c_emb = embed_->Forward(prototypes_);  // (k, d)
  Tensor c_q = we_->Forward(c_emb);             // (k, d)
  Tensor key = wk_->Forward(tokens_emb);        // (b, l, d)
  Tensor value = wv_->Forward(tokens_emb);      // (b, l, d)

  // Attention of prototype queries over tokens (Eq. 16): (b, k, l).
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_model_));
  Tensor scores = MulScalar(MatMul(c_q, Transpose(key, 1, 2)), scale);
  Tensor attn = SoftmaxLastDim(scores);
  last_attention_ = attn.Detach();

  // Per-prototype context, then scatter back to tokens via A (Eq. 17-18).
  Tensor context = MatMul(attn, value);  // (b, k, d)
  Tensor out = MatMul(a, context);       // (b, l, d)
  return wo_->Forward(out);
}

}  // namespace core
}  // namespace focus
