#include "baselines/dlinear.h"

#include <algorithm>

#include "baselines/common.h"

namespace focus {
namespace baselines {

DLinear::DLinear(const DLinearConfig& config) : config_(config) {
  kernel_ = std::min<int64_t>(config.moving_avg, config.lookback - 1);
  if (kernel_ % 2 == 0) --kernel_;
  kernel_ = std::max<int64_t>(kernel_, 3);
  Rng rng(config.seed);
  trend_head_ =
      std::make_shared<nn::Linear>(config.lookback, config.horizon, rng);
  seasonal_head_ =
      std::make_shared<nn::Linear>(config.lookback, config.horizon, rng);
  RegisterModule("trend_head", trend_head_);
  RegisterModule("seasonal_head", seasonal_head_);
}

Tensor DLinear::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "DLinear expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1);
  Tensor flat = Reshape(x, {b * n, config_.lookback});
  Tensor trend = MovingAverage(flat, kernel_);
  Tensor seasonal = Sub(flat, trend);
  Tensor forecast =
      Add(trend_head_->Forward(trend), seasonal_head_->Forward(seasonal));
  return Reshape(forecast, {b, n, config_.horizon});
}

}  // namespace baselines
}  // namespace focus
