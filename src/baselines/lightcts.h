// LightCTS-lite (Lai et al., SIGMOD 2023): lightweight correlated-time-
// series forecaster built around (a) a light temporal convolution stack
// (L-TCN), (b) "last-shot compression" — only the final temporal state is
// passed on — and (c) a lightweight attention stage across entities
// (GL-Former style) before the output head.
#ifndef FOCUS_BASELINES_LIGHTCTS_H_
#define FOCUS_BASELINES_LIGHTCTS_H_

#include <memory>

#include "core/forecast_model.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

struct LightCtsConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t channels = 16;   // L-TCN width
  int64_t num_heads = 2;
  uint64_t seed = 1;
};

class LightCtsLite : public ForecastModel {
 public:
  explicit LightCtsLite(const LightCtsConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "LightCTS"; }
  int64_t horizon() const override { return config_.horizon; }

 private:
  LightCtsConfig config_;
  Tensor input_w_, input_b_;
  Tensor tcn1_w_, tcn1_b_, tcn2_w_, tcn2_b_;  // grouped temporal convs
  std::shared_ptr<nn::MultiheadSelfAttention> entity_attn_;
  std::shared_ptr<nn::LayerNorm> norm_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_LIGHTCTS_H_
