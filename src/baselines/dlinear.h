// DLinear (Zeng et al., AAAI 2023): series decomposition into trend
// (moving average) and seasonal (residual) parts, each forecast by a single
// linear map shared across channels.
#ifndef FOCUS_BASELINES_DLINEAR_H_
#define FOCUS_BASELINES_DLINEAR_H_

#include <memory>

#include "core/forecast_model.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

struct DLinearConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t moving_avg = 25;  // decomposition kernel (odd)
  uint64_t seed = 1;
};

class DLinear : public ForecastModel {
 public:
  explicit DLinear(const DLinearConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "DLinear"; }
  int64_t horizon() const override { return config_.horizon; }

 private:
  DLinearConfig config_;
  int64_t kernel_;
  std::shared_ptr<nn::Linear> trend_head_;
  std::shared_ptr<nn::Linear> seasonal_head_;
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_DLINEAR_H_
