// Informer-lite (Zhou et al., AAAI 2021): the O(L log L) efficiency
// baseline the paper contrasts against (Sec. I / IX). Implements the
// ProbSparse self-attention mechanism: only the top-u "active" queries
// (by the max-minus-mean sparsity measure, estimated on sampled keys)
// attend fully; lazy queries output the mean of V. Channel-independent
// patch tokens as in PatchTST.
//
// Extra baseline: not part of the paper's Table III zoo, provided for the
// efficiency narrative (see examples/related_work_extras.cpp).
#ifndef FOCUS_BASELINES_INFORMER_H_
#define FOCUS_BASELINES_INFORMER_H_

#include <memory>

#include "core/forecast_model.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

struct InformerConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t patch_len = 16;
  int64_t d_model = 64;
  // u = ceil(factor * ln(l)) active queries; the paper's c hyperparameter.
  double sparsity_factor = 2.0;
  uint64_t seed = 1;
};

class InformerLite : public ForecastModel {
 public:
  explicit InformerLite(const InformerConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "Informer"; }
  int64_t horizon() const override { return config_.horizon; }

  // Number of active (full-attention) queries for l tokens.
  int64_t ActiveQueries(int64_t num_tokens) const;

 private:
  InformerConfig config_;
  int64_t num_patches_;
  std::shared_ptr<nn::Linear> embed_;
  Tensor positional_;
  std::shared_ptr<nn::Linear> wq_, wk_, wv_, wo_;
  std::shared_ptr<nn::LayerNorm> norm1_, norm2_;
  std::shared_ptr<nn::FeedForward> ffn_;
  std::shared_ptr<nn::Linear> head_;
  Rng sample_rng_;
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_INFORMER_H_
