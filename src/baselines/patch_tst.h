// PatchTST (Nie et al., ICLR 2023): channel-independent patching +
// vanilla transformer encoder + flatten head, with RevIN-style instance
// normalization. The O(l^2) all-pairs attention over patches is the
// complexity baseline FOCUS's ProtoAttn replaces.
#ifndef FOCUS_BASELINES_PATCH_TST_H_
#define FOCUS_BASELINES_PATCH_TST_H_

#include <memory>
#include <vector>

#include "core/forecast_model.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

struct PatchTstConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t patch_len = 16;
  int64_t stride = 8;       // overlapping patches, as in the original
  int64_t d_model = 64;
  int64_t num_heads = 4;
  int64_t num_layers = 2;
  int64_t ffn_dim = 128;
  float dropout = 0.0f;
  uint64_t seed = 1;
};

class PatchTst : public ForecastModel {
 public:
  explicit PatchTst(const PatchTstConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "PatchTST"; }
  int64_t horizon() const override { return config_.horizon; }

  int64_t num_patches() const { return num_patches_; }

 private:
  PatchTstConfig config_;
  int64_t num_patches_;
  std::shared_ptr<nn::Linear> embed_;
  Tensor positional_;  // (num_patches, d_model), learned
  std::vector<std::shared_ptr<nn::TransformerEncoderLayer>> layers_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_PATCH_TST_H_
