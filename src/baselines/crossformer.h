// Crossformer-lite (Zhang & Yan, ICLR 2023): dimension-segment-wise (DSW)
// patch embedding followed by Two-Stage Attention — stage 1 attends across
// time within each entity, stage 2 attends across entities at each temporal
// position — then a flatten head. Captures the cross-dimension dependency
// mechanism that distinguishes Crossformer from channel-independent models.
#ifndef FOCUS_BASELINES_CROSSFORMER_H_
#define FOCUS_BASELINES_CROSSFORMER_H_

#include <memory>

#include "core/forecast_model.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

struct CrossformerConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t patch_len = 16;  // non-overlapping DSW segments
  int64_t d_model = 64;
  int64_t num_heads = 4;
  int64_t ffn_dim = 128;
  uint64_t seed = 1;
};

class CrossformerLite : public ForecastModel {
 public:
  explicit CrossformerLite(const CrossformerConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "Crossformer"; }
  int64_t horizon() const override { return config_.horizon; }

 private:
  CrossformerConfig config_;
  int64_t num_patches_;
  std::shared_ptr<nn::Linear> embed_;
  Tensor positional_;
  std::shared_ptr<nn::MultiheadSelfAttention> time_attn_;
  std::shared_ptr<nn::MultiheadSelfAttention> dim_attn_;
  std::shared_ptr<nn::LayerNorm> norm1_, norm2_, norm3_;
  std::shared_ptr<nn::FeedForward> ffn_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_CROSSFORMER_H_
