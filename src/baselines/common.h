// Shared helpers for the baseline reimplementations.
#ifndef FOCUS_BASELINES_COMMON_H_
#define FOCUS_BASELINES_COMMON_H_

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace focus {
namespace baselines {

// Extracts (possibly overlapping) patches from rows: x (R, L) ->
// (R, num_patches, patch_len) with the given stride.
inline Tensor ExtractPatches(const Tensor& x, int64_t patch_len,
                             int64_t stride) {
  FOCUS_CHECK_EQ(x.dim(), 2);
  const int64_t rows = x.size(0), len = x.size(1);
  FOCUS_CHECK(patch_len <= len) << "patch longer than sequence";
  const int64_t num_patches = (len - patch_len) / stride + 1;
  std::vector<Tensor> slices;
  slices.reserve(static_cast<size_t>(num_patches));
  for (int64_t i = 0; i < num_patches; ++i) {
    slices.push_back(
        Slice(x, 1, i * stride, i * stride + patch_len)
            .Reshape({rows, 1, patch_len}));
  }
  return Cat(slices, 1);
}

// Centered moving average with replicate padding along the last dim of a
// (R, L) tensor; kernel must be odd. Used by DLinear's series decomposition.
inline Tensor MovingAverage(const Tensor& x, int64_t kernel) {
  FOCUS_CHECK_EQ(x.dim(), 2);
  FOCUS_CHECK_EQ(kernel % 2, 1) << "moving-average kernel must be odd";
  const int64_t rows = x.size(0), len = x.size(1);
  const int64_t half = kernel / 2;
  // Replicate-pad the edges.
  Tensor front = BroadcastTo(Slice(x, 1, 0, 1), {rows, half});
  Tensor back = BroadcastTo(Slice(x, 1, len - 1, len), {rows, half});
  Tensor padded = Cat({front, x, back}, 1);  // (R, L + 2*half)
  // Average via a fixed (non-trainable) convolution.
  Tensor weight = Tensor::Full({1, 1, kernel}, 1.0f / kernel);
  Tensor y = Conv1d(padded.Reshape({rows, 1, len + 2 * half}), weight,
                    Tensor());
  return y.Reshape({rows, len});
}

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_COMMON_H_
