#include "baselines/timesnet.h"

#include <cmath>

#include "data/instance_norm.h"
#include "tensor/ops.h"

namespace focus {
namespace baselines {

TimesNetLite::TimesNetLite(const TimesNetConfig& config) : config_(config) {
  Rng rng(config.seed);
  const int64_t c = config.channels;
  const float b1 = 1.0f / 3.0f;  // fan-in 1*3*3
  conv1_w_ = RegisterParameter(
      "conv1_w", Tensor::RandUniform({c, 1, 3, 3}, rng, -b1, b1));
  conv1_b_ = RegisterParameter("conv1_b", Tensor::Zeros({c}));
  const float b2 = 1.0f / std::sqrt(static_cast<float>(c * 9));
  conv2_w_ = RegisterParameter(
      "conv2_w", Tensor::RandUniform({1, c, 3, 3}, rng, -b2, b2));
  conv2_b_ = RegisterParameter("conv2_b", Tensor::Zeros({1}));
  head_ = std::make_shared<nn::Linear>(config.lookback, config.horizon, rng);
  RegisterModule("head", head_);
}

int64_t TimesNetLite::DetectPeriod(const Tensor& flat) const {
  const int64_t rows = flat.size(0), len = flat.size(1);
  // Mean series across the batch.
  std::vector<double> mean(static_cast<size_t>(len), 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = flat.data() + r * len;
    for (int64_t i = 0; i < len; ++i) mean[static_cast<size_t>(i)] += row[i];
  }
  double mu = 0;
  for (auto& v : mean) {
    v /= rows;
    mu += v;
  }
  mu /= len;
  double denom = 0;
  for (double v : mean) denom += (v - mu) * (v - mu);
  if (denom < 1e-9) return config_.min_period;

  int64_t best_lag = config_.min_period;
  double best = -2.0;
  for (int64_t lag = config_.min_period; lag <= len / 2; ++lag) {
    double num = 0;
    for (int64_t i = 0; i + lag < len; ++i) {
      num += (mean[static_cast<size_t>(i)] - mu) *
             (mean[static_cast<size_t>(i + lag)] - mu);
    }
    const double ac = num / denom;
    if (ac > best) {
      best = ac;
      best_lag = lag;
    }
  }
  return best_lag;
}

Tensor TimesNetLite::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "TimesNet expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1), l = x.size(2);

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);
  Tensor flat = Reshape(xn, {b * n, l});

  // Fold into (cycles x period) and run the 2-D inception block.
  const int64_t period = DetectPeriod(flat);
  const int64_t cycles = (l + period - 1) / period;
  const int64_t padded = cycles * period;
  Tensor padded_flat = flat;
  if (padded > l) {
    padded_flat = Cat({flat, Tensor::Zeros({b * n, padded - l})}, 1);
  }
  Tensor grid = Reshape(padded_flat, {b * n, 1, cycles, period});
  Tensor h = Gelu(Conv2d(grid, conv1_w_, conv1_b_, 1, 1));
  h = Conv2d(h, conv2_w_, conv2_b_, 1, 1);  // back to one channel
  Tensor unfolded = Slice(Reshape(h, {b * n, padded}), 1, 0, l);

  // Residual + linear head.
  Tensor features = Add(unfolded, flat);
  Tensor forecast = head_->Forward(features);
  forecast = Reshape(forecast, {b, n, config_.horizon});
  return inorm.Denormalize(forecast);
}

}  // namespace baselines
}  // namespace focus
