// Graph-based baselines:
//
//  * MtgnnLite (Wu et al., KDD 2020): self-learned adaptive adjacency from
//    node embeddings, gated dilated temporal convolutions, and mix-hop
//    graph propagation.
//  * GraphWaveNetLite (Wu et al., IJCAI 2019): adaptive adjacency with
//    forward/backward supports, stacked gated dilated causal TCN blocks
//    with skip connections, and a graph-convolution mixing stage.
//
// Both keep the defining mechanisms (learned graph + TCN receptive field)
// at a width scaled to this repo's synthetic benchmarks.
#ifndef FOCUS_BASELINES_GRAPH_MODELS_H_
#define FOCUS_BASELINES_GRAPH_MODELS_H_

#include <memory>
#include <vector>

#include "core/forecast_model.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

// Learned adjacency: softmax(relu(E1 E2^T)) over N nodes.
class AdaptiveAdjacency : public nn::Module {
 public:
  AdaptiveAdjacency(int64_t num_nodes, int64_t embed_dim, Rng& rng);

  // Returns the (N, N) row-stochastic adjacency (recomputed each call so
  // gradients flow into the node embeddings).
  Tensor Forward();

 private:
  Tensor e1_, e2_;
};

// One gated temporal-convolution block: tanh(conv) * sigmoid(conv), with a
// 1x1 residual. Operates on (R, C, L) and preserves length via padding.
class GatedTcnBlock : public nn::Module {
 public:
  GatedTcnBlock(int64_t channels, int64_t kernel, int64_t dilation, Rng& rng);

  Tensor Forward(const Tensor& x);

 private:
  int64_t padding_;
  int64_t dilation_;
  Tensor filter_w_, filter_b_, gate_w_, gate_b_;
};

struct MtgnnConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t num_entities = 8;
  int64_t channels = 16;
  int64_t node_embed_dim = 8;
  uint64_t seed = 1;
};

class MtgnnLite : public ForecastModel {
 public:
  explicit MtgnnLite(const MtgnnConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "MTGNN"; }
  int64_t horizon() const override { return config_.horizon; }

 private:
  MtgnnConfig config_;
  std::shared_ptr<AdaptiveAdjacency> adjacency_;
  Tensor input_w_, input_b_;  // 1x1 conv into channels
  std::shared_ptr<GatedTcnBlock> tcn1_, tcn2_;
  std::shared_ptr<nn::Linear> mixhop_;  // (3*C -> C) over [H, AH, A^2 H]
  std::shared_ptr<nn::Linear> head_;
};

struct GraphWaveNetConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t num_entities = 8;
  int64_t channels = 16;
  int64_t skip_channels = 32;
  int64_t node_embed_dim = 8;
  uint64_t seed = 1;
};

class GraphWaveNetLite : public ForecastModel {
 public:
  explicit GraphWaveNetLite(const GraphWaveNetConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "GraphWaveNet"; }
  int64_t horizon() const override { return config_.horizon; }

 private:
  GraphWaveNetConfig config_;
  std::shared_ptr<AdaptiveAdjacency> adjacency_;
  Tensor input_w_, input_b_;
  std::vector<std::shared_ptr<GatedTcnBlock>> blocks_;
  std::vector<std::shared_ptr<nn::Linear>> skips_;  // per-block 1x1 to skip
  std::shared_ptr<nn::Linear> graph_mix_;  // (2*C -> C) over [A H, A^T H]
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_GRAPH_MODELS_H_
