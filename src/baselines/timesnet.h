// TimesNet-lite (Wu et al., ICLR 2023): detects the dominant period of the
// input, folds the 1-D series into a 2-D (cycles x period) tensor, applies
// an inception-style 2-D convolution block, unfolds back and adds a
// residual — the "Temporal 2D-Variation Modeling" mechanism.
#ifndef FOCUS_BASELINES_TIMESNET_H_
#define FOCUS_BASELINES_TIMESNET_H_

#include <memory>

#include "core/forecast_model.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

struct TimesNetConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t channels = 8;   // inception width
  int64_t min_period = 4;
  uint64_t seed = 1;
};

class TimesNetLite : public ForecastModel {
 public:
  explicit TimesNetLite(const TimesNetConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "TimesNet"; }
  int64_t horizon() const override { return config_.horizon; }

  // Dominant period of a (R, L) batch via mean autocorrelation; exposed for
  // testing. Returns a value in [min_period, L/2].
  int64_t DetectPeriod(const Tensor& flat) const;

 private:
  TimesNetConfig config_;
  Tensor conv1_w_, conv1_b_;  // (C, 1, 3, 3)
  Tensor conv2_w_, conv2_b_;  // (1, C, 3, 3)
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_TIMESNET_H_
