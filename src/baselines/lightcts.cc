#include "baselines/lightcts.h"

#include <cmath>

#include "data/instance_norm.h"
#include "tensor/ops.h"

namespace focus {
namespace baselines {

LightCtsLite::LightCtsLite(const LightCtsConfig& config) : config_(config) {
  FOCUS_CHECK_EQ(config.channels % 2, 0) << "channels must be even (groups=2)";
  Rng rng(config.seed);
  const int64_t c = config.channels;
  input_w_ = RegisterParameter(
      "input_w", Tensor::RandUniform({c}, rng, -1.0f, 1.0f));
  input_b_ = RegisterParameter("input_b", Tensor::Zeros({c}));
  // Grouped (groups=2) temporal convolutions: each kernel sees only half the
  // channels — LightCTS's parameter-light TCN trick.
  const int64_t half = c / 2;
  const float bound = 1.0f / std::sqrt(static_cast<float>(half * 3));
  tcn1_w_ = RegisterParameter(
      "tcn1_w", Tensor::RandUniform({c, half, 3}, rng, -bound, bound));
  tcn1_b_ = RegisterParameter("tcn1_b", Tensor::Zeros({c}));
  tcn2_w_ = RegisterParameter(
      "tcn2_w", Tensor::RandUniform({c, half, 3}, rng, -bound, bound));
  tcn2_b_ = RegisterParameter("tcn2_b", Tensor::Zeros({c}));
  entity_attn_ = std::make_shared<nn::MultiheadSelfAttention>(
      c, config.num_heads, rng);
  norm_ = std::make_shared<nn::LayerNorm>(c);
  head_ = std::make_shared<nn::Linear>(c, config.horizon, rng);
  RegisterModule("entity_attn", entity_attn_);
  RegisterModule("norm", norm_);
  RegisterModule("head", head_);
}

namespace {

// Conv with groups=2: splits channels in half, convolves each group with its
// half of the weights, concatenates. weight: (Cout, Cin/2, K).
Tensor GroupedConv(const Tensor& x, const Tensor& w, const Tensor& b,
                   int64_t padding) {
  const int64_t cin = x.size(1);
  const int64_t cout = w.size(0);
  Tensor x1 = Slice(x, 1, 0, cin / 2);
  Tensor x2 = Slice(x, 1, cin / 2, cin);
  Tensor w1 = Slice(w, 0, 0, cout / 2);
  Tensor w2 = Slice(w, 0, cout / 2, cout);
  Tensor b1 = Slice(b, 0, 0, cout / 2);
  Tensor b2 = Slice(b, 0, cout / 2, cout);
  return Cat({Conv1d(x1, w1, b1, 1, padding), Conv1d(x2, w2, b2, 1, padding)},
             1);
}

}  // namespace

Tensor LightCtsLite::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "LightCTS expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1), l = x.size(2);
  const int64_t c = config_.channels;

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);

  // L-TCN on each entity's series.
  Tensor h = Reshape(xn, {b * n, 1, l});
  h = Add(Mul(BroadcastTo(h, {b * n, c, l}), Reshape(input_w_, {c, 1})),
          Reshape(input_b_, {c, 1}));
  h = Gelu(GroupedConv(h, tcn1_w_, tcn1_b_, 1));
  h = Gelu(GroupedConv(h, tcn2_w_, tcn2_b_, 1));

  // Last-shot compression: keep only the final temporal state.
  Tensor last = Slice(h, 2, l - 1, l).Reshape({b, n, c});

  // Lightweight attention across entities, then the head.
  Tensor mixed = norm_->Forward(Add(last, entity_attn_->Forward(last)));
  Tensor forecast = head_->Forward(mixed);  // (b, n, horizon)
  return inorm.Denormalize(forecast);
}

}  // namespace baselines
}  // namespace focus
