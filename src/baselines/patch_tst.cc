#include "baselines/patch_tst.h"

#include <cmath>

#include "baselines/common.h"
#include "data/instance_norm.h"

namespace focus {
namespace baselines {

PatchTst::PatchTst(const PatchTstConfig& config) : config_(config) {
  FOCUS_CHECK_GE(config.lookback, config.patch_len);
  num_patches_ = (config.lookback - config.patch_len) / config.stride + 1;
  Rng rng(config.seed);
  embed_ = std::make_shared<nn::Linear>(config.patch_len, config.d_model, rng);
  RegisterModule("embed", embed_);
  const float bound = 1.0f / std::sqrt(static_cast<float>(config.d_model));
  positional_ = RegisterParameter(
      "positional", Tensor::RandUniform({num_patches_, config.d_model}, rng,
                                        -bound, bound));
  for (int64_t i = 0; i < config.num_layers; ++i) {
    auto layer = std::make_shared<nn::TransformerEncoderLayer>(
        config.d_model, config.num_heads, config.ffn_dim, rng, config.dropout);
    RegisterModule("encoder" + std::to_string(i), layer);
    layers_.push_back(std::move(layer));
  }
  head_ = std::make_shared<nn::Linear>(num_patches_ * config.d_model,
                                       config.horizon, rng);
  RegisterModule("head", head_);
}

Tensor PatchTst::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "PatchTST expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1);

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);

  // Channel independence: each entity's window is a separate sequence.
  Tensor flat = Reshape(xn, {b * n, config_.lookback});
  Tensor patches = ExtractPatches(flat, config_.patch_len, config_.stride);
  Tensor tokens = Add(embed_->Forward(patches), positional_);
  for (auto& layer : layers_) tokens = layer->Forward(tokens);

  Tensor forecast = head_->Forward(
      Reshape(tokens, {b * n, num_patches_ * config_.d_model}));
  forecast = Reshape(forecast, {b, n, config_.horizon});
  return inorm.Denormalize(forecast);
}

}  // namespace baselines
}  // namespace focus
