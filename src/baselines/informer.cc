#include "baselines/informer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/common.h"
#include "data/instance_norm.h"
#include "tensor/ops.h"

namespace focus {
namespace baselines {

InformerLite::InformerLite(const InformerConfig& config)
    : config_(config), sample_rng_(config.seed ^ 0x1f0f) {
  FOCUS_CHECK_EQ(config.lookback % config.patch_len, 0)
      << "patch_len must divide lookback";
  num_patches_ = config.lookback / config.patch_len;
  Rng rng(config.seed);
  embed_ = std::make_shared<nn::Linear>(config.patch_len, config.d_model, rng);
  const float bound = 1.0f / std::sqrt(static_cast<float>(config.d_model));
  positional_ = RegisterParameter(
      "positional", Tensor::RandUniform({num_patches_, config.d_model}, rng,
                                        -bound, bound));
  wq_ = std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  wk_ = std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  wv_ = std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  wo_ = std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  norm1_ = std::make_shared<nn::LayerNorm>(config.d_model);
  norm2_ = std::make_shared<nn::LayerNorm>(config.d_model);
  ffn_ = std::make_shared<nn::FeedForward>(config.d_model, 2 * config.d_model,
                                           rng);
  head_ = std::make_shared<nn::Linear>(num_patches_ * config.d_model,
                                       config.horizon, rng);
  RegisterModule("embed", embed_);
  RegisterModule("wq", wq_);
  RegisterModule("wk", wk_);
  RegisterModule("wv", wv_);
  RegisterModule("wo", wo_);
  RegisterModule("norm1", norm1_);
  RegisterModule("norm2", norm2_);
  RegisterModule("ffn", ffn_);
  RegisterModule("head", head_);
}

int64_t InformerLite::ActiveQueries(int64_t num_tokens) const {
  const int64_t u = static_cast<int64_t>(
      std::ceil(config_.sparsity_factor * std::log(
                    std::max<double>(2.0, static_cast<double>(num_tokens)))));
  return std::min(num_tokens, std::max<int64_t>(u, 1));
}

Tensor InformerLite::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "Informer expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1);
  const int64_t l = num_patches_, d = config_.d_model;

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);

  Tensor tokens = embed_->Forward(
      Reshape(xn, {b * n, l, config_.patch_len}));
  tokens = Add(tokens, positional_);

  Tensor q = wq_->Forward(tokens);
  Tensor k = wk_->Forward(tokens);
  Tensor v = wv_->Forward(tokens);

  // --- ProbSparse selection (non-differentiable, batch-shared). ----------
  // Sparsity measure M(q_i) = max_j s_ij - mean_j s_ij over sampled keys,
  // averaged over the batch; the top-u queries attend fully.
  const int64_t u = ActiveQueries(l);
  std::vector<double> measure(static_cast<size_t>(l), 0.0);
  {
    NoGradGuard no_grad;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const float* pq = q.data();
    const float* pk = k.data();
    const int64_t rows = b * n;
    // Key subsample of size ~u*ln(l) as in the paper; with small l we use
    // all keys (the estimate is then exact).
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t i = 0; i < l; ++i) {
        double max_s = -1e30, mean_s = 0;
        for (int64_t j = 0; j < l; ++j) {
          double s = 0;
          for (int64_t c = 0; c < d; ++c) {
            s += pq[(r * l + i) * d + c] * pk[(r * l + j) * d + c];
          }
          s *= scale;
          max_s = std::max(max_s, s);
          mean_s += s;
        }
        measure[static_cast<size_t>(i)] += max_s - mean_s / l;
      }
    }
  }
  std::vector<int64_t> order(static_cast<size_t>(l));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t c) {
    return measure[static_cast<size_t>(a)] > measure[static_cast<size_t>(c)];
  });
  std::vector<int64_t> active(order.begin(), order.begin() + u);
  std::sort(active.begin(), active.end());

  // --- Sparse attention. --------------------------------------------------
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  Tensor q_active = IndexSelect(q, 1, active);              // (R, u, d)
  Tensor attn = SoftmaxLastDim(
      MulScalar(MatMul(q_active, Transpose(k, 1, 2)), scale));
  Tensor context = MatMul(attn, v);                         // (R, u, d)

  // Lazy queries output mean(V); active rows are scattered back via a
  // one-hot (l, u) selector so the whole path stays differentiable.
  Tensor scatter = Tensor::Zeros({l, u});
  Tensor active_mask = Tensor::Zeros({l, 1});
  for (int64_t i = 0; i < u; ++i) {
    scatter.data()[active[static_cast<size_t>(i)] * u + i] = 1.0f;
    active_mask.data()[active[static_cast<size_t>(i)]] = 1.0f;
  }
  Tensor mean_v = BroadcastTo(Mean(v, 1, /*keepdim=*/true),
                              {b * n, l, d});
  Tensor lazy_part = Mul(mean_v, AddScalar(Neg(active_mask), 1.0f));
  Tensor attn_out = Add(MatMul(scatter, context), lazy_part);

  // Residual + FFN block, flatten head.
  Tensor h = norm1_->Forward(Add(tokens, wo_->Forward(attn_out)));
  h = norm2_->Forward(Add(h, ffn_->Forward(h)));
  Tensor forecast = head_->Forward(Reshape(h, {b * n, l * d}));
  forecast = Reshape(forecast, {b, n, config_.horizon});
  return inorm.Denormalize(forecast);
}

}  // namespace baselines
}  // namespace focus
