#include "baselines/graph_models.h"

#include <cmath>

#include "data/instance_norm.h"
#include "tensor/ops.h"

namespace focus {
namespace baselines {

AdaptiveAdjacency::AdaptiveAdjacency(int64_t num_nodes, int64_t embed_dim,
                                     Rng& rng) {
  e1_ = RegisterParameter("e1",
                          Tensor::Randn({num_nodes, embed_dim}, rng, 0.5f));
  e2_ = RegisterParameter("e2",
                          Tensor::Randn({num_nodes, embed_dim}, rng, 0.5f));
}

Tensor AdaptiveAdjacency::Forward() {
  return SoftmaxLastDim(Relu(MatMul(e1_, Transpose(e2_, 0, 1))));
}

GatedTcnBlock::GatedTcnBlock(int64_t channels, int64_t kernel,
                             int64_t dilation, Rng& rng)
    : padding_((kernel - 1) * dilation / 2), dilation_(dilation) {
  const float bound =
      1.0f / std::sqrt(static_cast<float>(channels * kernel));
  filter_w_ = RegisterParameter(
      "filter_w",
      Tensor::RandUniform({channels, channels, kernel}, rng, -bound, bound));
  filter_b_ = RegisterParameter("filter_b", Tensor::Zeros({channels}));
  gate_w_ = RegisterParameter(
      "gate_w",
      Tensor::RandUniform({channels, channels, kernel}, rng, -bound, bound));
  gate_b_ = RegisterParameter("gate_b", Tensor::Zeros({channels}));
}

Tensor GatedTcnBlock::Forward(const Tensor& x) {
  Tensor filter =
      Tanh(Conv1d(x, filter_w_, filter_b_, 1, padding_, dilation_));
  Tensor gate =
      Sigmoid(Conv1d(x, gate_w_, gate_b_, 1, padding_, dilation_));
  Tensor h = Mul(filter, gate);
  // Residual (lengths match thanks to the symmetric padding).
  FOCUS_CHECK_EQ(h.size(2), x.size(2));
  return Add(h, x);
}

namespace {

// 1x1 "conv" into C channels implemented as a parameterized expansion:
// (R, 1, L) -> (R, C, L) via outer product with a (C) weight + bias.
Tensor ExpandChannels(const Tensor& x, const Tensor& w, const Tensor& b) {
  const int64_t r = x.size(0), l = x.size(2);
  const int64_t c = w.numel();
  // (R, 1, L) * (C, 1) broadcast -> (R, C, L)
  Tensor wc = Reshape(w, {c, 1});
  Tensor bc = Reshape(b, {c, 1});
  return Add(Mul(BroadcastTo(x, {r, c, l}), wc), bc);
}

}  // namespace

MtgnnLite::MtgnnLite(const MtgnnConfig& config) : config_(config) {
  Rng rng(config.seed);
  adjacency_ = std::make_shared<AdaptiveAdjacency>(
      config.num_entities, config.node_embed_dim, rng);
  RegisterModule("adjacency", adjacency_);
  input_w_ = RegisterParameter(
      "input_w", Tensor::RandUniform({config.channels}, rng, -1.0f, 1.0f));
  input_b_ = RegisterParameter("input_b", Tensor::Zeros({config.channels}));
  tcn1_ = std::make_shared<GatedTcnBlock>(config.channels, 3, 1, rng);
  tcn2_ = std::make_shared<GatedTcnBlock>(config.channels, 3, 2, rng);
  RegisterModule("tcn1", tcn1_);
  RegisterModule("tcn2", tcn2_);
  mixhop_ =
      std::make_shared<nn::Linear>(3 * config.channels, config.channels, rng);
  head_ = std::make_shared<nn::Linear>(config.channels, config.horizon, rng);
  RegisterModule("mixhop", mixhop_);
  RegisterModule("head", head_);
}

Tensor MtgnnLite::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "MTGNN expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(1), config_.num_entities);
  const int64_t b = x.size(0), n = x.size(1), l = x.size(2);
  const int64_t c = config_.channels;

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);

  // Temporal path: gated dilated TCN per node.
  Tensor h = ExpandChannels(Reshape(xn, {b * n, 1, l}), input_w_, input_b_);
  h = tcn1_->Forward(h);
  h = tcn2_->Forward(h);
  // Temporal pooling to node features.
  Tensor features = Mean(h, 2, /*keepdim=*/false);  // (b*n, c)
  features = Reshape(features, {b, n, c});

  // Mix-hop graph propagation: [H, AH, A^2 H] -> linear -> relu.
  Tensor adj = adjacency_->Forward();            // (n, n)
  Tensor h1 = MatMul(adj, features);             // broadcast over batch
  Tensor h2 = MatMul(adj, h1);
  Tensor mixed = Relu(mixhop_->Forward(Cat({features, h1, h2}, -1)));

  Tensor forecast = head_->Forward(mixed);       // (b, n, horizon)
  return inorm.Denormalize(forecast);
}

GraphWaveNetLite::GraphWaveNetLite(const GraphWaveNetConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  adjacency_ = std::make_shared<AdaptiveAdjacency>(
      config.num_entities, config.node_embed_dim, rng);
  RegisterModule("adjacency", adjacency_);
  input_w_ = RegisterParameter(
      "input_w", Tensor::RandUniform({config.channels}, rng, -1.0f, 1.0f));
  input_b_ = RegisterParameter("input_b", Tensor::Zeros({config.channels}));
  const int64_t dilations[] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    auto block =
        std::make_shared<GatedTcnBlock>(config.channels, 3, dilations[i], rng);
    RegisterModule("block" + std::to_string(i), block);
    blocks_.push_back(block);
    auto skip = std::make_shared<nn::Linear>(config.channels,
                                             config.skip_channels, rng);
    RegisterModule("skip" + std::to_string(i), skip);
    skips_.push_back(skip);
  }
  graph_mix_ =
      std::make_shared<nn::Linear>(2 * config.channels, config.channels, rng);
  head_ = std::make_shared<nn::Linear>(config.skip_channels, config.horizon,
                                       rng);
  RegisterModule("graph_mix", graph_mix_);
  RegisterModule("head", head_);
}

Tensor GraphWaveNetLite::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "GraphWaveNet expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(1), config_.num_entities);
  const int64_t b = x.size(0), n = x.size(1), l = x.size(2);
  const int64_t c = config_.channels;

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);

  Tensor h = ExpandChannels(Reshape(xn, {b * n, 1, l}), input_w_, input_b_);

  // Gated TCN stack with per-block skip connections from the pooled state.
  Tensor skip_sum;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    h = blocks_[i]->Forward(h);
    Tensor pooled = Mean(h, 2, /*keepdim=*/false);  // (b*n, c)
    Tensor skip = skips_[i]->Forward(pooled);       // (b*n, skip_c)
    skip_sum = skip_sum.defined() ? Add(skip_sum, skip) : skip;

    if (i == 1) {
      // Graph-convolution mixing mid-stack: forward + backward supports.
      Tensor features = Reshape(pooled, {b, n, c});
      Tensor adj = adjacency_->Forward();
      Tensor fwd = MatMul(adj, features);
      Tensor bwd = MatMul(Transpose(adj, 0, 1), features);
      Tensor mixed = Relu(graph_mix_->Forward(Cat({fwd, bwd}, -1)));
      // Inject the graph context back into the temporal stream.
      Tensor inject = Reshape(mixed, {b * n, c, 1});
      h = Add(h, BroadcastTo(inject, {b * n, c, h.size(2)}));
    }
  }

  Tensor forecast = head_->Forward(Relu(skip_sum));  // (b*n, horizon)
  forecast = Reshape(forecast, {b, n, config_.horizon});
  return inorm.Denormalize(forecast);
}

}  // namespace baselines
}  // namespace focus
