#include "baselines/crossformer.h"

#include <cmath>

#include "data/instance_norm.h"
#include "tensor/ops.h"

namespace focus {
namespace baselines {

CrossformerLite::CrossformerLite(const CrossformerConfig& config)
    : config_(config) {
  FOCUS_CHECK_EQ(config.lookback % config.patch_len, 0)
      << "patch_len must divide lookback";
  num_patches_ = config.lookback / config.patch_len;
  Rng rng(config.seed);
  embed_ = std::make_shared<nn::Linear>(config.patch_len, config.d_model, rng);
  RegisterModule("embed", embed_);
  const float bound = 1.0f / std::sqrt(static_cast<float>(config.d_model));
  positional_ = RegisterParameter(
      "positional", Tensor::RandUniform({num_patches_, config.d_model}, rng,
                                        -bound, bound));
  time_attn_ = std::make_shared<nn::MultiheadSelfAttention>(
      config.d_model, config.num_heads, rng);
  dim_attn_ = std::make_shared<nn::MultiheadSelfAttention>(
      config.d_model, config.num_heads, rng);
  norm1_ = std::make_shared<nn::LayerNorm>(config.d_model);
  norm2_ = std::make_shared<nn::LayerNorm>(config.d_model);
  norm3_ = std::make_shared<nn::LayerNorm>(config.d_model);
  ffn_ = std::make_shared<nn::FeedForward>(config.d_model, config.ffn_dim,
                                           rng);
  head_ = std::make_shared<nn::Linear>(num_patches_ * config.d_model,
                                       config.horizon, rng);
  RegisterModule("time_attn", time_attn_);
  RegisterModule("dim_attn", dim_attn_);
  RegisterModule("norm1", norm1_);
  RegisterModule("norm2", norm2_);
  RegisterModule("norm3", norm3_);
  RegisterModule("ffn", ffn_);
  RegisterModule("head", head_);
}

Tensor CrossformerLite::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "Crossformer expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1);
  const int64_t l = num_patches_, d = config_.d_model;

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);

  // DSW embedding: per-entity non-overlapping segments.
  Tensor tokens = embed_->Forward(
      Reshape(xn, {b * n, l, config_.patch_len}));  // (b*n, l, d)
  tokens = Add(tokens, positional_);

  // Stage 1: attention across time within each entity.
  Tensor h = norm1_->Forward(Add(tokens, time_attn_->Forward(tokens)));

  // Stage 2: attention across entities at each temporal position.
  Tensor he = Reshape(h, {b, n, l, d});
  he = Permute(he, {0, 2, 1, 3});       // (b, l, n, d)
  he = Reshape(he, {b * l, n, d});
  he = norm2_->Forward(Add(he, dim_attn_->Forward(he)));
  he = Reshape(he, {b, l, n, d});
  he = Permute(he, {0, 2, 1, 3});       // (b, n, l, d)
  he = Reshape(he, {b * n, l, d});

  // Position-wise FFN + flatten head.
  Tensor out = norm3_->Forward(Add(he, ffn_->Forward(he)));
  Tensor forecast = head_->Forward(Reshape(out, {b * n, l * d}));
  forecast = Reshape(forecast, {b, n, config_.horizon});
  return inorm.Denormalize(forecast);
}

}  // namespace baselines
}  // namespace focus
