#include "baselines/autoformer.h"

#include <algorithm>
#include <cmath>

#include "baselines/common.h"
#include "data/instance_norm.h"
#include "tensor/fft.h"
#include "tensor/ops.h"

namespace focus {
namespace baselines {

AutoformerLite::AutoformerLite(const AutoformerConfig& config)
    : config_(config) {
  kernel_ = std::min<int64_t>(config.moving_avg, config.lookback - 1);
  if (kernel_ % 2 == 0) --kernel_;
  kernel_ = std::max<int64_t>(kernel_, 3);
  Rng rng(config.seed);
  value_embed_w_ = RegisterParameter(
      "value_embed_w",
      Tensor::RandUniform({config.d_model}, rng, -1.0f, 1.0f));
  value_embed_b_ =
      RegisterParameter("value_embed_b", Tensor::Zeros({config.d_model}));
  wq_ = std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  wk_ = std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  wv_ = std::make_shared<nn::Linear>(config.d_model, config.d_model, rng);
  norm_ = std::make_shared<nn::LayerNorm>(config.d_model);
  seasonal_proj_ = std::make_shared<nn::Linear>(config.d_model, 1, rng);
  seasonal_head_ =
      std::make_shared<nn::Linear>(config.lookback, config.horizon, rng);
  trend_head_ =
      std::make_shared<nn::Linear>(config.lookback, config.horizon, rng);
  RegisterModule("wq", wq_);
  RegisterModule("wk", wk_);
  RegisterModule("wv", wv_);
  RegisterModule("norm", norm_);
  RegisterModule("seasonal_proj", seasonal_proj_);
  RegisterModule("seasonal_head", seasonal_head_);
  RegisterModule("trend_head", trend_head_);
}

namespace {

// Circular roll along dim 1 of (R, L, d) by `lag` steps (values move to
// later positions) — Autoformer's time-delay aggregation primitive.
Tensor Roll(const Tensor& v, int64_t lag, int64_t length) {
  if (lag == 0) return v;
  Tensor tail = Slice(v, 1, length - lag, length);
  Tensor head = Slice(v, 1, 0, length - lag);
  return Cat({tail, head}, 1);
}

}  // namespace

Tensor AutoformerLite::Forward(const Tensor& x) {
  FOCUS_CHECK_EQ(x.dim(), 3) << "Autoformer expects (B, N, L)";
  FOCUS_CHECK_EQ(x.size(2), config_.lookback);
  const int64_t b = x.size(0), n = x.size(1), l = x.size(2);
  const int64_t d = config_.d_model;

  data::InstanceNorm inorm;
  Tensor xn = inorm.Normalize(x);
  Tensor flat = Reshape(xn, {b * n, l});

  // Series decomposition: trend via moving average, seasonal residual.
  Tensor trend = MovingAverage(flat, kernel_);
  Tensor seasonal = Sub(flat, trend);

  // Per-step value embedding of the seasonal part: (R, L) -> (R, L, d).
  Tensor steps = Reshape(seasonal, {b * n, l, 1});
  Tensor emb = Add(Mul(BroadcastTo(steps, {b * n, l, d}), value_embed_w_),
                   value_embed_b_);

  Tensor q = wq_->Forward(emb);
  Tensor k = wk_->Forward(emb);
  Tensor v = wv_->Forward(emb);

  // --- Auto-Correlation: top-k delays from the FFT autocorrelation of the
  // (channel-mean, batch-mean) q/k series; non-differentiable selection,
  // weights from the autocorrelation scores. ------------------------------
  std::vector<float> mean_series(static_cast<size_t>(l), 0.0f);
  {
    NoGradGuard no_grad;
    Tensor qk = Mean(Mul(q, k), -1, /*keepdim=*/false);  // (R, L)
    const float* p = qk.data();
    const int64_t rows = b * n;
    for (int64_t i = 0; i < l; ++i) {
      double acc = 0;
      for (int64_t r = 0; r < rows; ++r) acc += p[r * l + i];
      mean_series[static_cast<size_t>(i)] =
          static_cast<float>(acc / rows);
    }
  }
  std::vector<int64_t> lags =
      fft::TopPeriods(mean_series.data(), l, config_.top_k_lags,
                      /*min_period=*/1);
  if (lags.empty()) lags.push_back(1);

  // Differentiable aggregation weights: per-lag correlation scores
  // s_tau = mean(Q * Roll(K, tau)) -> softmax. Gradients reach W_Q / W_K
  // through the scores; only the top-k lag *selection* is discrete.
  std::vector<Tensor> scores;
  const float score_scale = std::sqrt(static_cast<float>(d));
  for (int64_t lag : lags) {
    scores.push_back(
        MulScalar(MeanAll(Mul(q, Roll(k, lag, l))), score_scale));
  }
  Tensor weights = SoftmaxLastDim(
      Reshape(Cat(scores, 0), {1, static_cast<int64_t>(lags.size())}));

  // Time-delay aggregation: sum_k w_k * Roll(V, lag_k).
  Tensor aggregated;
  for (size_t i = 0; i < lags.size(); ++i) {
    Tensor w = Reshape(Slice(weights, 1, static_cast<int64_t>(i),
                             static_cast<int64_t>(i) + 1),
                       {1});
    Tensor rolled = Mul(Roll(v, lags[i], l), w);
    aggregated = aggregated.defined() ? Add(aggregated, rolled) : rolled;
  }

  // Residual + norm, then per-step projection back to a scalar series.
  Tensor h = norm_->Forward(Add(emb, aggregated));
  Tensor season_repr =
      Reshape(seasonal_proj_->Forward(h), {b * n, l});  // (R, L)

  // Dual heads: seasonal forecast + trend forecast (progressive decomp).
  Tensor forecast = Add(seasonal_head_->Forward(season_repr),
                        trend_head_->Forward(trend));
  forecast = Reshape(forecast, {b, n, config_.horizon});
  return inorm.Denormalize(forecast);
}

}  // namespace baselines
}  // namespace focus
