// Autoformer-lite (Wu et al., NeurIPS 2021): progressive series
// decomposition + the Auto-Correlation mechanism — dependencies are
// discovered at the *period* level by picking the top-k time delays from
// the FFT autocorrelation and aggregating time-rolled values, O(L log L).
// Another efficiency-focused related-work system the paper contrasts with
// (Sec. IX).
//
// Extra baseline: not part of the paper's Table III zoo.
#ifndef FOCUS_BASELINES_AUTOFORMER_H_
#define FOCUS_BASELINES_AUTOFORMER_H_

#include <memory>

#include "core/forecast_model.h"
#include "nn/layers.h"

namespace focus {
namespace baselines {

struct AutoformerConfig {
  int64_t lookback = 512;
  int64_t horizon = 96;
  int64_t d_model = 16;    // per-step embedding width
  int64_t top_k_lags = 3;  // delays aggregated by Auto-Correlation
  int64_t moving_avg = 25; // decomposition kernel
  uint64_t seed = 1;
};

class AutoformerLite : public ForecastModel {
 public:
  explicit AutoformerLite(const AutoformerConfig& config);

  Tensor Forward(const Tensor& x) override;
  std::string name() const override { return "Autoformer"; }
  int64_t horizon() const override { return config_.horizon; }

 private:
  AutoformerConfig config_;
  int64_t kernel_;
  Tensor value_embed_w_, value_embed_b_;  // scalar step -> d channels
  std::shared_ptr<nn::Linear> wq_, wk_, wv_;
  std::shared_ptr<nn::LayerNorm> norm_;
  std::shared_ptr<nn::Linear> seasonal_proj_;  // d -> 1 per step
  std::shared_ptr<nn::Linear> seasonal_head_;  // L -> horizon
  std::shared_ptr<nn::Linear> trend_head_;     // L -> horizon
};

}  // namespace baselines
}  // namespace focus

#endif  // FOCUS_BASELINES_AUTOFORMER_H_
