// Offline segment clustering (paper Sec. V, Algorithm 1).
//
// The training series is cut into length-p segments; segments are assigned
// to prototypes by the composite distance of Eq. 6 (squared Euclidean plus
// alpha * (1 - Pearson correlation)), and prototypes are refined with AdamW
// on the combined objective of Eq. 10:
//     L = L_rec + alpha * L_corr
//     L_rec  = sum_j ||c_j - mean(B_j)||^2                      (Eq. 8)
//     L_corr = -sum_j (1/|B_j|) sum_{s in B_j} corr(s, c_j)     (Eq. 9)
// Gradients are computed analytically (the objective is simple enough that
// the autograd tape would only add overhead).
//
// Segments are z-normalized into shape space before clustering by default;
// the paper's Fig. 11 re-scales prototypes by local mean/std, implying
// shape-space prototypes (see DESIGN.md Sec. 3).
#ifndef FOCUS_CLUSTER_SEGMENT_CLUSTERING_H_
#define FOCUS_CLUSTER_SEGMENT_CLUSTERING_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace focus {
namespace cluster {

struct ClusteringConfig {
  int64_t segment_length = 16;  // p
  int64_t num_prototypes = 16;  // k
  float alpha = 0.2f;           // correlation weight (paper Sec. VIII-A)
  int64_t max_iters = 25;       // outer assign/refine iterations
  int64_t refine_steps = 10;    // AdamW steps per outer iteration
  float lr = 0.05f;             // AdamW learning rate for prototypes
  float weight_decay = 0.0f;
  // Fig. 8 ablation: false = "Rec Only" (alpha treated as 0 everywhere).
  bool use_correlation = true;
  bool normalize_segments = true;
  // Convergence: stop when assignments stop changing or the relative
  // objective improvement falls below this threshold.
  double tolerance = 1e-4;
  uint64_t seed = 1;
};

// Pearson correlation coefficient of two length-n vectors; returns 0 when
// either vector is (numerically) constant.
float PearsonCorrelation(const float* a, const float* b, int64_t n);

// Composite Eq. 6 distance between a segment and a prototype.
float CompositeDistance(const float* segment, const float* prototype,
                        int64_t p, float alpha);

// Cuts (N, T) values into non-overlapping length-p segments, row-major by
// entity then time: segment index = e * (T/p) + i. Remainder steps beyond
// the last full segment are dropped. Optionally z-normalizes each segment.
Tensor ExtractSegments(const Tensor& values, int64_t p, bool normalize);

struct ClusteringResult {
  Tensor prototypes;                 // (k, p)
  std::vector<int64_t> assignments;  // per input segment
  std::vector<double> objective_history;  // Eq. 10 after each outer iter
  int64_t iterations = 0;
  double seconds = 0.0;
};

class SegmentClustering {
 public:
  explicit SegmentClustering(ClusteringConfig config);

  // `segments` is (num_segments, p).
  ClusteringResult Fit(const Tensor& segments);

  // Nearest prototype per segment under Eq. 6 (alpha = 0 reduces to L2).
  static std::vector<int64_t> Assign(const Tensor& segments,
                                     const Tensor& prototypes, float alpha);

  const ClusteringConfig& config() const { return config_; }

 private:
  // k-means++ style seeding under the composite distance.
  Tensor InitPrototypes(const Tensor& segments, Rng& rng) const;

  // Eq. 10 objective for fixed assignments.
  double Objective(const Tensor& segments, const Tensor& prototypes,
                   const std::vector<int64_t>& assignments) const;

  ClusteringConfig config_;
};

// Reconstructs a (normalized) series from its prototype assignments plus
// per-segment local mean/std — the paper's Fig. 11 approximation. `values`
// is a single series of length T; returns the reconstruction of the first
// floor(T/p)*p steps.
Tensor ApproximateSeries(const Tensor& series, const Tensor& prototypes,
                         float alpha);

// Binary prototype persistence (offline phase output consumed online).
Status SavePrototypes(const std::string& path, const Tensor& prototypes);
StatusOr<Tensor> LoadPrototypes(const std::string& path);

}  // namespace cluster
}  // namespace focus

#endif  // FOCUS_CLUSTER_SEGMENT_CLUSTERING_H_
