#include "cluster/segment_clustering.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>

#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "utils/check.h"
#include "utils/stopwatch.h"

namespace focus {
namespace cluster {

float PearsonCorrelation(const float* a, const float* b, int64_t n) {
  double ma = 0, mb = 0;
  for (int64_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double num = 0, da = 0, db = 0;
  for (int64_t i = 0; i < n; ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da < 1e-12 || db < 1e-12) return 0.0f;
  return static_cast<float>(num / std::sqrt(da * db));
}

float CompositeDistance(const float* segment, const float* prototype,
                        int64_t p, float alpha) {
  double sq = 0;
  for (int64_t i = 0; i < p; ++i) {
    const double d = segment[i] - prototype[i];
    sq += d * d;
  }
  if (alpha == 0.0f) return static_cast<float>(sq);
  const float corr = PearsonCorrelation(segment, prototype, p);
  return static_cast<float>(sq) + alpha * (1.0f - corr);
}

Tensor ExtractSegments(const Tensor& values, int64_t p, bool normalize) {
  FOCUS_CHECK_EQ(values.dim(), 2) << "ExtractSegments expects (N, T)";
  FOCUS_CHECK_GT(p, 1);
  const int64_t n = values.size(0), t = values.size(1);
  const int64_t per_entity = t / p;
  FOCUS_CHECK_GT(per_entity, 0) << "series shorter than one segment";
  const int64_t total = n * per_entity;

  Tensor segments = Tensor::Empty({total, p});
  for (int64_t e = 0; e < n; ++e) {
    const float* row = values.data() + e * t;
    for (int64_t i = 0; i < per_entity; ++i) {
      float* dst = segments.data() + (e * per_entity + i) * p;
      std::memcpy(dst, row + i * p, static_cast<size_t>(p) * sizeof(float));
      if (normalize) {
        double mean = 0;
        for (int64_t j = 0; j < p; ++j) mean += dst[j];
        mean /= p;
        double var = 0;
        for (int64_t j = 0; j < p; ++j) {
          var += (dst[j] - mean) * (dst[j] - mean);
        }
        const float inv_std =
            1.0f / (static_cast<float>(std::sqrt(var / p)) + 1e-4f);
        for (int64_t j = 0; j < p; ++j) {
          dst[j] = (dst[j] - static_cast<float>(mean)) * inv_std;
        }
      }
    }
  }
  return segments;
}

SegmentClustering::SegmentClustering(ClusteringConfig config)
    : config_(std::move(config)) {
  FOCUS_CHECK_GT(config_.num_prototypes, 0);
  FOCUS_CHECK_GT(config_.segment_length, 1);
  FOCUS_CHECK_GE(config_.alpha, 0.0f);
}

std::vector<int64_t> SegmentClustering::Assign(const Tensor& segments,
                                               const Tensor& prototypes,
                                               float alpha) {
  obs::TraceSpan span("cluster/assign");
  FOCUS_CHECK_EQ(segments.dim(), 2);
  FOCUS_CHECK_EQ(prototypes.dim(), 2);
  const int64_t p = segments.size(1);
  FOCUS_CHECK_EQ(prototypes.size(1), p) << "segment/prototype length mismatch";
  const int64_t n = segments.size(0), k = prototypes.size(0);
  std::vector<int64_t> assignments(static_cast<size_t>(n));
  // Each segment's nearest-prototype search is independent; shards write
  // disjoint assignment slices, so the result is identical for any
  // FOCUS_NUM_THREADS.
  const int64_t grain = std::max<int64_t>(1, 2048 / std::max<int64_t>(1, k));
  ParallelFor(0, n, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* seg = segments.data() + i * p;
      float best = std::numeric_limits<float>::max();
      int64_t best_j = 0;
      for (int64_t j = 0; j < k; ++j) {
        const float d =
            CompositeDistance(seg, prototypes.data() + j * p, p, alpha);
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      assignments[static_cast<size_t>(i)] = best_j;
    }
  });
  return assignments;
}

Tensor SegmentClustering::InitPrototypes(const Tensor& segments,
                                         Rng& rng) const {
  const int64_t n = segments.size(0), p = segments.size(1);
  const int64_t k = config_.num_prototypes;
  const float alpha = config_.use_correlation ? config_.alpha : 0.0f;
  Tensor prototypes = Tensor::Empty({k, p});

  // k-means++ seeding: first center uniform, then proportional to the
  // composite distance to the nearest chosen center.
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
  int64_t first = static_cast<int64_t>(rng.UniformInt(
      static_cast<uint64_t>(n)));
  std::memcpy(prototypes.data(), segments.data() + first * p,
              static_cast<size_t>(p) * sizeof(float));
  for (int64_t c = 1; c < k; ++c) {
    const float* last = prototypes.data() + (c - 1) * p;
    // Distance updates are per-segment independent; the probability mass
    // `total` is summed serially afterwards in index order so the sampled
    // seeding is identical for any FOCUS_NUM_THREADS.
    ParallelFor(0, n, 512, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const double d =
            CompositeDistance(segments.data() + i * p, last, p, alpha);
        min_dist[static_cast<size_t>(i)] =
            std::min(min_dist[static_cast<size_t>(i)], d);
      }
    });
    double total = 0;
    for (int64_t i = 0; i < n; ++i) {
      total += min_dist[static_cast<size_t>(i)];
    }
    double pick = rng.Uniform() * total;
    int64_t chosen = n - 1;
    for (int64_t i = 0; i < n; ++i) {
      pick -= min_dist[static_cast<size_t>(i)];
      if (pick <= 0) {
        chosen = i;
        break;
      }
    }
    std::memcpy(prototypes.data() + c * p, segments.data() + chosen * p,
                static_cast<size_t>(p) * sizeof(float));
  }
  return prototypes;
}

double SegmentClustering::Objective(
    const Tensor& segments, const Tensor& prototypes,
    const std::vector<int64_t>& assignments) const {
  obs::TraceSpan span("cluster/objective");
  const int64_t n = segments.size(0), p = segments.size(1);
  const int64_t k = prototypes.size(0);
  const float alpha = config_.use_correlation ? config_.alpha : 0.0f;

  // Bucket means and counts.
  std::vector<double> mean(static_cast<size_t>(k * p), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(k), 0);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t j = assignments[static_cast<size_t>(i)];
    ++count[static_cast<size_t>(j)];
    const float* seg = segments.data() + i * p;
    for (int64_t d = 0; d < p; ++d) {
      mean[static_cast<size_t>(j * p + d)] += seg[d];
    }
  }
  double rec = 0, corr = 0;
  for (int64_t j = 0; j < k; ++j) {
    if (count[static_cast<size_t>(j)] == 0) continue;
    const float* proto = prototypes.data() + j * p;
    for (int64_t d = 0; d < p; ++d) {
      const double m = mean[static_cast<size_t>(j * p + d)] /
                       count[static_cast<size_t>(j)];
      rec += (proto[d] - m) * (proto[d] - m);
    }
  }
  if (alpha > 0.0f) {
    std::vector<double> corr_sum(static_cast<size_t>(k), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t j = assignments[static_cast<size_t>(i)];
      corr_sum[static_cast<size_t>(j)] += PearsonCorrelation(
          segments.data() + i * p, prototypes.data() + j * p, p);
    }
    for (int64_t j = 0; j < k; ++j) {
      if (count[static_cast<size_t>(j)] > 0) {
        corr -= corr_sum[static_cast<size_t>(j)] /
                count[static_cast<size_t>(j)];
      }
    }
  }
  return rec + alpha * corr;
}

ClusteringResult SegmentClustering::Fit(const Tensor& segments) {
  FOCUS_CHECK_EQ(segments.dim(), 2);
  FOCUS_CHECK_EQ(segments.size(1), config_.segment_length)
      << "segments were extracted with a different p";
  const int64_t n = segments.size(0), p = segments.size(1);
  const int64_t k = config_.num_prototypes;
  FOCUS_CHECK_GE(n, k) << "need at least k segments";
  const float alpha = config_.use_correlation ? config_.alpha : 0.0f;

  Stopwatch timer;
  obs::TraceSpan fit_span("cluster/fit");
  Rng rng(config_.seed);
  ClusteringResult result;
  result.prototypes = InitPrototypes(segments, rng);
  Tensor& prototypes = result.prototypes;

  // AdamW state for prototype refinement (paper: "we employ the AdamW
  // optimizer, iteratively updating the prototype set C").
  std::vector<float> m_state(static_cast<size_t>(k * p), 0.0f);
  std::vector<float> v_state(static_cast<size_t>(k * p), 0.0f);
  int64_t adam_t = 0;

  std::vector<int64_t> prev_assignments;
  double prev_objective = std::numeric_limits<double>::max();

  for (int64_t iter = 0; iter < config_.max_iters; ++iter) {
    // --- Assignment step (Eq. 6 / lines 8-11 of Algorithm 1). ---
    result.assignments = Assign(segments, prototypes, alpha);

    // --- Update: bucket statistics + prototype refinement. The span is
    // closed explicitly before the objective evaluation below.
    std::optional<obs::TraceSpan> update_span;
    update_span.emplace("cluster/update");
    // Bucket statistics.
    std::vector<double> bucket_mean(static_cast<size_t>(k * p), 0.0);
    std::vector<int64_t> count(static_cast<size_t>(k), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t j = result.assignments[static_cast<size_t>(i)];
      ++count[static_cast<size_t>(j)];
      const float* seg = segments.data() + i * p;
      for (int64_t d = 0; d < p; ++d) {
        bucket_mean[static_cast<size_t>(j * p + d)] += seg[d];
      }
    }
    for (int64_t j = 0; j < k; ++j) {
      if (count[static_cast<size_t>(j)] > 0) {
        for (int64_t d = 0; d < p; ++d) {
          bucket_mean[static_cast<size_t>(j * p + d)] /=
              count[static_cast<size_t>(j)];
        }
      }
    }

    // Re-seed empty buckets from a random segment so all k prototypes stay
    // live (standard k-means practice).
    for (int64_t j = 0; j < k; ++j) {
      if (count[static_cast<size_t>(j)] == 0) {
        const int64_t pick = static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(n)));
        std::memcpy(prototypes.data() + j * p, segments.data() + pick * p,
                    static_cast<size_t>(p) * sizeof(float));
        for (int64_t d = 0; d < p; ++d) {
          bucket_mean[static_cast<size_t>(j * p + d)] =
              prototypes.data()[j * p + d];
        }
        count[static_cast<size_t>(j)] = 1;
      }
    }

    // --- Refinement step (Eq. 8-10 / lines 12-15 of Algorithm 1). ---
    std::vector<float> grad(static_cast<size_t>(k * p));
    for (int64_t step = 0; step < config_.refine_steps; ++step) {
      std::fill(grad.begin(), grad.end(), 0.0f);
      // d L_rec / d c_j = 2 (c_j - mean(B_j))
      for (int64_t j = 0; j < k; ++j) {
        const float* proto = prototypes.data() + j * p;
        for (int64_t d = 0; d < p; ++d) {
          grad[static_cast<size_t>(j * p + d)] +=
              2.0f * (proto[d] - static_cast<float>(
                                     bucket_mean[static_cast<size_t>(
                                         j * p + d)]));
        }
      }
      // d L_corr / d c_j: for each assigned segment s with u = s - mean(s),
      // v = c - mean(c): d corr/dc = P (u/(|u||v|) - corr * v/|v|^2),
      // where P projects out the mean. L_corr carries a minus sign and the
      // 1/|B_j| average; the alpha weight is applied at the end.
      if (alpha > 0.0f) {
        std::vector<double> w(static_cast<size_t>(p));
        for (int64_t i = 0; i < n; ++i) {
          const int64_t j = result.assignments[static_cast<size_t>(i)];
          const float* seg = segments.data() + i * p;
          const float* proto = prototypes.data() + j * p;
          double ms = 0, mc = 0;
          for (int64_t d = 0; d < p; ++d) {
            ms += seg[d];
            mc += proto[d];
          }
          ms /= p;
          mc /= p;
          double uu = 0, vv = 0, uv = 0;
          for (int64_t d = 0; d < p; ++d) {
            const double u = seg[d] - ms;
            const double v = proto[d] - mc;
            uu += u * u;
            vv += v * v;
            uv += u * v;
          }
          if (uu < 1e-12 || vv < 1e-12) continue;
          const double norm_u = std::sqrt(uu), norm_v = std::sqrt(vv);
          const double corr = uv / (norm_u * norm_v);
          double w_mean = 0;
          for (int64_t d = 0; d < p; ++d) {
            const double u = seg[d] - ms;
            const double v = proto[d] - mc;
            w[static_cast<size_t>(d)] =
                u / (norm_u * norm_v) - corr * v / vv;
            w_mean += w[static_cast<size_t>(d)];
          }
          w_mean /= p;
          const double scale =
              alpha / static_cast<double>(count[static_cast<size_t>(j)]);
          for (int64_t d = 0; d < p; ++d) {
            // Minus from L_corr's sign: the loss *maximizes* correlation.
            grad[static_cast<size_t>(j * p + d)] -= static_cast<float>(
                scale * (w[static_cast<size_t>(d)] - w_mean));
          }
        }
      }

      // AdamW update.
      ++adam_t;
      const float beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
      const float bc1 = 1.0f - std::pow(beta1, static_cast<float>(adam_t));
      const float bc2 = 1.0f - std::pow(beta2, static_cast<float>(adam_t));
      float* proto_data = prototypes.data();
      for (int64_t idx = 0; idx < k * p; ++idx) {
        const float g = grad[static_cast<size_t>(idx)];
        float& m = m_state[static_cast<size_t>(idx)];
        float& v = v_state[static_cast<size_t>(idx)];
        m = beta1 * m + (1.0f - beta1) * g;
        v = beta2 * v + (1.0f - beta2) * g * g;
        if (config_.weight_decay > 0.0f) {
          proto_data[idx] -= config_.lr * config_.weight_decay *
                             proto_data[idx];
        }
        proto_data[idx] -=
            config_.lr * (m / bc1) / (std::sqrt(v / bc2) + eps);
      }
    }
    update_span.reset();

    result.iterations = iter + 1;
    const double objective = Objective(segments, prototypes,
                                       result.assignments);
    result.objective_history.push_back(objective);

    // --- Convergence (line 7 of Algorithm 1). ---
    const bool assignments_stable = result.assignments == prev_assignments;
    const bool objective_stable =
        prev_objective != std::numeric_limits<double>::max() &&
        std::fabs(prev_objective - objective) <=
            config_.tolerance * (std::fabs(prev_objective) + 1e-12);
    if (assignments_stable || objective_stable) break;
    prev_assignments = result.assignments;
    prev_objective = objective;
  }

  // Final assignment against the refined prototypes.
  result.assignments = Assign(segments, prototypes, alpha);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Tensor ApproximateSeries(const Tensor& series, const Tensor& prototypes,
                         float alpha) {
  FOCUS_CHECK_EQ(series.dim(), 1) << "ApproximateSeries expects a 1-D series";
  const int64_t p = prototypes.size(1);
  const int64_t segments = series.numel() / p;
  FOCUS_CHECK_GT(segments, 0);
  Tensor out = Tensor::Zeros({segments * p});
  for (int64_t i = 0; i < segments; ++i) {
    const float* seg = series.data() + i * p;
    // Local statistics of the raw segment (paper: "each prototype adjusted
    // to maintain the original mean and standard deviation").
    double mean = 0;
    for (int64_t d = 0; d < p; ++d) mean += seg[d];
    mean /= p;
    double var = 0;
    for (int64_t d = 0; d < p; ++d) var += (seg[d] - mean) * (seg[d] - mean);
    const double std = std::sqrt(var / p);

    // Assign in shape space.
    std::vector<float> shape(static_cast<size_t>(p));
    const float inv_std = 1.0f / (static_cast<float>(std) + 1e-4f);
    for (int64_t d = 0; d < p; ++d) {
      shape[static_cast<size_t>(d)] =
          (seg[d] - static_cast<float>(mean)) * inv_std;
    }
    float best = std::numeric_limits<float>::max();
    int64_t best_j = 0;
    for (int64_t j = 0; j < prototypes.size(0); ++j) {
      const float d = CompositeDistance(shape.data(),
                                        prototypes.data() + j * p, p, alpha);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    // Rescale the prototype back to the local mean/std.
    const float* proto = prototypes.data() + best_j * p;
    double pm = 0;
    for (int64_t d = 0; d < p; ++d) pm += proto[d];
    pm /= p;
    double pv = 0;
    for (int64_t d = 0; d < p; ++d) pv += (proto[d] - pm) * (proto[d] - pm);
    const double pstd = std::sqrt(pv / p) + 1e-8;
    for (int64_t d = 0; d < p; ++d) {
      out.data()[i * p + d] = static_cast<float>(
          mean + (proto[d] - pm) / pstd * std);
    }
  }
  return out;
}

Status SavePrototypes(const std::string& path, const Tensor& prototypes) {
  FOCUS_CHECK_EQ(prototypes.dim(), 2);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const char magic[8] = {'F', 'O', 'C', 'U', 'S', 'P', 'R', 'T'};
  const int64_t k = prototypes.size(0), p = prototypes.size(1);
  bool ok = std::fwrite(magic, 1, 8, f) == 8 &&
            std::fwrite(&k, sizeof(k), 1, f) == 1 &&
            std::fwrite(&p, sizeof(p), 1, f) == 1 &&
            std::fwrite(prototypes.data(), sizeof(float),
                        static_cast<size_t>(k * p), f) ==
                static_cast<size_t>(k * p);
  std::fclose(f);
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

StatusOr<Tensor> LoadPrototypes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  char magic[8];
  int64_t k = 0, p = 0;
  if (std::fread(magic, 1, 8, f) != 8 ||
      std::memcmp(magic, "FOCUSPRT", 8) != 0) {
    std::fclose(f);
    return Status::Corruption("bad prototype file magic in " + path);
  }
  if (std::fread(&k, sizeof(k), 1, f) != 1 ||
      std::fread(&p, sizeof(p), 1, f) != 1 || k <= 0 || p <= 0 ||
      k * p > (int64_t{1} << 30)) {
    std::fclose(f);
    return Status::Corruption("bad prototype header in " + path);
  }
  Tensor prototypes = Tensor::Empty({k, p});
  const bool ok = std::fread(prototypes.data(), sizeof(float),
                             static_cast<size_t>(k * p), f) ==
                  static_cast<size_t>(k * p);
  std::fclose(f);
  if (!ok) return Status::Corruption("truncated prototype file " + path);
  return prototypes;
}

}  // namespace cluster
}  // namespace focus
