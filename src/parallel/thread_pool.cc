#include "parallel/thread_pool.h"

#include <algorithm>

#include "utils/env.h"

namespace focus {

namespace {

// Set for the lifetime of a worker thread and, on the calling thread, for
// the duration of its participation in a region (including the serial
// fallback), so nested ParallelFor calls degrade to inline execution
// instead of deadlocking on the dispatch state.
thread_local bool tl_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() : saved(tl_in_parallel_region) {
    tl_in_parallel_region = true;
  }
  ~RegionGuard() { tl_in_parallel_region = saved; }
  bool saved;
};

int DefaultNumThreads() {
  // 0 means "auto" (hardware concurrency); explicit values must land in
  // [1, 256]. Garbage or out-of-range values warn and fall back to auto
  // instead of silently resizing the pool (see GetEnvIntInRangeOr).
  long n = GetEnvIntInRangeOr("FOCUS_NUM_THREADS", 0, 1, 256);
  if (n <= 0) {
    n = static_cast<long>(std::thread::hardware_concurrency());
  }
  return static_cast<int>(std::max(1L, std::min(n, 256L)));
}

}  // namespace

bool InParallelRegion() { return tl_in_parallel_region; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads_ = std::max(1, num_threads);
  StartWorkers(num_threads_ - 1);
}

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::StartWorkers(int num_workers) {
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = false;
  // Freshly started workers begin with seen_generation = 0. Reset the
  // dispatch state so they do not mistake a stale generation_ from before
  // the stop for a newly published region (a phantom pass could otherwise
  // race with the next RunShards and double-decrement active_workers_).
  generation_ = 0;
  nshards_ = 0;
  next_shard_.store(0, std::memory_order_relaxed);
  fn_ = nullptr;
  active_workers_ = 0;
}

void ThreadPool::Resize(int num_threads) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  StopWorkers();
  num_threads_ = std::max(1, num_threads);
  StartWorkers(num_threads_ - 1);
}

void ThreadPool::WorkOnCurrentRegion() {
  RegionGuard in_region;
  try {
    for (;;) {
      const int shard = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (shard >= nshards_) break;
      (*fn_)(shard);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_start_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    lock.unlock();
    WorkOnCurrentRegion();
    lock.lock();
    if (--active_workers_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::RunShards(int nshards, const std::function<void(int)>& fn) {
  if (nshards <= 0) return;
  if (nshards == 1 || workers_.empty() || tl_in_parallel_region) {
    RegionGuard in_region;
    for (int s = 0; s < nshards; ++s) fn(s);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    nshards_ = nshards;
    next_shard_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  WorkOnCurrentRegion();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return active_workers_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  ThreadPool& pool = ThreadPool::Global();
  const int64_t max_shards =
      std::min<int64_t>(pool.num_threads(), (range + grain - 1) / grain);
  if (max_shards <= 1 || tl_in_parallel_region) {
    // Exactly the serial code path: one body call over the full range.
    RegionGuard in_region;
    body(begin, end);
    return;
  }
  // Deterministic static split: shard s covers a contiguous slice whose
  // boundaries depend only on (range, nshards); the first `rem` shards take
  // one extra element.
  const int nshards = static_cast<int>(max_shards);
  const int64_t chunk = range / nshards;
  const int64_t rem = range % nshards;
  pool.RunShards(nshards, [&](int s) {
    const int64_t b = begin + s * chunk + std::min<int64_t>(s, rem);
    const int64_t e = b + chunk + (s < rem ? 1 : 0);
    body(b, e);
  });
}

}  // namespace focus
