// Shared thread pool and the ParallelFor primitive every parallel kernel
// in the tensor library runs on.
//
// Design goals, in priority order:
//
//  1. Determinism. For a given pool size the work split of a ParallelFor is
//     a pure function of (begin, end, grain): the range is cut into at most
//     num_threads() contiguous shards of near-equal size. Which OS thread
//     executes a shard is scheduling-dependent, but shards never share
//     mutable state in the kernels built on top, and every kernel is
//     structured so that the floating-point accumulation order *per output
//     element* does not depend on the shard boundaries at all. Outputs are
//     therefore bit-identical for every value of FOCUS_NUM_THREADS,
//     including 1 (see the parity tests in tests/parity_test.cc).
//  2. Zero cost when unused. `FOCUS_NUM_THREADS=1` (or a single-core
//     machine) creates no worker threads and ParallelFor invokes the body
//     once, inline, on the caller's stack — exactly the pre-pool serial
//     behavior.
//  3. Reuse. Workers are created once (lazily, on first Global() use) and
//     parked on a condition variable between parallel regions; a region
//     dispatch is two lock acquisitions plus one broadcast.
//
// The pool is sized by the FOCUS_NUM_THREADS environment variable read at
// first use; unset or invalid values fall back to
// std::thread::hardware_concurrency(). The calling thread always
// participates in the work, so a pool of size N holds N-1 worker threads.
//
// Nested parallelism is defined to serialize: a ParallelFor issued from
// inside a parallel region runs its body inline on the issuing thread.
// Exceptions thrown by a body are caught on the executing thread and the
// first one (in shard-completion order) is rethrown on the calling thread
// after all shards finish.
#ifndef FOCUS_PARALLEL_THREAD_POOL_H_
#define FOCUS_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace focus {

class ThreadPool {
 public:
  // Lazily constructed process-wide pool (leaked; never destroyed, so
  // kernels in static destructors and atexit flushes stay safe).
  static ThreadPool& Global();

  // Total parallelism including the calling thread (>= 1).
  int num_threads() const { return num_threads_; }

  // Runs fn(shard) for every shard in [0, nshards). The calling thread
  // participates; returns after all shards completed. Falls back to a
  // serial in-order loop when the pool has no workers, nshards <= 1, or
  // the caller is already inside a parallel region.
  void RunShards(int nshards, const std::function<void(int)>& fn);

  // Joins the current workers and re-creates the pool with `num_threads`
  // total threads. Intended for tests and benchmarks that compare thread
  // counts in-process; must not be called from inside a parallel region,
  // and must not run concurrently with a ParallelFor/RunShards issued from
  // another thread (RunShards reads the worker list without a lock on its
  // fast path, so callers provide single-threaded control flow around
  // Resize — which every test/bench caller does).
  void Resize(int num_threads);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  explicit ThreadPool(int num_threads);

  void StartWorkers(int num_workers);
  void StopWorkers();
  void WorkerLoop();
  // Claims shards from the current region until none remain; records the
  // first exception instead of propagating.
  void WorkOnCurrentRegion();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  // Serializes whole parallel regions issued from different user threads.
  std::mutex run_mu_;

  // Protects the dispatch state below.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  int active_workers_ = 0;
  bool shutdown_ = false;
  const std::function<void(int)>* fn_ = nullptr;
  int nshards_ = 0;
  std::atomic<int> next_shard_{0};
  std::exception_ptr error_;
};

// True while the calling thread is executing inside a ParallelFor body
// (worker threads and the participating caller). Nested ParallelFor calls
// check this and run serially.
bool InParallelRegion();

// Splits [begin, end) into at most ThreadPool::Global().num_threads()
// contiguous shards of at least `grain` elements each and runs
// body(shard_begin, shard_end) for every shard in parallel. When only one
// shard results (small range, single-thread pool, or nested call) the body
// is invoked once with the full range on the calling thread — byte-for-byte
// the serial code path.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace focus

#endif  // FOCUS_PARALLEL_THREAD_POOL_H_
