// Experiment plumbing shared by the bench binaries: profile-scaled
// hyperparameters, dataset preparation (generate -> split -> normalize),
// the eight-model zoo of Table III, and train+evaluate drivers.
#ifndef FOCUS_HARNESS_EXPERIMENTS_H_
#define FOCUS_HARNESS_EXPERIMENTS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/focus_model.h"
#include "core/forecast_model.h"
#include "data/dataset.h"
#include "data/registry.h"
#include "data/window.h"
#include "harness/trainer.h"
#include "metrics/metrics.h"

namespace focus {
namespace harness {

// Scaled experiment hyperparameters. The quick profile keeps the entire
// suite runnable on one CPU core; full approaches the paper's sizes
// (FOCUS_PROFILE=full).
struct ExperimentProfile {
  data::Profile profile = data::Profile::kQuick;
  int64_t lookback = 192;        // paper: 512
  int64_t train_steps = 300;     // upper bound; early stopping cuts it
  int64_t batch_size = 6;
  int64_t eval_batch = 8;
  int64_t eval_stride = 4;       // evaluate every 4th test window
  int64_t d_model = 32;          // paper: 64 / 128
  int64_t conv_channels = 8;
  int64_t patch_len = 16;        // p
  int64_t num_prototypes = 16;   // k
  float lr = 1e-2f;
  float alpha = 0.2f;            // Eq. 6 weight (paper Sec. VIII-A)
};

// Builds the profile from FOCUS_PROFILE and optional step override
// FOCUS_TRAIN_STEPS.
ExperimentProfile MakeProfile();
ExperimentProfile MakeProfile(data::Profile profile);

// Paper rule: m = 6 readout queries for horizon 96, 21 for horizon 336;
// generalized as ceil(horizon / 16).
int64_t ReadoutQueriesFor(int64_t horizon);

// Per-dataset FOCUS segment length (the paper obtains p and k by grid
// search, Sec. VIII-A). Aligned with each dataset's daily period; must
// divide the profile lookback. Returns profile.patch_len for unknown names.
int64_t FocusPatchLenFor(const std::string& dataset,
                         const ExperimentProfile& profile);

// Per-dataset FOCUS prototype count (grid-searched, Sec. VIII-A).
int64_t FocusPrototypesFor(const std::string& dataset,
                           const ExperimentProfile& profile);

// A generated dataset with its chronological splits and z-scored values
// (statistics fitted on the train region only).
struct PreparedData {
  data::TimeSeriesDataset dataset;
  data::SplitRanges splits;
  data::Normalizer normalizer;
  Tensor normalized;  // (N, T)
};

PreparedData PrepareDataset(const std::string& name,
                            const ExperimentProfile& profile,
                            uint64_t seed = 0);
// For perturbed / custom datasets (Figs. 9-10).
PreparedData PrepareDataset(data::TimeSeriesDataset dataset);

// Window views. Test/val windows start far enough back that every predicted
// step lies inside the respective region.
data::WindowDataset TrainWindows(const PreparedData& data, int64_t lookback,
                                 int64_t horizon);
data::WindowDataset ValWindows(const PreparedData& data, int64_t lookback,
                               int64_t horizon);
data::WindowDataset TestWindows(const PreparedData& data, int64_t lookback,
                                int64_t horizon);

// Table III model zoo, paper order.
std::vector<std::string> ModelZooNames();

// Builds a model by zoo name; "FOCUS" runs the offline clustering phase on
// the prepared train region first. CHECK-fails on unknown names.
std::unique_ptr<ForecastModel> BuildModel(const std::string& name,
                                          const PreparedData& data,
                                          int64_t lookback, int64_t horizon,
                                          const ExperimentProfile& profile,
                                          uint64_t seed = 1);

// Offline clustering on the prepared train region (shared by FOCUS builds
// and the Fig. 7 / Fig. 8 studies).
Tensor FitPrototypes(const PreparedData& data, int64_t patch_len,
                     int64_t num_prototypes, float alpha, bool use_correlation,
                     uint64_t seed);

struct RunOutcome {
  TrainResult train;
  metrics::ForecastMetrics test;
};

// Full pipeline for one (model, dataset, horizon) cell of Table III.
RunOutcome TrainAndEvaluate(ForecastModel& model, const PreparedData& data,
                            int64_t lookback, int64_t horizon,
                            const ExperimentProfile& profile,
                            uint64_t seed = 1);

}  // namespace harness
}  // namespace focus

#endif  // FOCUS_HARNESS_EXPERIMENTS_H_
