#include "harness/experiments.h"

#include "baselines/crossformer.h"
#include "baselines/dlinear.h"
#include "baselines/graph_models.h"
#include "baselines/lightcts.h"
#include "baselines/patch_tst.h"
#include "baselines/timesnet.h"
#include "core/offline.h"
#include "data/generator.h"
#include "utils/env.h"

namespace focus {
namespace harness {

ExperimentProfile MakeProfile() { return MakeProfile(data::ProfileFromEnv()); }

ExperimentProfile MakeProfile(data::Profile profile) {
  ExperimentProfile p;
  p.profile = profile;
  if (profile == data::Profile::kFull) {
    p.lookback = 512;
    p.train_steps = 400;
    p.batch_size = 12;
    p.eval_stride = 2;
    p.d_model = 64;
    p.conv_channels = 16;
    p.num_prototypes = 32;
  }
  p.train_steps = GetEnvIntInRangeOr("FOCUS_TRAIN_STEPS", p.train_steps, 1,
                                     1'000'000'000);
  return p;
}

int64_t ReadoutQueriesFor(int64_t horizon) {
  return std::max<int64_t>(2, (horizon + 15) / 16);
}

int64_t FocusPatchLenFor(const std::string& dataset,
                         const ExperimentProfile& profile) {
  // Hourly datasets: one segment = one day when the lookback allows it.
  // PEMS (48-step days in this suite): one segment = half a day.
  if (profile.lookback % 24 == 0 &&
      (dataset == "Traffic" || dataset == "Electricity" ||
       dataset == "ETTh1" || dataset == "PEMS04" || dataset == "PEMS08")) {
    return 24;
  }
  // Weather (10-min, 72-step days): a sixth of a day.
  if (profile.lookback % 12 == 0 && dataset == "Weather") return 12;
  return profile.patch_len;
}

int64_t FocusPrototypesFor(const std::string& dataset,
                           const ExperimentProfile& profile) {
  // Grid-searched per dataset (paper Sec. VIII-A); the event-rich traffic
  // datasets benefit from a larger pattern vocabulary.
  if (dataset == "PEMS04" || dataset == "PEMS08") {
    return std::max<int64_t>(profile.num_prototypes, 32);
  }
  return profile.num_prototypes;
}

PreparedData PrepareDataset(const std::string& name,
                            const ExperimentProfile& profile, uint64_t seed) {
  return PrepareDataset(
      data::Generate(data::PaperDatasetConfig(name, profile.profile, seed)));
}

PreparedData PrepareDataset(data::TimeSeriesDataset dataset) {
  PreparedData prepared;
  prepared.dataset = std::move(dataset);
  prepared.splits = data::ComputeSplits(prepared.dataset);
  prepared.normalizer = data::Normalizer::Fit(prepared.dataset.values,
                                              prepared.splits.train_end);
  prepared.normalized = prepared.normalizer.Normalize(prepared.dataset.values);
  return prepared;
}

data::WindowDataset TrainWindows(const PreparedData& data, int64_t lookback,
                                 int64_t horizon) {
  return data::WindowDataset(data.normalized, lookback, horizon, 0,
                             data.splits.train_end);
}

data::WindowDataset ValWindows(const PreparedData& data, int64_t lookback,
                               int64_t horizon) {
  return data::WindowDataset(data.normalized, lookback, horizon,
                             data.splits.train_end - lookback,
                             data.splits.val_end);
}

data::WindowDataset TestWindows(const PreparedData& data, int64_t lookback,
                                int64_t horizon) {
  return data::WindowDataset(data.normalized, lookback, horizon,
                             data.splits.val_end - lookback,
                             data.splits.total);
}

std::vector<std::string> ModelZooNames() {
  return {"FOCUS",        "PatchTST", "Crossformer", "MTGNN",
          "GraphWaveNet", "TimesNet", "LightCTS",    "DLinear"};
}

Tensor FitPrototypes(const PreparedData& data, int64_t patch_len,
                     int64_t num_prototypes, float alpha, bool use_correlation,
                     uint64_t seed) {
  // Offline phase runs on the (normalized) training region only.
  Tensor train_region =
      Slice(data.normalized, 1, 0, data.splits.train_end);
  core::OfflineConfig off;
  off.patch_len = patch_len;
  off.num_prototypes = num_prototypes;
  off.alpha = alpha;
  off.use_correlation = use_correlation;
  off.seed = seed;
  return core::RunOfflineClustering(train_region, off).prototypes;
}

std::unique_ptr<ForecastModel> BuildModel(const std::string& name,
                                          const PreparedData& data,
                                          int64_t lookback, int64_t horizon,
                                          const ExperimentProfile& profile,
                                          uint64_t seed) {
  const int64_t n = data.dataset.num_entities();
  if (name == "FOCUS") {
    int64_t patch_len = FocusPatchLenFor(data.dataset.name, profile);
    if (lookback % patch_len != 0) patch_len = profile.patch_len;
    if (lookback % patch_len != 0) {
      // Custom lookbacks (e.g. the Fig. 6 length sweep): fall back to the
      // largest convenient divisor.
      for (int64_t candidate : {16, 12, 8, 6, 4}) {
        if (lookback % candidate == 0) {
          patch_len = candidate;
          break;
        }
      }
    }
    const int64_t num_prototypes =
        FocusPrototypesFor(data.dataset.name, profile);
    Tensor prototypes =
        FitPrototypes(data, patch_len, num_prototypes, profile.alpha,
                      /*use_correlation=*/true, seed);
    core::FocusConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.num_entities = n;
    cfg.patch_len = patch_len;
    cfg.d_model = profile.d_model;
    cfg.readout_queries = ReadoutQueriesFor(horizon);
    cfg.alpha = profile.alpha;
    cfg.seed = seed;
    return std::make_unique<core::FocusModel>(cfg, prototypes);
  }
  if (name == "PatchTST") {
    baselines::PatchTstConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.patch_len = profile.patch_len;
    // Quick profile uses non-overlapping patches to halve the token count;
    // full keeps the original stride = patch_len / 2 overlap.
    cfg.stride = profile.profile == data::Profile::kFull
                     ? profile.patch_len / 2
                     : profile.patch_len;
    cfg.d_model = profile.d_model;
    cfg.num_heads = profile.d_model >= 32 ? 4 : 2;
    cfg.num_layers = 2;
    cfg.ffn_dim = 2 * profile.d_model;
    cfg.seed = seed;
    return std::make_unique<baselines::PatchTst>(cfg);
  }
  if (name == "Crossformer") {
    baselines::CrossformerConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.patch_len = profile.patch_len;
    cfg.d_model = profile.d_model;
    cfg.num_heads = profile.d_model >= 32 ? 4 : 2;
    cfg.ffn_dim = 2 * profile.d_model;
    cfg.seed = seed;
    return std::make_unique<baselines::CrossformerLite>(cfg);
  }
  if (name == "MTGNN") {
    baselines::MtgnnConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.num_entities = n;
    cfg.channels = profile.conv_channels;
    cfg.seed = seed;
    return std::make_unique<baselines::MtgnnLite>(cfg);
  }
  if (name == "GraphWaveNet") {
    baselines::GraphWaveNetConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.num_entities = n;
    cfg.channels = profile.conv_channels;
    cfg.skip_channels = 2 * profile.conv_channels;
    cfg.seed = seed;
    return std::make_unique<baselines::GraphWaveNetLite>(cfg);
  }
  if (name == "TimesNet") {
    baselines::TimesNetConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.channels = profile.conv_channels / 2;
    cfg.seed = seed;
    return std::make_unique<baselines::TimesNetLite>(cfg);
  }
  if (name == "LightCTS") {
    baselines::LightCtsConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.channels = profile.conv_channels;
    cfg.seed = seed;
    return std::make_unique<baselines::LightCtsLite>(cfg);
  }
  if (name == "DLinear") {
    baselines::DLinearConfig cfg;
    cfg.lookback = lookback;
    cfg.horizon = horizon;
    cfg.seed = seed;
    return std::make_unique<baselines::DLinear>(cfg);
  }
  FOCUS_FATAL("unknown model name: " + name);
  return nullptr;
}

RunOutcome TrainAndEvaluate(ForecastModel& model, const PreparedData& data,
                            int64_t lookback, int64_t horizon,
                            const ExperimentProfile& profile, uint64_t seed) {
  RunOutcome outcome;
  data::WindowDataset train = TrainWindows(data, lookback, horizon);
  data::WindowDataset val = ValWindows(data, lookback, horizon);
  TrainConfig tc;
  tc.max_steps = profile.train_steps;
  tc.batch_size = profile.batch_size;
  tc.lr = profile.lr;
  tc.seed = seed;
  // Validation-driven early stopping with best-checkpoint restore: every
  // model trains to its own optimum within the shared step budget (the
  // paper's baselines use their original configurations trained to
  // convergence; this is the step-budgeted equivalent).
  tc.val = &val;
  tc.eval_every = 25;
  tc.patience = 4;
  outcome.train = TrainModel(model, train, tc);

  data::WindowDataset test = TestWindows(data, lookback, horizon);
  outcome.test = EvaluateModel(model, test, profile.eval_batch,
                               profile.eval_stride);
  return outcome;
}

}  // namespace harness
}  // namespace focus
