// Rolling-origin evaluation: the standard forecasting-evaluation protocol
// where the model is re-fit (or fine-tuned) as the forecast origin advances
// through the evaluation period. Reports per-fold and aggregate metrics —
// a stricter test of robustness to distribution drift than a single
// train/test split.
#ifndef FOCUS_HARNESS_ROLLING_H_
#define FOCUS_HARNESS_ROLLING_H_

#include <functional>
#include <vector>

#include "core/forecast_model.h"
#include "data/dataset.h"
#include "harness/trainer.h"
#include "metrics/metrics.h"

namespace focus {
namespace harness {

struct RollingConfig {
  int64_t lookback = 96;
  int64_t horizon = 24;
  int64_t num_folds = 3;
  // Each fold's evaluation block length; the training region is everything
  // before it. Fold f evaluates [origin_f, origin_f + fold_span).
  int64_t fold_span = 200;
  TrainConfig train;
};

struct RollingFold {
  int64_t origin = 0;
  metrics::ForecastMetrics metrics;
};

struct RollingResult {
  std::vector<RollingFold> folds;
  metrics::ForecastMetrics aggregate;
};

// `make_model` builds a fresh model per fold (re-initialization keeps folds
// independent). `values` is the full (N, T) z-scored series.
RollingResult RollingOriginEvaluate(
    const Tensor& values, const RollingConfig& config,
    const std::function<std::unique_ptr<ForecastModel>()>& make_model);

}  // namespace harness
}  // namespace focus

#endif  // FOCUS_HARNESS_ROLLING_H_
