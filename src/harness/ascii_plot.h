// Terminal plotting for the case-study benches (Figs. 11-13): line charts
// and heat maps rendered as ASCII.
#ifndef FOCUS_HARNESS_ASCII_PLOT_H_
#define FOCUS_HARNESS_ASCII_PLOT_H_

#include <string>
#include <vector>

namespace focus {
namespace harness {

// Renders one or more series as an ASCII line chart. Each series gets its
// own glyph ('*', '+', 'o', ...); series are resampled to `width` columns
// and share one y-axis. Labels are printed in a legend line.
std::string AsciiChart(const std::vector<std::vector<double>>& series,
                       const std::vector<std::string>& labels,
                       int width = 100, int height = 16);

// Renders a row-major matrix as an ASCII heat map using a density ramp.
std::string AsciiHeatmap(const std::vector<double>& values, int rows,
                         int cols);

}  // namespace harness
}  // namespace focus

#endif  // FOCUS_HARNESS_ASCII_PLOT_H_
