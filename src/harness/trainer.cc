#include "harness/trainer.h"

#include <limits>

#include "nn/serialize.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "optim/scheduler.h"
#include "tensor/ops.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"

namespace focus {
namespace harness {

TrainResult TrainModel(ForecastModel& model, const data::WindowDataset& train,
                       const TrainConfig& config) {
  Stopwatch timer;
  Rng rng(config.seed);
  optim::AdamW opt(model.Parameters(), config.lr, config.weight_decay);
  optim::CosineDecayLr schedule(config.lr,
                                std::max<int64_t>(config.max_steps, 1),
                                config.lr * 0.1f);
  model.SetTraining(true);

  // Step-time percentiles describe this run only.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.ResetHistogram("train/step_ms");

  TrainResult result;
  result.best_val_mse = std::numeric_limits<double>::max();
  std::vector<std::vector<float>> best_snapshot;
  int64_t evals_without_improvement = 0;

  int64_t step = 0;
  bool stop = false;
  while (step < config.max_steps && !stop) {
    auto batches = data::MakeBatches(train.NumWindows(), config.batch_size,
                                     &rng);
    for (const auto& indices : batches) {
      if (step >= config.max_steps) break;
      if (config.cosine_schedule) schedule.Apply(opt, step);
      Stopwatch step_timer;
      float loss_val = 0.0f;
      float grad_norm = 0.0f;
      {
        obs::TraceSpan span("train_step");
        data::Batch batch = train.GetBatch(indices);
        opt.ZeroGrad();
        Tensor loss = MseLoss(model.Forward(batch.x), batch.y);
        loss_val = loss.Item();
        loss.Backward();
        grad_norm = optim::ClipGradNorm(opt.params(), config.clip_norm);
        opt.Step();
      }
      if (step == 0) result.first_loss = loss_val;
      result.final_loss = loss_val;
      ++step;
      registry.Observe("train/step_ms", step_timer.ElapsedMillis());
      registry.AddCounter("train/steps");
      registry.SetGauge("train/loss", loss_val);
      registry.SetGauge("train/grad_norm", grad_norm);
      registry.SetGauge("train/lr", opt.lr());
      if (config.verbose && step % 10 == 0) {
        FOCUS_LOG(Info) << model.name() << " step " << step << " loss "
                        << loss_val;
      }

      // Validation-driven early stopping.
      if (config.val != nullptr && step % config.eval_every == 0) {
        auto val_metrics = EvaluateModel(model, *config.val,
                                         config.batch_size, /*stride=*/4);
        if (val_metrics.mse < result.best_val_mse) {
          result.best_val_mse = val_metrics.mse;
          best_snapshot = nn::SnapshotParameters(model);
          evals_without_improvement = 0;
        } else if (++evals_without_improvement >= config.patience) {
          result.early_stopped = true;
          stop = true;
          break;
        }
      }
    }
  }
  if (config.val != nullptr && !best_snapshot.empty()) {
    nn::RestoreParameters(model, best_snapshot);
  }
  result.steps = step;
  result.seconds = timer.ElapsedSeconds();
  // Mirror the caching allocator's run-so-far counters into the registry on
  // every normal trainer exit — not only via Tracer::Flush() — so runs
  // without FOCUS_TRACE still end with final alloc/* values queryable from
  // MetricsRegistry (EvaluateModel does the same for eval-only runs).
  obs::PublishAllocatorMetrics();
  const auto step_ms = registry.Summarize("train/step_ms");
  result.step_ms_p50 = step_ms.p50;
  result.step_ms_p95 = step_ms.p95;
  if (config.verbose) {
    FOCUS_LOG(Info) << model.name() << " step time p50 " << result.step_ms_p50
                    << " ms, p95 " << result.step_ms_p95 << " ms over "
                    << result.steps << " steps";
  }
  return result;
}

metrics::ForecastMetrics EvaluateModel(ForecastModel& model,
                                       const data::WindowDataset& windows,
                                       int64_t batch_size, int64_t stride) {
  FOCUS_CHECK_GT(stride, 0);
  obs::TraceSpan span("eval");
  Stopwatch timer;
  const bool was_training = model.training();
  model.SetTraining(false);
  // Inference mode: evaluation must neither build tape nodes nor
  // allocate gradient buffers (MakeResult asserts the former).
  InferenceModeGuard inference;
  metrics::ForecastMetrics metrics;
  int64_t windows_evaluated = 0;
  std::vector<int64_t> indices;
  for (int64_t w = 0; w < windows.NumWindows(); w += stride) {
    indices.push_back(w);
    if (static_cast<int64_t>(indices.size()) == batch_size) {
      data::Batch batch = windows.GetBatch(indices);
      metrics.Accumulate(model.Forward(batch.x), batch.y);
      windows_evaluated += static_cast<int64_t>(indices.size());
      indices.clear();
    }
  }
  if (!indices.empty()) {
    data::Batch batch = windows.GetBatch(indices);
    metrics.Accumulate(model.Forward(batch.x), batch.y);
    windows_evaluated += static_cast<int64_t>(indices.size());
  }
  metrics.Finalize();
  model.SetTraining(was_training);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.AddCounter("eval/windows", windows_evaluated);
  registry.SetGauge("eval/mse", metrics.mse);
  registry.SetGauge("eval/mae", metrics.mae);
  const double seconds = timer.ElapsedSeconds();
  if (seconds > 0.0) {
    registry.SetGauge("eval/windows_per_sec",
                      static_cast<double>(windows_evaluated) / seconds);
  }
  // Keep alloc/* fresh for evaluation-only runs (no TrainModel exit and
  // possibly no Tracer::Flush to publish them).
  obs::PublishAllocatorMetrics();
  return metrics;
}

}  // namespace harness
}  // namespace focus
