#include "harness/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "utils/check.h"

namespace focus {
namespace harness {

std::string AsciiChart(const std::vector<std::vector<double>>& series,
                       const std::vector<std::string>& labels, int width,
                       int height) {
  FOCUS_CHECK(!series.empty());
  FOCUS_CHECK_EQ(series.size(), labels.size());
  static const char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};

  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (const auto& s : series) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    if (s.empty()) continue;
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (int c = 0; c < width; ++c) {
      // Resample: nearest source index for this column.
      const size_t idx = static_cast<size_t>(
          std::min<double>(s.size() - 1.0,
                           std::round(static_cast<double>(c) * (s.size() - 1) /
                                      std::max(1, width - 1))));
      const double v = s[idx];
      const int row = static_cast<int>(
          std::round((hi - v) / (hi - lo) * (height - 1)));
      grid[static_cast<size_t>(std::clamp(row, 0, height - 1))]
          [static_cast<size_t>(c)] = glyph;
    }
  }

  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.3f ", hi);
  out += std::string(buf) + "+" + std::string(static_cast<size_t>(width), '-') +
         "\n";
  for (int r = 0; r < height; ++r) {
    out += std::string(11, ' ') + "|" + grid[static_cast<size_t>(r)] + "\n";
  }
  std::snprintf(buf, sizeof(buf), "%10.3f ", lo);
  out += std::string(buf) + "+" + std::string(static_cast<size_t>(width), '-') +
         "\n";
  out += "   legend: ";
  for (size_t si = 0; si < labels.size(); ++si) {
    out += std::string(1, kGlyphs[si % sizeof(kGlyphs)]) + "=" + labels[si];
    if (si + 1 < labels.size()) out += "  ";
  }
  out += "\n";
  return out;
}

std::string AsciiHeatmap(const std::vector<double>& values, int rows,
                         int cols) {
  FOCUS_CHECK_EQ(static_cast<int>(values.size()), rows * cols);
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = sizeof(kRamp) - 2;

  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  std::string out;
  for (int r = 0; r < rows; ++r) {
    out += "  ";
    for (int c = 0; c < cols; ++c) {
      const double v = values[static_cast<size_t>(r * cols + c)];
      const int level = static_cast<int>(
          std::round((v - lo) / (hi - lo) * kLevels));
      out += kRamp[std::clamp(level, 0, kLevels)];
    }
    out += "\n";
  }
  return out;
}

}  // namespace harness
}  // namespace focus
