// Training / evaluation loops shared by every experiment binary.
#ifndef FOCUS_HARNESS_TRAINER_H_
#define FOCUS_HARNESS_TRAINER_H_

#include "core/forecast_model.h"
#include "data/window.h"
#include "metrics/metrics.h"

namespace focus {
namespace harness {

struct TrainConfig {
  int64_t max_steps = 60;
  int64_t batch_size = 6;
  float lr = 5e-3f;
  float weight_decay = 1e-5f;
  float clip_norm = 5.0f;
  uint64_t seed = 1;
  bool verbose = false;
  // Cosine-decay the learning rate to lr/10 over max_steps.
  bool cosine_schedule = false;
  // Optional validation-driven early stopping: evaluate on `val` every
  // `eval_every` steps, stop after `patience` evaluations without
  // improvement, and restore the best checkpoint at the end.
  const data::WindowDataset* val = nullptr;
  int64_t eval_every = 25;
  int64_t patience = 3;
};

struct TrainResult {
  float first_loss = 0.0f;
  float final_loss = 0.0f;
  int64_t steps = 0;
  double seconds = 0.0;
  // Per-step wall-clock percentiles, sourced from the obs::MetricsRegistry
  // "train/step_ms" histogram (reset at the start of each TrainModel call).
  double step_ms_p50 = 0.0;
  double step_ms_p95 = 0.0;
  // Populated when TrainConfig::val is set.
  double best_val_mse = 0.0;
  bool early_stopped = false;
};

// AdamW training over shuffled window batches; runs max_steps gradient
// steps (epochs wrap around as needed).
TrainResult TrainModel(ForecastModel& model, const data::WindowDataset& train,
                       const TrainConfig& config);

// Inference-mode MSE/MAE over the window set, subsampled by `stride`
// (stride 1 = every window).
metrics::ForecastMetrics EvaluateModel(ForecastModel& model,
                                       const data::WindowDataset& windows,
                                       int64_t batch_size = 8,
                                       int64_t stride = 1);

}  // namespace harness
}  // namespace focus

#endif  // FOCUS_HARNESS_TRAINER_H_
