#include "harness/rolling.h"

#include "data/window.h"
#include "utils/check.h"

namespace focus {
namespace harness {

RollingResult RollingOriginEvaluate(
    const Tensor& values, const RollingConfig& config,
    const std::function<std::unique_ptr<ForecastModel>()>& make_model) {
  FOCUS_CHECK_EQ(values.dim(), 2) << "expects (N, T)";
  FOCUS_CHECK_GE(config.num_folds, 1);
  const int64_t total = values.size(1);
  const int64_t eval_span = config.num_folds * config.fold_span;
  const int64_t first_origin = total - eval_span;
  FOCUS_CHECK_GT(first_origin, config.lookback + config.horizon)
      << "series too short for the requested folds";

  RollingResult result;
  for (int64_t fold = 0; fold < config.num_folds; ++fold) {
    const int64_t origin = first_origin + fold * config.fold_span;

    // Train on everything before the fold's origin.
    data::WindowDataset train(values, config.lookback, config.horizon, 0,
                              origin);
    auto model = make_model();
    FOCUS_CHECK(model != nullptr);
    TrainModel(*model, train, config.train);

    // Evaluate on windows whose forecasts fall inside the fold block.
    data::WindowDataset eval(values, config.lookback, config.horizon,
                             origin - config.lookback,
                             std::min(origin + config.fold_span, total));
    RollingFold fold_result;
    fold_result.origin = origin;
    fold_result.metrics = EvaluateModel(*model, eval, 8, /*stride=*/2);
    // Merge into the aggregate (streaming, pre-Finalize counts).
    result.aggregate.mse += fold_result.metrics.mse * fold_result.metrics.count;
    result.aggregate.mae += fold_result.metrics.mae * fold_result.metrics.count;
    result.aggregate.count += fold_result.metrics.count;
    result.folds.push_back(std::move(fold_result));
  }
  result.aggregate.mse /= result.aggregate.count;
  result.aggregate.mae /= result.aggregate.count;
  result.aggregate.rmse = std::sqrt(result.aggregate.mse);
  return result;
}

}  // namespace harness
}  // namespace focus
