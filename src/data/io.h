// CSV import/export for TimeSeriesDataset: the interchange format for the
// focus_cli tool and for users bringing their own data.
//
// Layout: one column per entity, one row per time step, with a header row
// of entity names. A leading comment line carries dataset metadata:
//   # focus-dataset name=<...> domain=<...> frequency=<...> train=<f> val=<f>
// Plain CSVs without that line load with default metadata.
#ifndef FOCUS_DATA_IO_H_
#define FOCUS_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "utils/status.h"

namespace focus {
namespace data {

Status SaveCsv(const TimeSeriesDataset& dataset, const std::string& path);

StatusOr<TimeSeriesDataset> LoadCsv(const std::string& path);

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_IO_H_
