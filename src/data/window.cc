#include "data/window.h"

#include <cstring>
#include <numeric>

#include "utils/check.h"

namespace focus {
namespace data {

WindowDataset::WindowDataset(Tensor values, int64_t lookback, int64_t horizon,
                             int64_t range_begin, int64_t range_end)
    : values_(std::move(values)),
      lookback_(lookback),
      horizon_(horizon),
      range_begin_(range_begin) {
  FOCUS_CHECK_EQ(values_.dim(), 2) << "WindowDataset expects (N, T)";
  FOCUS_CHECK_GT(lookback, 0);
  FOCUS_CHECK_GT(horizon, 0);
  FOCUS_CHECK(0 <= range_begin && range_begin < range_end &&
              range_end <= values_.size(1))
      << "bad window range [" << range_begin << ", " << range_end << ")";
  num_windows_ = range_end - range_begin - lookback - horizon + 1;
  FOCUS_CHECK_GT(num_windows_, 0)
      << "range too short for lookback " << lookback << " + horizon "
      << horizon;
}

Batch WindowDataset::GetBatch(
    const std::vector<int64_t>& window_indices) const {
  const int64_t b = static_cast<int64_t>(window_indices.size());
  FOCUS_CHECK_GT(b, 0);
  const int64_t n = values_.size(0), t = values_.size(1);
  Batch batch;
  batch.x = Tensor::Empty({b, n, lookback_});
  batch.y = Tensor::Empty({b, n, horizon_});
  const float* src = values_.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    const int64_t w = window_indices[static_cast<size_t>(bi)];
    FOCUS_CHECK(w >= 0 && w < num_windows_) << "window index out of range";
    const int64_t start = range_begin_ + w;
    for (int64_t e = 0; e < n; ++e) {
      std::memcpy(batch.x.data() + (bi * n + e) * lookback_,
                  src + e * t + start,
                  static_cast<size_t>(lookback_) * sizeof(float));
      std::memcpy(batch.y.data() + (bi * n + e) * horizon_,
                  src + e * t + start + lookback_,
                  static_cast<size_t>(horizon_) * sizeof(float));
    }
  }
  return batch;
}

std::vector<std::vector<int64_t>> MakeBatches(int64_t num_items,
                                              int64_t batch_size, Rng* rng) {
  FOCUS_CHECK_GT(batch_size, 0);
  std::vector<int64_t> indices(static_cast<size_t>(num_items));
  std::iota(indices.begin(), indices.end(), 0);
  if (rng != nullptr) rng->Shuffle(indices);
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < num_items; start += batch_size) {
    const int64_t end = std::min(start + batch_size, num_items);
    batches.emplace_back(indices.begin() + start, indices.begin() + end);
  }
  return batches;
}

}  // namespace data
}  // namespace focus
