#include "data/registry.h"

#include "utils/check.h"
#include "utils/env.h"

namespace focus {
namespace data {

Profile ProfileFromEnv() {
  return GetEnvOr("FOCUS_PROFILE", "quick") == "full" ? Profile::kFull
                                                      : Profile::kQuick;
}

std::vector<std::string> PaperDatasetNames() {
  return {"PEMS04", "PEMS08", "ETTh1",       "ETTm1",
          "Traffic", "Electricity", "Weather"};
}

GeneratorConfig PaperDatasetConfig(const std::string& name, Profile profile,
                                   uint64_t seed) {
  GeneratorConfig cfg;
  cfg.name = name;
  if (name == "PEMS04") {
    // 5-min urban traffic flow: pronounced bimodal daily peaks, strong
    // cross-entity cluster structure (road network), moderate noise.
    cfg.domain = "Traffic";
    cfg.frequency = "5 mins";
    cfg.num_entities = 12;
    cfg.num_steps = 3360;
    cfg.steps_per_day = 48;
    cfg.num_harmonics = 4;
    cfg.num_clusters = 4;
    cfg.daily_amplitude = 1.4f;
    cfg.noise_std = 0.18f;
    cfg.event_rate = 0.004f;
    cfg.cluster_event_rate = 0.008f;
    cfg.cluster_event_magnitude = 1.5f;
    cfg.cluster_event_duration = 16;
    cfg.cluster_event_max_lag = 8;
    cfg.train_fraction = 0.6;
    cfg.val_fraction = 0.2;
    cfg.seed = 104;
  } else if (name == "PEMS08") {
    cfg.domain = "Traffic";
    cfg.frequency = "5 mins";
    cfg.num_entities = 10;
    cfg.num_steps = 3360;
    cfg.steps_per_day = 48;
    cfg.num_harmonics = 4;
    cfg.num_clusters = 3;
    cfg.daily_amplitude = 1.3f;
    cfg.noise_std = 0.18f;
    cfg.event_rate = 0.004f;
    cfg.cluster_event_rate = 0.008f;
    cfg.cluster_event_magnitude = 1.5f;
    cfg.cluster_event_duration = 16;
    cfg.cluster_event_max_lag = 8;
    cfg.train_fraction = 0.6;
    cfg.val_fraction = 0.2;
    cfg.seed = 108;
  } else if (name == "ETTh1") {
    // Hourly transformer temperature: strong trend + AR noise, weaker
    // periodicity, few entities.
    cfg.domain = "Electricity";
    cfg.frequency = "1 hour";
    cfg.num_entities = 7;
    cfg.num_steps = 3024;
    cfg.steps_per_day = 24;
    cfg.num_harmonics = 2;
    cfg.num_clusters = 3;
    cfg.daily_amplitude = 0.8f;
    cfg.noise_std = 0.25f;
    cfg.ar_coeff = 0.85f;
    cfg.trend_std = 0.8f;
    cfg.event_rate = 0.001f;
    cfg.train_fraction = 0.6;
    cfg.val_fraction = 0.2;
    cfg.seed = 11;
  } else if (name == "ETTm1") {
    cfg.domain = "Electricity";
    cfg.frequency = "15 mins";
    cfg.num_entities = 7;
    cfg.num_steps = 3840;
    cfg.steps_per_day = 48;
    cfg.num_harmonics = 2;
    cfg.num_clusters = 3;
    cfg.daily_amplitude = 0.8f;
    cfg.noise_std = 0.18f;
    cfg.ar_coeff = 0.8f;
    cfg.trend_std = 0.3f;
    cfg.event_rate = 0.002f;
    cfg.cluster_event_rate = 0.004f;
    cfg.cluster_event_magnitude = 1.0f;
    cfg.cluster_event_duration = 12;
    cfg.train_fraction = 0.6;
    cfg.val_fraction = 0.2;
    cfg.seed = 12;
  } else if (name == "Traffic") {
    // Hourly road occupancy: strong weekly structure with weekend dips.
    cfg.domain = "Traffic";
    cfg.frequency = "1 hour";
    cfg.num_entities = 16;
    cfg.num_steps = 3360;
    cfg.steps_per_day = 24;
    cfg.num_harmonics = 4;
    cfg.num_clusters = 5;
    cfg.daily_amplitude = 1.5f;
    cfg.weekly_amplitude = 0.3f;
    cfg.weekend_dip = 0.5f;
    cfg.noise_std = 0.12f;
    cfg.event_rate = 0.005f;
    cfg.cluster_event_rate = 0.006f;
    cfg.cluster_event_magnitude = 1.2f;
    cfg.cluster_event_duration = 8;
    cfg.cluster_event_max_lag = 4;
    cfg.train_fraction = 0.7;
    cfg.val_fraction = 0.1;
    cfg.seed = 17;
  } else if (name == "Electricity") {
    cfg.domain = "Electricity";
    cfg.frequency = "1 hour";
    cfg.num_entities = 14;
    cfg.num_steps = 3360;
    cfg.steps_per_day = 24;
    cfg.num_harmonics = 3;
    cfg.num_clusters = 4;
    cfg.daily_amplitude = 1.2f;
    cfg.weekly_amplitude = 0.25f;
    cfg.weekend_dip = 0.3f;
    cfg.noise_std = 0.15f;
    cfg.event_rate = 0.003f;
    cfg.cluster_event_rate = 0.004f;
    cfg.cluster_event_magnitude = 1.0f;
    cfg.cluster_event_duration = 10;
    cfg.train_fraction = 0.7;
    cfg.val_fraction = 0.1;
    cfg.seed = 21;
  } else if (name == "Weather") {
    // 10-min meteorological channels: smooth, strongly autocorrelated, no
    // weekly cycle, almost no transient events.
    cfg.domain = "Environment";
    cfg.frequency = "10 mins";
    cfg.num_entities = 10;
    cfg.num_steps = 3600;
    cfg.steps_per_day = 72;
    cfg.days_per_week = 0;
    cfg.num_harmonics = 2;
    cfg.num_clusters = 3;
    cfg.daily_amplitude = 1.0f;
    cfg.noise_std = 0.2f;
    cfg.ar_coeff = 0.92f;
    cfg.trend_std = 0.5f;
    cfg.event_rate = 0.0005f;
    cfg.common_shock_std = 0.2f;
    cfg.train_fraction = 0.7;
    cfg.val_fraction = 0.1;
    cfg.seed = 31;
  } else {
    FOCUS_FATAL("unknown paper dataset: " + name);
  }

  if (profile == Profile::kFull) {
    cfg.num_entities *= 2;
    cfg.num_steps *= 2;
  }
  cfg.seed += seed * 7919;  // decorrelate repeated draws
  return cfg;
}

PaperDatasetStats PaperStats(const std::string& name) {
  if (name == "PEMS04") return {16992, 307, "6:2:2"};
  if (name == "PEMS08") return {17856, 170, "6:2:2"};
  if (name == "ETTh1") return {14400, 7, "6:2:2"};
  if (name == "ETTm1") return {57600, 7, "6:2:2"};
  if (name == "Traffic") return {17544, 862, "7:1:2"};
  if (name == "Electricity") return {26304, 321, "7:1:2"};
  if (name == "Weather") return {52696, 21, "7:1:2"};
  FOCUS_FATAL("unknown paper dataset: " + name);
  return {};
}

}  // namespace data
}  // namespace focus
