#include "data/dataset.h"

#include <cmath>

#include "utils/check.h"

namespace focus {
namespace data {

SplitRanges ComputeSplits(const TimeSeriesDataset& dataset) {
  const int64_t total = dataset.num_steps();
  SplitRanges splits;
  splits.total = total;
  splits.train_end =
      static_cast<int64_t>(std::floor(total * dataset.train_fraction));
  splits.val_end = static_cast<int64_t>(
      std::floor(total * (dataset.train_fraction + dataset.val_fraction)));
  FOCUS_CHECK(0 < splits.train_end && splits.train_end < splits.val_end &&
              splits.val_end < total)
      << "degenerate split for dataset " << dataset.name;
  return splits;
}

Normalizer Normalizer::Fit(const Tensor& values, int64_t fit_end) {
  FOCUS_CHECK_EQ(values.dim(), 2) << "Normalizer expects (N, T)";
  const int64_t n = values.size(0), t = values.size(1);
  FOCUS_CHECK(fit_end > 1 && fit_end <= t) << "bad fit_end " << fit_end;
  Normalizer norm;
  norm.means_.resize(static_cast<size_t>(n));
  norm.stds_.resize(static_cast<size_t>(n));
  for (int64_t e = 0; e < n; ++e) {
    const float* row = values.data() + e * t;
    double mean = 0;
    for (int64_t i = 0; i < fit_end; ++i) mean += row[i];
    mean /= fit_end;
    double var = 0;
    for (int64_t i = 0; i < fit_end; ++i) {
      var += (row[i] - mean) * (row[i] - mean);
    }
    var /= fit_end;
    norm.means_[static_cast<size_t>(e)] = static_cast<float>(mean);
    norm.stds_[static_cast<size_t>(e)] =
        static_cast<float>(std::sqrt(var) + 1e-8);
  }
  return norm;
}

Tensor Normalizer::Normalize(const Tensor& values) const {
  FOCUS_CHECK_EQ(values.dim(), 2);
  const int64_t n = values.size(0), t = values.size(1);
  FOCUS_CHECK_EQ(n, static_cast<int64_t>(means_.size()))
      << "entity count mismatch";
  Tensor out = Tensor::Empty({n, t});
  for (int64_t e = 0; e < n; ++e) {
    const float mean = means_[static_cast<size_t>(e)];
    const float inv_std = 1.0f / stds_[static_cast<size_t>(e)];
    const float* src = values.data() + e * t;
    float* dst = out.data() + e * t;
    for (int64_t i = 0; i < t; ++i) dst[i] = (src[i] - mean) * inv_std;
  }
  return out;
}

Tensor Normalizer::Denormalize(const Tensor& values) const {
  FOCUS_CHECK_EQ(values.dim(), 2);
  const int64_t n = values.size(0), t = values.size(1);
  FOCUS_CHECK_EQ(n, static_cast<int64_t>(means_.size()));
  Tensor out = Tensor::Empty({n, t});
  for (int64_t e = 0; e < n; ++e) {
    const float mean = means_[static_cast<size_t>(e)];
    const float std = stds_[static_cast<size_t>(e)];
    const float* src = values.data() + e * t;
    float* dst = out.data() + e * t;
    for (int64_t i = 0; i < t; ++i) dst[i] = src[i] * std + mean;
  }
  return out;
}

}  // namespace data
}  // namespace focus
