#include "data/io.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace focus {
namespace data {

namespace {

// Parses "key=value" pairs separated by '|' from the metadata line
// (values may contain spaces, e.g. frequency "5 mins").
std::map<std::string, std::string> ParseMeta(const std::string& line) {
  std::map<std::string, std::string> meta;
  std::stringstream ss(line);
  std::string token;
  while (std::getline(ss, token, '|')) {
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      meta[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return meta;
}

}  // namespace

Status SaveCsv(const TimeSeriesDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << "#name=" << dataset.name << "|domain=" << dataset.domain
      << "|frequency=" << dataset.frequency
      << "|train=" << dataset.train_fraction
      << "|val=" << dataset.val_fraction << "\n";
  const int64_t n = dataset.num_entities(), t = dataset.num_steps();
  for (int64_t e = 0; e < n; ++e) {
    out << (e ? "," : "") << "entity" << e;
  }
  out << "\n";
  const float* values = dataset.values.data();
  char buf[48];
  for (int64_t i = 0; i < t; ++i) {
    std::string line;
    for (int64_t e = 0; e < n; ++e) {
      std::snprintf(buf, sizeof(buf), "%.6g", values[e * t + i]);
      if (e) line += ",";
      line += buf;
    }
    out << line << "\n";
  }
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

StatusOr<TimeSeriesDataset> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);

  TimeSeriesDataset dataset;
  dataset.name = "csv";
  dataset.domain = "Unknown";
  dataset.frequency = "unknown";

  std::string line;
  if (!std::getline(in, line)) return Status::Corruption("empty file " + path);

  // Optional metadata comment.
  if (!line.empty() && line[0] == '#') {
    auto meta = ParseMeta(line.substr(1));
    if (meta.count("name")) dataset.name = meta["name"];
    if (meta.count("domain")) dataset.domain = meta["domain"];
    if (meta.count("frequency")) dataset.frequency = meta["frequency"];
    if (meta.count("train")) dataset.train_fraction = std::stod(meta["train"]);
    if (meta.count("val")) dataset.val_fraction = std::stod(meta["val"]);
    if (!std::getline(in, line)) {
      return Status::Corruption("missing header in " + path);
    }
  }

  // Header row: count columns.
  int64_t num_entities = 1;
  for (char c : line) num_entities += c == ',';
  if (num_entities <= 0) return Status::Corruption("bad header in " + path);

  std::vector<float> column_major;  // appended row by row, transposed later
  int64_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    int64_t cols = 0;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const float v = std::strtof(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::Corruption("non-numeric cell '" + cell + "' in " +
                                  path);
      }
      column_major.push_back(v);
      ++cols;
    }
    if (cols != num_entities) {
      return Status::Corruption("ragged row in " + path);
    }
    ++rows;
  }
  if (rows < 2) return Status::Corruption("too few rows in " + path);

  // Transpose (rows = steps, cols = entities) into (N, T).
  dataset.values = Tensor::Empty({num_entities, rows});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t e = 0; e < num_entities; ++e) {
      dataset.values.data()[e * rows + i] =
          column_major[static_cast<size_t>(i * num_entities + e)];
    }
  }
  return dataset;
}

}  // namespace data
}  // namespace focus
