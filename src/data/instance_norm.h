// RevIN-style instance normalization: normalizes each (batch, entity)
// lookback window to zero mean / unit variance and re-applies the statistics
// to the model's output. Standard for long-horizon forecasters (PatchTST,
// DLinear variants) and used by every model in this repo to handle the
// non-stationarity the paper discusses in Sec. VIII-D.
#ifndef FOCUS_DATA_INSTANCE_NORM_H_
#define FOCUS_DATA_INSTANCE_NORM_H_

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace focus {
namespace data {

class InstanceNorm {
 public:
  // x: (B, N, L). Returns the normalized window and stores (B, N, 1)
  // statistics for Denormalize.
  Tensor Normalize(const Tensor& x) {
    mean_ = Mean(x, -1, /*keepdim=*/true);
    Tensor centered = Sub(x, mean_);
    Tensor var = Mean(Mul(centered, centered), -1, /*keepdim=*/true);
    std_ = Sqrt(AddScalar(var, 1e-5f));
    return Div(centered, std_);
  }

  // yhat: (B, N, Lf) in normalized space -> original scale.
  Tensor Denormalize(const Tensor& yhat) const {
    FOCUS_CHECK(mean_.defined()) << "Denormalize before Normalize";
    return Add(Mul(yhat, std_), mean_);
  }

  const Tensor& mean() const { return mean_; }
  const Tensor& std() const { return std_; }

 private:
  Tensor mean_;
  Tensor std_;
};

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_INSTANCE_NORM_H_
