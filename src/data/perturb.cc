#include "data/perturb.h"

#include <cmath>

#include "utils/check.h"

namespace focus {
namespace data {

int64_t InjectOutliers(TimeSeriesDataset* dataset, double ratio,
                       int64_t range_end, Rng& rng) {
  FOCUS_CHECK(dataset != nullptr);
  FOCUS_CHECK(ratio >= 0.0 && ratio < 1.0) << "outlier ratio out of range";
  Tensor& values = dataset->values;
  const int64_t n = values.size(0), t = values.size(1);
  FOCUS_CHECK(range_end > 0 && range_end <= t);

  int64_t replaced = 0;
  for (int64_t e = 0; e < n; ++e) {
    float* row = values.data() + e * t;
    // Entity statistics over the affected range.
    double mean = 0;
    for (int64_t i = 0; i < range_end; ++i) mean += row[i];
    mean /= range_end;
    double var = 0;
    for (int64_t i = 0; i < range_end; ++i) {
      var += (row[i] - mean) * (row[i] - mean);
    }
    const double std = std::sqrt(var / range_end) + 1e-8;

    for (int64_t i = 0; i < range_end; ++i) {
      if (rng.Uniform() >= ratio) continue;
      // Sample from a distribution supported beyond 3 sigma (paper Fig. 10a).
      const double magnitude = 3.0 + std::fabs(rng.Gaussian());
      const double sign = rng.Uniform() < 0.5 ? -1.0 : 1.0;
      row[i] = static_cast<float>(mean + sign * magnitude * std);
      ++replaced;
    }
  }
  return replaced;
}

void InjectTestShift(TimeSeriesDataset* dataset, int64_t range_begin,
                     int64_t segment, float magnitude, Rng& rng) {
  FOCUS_CHECK(dataset != nullptr);
  FOCUS_CHECK_GT(segment, 1);
  Tensor& values = dataset->values;
  const int64_t n = values.size(0), t = values.size(1);
  FOCUS_CHECK(range_begin >= 0 && range_begin < t);

  for (int64_t e = 0; e < n; ++e) {
    float* row = values.data() + e * t;
    double mean = 0;
    for (int64_t i = 0; i < t; ++i) mean += row[i];
    mean /= t;
    double var = 0;
    for (int64_t i = 0; i < t; ++i) var += (row[i] - mean) * (row[i] - mean);
    const float std = static_cast<float>(std::sqrt(var / t) + 1e-8);

    for (int64_t start = range_begin; start + segment <= t;
         start += segment) {
      // Random ramp across the segment: steeper intra-segment trend.
      const float slope = static_cast<float>(rng.Gaussian()) * magnitude *
                          std / static_cast<float>(segment);
      for (int64_t i = 0; i < segment; ++i) {
        row[start + i] += slope * static_cast<float>(i);
      }
    }
  }
}

}  // namespace data
}  // namespace focus
