// Multivariate time-series dataset container, chronological splits, and
// z-score normalization fitted on the training split (paper Sec. VIII-A:
// "normalized using statistical information derived from the training set").
#ifndef FOCUS_DATA_DATASET_H_
#define FOCUS_DATA_DATASET_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace focus {
namespace data {

// An MTS dataset: `values` is (N entities, T steps), Definition 2 of the
// paper with rows as entities.
struct TimeSeriesDataset {
  std::string name;
  std::string domain;     // Table II "Domain" column
  std::string frequency;  // Table II "Frequency" column
  Tensor values;          // (N, T)
  // Fractions of T for the chronological train / validation split
  // (7/1/2 for Weather, Electricity, Traffic; 6/2/2 for ETT and PEMS).
  double train_fraction = 0.7;
  double val_fraction = 0.1;

  int64_t num_entities() const { return values.size(0); }
  int64_t num_steps() const { return values.size(1); }
};

// Chronological boundaries: train = [0, train_end), val = [train_end,
// val_end), test = [val_end, T).
struct SplitRanges {
  int64_t train_end = 0;
  int64_t val_end = 0;
  int64_t total = 0;
};

SplitRanges ComputeSplits(const TimeSeriesDataset& dataset);

// Per-entity z-score normalizer fitted on [0, fit_end).
class Normalizer {
 public:
  // `values` is (N, T).
  static Normalizer Fit(const Tensor& values, int64_t fit_end);

  // Applies (x - mean_e) / std_e row-wise; input (N, any length).
  Tensor Normalize(const Tensor& values) const;
  // Inverse transform.
  Tensor Denormalize(const Tensor& values) const;

  const std::vector<float>& means() const { return means_; }
  const std::vector<float>& stds() const { return stds_; }

 private:
  std::vector<float> means_;
  std::vector<float> stds_;
};

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_DATASET_H_
