// Synthetic MTS generator.
//
// Stands in for the paper's seven benchmark datasets (PEMS04/08, ETTh1/m1,
// Traffic, Electricity, Weather), which are not redistributable here (see
// DESIGN.md Sec. 1). The generator produces exactly the structure FOCUS's
// premise relies on: recurring segment patterns shared across time (daily /
// weekly periodicity with rush-hour-like events) and across entities (latent
// entity clusters sharing pattern shapes), plus AR(1) noise, slow trends,
// weekend effects, transient events and common shocks for realism.
#ifndef FOCUS_DATA_GENERATOR_H_
#define FOCUS_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace focus {
namespace data {

struct GeneratorConfig {
  std::string name = "synthetic";
  std::string domain = "Synthetic";
  std::string frequency = "1 hour";
  int64_t num_entities = 8;
  int64_t num_steps = 2000;

  // Periodic structure.
  int64_t steps_per_day = 24;   // daily cycle length in steps
  int64_t days_per_week = 7;    // 0 disables the weekly cycle
  int64_t num_harmonics = 3;    // smoothness of the daily shape
  int64_t num_clusters = 4;     // latent entity clusters sharing shapes
  float daily_amplitude = 1.0f;
  float weekly_amplitude = 0.25f;   // weekday-vs-weekend modulation depth
  float weekend_dip = 0.35f;        // multiplicative dip on the last 2 days

  // Stochastic components.
  float noise_std = 0.15f;      // innovation std of the AR(1) noise
  float ar_coeff = 0.7f;        // AR(1) coefficient
  float trend_std = 0.2f;       // magnitude of a slow per-entity trend
  float event_rate = 0.002f;    // per-step probability of a transient event
  float event_magnitude = 1.5f; // event peak height
  int64_t event_duration = 6;   // event decay length in steps
  float common_shock_std = 0.1f;  // shared (cross-entity) noise

  // Cluster-level events ("high-level system events" of paper Sec. III):
  // incidents that hit every entity of a latent cluster with an
  // entity-specific lag and magnitude — e.g. a traffic accident rippling
  // through neighbouring intersections. These create the nonlinear,
  // cross-entity dynamics linear channel-independent models cannot fit.
  float cluster_event_rate = 0.0f;       // per-step per-cluster probability
  float cluster_event_magnitude = 2.0f;  // peak height (x daily amplitude)
  int64_t cluster_event_duration = 12;   // decay length in steps
  int64_t cluster_event_max_lag = 6;     // max per-entity onset lag

  // Base level differences between entities.
  float base_mean = 3.0f;
  float base_spread = 1.0f;

  // Split fractions forwarded to the dataset.
  double train_fraction = 0.7;
  double val_fraction = 0.1;

  uint64_t seed = 1;
};

// Deterministic per (config, seed).
TimeSeriesDataset Generate(const GeneratorConfig& config);

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_GENERATOR_H_
