// Registry of the paper's seven benchmark datasets as generator configs
// (Table II), scaled by profile so the full experiment sweep runs on one
// CPU core. The "full" profile (FOCUS_PROFILE=full) raises sizes toward the
// paper's shapes.
#ifndef FOCUS_DATA_REGISTRY_H_
#define FOCUS_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "data/generator.h"

namespace focus {
namespace data {

enum class Profile {
  kQuick,  // default; minutes for the whole Table III sweep
  kFull,   // larger N / T / epochs; paper-scale structure
};

// Reads FOCUS_PROFILE ("quick" | "full"), defaulting to quick.
Profile ProfileFromEnv();

// Names in paper order: PEMS04, PEMS08, ETTh1, ETTm1, Traffic, Electricity,
// Weather.
std::vector<std::string> PaperDatasetNames();

// CHECK-fails on unknown name. `seed` offsets the config seed so repeated
// experiments can draw fresh instances.
GeneratorConfig PaperDatasetConfig(const std::string& name, Profile profile,
                                   uint64_t seed = 0);

// Paper-reported statistics for Table II's "Lengths"/"Dim" columns, used by
// the bench to print paper-vs-ours.
struct PaperDatasetStats {
  int64_t paper_length;
  int64_t paper_dim;
  std::string split;  // "6:2:2" or "7:1:2"
};
PaperDatasetStats PaperStats(const std::string& name);

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_REGISTRY_H_
