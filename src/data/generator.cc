#include "data/generator.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "utils/check.h"
#include "utils/rng.h"

namespace focus {
namespace data {

namespace {

// A smooth 1-day profile built from random harmonics of the daily period.
// Shapes are shifted/scaled so peaks resemble rush hours rather than pure
// sinusoids (squared positive parts accentuate peaks).
std::vector<float> MakeDailyShape(int64_t steps_per_day, int64_t num_harmonics,
                                  Rng& rng) {
  std::vector<float> shape(static_cast<size_t>(steps_per_day), 0.0f);
  for (int64_t h = 1; h <= num_harmonics; ++h) {
    const float amp = static_cast<float>(rng.Uniform(0.3, 1.0)) /
                      static_cast<float>(h);
    const float phase =
        static_cast<float>(rng.Uniform(0.0, 2.0 * std::numbers::pi));
    for (int64_t t = 0; t < steps_per_day; ++t) {
      const float angle =
          2.0f * static_cast<float>(std::numbers::pi) *
              static_cast<float>(h * t) / static_cast<float>(steps_per_day) +
          phase;
      shape[static_cast<size_t>(t)] += amp * std::sin(angle);
    }
  }
  // Accentuate peaks: soft-plus-like emphasis keeps the shape smooth while
  // making "rush hours" stand out over the baseline.
  float mean = 0.0f;
  for (float v : shape) mean += v;
  mean /= static_cast<float>(steps_per_day);
  float max_abs = 1e-6f;
  for (auto& v : shape) {
    v -= mean;
    v = v + 0.4f * v * std::fabs(v);
    max_abs = std::max(max_abs, std::fabs(v));
  }
  for (auto& v : shape) v /= max_abs;
  return shape;
}

}  // namespace

TimeSeriesDataset Generate(const GeneratorConfig& config) {
  FOCUS_CHECK_GT(config.num_entities, 0);
  FOCUS_CHECK_GT(config.num_steps, 0);
  FOCUS_CHECK_GT(config.steps_per_day, 1);
  FOCUS_CHECK_GT(config.num_clusters, 0);
  Rng rng(config.seed);

  const int64_t n = config.num_entities;
  const int64_t total = config.num_steps;
  const int64_t day = config.steps_per_day;
  const int64_t week = config.days_per_week > 0
                           ? day * config.days_per_week
                           : 0;

  // Cluster-shared daily shapes: entities in the same latent cluster repeat
  // the same pattern (the cross-entity recurrence of paper Example 1).
  std::vector<std::vector<float>> cluster_shapes;
  cluster_shapes.reserve(static_cast<size_t>(config.num_clusters));
  for (int64_t c = 0; c < config.num_clusters; ++c) {
    cluster_shapes.push_back(
        MakeDailyShape(day, config.num_harmonics, rng));
  }

  // Common shocks shared by all entities (weather fronts, grid events, ...).
  std::vector<float> common_shock(static_cast<size_t>(total), 0.0f);
  if (config.common_shock_std > 0.0f) {
    float prev = 0.0f;
    for (int64_t t = 0; t < total; ++t) {
      prev = 0.9f * prev + static_cast<float>(rng.Gaussian()) *
                               config.common_shock_std;
      common_shock[static_cast<size_t>(t)] = prev;
    }
  }

  // Cluster-level event traces: a shared incident signal per cluster that
  // entities pick up with individual lags/magnitudes below.
  std::vector<std::vector<float>> cluster_events(
      static_cast<size_t>(config.num_clusters));
  if (config.cluster_event_rate > 0.0f) {
    const float decay =
        config.cluster_event_duration > 0
            ? std::exp(-1.0f /
                       static_cast<float>(config.cluster_event_duration))
            : 0.0f;
    for (auto& trace : cluster_events) {
      trace.assign(static_cast<size_t>(total), 0.0f);
      float level = 0.0f;
      for (int64_t t = 0; t < total; ++t) {
        if (rng.Uniform() < config.cluster_event_rate) {
          const float sign = rng.Uniform() < 0.6 ? 1.0f : -1.0f;
          level += sign * config.cluster_event_magnitude *
                   config.daily_amplitude *
                   static_cast<float>(rng.Uniform(0.5, 1.5));
        }
        trace[static_cast<size_t>(t)] = level;
        level *= decay;
      }
    }
  }

  Tensor values = Tensor::Empty({n, total});
  for (int64_t e = 0; e < n; ++e) {
    Rng entity_rng = rng.Fork();
    const int64_t cluster = static_cast<int64_t>(
        entity_rng.UniformInt(static_cast<uint64_t>(config.num_clusters)));
    const auto& shape = cluster_shapes[static_cast<size_t>(cluster)];
    const float base =
        config.base_mean +
        static_cast<float>(entity_rng.Gaussian()) * config.base_spread;
    const float amp = config.daily_amplitude *
                      static_cast<float>(entity_rng.Uniform(0.6, 1.4));
    // Small per-entity phase shift: "the 7-8 AM rush" is consistent but not
    // identical across intersections.
    const int64_t phase = static_cast<int64_t>(
        entity_rng.UniformInt(static_cast<uint64_t>(std::max<int64_t>(
            day / 12, 1))));
    const float trend_slope =
        static_cast<float>(entity_rng.Gaussian()) * config.trend_std /
        static_cast<float>(total);
    const int64_t cluster_lag =
        config.cluster_event_max_lag > 0
            ? static_cast<int64_t>(entity_rng.UniformInt(
                  static_cast<uint64_t>(config.cluster_event_max_lag + 1)))
            : 0;
    const float cluster_scale =
        static_cast<float>(entity_rng.Uniform(0.6, 1.4));

    float ar = 0.0f;
    float event_level = 0.0f;
    const float event_decay =
        config.event_duration > 0
            ? std::exp(-1.0f / static_cast<float>(config.event_duration))
            : 0.0f;
    float* row = values.data() + e * total;
    for (int64_t t = 0; t < total; ++t) {
      const int64_t day_pos = (t + phase) % day;
      float v = base + amp * shape[static_cast<size_t>(day_pos)];
      if (week > 0) {
        const int64_t day_of_week = (t / day) % config.days_per_week;
        const bool weekend = day_of_week >= config.days_per_week - 2;
        const float weekly =
            1.0f +
            config.weekly_amplitude *
                std::sin(2.0f * static_cast<float>(std::numbers::pi) *
                         static_cast<float>(t % week) /
                         static_cast<float>(week));
        v *= weekly;
        if (weekend) v -= config.weekend_dip * amp;
      }
      // AR(1) noise.
      ar = config.ar_coeff * ar +
           static_cast<float>(entity_rng.Gaussian()) * config.noise_std;
      v += ar;
      // Transient events with exponential decay.
      if (entity_rng.Uniform() < config.event_rate) {
        event_level += config.event_magnitude *
                       static_cast<float>(entity_rng.Uniform(0.5, 1.5));
      }
      v += event_level;
      event_level *= event_decay;
      // Cluster-level incident with this entity's lag and magnitude.
      if (config.cluster_event_rate > 0.0f && t >= cluster_lag) {
        v += cluster_scale *
             cluster_events[static_cast<size_t>(cluster)]
                           [static_cast<size_t>(t - cluster_lag)];
      }
      // Slow trend and shared shock.
      v += trend_slope * static_cast<float>(t);
      v += common_shock[static_cast<size_t>(t)];
      row[t] = v;
    }
  }

  TimeSeriesDataset dataset;
  dataset.name = config.name;
  dataset.domain = config.domain;
  dataset.frequency = config.frequency;
  dataset.values = values;
  dataset.train_fraction = config.train_fraction;
  dataset.val_fraction = config.val_fraction;
  return dataset;
}

}  // namespace data
}  // namespace focus
