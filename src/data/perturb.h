// Controlled dataset perturbations for the robustness studies:
//  * InjectOutliers — Fig. 10: replaces a fraction of training points with
//    values sampled beyond 3x the series' standard deviation.
//  * InjectTestShift — Fig. 9: makes test-set segments steeper / larger so
//    they contain patterns unseen during training.
#ifndef FOCUS_DATA_PERTURB_H_
#define FOCUS_DATA_PERTURB_H_

#include "data/dataset.h"
#include "utils/rng.h"

namespace focus {
namespace data {

// Replaces `ratio` of the points in columns [0, range_end) with outliers
// drawn from beyond 3 sigma of each entity's distribution (sign random).
// Returns the number of points replaced. Mutates `dataset->values`.
int64_t InjectOutliers(TimeSeriesDataset* dataset, double ratio,
                       int64_t range_end, Rng& rng);

// Amplifies intra-segment trends in columns [range_begin, T): each length-
// `segment` block gets an added ramp of random slope scaled by `magnitude`
// times the entity std, producing the "steeper intra-segment trends" of the
// paper's Fig. 9 analysis. Mutates `dataset->values`.
void InjectTestShift(TimeSeriesDataset* dataset, int64_t range_begin,
                     int64_t segment, float magnitude, Rng& rng);

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_PERTURB_H_
