#include "data/impute.h"

#include <cmath>

#include "utils/check.h"

namespace focus {
namespace data {

GapReport ScanGaps(const Tensor& values) {
  FOCUS_CHECK_EQ(values.dim(), 2);
  const int64_t n = values.size(0), t = values.size(1);
  GapReport report;
  for (int64_t e = 0; e < n; ++e) {
    const float* row = values.data() + e * t;
    int64_t run = 0;
    bool any = false;
    for (int64_t i = 0; i < t; ++i) {
      if (std::isnan(row[i])) {
        ++report.missing_values;
        ++run;
        report.longest_gap = std::max(report.longest_gap, run);
        any = true;
      } else {
        run = 0;
      }
    }
    report.affected_entities += any;
  }
  return report;
}

int64_t ForwardFillImpute(Tensor* values) {
  FOCUS_CHECK(values != nullptr);
  FOCUS_CHECK_EQ(values->dim(), 2);
  const int64_t n = values->size(0), t = values->size(1);
  int64_t imputed = 0;
  for (int64_t e = 0; e < n; ++e) {
    float* row = values->data() + e * t;
    // First finite value for the back-fill of leading NaNs.
    float first_finite = 0.0f;
    bool found = false;
    for (int64_t i = 0; i < t; ++i) {
      if (!std::isnan(row[i])) {
        first_finite = row[i];
        found = true;
        break;
      }
    }
    float last = found ? first_finite : 0.0f;
    for (int64_t i = 0; i < t; ++i) {
      if (std::isnan(row[i])) {
        row[i] = last;
        ++imputed;
      } else {
        last = row[i];
      }
    }
  }
  return imputed;
}

int64_t LinearInterpolateImpute(Tensor* values) {
  FOCUS_CHECK(values != nullptr);
  FOCUS_CHECK_EQ(values->dim(), 2);
  const int64_t n = values->size(0), t = values->size(1);
  int64_t imputed = 0;
  for (int64_t e = 0; e < n; ++e) {
    float* row = values->data() + e * t;
    int64_t i = 0;
    while (i < t) {
      if (!std::isnan(row[i])) {
        ++i;
        continue;
      }
      // NaN run [i, j).
      int64_t j = i;
      while (j < t && std::isnan(row[j])) ++j;
      const bool has_left = i > 0;
      const bool has_right = j < t;
      if (has_left && has_right) {
        const float left = row[i - 1];
        const float right = row[j];
        const float span = static_cast<float>(j - (i - 1));
        for (int64_t k = i; k < j; ++k) {
          const float alpha = static_cast<float>(k - (i - 1)) / span;
          row[k] = left + alpha * (right - left);
          ++imputed;
        }
      } else if (has_left || has_right) {
        const float fill = has_left ? row[i - 1] : row[j];
        for (int64_t k = i; k < j; ++k) {
          row[k] = fill;
          ++imputed;
        }
      } else {
        // Entire row is NaN.
        for (int64_t k = i; k < j; ++k) {
          row[k] = 0.0f;
          ++imputed;
        }
      }
      i = j;
    }
  }
  return imputed;
}

}  // namespace data
}  // namespace focus
