// Sliding-window view over a normalized (N, T) series for forecasting:
// each window is (lookback, horizon) pair; batches are (B, N, L) / (B, N, Lf).
#ifndef FOCUS_DATA_WINDOW_H_
#define FOCUS_DATA_WINDOW_H_

#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace focus {
namespace data {

struct Batch {
  Tensor x;  // (B, N, L)
  Tensor y;  // (B, N, Lf)
};

class WindowDataset {
 public:
  // Windows start at s in [range_begin, range_end - lookback - horizon];
  // x = values[:, s : s+L), y = values[:, s+L : s+L+Lf).
  WindowDataset(Tensor values, int64_t lookback, int64_t horizon,
                int64_t range_begin, int64_t range_end);

  int64_t NumWindows() const { return num_windows_; }
  int64_t lookback() const { return lookback_; }
  int64_t horizon() const { return horizon_; }

  Batch GetBatch(const std::vector<int64_t>& window_indices) const;

  // Convenience: a single window as a batch of 1.
  Batch GetWindow(int64_t index) const { return GetBatch({index}); }

 private:
  Tensor values_;  // (N, T)
  int64_t lookback_;
  int64_t horizon_;
  int64_t range_begin_;
  int64_t num_windows_;
};

// Yields index batches, optionally shuffled; drops no remainder.
std::vector<std::vector<int64_t>> MakeBatches(int64_t num_items,
                                              int64_t batch_size, Rng* rng);

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_WINDOW_H_
