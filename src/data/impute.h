// Missing-value handling for real-world MTS ingestion: sensors drop
// readings (marked NaN); models need complete windows. Two standard
// imputers plus a gap report.
#ifndef FOCUS_DATA_IMPUTE_H_
#define FOCUS_DATA_IMPUTE_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace focus {
namespace data {

struct GapReport {
  int64_t missing_values = 0;   // total NaN cells
  int64_t longest_gap = 0;      // longest consecutive NaN run in any row
  int64_t affected_entities = 0;
};

// Scans an (N, T) matrix for NaNs.
GapReport ScanGaps(const Tensor& values);

// Replaces NaNs with the previous finite value in the row; leading NaNs
// take the first finite value (back-fill). Rows that are entirely NaN are
// zero-filled. Returns the number of imputed cells. Mutates in place.
int64_t ForwardFillImpute(Tensor* values);

// Replaces interior NaN runs with linear interpolation between the
// surrounding finite values; edge runs fall back to nearest-value fill.
// Returns the number of imputed cells. Mutates in place.
int64_t LinearInterpolateImpute(Tensor* values);

}  // namespace data
}  // namespace focus

#endif  // FOCUS_DATA_IMPUTE_H_
