// Tape-free inference execution plans: capture once, replay many.
//
// ExecutionPlan::Capture() runs a model forward exactly once under the
// plan_hooks capture sink (src/tensor/plan_hooks.h) and records the
// kernel-launch sequence the eager path performed — each step carries a
// replay closure built at the op site from the very code that just ran,
// so a replay performs the identical IEEE operations in the identical
// order (bit-identity with eager by construction, on both SIMD backends
// and any thread count).
//
// Compilation then turns the recorded graph into a static program:
//
//   * Constant folding: steps whose inputs are all parameters/constants
//     (e.g. prototype embeddings re-projected every forward) execute
//     once at compile time into pinned buffers and vanish from the
//     steady-state program.
//   * Elementwise fusion: adjacent producer/consumer pairs with a fused
//     kernel in the SIMD table (add+gelu, add_scalar+sqrt,
//     mul_scalar+sigmoid, mul_scalar+softmax) collapse into one sweep
//     that keeps the intermediate in registers. Legality: the producer
//     is elementwise, its output has exactly one consumer, shapes are
//     equal, and the fused kernel preserves the layer's lane-order
//     contract — so fusion never changes bits either.
//   * Static memory planning: every intermediate gets a [def, last-use]
//     lifetime; a first-fit interval allocator packs them into ONE
//     64-byte-aligned slab leased from the caching allocator at compile
//     time. Steady-state Run() therefore makes zero tensor-allocator
//     calls (asserted in tests/plan_test.cc via AllocatorStats).
//
// Run() patches the caller's input pointer into the pre-resolved
// per-step buffer tables and replays the closures. A shape or SIMD
// backend change invalidates the plan — callers check Matches() and
// fall back to eager (core::PlannedForecaster automates this).
//
// An op without a capture hook fails the capture (MakeResult notifies
// the sink of every op output; an unknown buffer means an
// uninstrumented op ran) and Capture() returns nullptr: uninstrumented
// ops are safe, never silently wrong.
//
// Limitations (documented contract): plans freeze parameter VALUES at
// capture/fold time, so they serve frozen inference models only; op
// side effects outside the tensor graph (e.g. ProtoAttn's
// last_assignment_/last_attention_ diagnostics) are not replayed; the
// returned output tensor is owned by the plan and overwritten by the
// next Run().
#ifndef FOCUS_PLAN_PLAN_H_
#define FOCUS_PLAN_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/allocator.h"
#include "tensor/plan_hooks.h"
#include "tensor/precision.h"
#include "tensor/simd/vec.h"
#include "tensor/tensor.h"

namespace focus {
namespace plan {

struct Options {
  bool fuse = true;  // elementwise chain fusion
  bool fold = true;  // constant folding of parameter-only subgraphs
};

// Compile-time facts about a plan, for tests / benches / reports.
struct PlanStats {
  int64_t captured_steps = 0;  // steps recorded by the eager forward
  int64_t steps = 0;           // steps in the compiled program
  int64_t folded = 0;          // steps removed by constant folding
  int64_t fused = 0;           // fusion rewrites applied
  int64_t constants = 0;       // pinned parameter/constant buffers
  int64_t slab_bytes = 0;      // static slab size (64-byte aligned)
  int64_t flops_per_run = 0;   // FLOPs charged per Run()
  // Estimated operand traffic per Run(): sum over compiled steps of
  // every operand's numel * elem_bytes (reads + the written output).
  // Bandwidth accounting for the perf gate — bf16 plans show the
  // bytes-moved reduction here even when latency is noisy.
  int64_t bytes_per_run = 0;
};

class ExecutionPlan {
 public:
  using ForwardFn = std::function<Tensor(const Tensor&)>;

  // Runs `fn(example)` once under the capture sink and compiles the
  // recorded steps. Returns nullptr when the forward used an op without
  // a capture hook (the caller stays on the eager path). The forward
  // runs under InferenceModeGuard: it must be a pure inference pass.
  // Process-global: captures must not run concurrently.
  static std::unique_ptr<ExecutionPlan> Capture(const ForwardFn& fn,
                                                const Tensor& example,
                                                const Options& opts = {});

  // True when `input` can be fed to Run(): same shape as the capture
  // example, the SIMD backend is still the one the plan was compiled
  // against (closures hold resolved kernel pointers), and the calling
  // thread's PrecisionMode equals the capture-time mode (a bf16 plan
  // must not serve an f32 request and vice versa).
  bool Matches(const Tensor& input) const;

  // Replays the program against `input`. Requires Matches(input).
  // Returns the plan-owned output tensor; its contents are valid until
  // the next Run(). Makes no tensor-allocator calls. Not re-entrant.
  Tensor Run(const Tensor& input);

  const PlanStats& stats() const { return stats_; }
  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const { return output_shape_; }

  // Human-readable program listing: one line per step with its operand
  // bindings (slab offsets, constants, input) — for tests and debugging.
  std::string DebugLayout() const;

  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

 private:
  ExecutionPlan() = default;

  struct CompiledStep {
    std::string name;
    plan_hooks::StepFn fn;
    std::vector<float*> bufs;
    // Diagnostic operand descriptions, parallel to `bufs`.
    std::vector<std::string> operands;
  };

  Shape input_shape_;
  Shape output_shape_;
  const simd::KernelTable* backend_ = nullptr;
  Precision precision_ = Precision::kF32;  // ambient mode at capture
  std::vector<CompiledStep> steps_;
  // (step, operand) slots to patch with the caller's input pointer.
  std::vector<std::pair<int, int>> input_patches_;
  SlabLease slab_;
  // Pinned parameter/constant buffers (capture-time and folded).
  std::vector<Tensor> pinned_;
  Tensor output_;  // persistent output buffer, rewritten by each Run()
  PlanStats stats_;
};

}  // namespace plan
}  // namespace focus

#endif  // FOCUS_PLAN_PLAN_H_
