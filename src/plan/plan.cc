// ExecutionPlan implementation: recorder sink, constant folding,
// elementwise fusion, lifetime-packed slab layout, replay loop.
//
// Value identity during recording is "current value for buffer pointer":
// the allocator recycles buffers, so a raw pointer can name different
// logical tensors over the forward. Each recorded output OVERWRITES the
// pointer's mapping; a lookup can therefore never resolve to a stale
// value — an eager op holds its input tensors alive while it runs, so a
// freed (recyclable) buffer cannot reappear as a later step's input. A
// pointer with no mapping is a parameter/constant: it is pinned (the
// plan holds a detached tensor sharing the buffer) so the address stays
// valid for the plan's lifetime. Aliasing ops (Reshape/Detach) share
// the producer's buffer and thus resolve to the producer's value.
#include "plan/plan.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/flops.h"
#include "utils/logging.h"

namespace focus {
namespace plan {

namespace {

// 64-byte slab alignment (one cache line, two AVX2 lanes). The packer
// works in BYTES so mixed element sizes (f32 temps, bf16-packed temps)
// share one slab with exact lifetimes.
constexpr int64_t kAlignBytes = 64;

int64_t AlignUpBytes(int64_t bytes) {
  return (bytes + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
}

struct Value {
  enum Kind { kInput, kConstant, kTemp, kScratch };
  Kind kind = kTemp;
  int64_t numel = 0;       // logical element count
  int32_t elem_bytes = 4;  // storage bytes per element (4=f32, 2=bf16)
  Tensor pinned;           // keeps constant buffers alive
  int64_t offset = -1;     // slab offset (bytes) for temps/scratch

  int64_t bytes() const { return numel * elem_bytes; }
};

struct Step {
  plan_hooks::StepKind kind = plan_hooks::StepKind::kOpaque;
  std::string name;
  std::vector<int> inputs;
  int output = -1;
  std::vector<int> scratch;
  plan_hooks::StepFn fn;
  float scalar = 0.0f;
  int64_t rows = 0, inner = 0;
};

class Recorder : public plan_hooks::CaptureSink {
 public:
  explicit Recorder(const Tensor& example) {
    Value v;
    v.kind = Value::kInput;
    v.numel = example.numel();
    v.pinned = example.Detach();  // keep the example buffer alive
    values_.push_back(std::move(v));
    map_[example.data()] = 0;
  }

  void OnStep(plan_hooks::StepRecord rec) override {
    if (failed_) return;
    Step step;
    step.kind = rec.kind;
    step.name = rec.name;
    step.scalar = rec.scalar;
    step.rows = rec.rows;
    step.inner = rec.inner;
    step.fn = std::move(rec.fn);
    for (const Tensor& in : rec.inputs) {
      step.inputs.push_back(LookupOrPin(in));
    }
    Value out;
    out.kind = Value::kTemp;
    out.numel = rec.out_numel >= 0 ? rec.out_numel : rec.output.numel();
    out.elem_bytes = rec.out_elem_bytes;
    const int out_id = static_cast<int>(values_.size());
    values_.push_back(std::move(out));
    map_[rec.output.data()] = out_id;  // overwrite: recycling-safe
    step.output = out_id;
    for (int64_t numel : rec.scratch_numels) {
      Value s;
      s.kind = Value::kScratch;
      s.numel = numel;
      step.scratch.push_back(static_cast<int>(values_.size()));
      values_.push_back(std::move(s));
    }
    steps_.push_back(std::move(step));
  }

  void OnResult(const char* name, const Tensor& out) override {
    if (failed_ || out.numel() == 0) return;
    if (map_.find(out.data()) == map_.end()) {
      Fail(std::string("uninstrumented op '") + name + "'");
    }
  }

  void OnUnsupported(const char* what) override {
    Fail(std::string("unsupported op '") + what + "'");
  }

  void OnFree(const float* ptr) override {
    // A dead intermediate's address can be recycled into an unrelated
    // tensor (e.g. a factory-made kernel weight); its mapping must not
    // survive the buffer.
    map_.erase(ptr);
  }

  // -1 when the pointer is unknown (result didn't come from a step).
  int Find(const float* ptr) const {
    auto it = map_.find(ptr);
    return it == map_.end() ? -1 : it->second;
  }

  bool failed() const { return failed_; }
  const std::string& fail_reason() const { return fail_reason_; }
  std::vector<Value>& values() { return values_; }
  std::vector<Step>& steps() { return steps_; }

 private:
  int LookupOrPin(const Tensor& t) {
    auto it = map_.find(t.data());
    if (it != map_.end()) return it->second;
    // Never recorded: a parameter or a factory-made constant. Pin the
    // buffer so the captured address outlives the capture.
    Value v;
    v.kind = Value::kConstant;
    v.numel = t.numel();
    v.pinned = t.Detach();
    const int id = static_cast<int>(values_.size());
    values_.push_back(std::move(v));
    map_[t.data()] = id;
    return id;
  }

  void Fail(std::string reason) {
    if (!failed_) {
      failed_ = true;
      fail_reason_ = std::move(reason);
    }
  }

  std::vector<Value> values_;
  std::vector<Step> steps_;
  std::unordered_map<const float*, int> map_;
  bool failed_ = false;
  std::string fail_reason_;
};

// RAII sink installation so a CHECK-failure path can't leak the sink.
class SinkScope {
 public:
  explicit SinkScope(plan_hooks::CaptureSink* sink) {
    plan_hooks::SetCaptureSink(sink);
  }
  ~SinkScope() { plan_hooks::SetCaptureSink(nullptr); }
};

// Use count of `id` as a step input (fusion legality needs "exactly
// one consumer").
int CountUses(const std::vector<Step>& steps, int id) {
  int uses = 0;
  for (const Step& s : steps) {
    for (int in : s.inputs) {
      if (in == id) ++uses;
    }
  }
  return uses;
}

// Fusion rule table: producer/consumer StepKind pair -> fused step.
// Returns false when the pair has no rule. All rules are elementwise
// (or row-elementwise) and lane-order preserving: the fused kernel runs
// the same float32 op sequence with the intermediate kept in registers,
// and a float32 store/load round-trip is exact, so bits cannot change.
bool BuildFusedStep(const Step& prod, const Step& cons, int64_t out_numel,
                    Step* fused) {
  using plan_hooks::StepKind;
  const simd::KernelTable& kt = simd::Kernels();
  const float s = prod.scalar;
  const int64_t n = out_numel;
  if (prod.kind == StepKind::kAdd && cons.kind == StepKind::kGelu) {
    const auto k = kt.add_gelu_fwd;
    fused->name = "fused:Add+Gelu";
    fused->inputs = prod.inputs;
    fused->fn = [k, n](float* const* bufs) {
      ParallelFor(0, n, plan_hooks::kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    k(bufs[0] + i0, bufs[1] + i0, bufs[2] + i0, i1 - i0);
                  });
    };
    return true;
  }
  if (prod.kind == StepKind::kAddScalar && cons.kind == StepKind::kSqrt) {
    const auto k = kt.add_scalar_sqrt_fwd;
    fused->name = "fused:AddScalar+Sqrt";
    fused->inputs = prod.inputs;
    fused->fn = [k, s, n](float* const* bufs) {
      ParallelFor(0, n, plan_hooks::kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    k(bufs[0] + i0, s, bufs[1] + i0, i1 - i0);
                  });
    };
    return true;
  }
  if (prod.kind == StepKind::kMulScalar &&
      cons.kind == StepKind::kSigmoid) {
    const auto k = kt.mul_scalar_sigmoid_fwd;
    fused->name = "fused:MulScalar+Sigmoid";
    fused->inputs = prod.inputs;
    fused->fn = [k, s, n](float* const* bufs) {
      ParallelFor(0, n, plan_hooks::kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    k(bufs[0] + i0, s, bufs[1] + i0, i1 - i0);
                  });
    };
    return true;
  }
  if (prod.kind == StepKind::kMulScalar &&
      cons.kind == StepKind::kSoftmaxRows) {
    const auto k = kt.mul_scalar_softmax_rows;
    const int64_t rows = cons.rows, inner = cons.inner;
    fused->name = "fused:MulScalar+Softmax";
    fused->inputs = prod.inputs;
    fused->fn = [k, s, rows, inner](float* const* bufs) {
      ParallelFor(0, rows, plan_hooks::RowGrain(inner),
                  [&](int64_t r0, int64_t r1) {
                    k(bufs[0] + r0 * inner, s, bufs[1] + r0 * inner,
                      r1 - r0, inner);
                  });
    };
    return true;
  }
  return false;
}

// First-fit free-list over slab extents (offsets/sizes in bytes).
class SlabPacker {
 public:
  int64_t Alloc(int64_t size) {
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size >= size) {
        const int64_t off = free_[i].off;
        free_[i].off += size;
        free_[i].size -= size;
        if (free_[i].size == 0) {
          free_.erase(free_.begin() + static_cast<int64_t>(i));
        }
        return off;
      }
    }
    const int64_t off = end_;
    end_ += size;
    return off;
  }

  void Free(int64_t off, int64_t size) {
    // Insert sorted by offset, then coalesce with both neighbours.
    size_t i = 0;
    while (i < free_.size() && free_[i].off < off) ++i;
    free_.insert(free_.begin() + static_cast<int64_t>(i), {off, size});
    if (i + 1 < free_.size() &&
        free_[i].off + free_[i].size == free_[i + 1].off) {
      free_[i].size += free_[i + 1].size;
      free_.erase(free_.begin() + static_cast<int64_t>(i) + 1);
    }
    if (i > 0 &&
        free_[i - 1].off + free_[i - 1].size == free_[i].off) {
      free_[i - 1].size += free_[i].size;
      free_.erase(free_.begin() + static_cast<int64_t>(i));
    }
  }

  int64_t total() const { return end_; }

 private:
  struct Extent {
    int64_t off, size;
  };
  std::vector<Extent> free_;
  int64_t end_ = 0;
};

}  // namespace

std::unique_ptr<ExecutionPlan> ExecutionPlan::Capture(
    const ForwardFn& fn, const Tensor& example, const Options& opts) {
  FOCUS_CHECK(example.defined()) << "plan capture needs an example input";
  const simd::KernelTable* backend = &simd::Kernels();

  Recorder rec(example);
  const int64_t flops0 = FlopCounter::Count();
  Tensor result;
  {
    InferenceModeGuard inference;
    SinkScope scope(&rec);
    result = fn(example);
  }
  const int64_t flops_per_run = FlopCounter::Count() - flops0;
  if (rec.failed()) {
    FOCUS_LOG(Warning) << "plan capture failed (" << rec.fail_reason()
                       << "); staying on the eager path";
    return nullptr;
  }
  FOCUS_CHECK(result.defined()) << "plan capture: forward returned null";
  const int out_id = rec.Find(result.data());
  std::vector<Value>& values = rec.values();
  std::vector<Step>& steps = rec.steps();
  if (out_id < 0 || values[static_cast<size_t>(out_id)].kind !=
                        Value::kTemp) {
    FOCUS_LOG(Warning) << "plan capture failed (output is not a step "
                          "product); staying on the eager path";
    return nullptr;
  }

  std::unique_ptr<ExecutionPlan> plan(new ExecutionPlan());
  plan->input_shape_ = example.shape();
  plan->output_shape_ = result.shape();
  plan->backend_ = backend;
  plan->precision_ = PrecisionMode::Get();
  plan->stats_.captured_steps = static_cast<int64_t>(steps.size());
  plan->stats_.flops_per_run = flops_per_run;

  // --- Constant folding: a step fed only by constants computes the
  // same bytes every run; execute it now into a pinned buffer and drop
  // it from the program. One forward pass suffices — folding a step can
  // only enable folding of LATER steps (defs precede uses).
  if (opts.fold) {
    std::vector<Step> kept;
    kept.reserve(steps.size());
    for (Step& step : steps) {
      bool all_const = step.output != out_id;
      for (int in : step.inputs) {
        all_const = all_const &&
                    values[static_cast<size_t>(in)].kind ==
                        Value::kConstant;
      }
      if (!all_const) {
        kept.push_back(std::move(step));
        continue;
      }
      Value& out = values[static_cast<size_t>(step.output)];
      // Byte-capacity buffer: bf16-packed outputs occupy 2 bytes per
      // logical element inside a float-typed pinned tensor.
      out.pinned = Tensor::Empty(
          {(out.bytes() + static_cast<int64_t>(sizeof(float)) - 1) /
           static_cast<int64_t>(sizeof(float))});
      std::vector<Tensor> scratch_bufs;
      std::vector<float*> bufs;
      for (int in : step.inputs) {
        bufs.push_back(const_cast<float*>(
            values[static_cast<size_t>(in)].pinned.data()));
      }
      bufs.push_back(out.pinned.data());
      for (int sid : step.scratch) {
        scratch_bufs.push_back(
            Tensor::Empty({values[static_cast<size_t>(sid)].numel}));
        bufs.push_back(scratch_bufs.back().data());
      }
      step.fn(bufs.data());
      out.kind = Value::kConstant;
      ++plan->stats_.folded;
    }
    steps = std::move(kept);
  }

  // --- Elementwise fusion over adjacent producer/consumer pairs.
  if (opts.fuse) {
    for (size_t i = 0; i + 1 < steps.size();) {
      Step& prod = steps[i];
      Step& cons = steps[i + 1];
      const int mid = prod.output;
      const Value& mid_v = values[static_cast<size_t>(mid)];
      const int64_t out_numel =
          values[static_cast<size_t>(cons.output)].numel;
      Step fused;
      const bool legal =
          cons.inputs.size() == 1 && cons.inputs[0] == mid &&
          mid != out_id && mid_v.kind == Value::kTemp &&
          mid_v.numel == out_numel && CountUses(steps, mid) == 1 &&
          prod.scratch.empty() && cons.scratch.empty() &&
          BuildFusedStep(prod, cons, out_numel, &fused);
      if (!legal) {
        ++i;
        continue;
      }
      fused.output = cons.output;
      steps[i] = std::move(fused);
      steps.erase(steps.begin() + static_cast<int64_t>(i) + 1);
      ++plan->stats_.fused;
      // The intermediate now has no def and no use; liveness skips it.
    }
  }

  // --- Liveness: def/last-use step index per value, then first-fit
  // interval packing into one slab.
  const size_t nvalues = values.size();
  const int nsteps = static_cast<int>(steps.size());
  std::vector<int> def(nvalues, -1), last(nvalues, -1);
  for (int i = 0; i < nsteps; ++i) {
    def[static_cast<size_t>(steps[static_cast<size_t>(i)].output)] = i;
    for (int sid : steps[static_cast<size_t>(i)].scratch) {
      def[static_cast<size_t>(sid)] = i;
      last[static_cast<size_t>(sid)] = i;
    }
    for (int in : steps[static_cast<size_t>(i)].inputs) {
      last[static_cast<size_t>(in)] = i;
    }
  }
  last[static_cast<size_t>(out_id)] = nsteps;  // output outlives the run

  SlabPacker packer;
  for (int i = 0; i < nsteps; ++i) {
    for (size_t v = 0; v < nvalues; ++v) {
      if (def[v] != i) continue;
      Value& val = values[v];
      if (val.kind != Value::kTemp && val.kind != Value::kScratch) {
        continue;
      }
      if (static_cast<int>(v) == out_id) continue;  // persistent
      val.offset = packer.Alloc(AlignUpBytes(val.bytes()));
    }
    for (size_t v = 0; v < nvalues; ++v) {
      if (last[v] != i || def[v] < 0) continue;
      const Value& val = values[v];
      if (val.offset < 0) continue;
      packer.Free(val.offset, AlignUpBytes(val.bytes()));
    }
  }

  // --- Bindings: one resolved float* table per step; input slots are
  // patched per Run(). Allocate the slab and output buffer LAST so the
  // steady-state invariant (zero allocator calls in Run) is the only
  // allocator traffic compile leaves behind.
  // packer.total() is 64-byte aligned, so the float conversion is exact.
  plan->slab_ = SlabLease(packer.total() /
                          static_cast<int64_t>(sizeof(float)));
  plan->output_ = Tensor::Empty(result.shape());
  plan->stats_.slab_bytes = packer.total();
  float* slab = plan->slab_.data();

  auto resolve = [&](int id, std::string* desc) -> float* {
    const Value& v = values[static_cast<size_t>(id)];
    // Non-f32 operands carry their storage dtype in the listing; the
    // lifetime checker in plan_test sizes extents from it.
    const std::string dtype = v.elem_bytes == 2 ? ":bf16" : "";
    if (id == out_id) {
      *desc = "out";
      return plan->output_.data();
    }
    switch (v.kind) {
      case Value::kInput:
        *desc = "arg";
        return nullptr;  // patched per Run
      case Value::kConstant:
        *desc = "const[" + std::to_string(v.numel) + dtype + "]";
        return const_cast<float*>(v.pinned.data());
      case Value::kTemp:
      case Value::kScratch:
        // "slab+<byte offset>[<numel>(:bf16)]" — tests parse this to
        // check that operand ranges within a step never overlap.
        *desc = "slab+" + std::to_string(v.offset) + "[" +
                std::to_string(v.numel) + dtype + "]";
        return slab + v.offset / static_cast<int64_t>(sizeof(float));
    }
    return nullptr;
  };

  for (int i = 0; i < nsteps; ++i) {
    Step& step = steps[static_cast<size_t>(i)];
    CompiledStep cs;
    cs.name = step.name;
    cs.fn = std::move(step.fn);
    std::vector<int> ids = step.inputs;
    ids.push_back(step.output);
    ids.insert(ids.end(), step.scratch.begin(), step.scratch.end());
    for (size_t a = 0; a < ids.size(); ++a) {
      std::string desc;
      float* p = resolve(ids[a], &desc);
      plan->stats_.bytes_per_run +=
          values[static_cast<size_t>(ids[a])].bytes();
      if (values[static_cast<size_t>(ids[a])].kind == Value::kInput) {
        plan->input_patches_.emplace_back(i, static_cast<int>(a));
      }
      // The written operand is prefixed "->" (and scratch "~") so tests
      // can reconstruct buffer lifetimes from the listing alone.
      if (a == step.inputs.size()) desc = "->" + desc;
      if (a > step.inputs.size()) desc = "~" + desc;
      cs.bufs.push_back(p);
      cs.operands.push_back(std::move(desc));
    }
    plan->steps_.push_back(std::move(cs));
  }
  plan->stats_.steps = nsteps;
  for (const Value& v : values) {
    if (v.kind == Value::kConstant) ++plan->stats_.constants;
  }
  // Pin constant tensors on the plan (the recorder dies with Capture).
  for (Value& v : values) {
    if (v.kind == Value::kConstant && v.pinned.defined()) {
      plan->pinned_.push_back(std::move(v.pinned));
    }
  }
  return plan;
}

bool ExecutionPlan::Matches(const Tensor& input) const {
  return input.defined() && input.shape() == input_shape_ &&
         &simd::Kernels() == backend_ &&
         PrecisionMode::Get() == precision_;
}

Tensor ExecutionPlan::Run(const Tensor& input) {
  FOCUS_CHECK(Matches(input))
      << "plan guard: input " << ShapeToString(input.shape())
      << " does not match plan (compiled for "
      << ShapeToString(input_shape_)
      << "); callers must check Matches() and fall back to eager";
  obs::TraceSpan::Options span_opts;
  span_opts.planned = true;
  obs::TraceSpan span("plan/run", span_opts);
  float* in = const_cast<float*>(input.data());
  for (const auto& [step, arg] : input_patches_) {
    steps_[static_cast<size_t>(step)]
        .bufs[static_cast<size_t>(arg)] = in;
  }
  for (CompiledStep& step : steps_) {
    step.fn(step.bufs.data());
  }
  // One bulk charge of the captured forward's FLOPs (includes folded
  // steps, keeping planned FLOP accounting comparable with eager).
  FlopCounter::Add(stats_.flops_per_run);
  return output_;
}

std::string ExecutionPlan::DebugLayout() const {
  std::string out = "plan: " + std::to_string(steps_.size()) +
                    " steps, slab " +
                    std::to_string(stats_.slab_bytes) + " B, " +
                    std::to_string(stats_.constants) + " constants, " +
                    std::to_string(stats_.folded) + " folded, " +
                    std::to_string(stats_.fused) + " fused\n";
  for (size_t i = 0; i < steps_.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + steps_[i].name + "(";
    for (size_t a = 0; a < steps_[i].operands.size(); ++a) {
      if (a > 0) out += ", ";
      out += steps_[i].operands[a];
    }
    out += ")\n";
  }
  return out;
}

}  // namespace plan
}  // namespace focus
