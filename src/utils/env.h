// Environment-variable helpers used by the harness profiles.
#ifndef FOCUS_UTILS_ENV_H_
#define FOCUS_UTILS_ENV_H_

#include <cstdlib>
#include <string>

namespace focus {

inline std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}

inline long GetEnvIntOr(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

}  // namespace focus

#endif  // FOCUS_UTILS_ENV_H_
