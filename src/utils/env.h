// Environment-variable helpers used by the harness profiles and runtime
// configuration (FOCUS_NUM_THREADS, FOCUS_OBS_KERNEL_SAMPLE, ...).
//
// Integer parsing is strict: a set-but-malformed value (garbage, trailing
// characters, overflow, or out of the caller's accepted range) never
// silently misconfigures the process — it logs a warning and falls back to
// the caller's default. Only an *unset* variable falls back silently.
#ifndef FOCUS_UTILS_ENV_H_
#define FOCUS_UTILS_ENV_H_

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <string>

#include "utils/logging.h"

namespace focus {

inline std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}

// Parses env var `name` as a base-10 integer into the inclusive range
// [min_value, max_value]. Unset => `fallback` (silently). Set but empty,
// non-numeric, partially numeric ("8x"), overflowing, or out of range =>
// `fallback` with a logged warning naming the variable and the bad value.
inline long GetEnvIntInRangeOr(const char* name, long fallback, long min_value,
                               long max_value) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  const bool consumed_digits = end != v;
  while (*end == ' ' || *end == '\t') ++end;  // forgive shell-quoting spaces
  if (!consumed_digits || *end != '\0') {
    FOCUS_LOG(Warning) << name << "='" << v
                       << "' is not an integer; using default " << fallback;
    return fallback;
  }
  if (errno == ERANGE || parsed < min_value || parsed > max_value) {
    FOCUS_LOG(Warning) << name << "='" << v << "' is outside [" << min_value
                       << ", " << max_value << "]; using default " << fallback;
    return fallback;
  }
  return parsed;
}

inline long GetEnvIntOr(const char* name, long fallback) {
  return GetEnvIntInRangeOr(name, fallback, LONG_MIN, LONG_MAX);
}

}  // namespace focus

#endif  // FOCUS_UTILS_ENV_H_
