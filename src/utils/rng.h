// Deterministic random number generation.
//
// All stochastic components (data generators, weight init, clustering seeds,
// batch shuffling) draw from an explicitly-passed Rng so every experiment is
// reproducible from a single seed. The core generator is xoshiro256**, seeded
// via SplitMix64 per the reference implementation recommendations.
#ifndef FOCUS_UTILS_RNG_H_
#define FOCUS_UTILS_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "utils/check.h"

namespace focus {

// SplitMix64: used to expand a 64-bit seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
    has_gauss_ = false;
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) {
    FOCUS_CHECK_GT(n, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0ULL - n) % n;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  // Standard normal via Box-Muller (cached second value).
  double Gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u1 = 0.0;
    do {
      u1 = Uniform();
    } while (u1 <= 1e-300);
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; used to give each dataset /
  // model / experiment its own stream from one experiment seed.
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace focus

#endif  // FOCUS_UTILS_RNG_H_
