#include "utils/logging.h"

#include <atomic>
#include <cstring>

namespace focus {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_level.load()) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal_log
}  // namespace focus
