#include "utils/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "utils/env.h"

namespace focus {

namespace {

// Parses FOCUS_LOG_LEVEL: a name (debug|info|warning|error, any case) or a
// number 0-3. Anything else keeps `fallback`.
int ParseLevel(const std::string& value, int fallback) {
  if (value.size() == 1 && value[0] >= '0' && value[0] <= '3') {
    return value[0] - '0';
  }
  std::string lower;
  for (char c : value) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return static_cast<int>(LogLevel::kDebug);
  if (lower == "info") return static_cast<int>(LogLevel::kInfo);
  if (lower == "warning" || lower == "warn") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (lower == "error") return static_cast<int>(LogLevel::kError);
  return fallback;
}

std::atomic<int>& Level() {
  static std::atomic<int> level{
      ParseLevel(GetEnvOr("FOCUS_LOG_LEVEL", ""),
                 static_cast<int>(LogLevel::kInfo))};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(Level().load()); }

void SetLogLevel(LogLevel level) { Level().store(static_cast<int>(level)); }

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < Level().load()) return;
  // Emit the whole line in one write under a mutex so concurrent loggers
  // (e.g. parallel clustering workers) never interleave mid-message.
  stream_ << '\n';
  const std::string line = stream_.str();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_log
}  // namespace focus
