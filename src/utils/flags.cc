#include "utils/flags.h"

#include <cstdlib>
#include <cstring>

namespace focus {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long FlagParser::GetInt(const std::string& name, long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? parsed : fallback;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace focus
