// Assertion and fatal-error macros.
//
// The library does not use exceptions (see DESIGN.md Sec. 6). Programmer
// errors — shape mismatches, out-of-range indices, violated invariants —
// terminate the process with a message through FOCUS_CHECK. Fallible
// operations (file I/O, parsing) return focus::Status instead.
#ifndef FOCUS_UTILS_CHECK_H_
#define FOCUS_UTILS_CHECK_H_

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

namespace focus {
namespace internal_check {

// Accumulates a message and aborts the process when destroyed. Usage is via
// the FOCUS_CHECK family of macros only.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line << " check failed: "
            << condition << " ";
  }

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Allows FOCUS_CHECK(...) << "details" to appear in expressions returning
// void. The operator& has lower precedence than << but higher than ?:.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_check

// Debug invariant-check tier (FOCUS_DEBUG_CHECK). These are the expensive
// guards — post-op NaN/Inf scans, alias checks on in-place ops, the autograd
// graph auditor — that are too slow for release hot paths but cheap enough
// for debugging and CI. They are always compiled; whether they *evaluate* is
// a single relaxed atomic load:
//
//   * Debug builds (NDEBUG undefined): on by default.
//   * Release builds: off by default; FOCUS_DEBUG_CHECKS=1 turns them on.
//   * FOCUS_DEBUG_CHECKS=0 forces them off in any build.
//   * debug::SetChecksEnabled() overrides the environment (used by tests).
namespace debug {
namespace internal {

// -1 = not yet initialized from the environment; 0 = off; 1 = on.
inline std::atomic<int> g_checks_enabled{-1};

inline int InitChecksEnabledFromEnv() {
#ifdef NDEBUG
  int enabled = 0;
#else
  int enabled = 1;
#endif
  const char* v = std::getenv("FOCUS_DEBUG_CHECKS");
  if (v != nullptr && *v != '\0') {
    enabled = (std::strcmp(v, "0") != 0) ? 1 : 0;
  }
  // Another thread may have raced the same init; the value is identical.
  g_checks_enabled.store(enabled, std::memory_order_relaxed);
  return enabled;
}

}  // namespace internal

// True when the FOCUS_DEBUG_CHECK tier is active. The fast path is one
// relaxed atomic load, so guard sites cost a predictable branch when off.
inline bool ChecksEnabled() {
  const int v = internal::g_checks_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return internal::InitChecksEnabledFromEnv() != 0;
}

// Programmatic override of the FOCUS_DEBUG_CHECKS environment setting.
inline void SetChecksEnabled(bool enabled) {
  internal::g_checks_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace debug
}  // namespace focus

#define FOCUS_CHECK(cond)                                                \
  (cond) ? (void)0                                                       \
         : ::focus::internal_check::Voidify() &                          \
               ::focus::internal_check::FatalMessage(__FILE__, __LINE__, \
                                                     #cond)              \
                   .stream()

#define FOCUS_CHECK_OP(a, b, op) \
  FOCUS_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define FOCUS_CHECK_EQ(a, b) FOCUS_CHECK_OP(a, b, ==)
#define FOCUS_CHECK_NE(a, b) FOCUS_CHECK_OP(a, b, !=)
#define FOCUS_CHECK_LT(a, b) FOCUS_CHECK_OP(a, b, <)
#define FOCUS_CHECK_LE(a, b) FOCUS_CHECK_OP(a, b, <=)
#define FOCUS_CHECK_GT(a, b) FOCUS_CHECK_OP(a, b, >)
#define FOCUS_CHECK_GE(a, b) FOCUS_CHECK_OP(a, b, >=)

#define FOCUS_FATAL(msg)                                               \
  ::focus::internal_check::Voidify() &                                 \
      ::focus::internal_check::FatalMessage(__FILE__, __LINE__, "")    \
          .stream()                                                    \
      << msg

// Debug-tier check: evaluates `cond` (and aborts on failure, exactly like
// FOCUS_CHECK) only while debug::ChecksEnabled() is true. When the tier is
// off neither `cond` nor the streamed message arguments are evaluated.
#define FOCUS_DEBUG_CHECK(cond)                                          \
  (!::focus::debug::ChecksEnabled() || (cond))                           \
      ? (void)0                                                          \
      : ::focus::internal_check::Voidify() &                             \
            ::focus::internal_check::FatalMessage(__FILE__, __LINE__,    \
                                                  #cond)                 \
                .stream()

#define FOCUS_DEBUG_CHECK_OP(a, b, op) \
  FOCUS_DEBUG_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define FOCUS_DEBUG_CHECK_EQ(a, b) FOCUS_DEBUG_CHECK_OP(a, b, ==)
#define FOCUS_DEBUG_CHECK_NE(a, b) FOCUS_DEBUG_CHECK_OP(a, b, !=)
#define FOCUS_DEBUG_CHECK_LT(a, b) FOCUS_DEBUG_CHECK_OP(a, b, <)
#define FOCUS_DEBUG_CHECK_LE(a, b) FOCUS_DEBUG_CHECK_OP(a, b, <=)
#define FOCUS_DEBUG_CHECK_GT(a, b) FOCUS_DEBUG_CHECK_OP(a, b, >)
#define FOCUS_DEBUG_CHECK_GE(a, b) FOCUS_DEBUG_CHECK_OP(a, b, >=)

#endif  // FOCUS_UTILS_CHECK_H_
