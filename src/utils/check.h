// Assertion and fatal-error macros.
//
// The library does not use exceptions (see DESIGN.md Sec. 6). Programmer
// errors — shape mismatches, out-of-range indices, violated invariants —
// terminate the process with a message through FOCUS_CHECK. Fallible
// operations (file I/O, parsing) return focus::Status instead.
#ifndef FOCUS_UTILS_CHECK_H_
#define FOCUS_UTILS_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace focus {
namespace internal_check {

// Accumulates a message and aborts the process when destroyed. Usage is via
// the FOCUS_CHECK family of macros only.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line << " check failed: "
            << condition << " ";
  }

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Allows FOCUS_CHECK(...) << "details" to appear in expressions returning
// void. The operator& has lower precedence than << but higher than ?:.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_check
}  // namespace focus

#define FOCUS_CHECK(cond)                                                \
  (cond) ? (void)0                                                       \
         : ::focus::internal_check::Voidify() &                          \
               ::focus::internal_check::FatalMessage(__FILE__, __LINE__, \
                                                     #cond)              \
                   .stream()

#define FOCUS_CHECK_OP(a, b, op) \
  FOCUS_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define FOCUS_CHECK_EQ(a, b) FOCUS_CHECK_OP(a, b, ==)
#define FOCUS_CHECK_NE(a, b) FOCUS_CHECK_OP(a, b, !=)
#define FOCUS_CHECK_LT(a, b) FOCUS_CHECK_OP(a, b, <)
#define FOCUS_CHECK_LE(a, b) FOCUS_CHECK_OP(a, b, <=)
#define FOCUS_CHECK_GT(a, b) FOCUS_CHECK_OP(a, b, >)
#define FOCUS_CHECK_GE(a, b) FOCUS_CHECK_OP(a, b, >=)

#define FOCUS_FATAL(msg)                                               \
  ::focus::internal_check::Voidify() &                                 \
      ::focus::internal_check::FatalMessage(__FILE__, __LINE__, "")    \
          .stream()                                                    \
      << msg

#endif  // FOCUS_UTILS_CHECK_H_
