// Minimal Status / StatusOr for fallible operations (file I/O, parsing).
// Modeled on the RocksDB / Abseil pattern: cheap value type, OK is the
// common case, message carried only on error.
#ifndef FOCUS_UTILS_STATUS_H_
#define FOCUS_UTILS_STATUS_H_

#include <string>
#include <utility>

#include "utils/check.h"

namespace focus {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kCorruption,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case Code::kNotFound: name = "NOT_FOUND"; break;
      case Code::kIoError: name = "IO_ERROR"; break;
      case Code::kCorruption: name = "CORRUPTION"; break;
      case Code::kInternal: name = "INTERNAL"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Holds either a value or an error Status. value() aborts on error; callers
// must test ok() on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    FOCUS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FOCUS_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    FOCUS_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    FOCUS_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace focus

#define FOCUS_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::focus::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // FOCUS_UTILS_STATUS_H_
