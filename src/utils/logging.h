// Lightweight leveled logging to stderr. Each message is emitted as a
// single atomic write, so concurrent threads never interleave mid-line.
// The initial minimum level comes from the FOCUS_LOG_LEVEL env var
// (debug|info|warning|error or 0-3, default info).
#ifndef FOCUS_UTILS_LOGGING_H_
#define FOCUS_UTILS_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace focus {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_log {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace focus

#define FOCUS_LOG(level)                                                  \
  ::focus::internal_log::LogMessage(::focus::LogLevel::k##level, __FILE__, \
                                    __LINE__)                              \
      .stream()

#endif  // FOCUS_UTILS_LOGGING_H_
