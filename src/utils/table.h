// ASCII table and CSV rendering for benchmark harness output.
//
// Every bench binary prints its paper table / figure series through this
// class so the output format is uniform and easy to diff against
// EXPERIMENTS.md.
#ifndef FOCUS_UTILS_TABLE_H_
#define FOCUS_UTILS_TABLE_H_

#include <string>
#include <vector>

namespace focus {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Renders with aligned columns and +---+ rules.
  std::string ToAscii() const;

  // Renders as CSV (no quoting of commas; cells are simple tokens here).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

  // Formats a double with the given precision, trimming trailing zeros is
  // intentionally NOT done so columns stay aligned.
  static std::string Num(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace focus

#endif  // FOCUS_UTILS_TABLE_H_
