// Wall-clock stopwatch for harness timing reports.
#ifndef FOCUS_UTILS_STOPWATCH_H_
#define FOCUS_UTILS_STOPWATCH_H_

#include <chrono>

namespace focus {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace focus

#endif  // FOCUS_UTILS_STOPWATCH_H_
