// Minimal command-line flag parsing for the example tools.
// Accepts --name=value and --name value; bare --name is a boolean true.
// Everything else is collected as positional arguments.
//
// Binaries that want span tracing follow a shared convention: pass the
// parsed flags to obs::ApplyTraceFlag(), which wires `--trace[=FILE]` and
// `--trace-format=chrome|jsonl` into the obs::Tracer (see obs/trace.h).
#ifndef FOCUS_UTILS_FLAGS_H_
#define FOCUS_UTILS_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace focus {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  long GetInt(const std::string& name, long fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  // Non-flag arguments in order (e.g. the subcommand).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace focus

#endif  // FOCUS_UTILS_FLAGS_H_
