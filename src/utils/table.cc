#include "utils/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace focus {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::ToAscii() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string Table::ToCsv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string s;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) s += ",";
      s += cells[c];
    }
    return s + "\n";
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

}  // namespace focus
