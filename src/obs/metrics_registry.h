// Named runtime metrics: counters, gauges, and histograms.
//
// The registry collects scalar telemetry the training / evaluation loops
// emit (step loss, grad norm, learning rate, eval MSE/MAE, windows/sec,
// per-step latency) independently of whether span tracing is enabled. It is
// exported alongside the spans by obs::Tracer::Flush() and queried directly
// by the harness (e.g. TrainResult's p50/p95 step time comes from the
// "train/step_ms" histogram).
#ifndef FOCUS_OBS_METRICS_REGISTRY_H_
#define FOCUS_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace focus {
namespace obs {

class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  // Monotonic counter (events, steps, windows).
  void AddCounter(const std::string& name, int64_t delta = 1);
  int64_t CounterValue(const std::string& name) const;

  // Last-value gauge (loss, learning rate, eval MSE).
  void SetGauge(const std::string& name, double value);
  double GaugeValue(const std::string& name) const;

  // Distribution sample (per-step milliseconds, grad norms).
  void Observe(const std::string& name, double value);

  struct HistogramSummary {
    int64_t count = 0;
    double min = 0.0, max = 0.0, mean = 0.0, p50 = 0.0, p95 = 0.0,
           p99 = 0.0;
  };
  // Nearest-rank percentiles over all recorded samples; zeros when empty.
  HistogramSummary Summarize(const std::string& name) const;

  // Snapshots in first-use order, for export.
  std::vector<std::pair<std::string, int64_t>> Counters() const;
  std::vector<std::pair<std::string, double>> Gauges() const;
  std::vector<std::pair<std::string, HistogramSummary>> Histograms() const;

  // Drops one histogram's samples (a training run resets its step-time
  // distribution so percentiles describe that run only).
  void ResetHistogram(const std::string& name);
  // Drops everything.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, int64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<std::pair<std::string, std::vector<double>>> histograms_;
};

// Mirrors the caching tensor allocator's counters (tensor/allocator.h)
// into the registry: monotonic "alloc/hits", "alloc/misses",
// "alloc/frees_cached", "alloc/frees_released", "alloc/trims" counters
// (published as deltas since the previous call, so repeated publication
// never double-counts) plus "alloc/cached_bytes" and "alloc/raw_bytes"
// gauges. Called by Tracer::Flush() before every export and by the
// trainer at the end of a run; safe to call any time.
void PublishAllocatorMetrics();

}  // namespace obs
}  // namespace focus

#endif  // FOCUS_OBS_METRICS_REGISTRY_H_
