// Unified tracing: span-scoped wall-clock / FLOPs / peak-memory /
// allocation attribution with Chrome-trace and JSONL export.
//
// A TraceSpan is an RAII scope. On entry it snapshots the global FLOP,
// memory, and allocation counters; on exit it records a SpanEvent holding
// the deltas. Spans nest via a thread-local stack, so a span knows both its
// inclusive cost and its self cost (inclusive minus enclosed spans) — the
// per-component view behind the paper's Fig. 6 / Table IV efficiency
// breakdown. Every TraceSpan also tags the legacy FlopCounter region with
// its name, so FlopCounter::Breakdown() keeps working for old callers and
// always agrees with the spans' self-FLOPs.
//
// Recording is off by default; a TraceSpan then costs two pointer writes
// and one atomic load. Enable it either programmatically
// (Tracer::Get().Enable() for in-memory collection, SetOutput() to also
// write a file at exit) or externally:
//
//   FOCUS_TRACE=trace.json ./examples/quickstart     # Chrome trace JSON
//   FOCUS_TRACE=run.jsonl  ./bench/bench_table3...   # line-delimited JSON
//   ./examples/focus_cli train --trace=trace.json ...
//
// Chrome-trace output loads in chrome://tracing or https://ui.perfetto.dev.
#ifndef FOCUS_OBS_TRACE_H_
#define FOCUS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "utils/status.h"

namespace focus {

class FlagParser;

namespace obs {

enum class TraceFormat { kChromeTrace, kJsonl };

// One completed span. Costs are inclusive of nested spans except
// self_flops; peak_bytes is the high-water mark of live tensor bytes above
// the span's entry level.
struct SpanEvent {
  std::string name;
  int32_t depth = 0;       // nesting depth at entry (0 = top level)
  int64_t ts_us = 0;       // start time, microseconds since tracer epoch
  int64_t wall_us = 0;
  int64_t flops = 0;       // inclusive
  int64_t self_flops = 0;  // exclusive of enclosed (non-kernel) spans
  int64_t peak_bytes = 0;
  int64_t allocs = 0;
  // Caching-allocator behaviour inside the span (inclusive): buffers served
  // from the recycle cache vs. from the system heap.
  int64_t alloc_hits = 0;
  int64_t alloc_misses = 0;
  // Logical tensor bytes allocated during the span (inclusive) — the byte
  // traffic term of the roofline attribution (obs/prof/run_report.h).
  int64_t alloc_bytes = 0;
  // Hardware counters (obs/prof/perf_counters.h), populated when
  // FOCUS_PERF_COUNTERS=1; zero when the syscall is unavailable or the
  // feature is off. Exporters derive IPC = instructions / cycles.
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;
  // True when the span ran on a compiled execution plan (src/plan)
  // rather than the eager op-by-op path.
  bool planned = false;
};

// Per-name aggregate over a set of events, in first-use order.
struct SpanStats {
  int64_t count = 0;
  int64_t wall_us = 0;     // summed
  int64_t flops = 0;       // summed inclusive
  int64_t self_flops = 0;  // summed self
  int64_t peak_bytes = 0;  // max over events
  int64_t allocs = 0;      // summed
  int64_t alloc_hits = 0;    // summed
  int64_t alloc_misses = 0;  // summed
  int64_t alloc_bytes = 0;   // summed
  int64_t cycles = 0;        // summed
  int64_t instructions = 0;  // summed
  int64_t cache_misses = 0;   // summed
  int64_t branch_misses = 0;  // summed
  int64_t planned = 0;        // count of events with planned=true
};
std::vector<std::pair<std::string, SpanStats>> AggregateSpans(
    const std::vector<SpanEvent>& events);

namespace internal_obs {
extern std::atomic<bool> g_enabled;
}  // namespace internal_obs

// Process-wide collector. First use reads FOCUS_TRACE (output path; a
// .jsonl suffix or FOCUS_TRACE_FORMAT=jsonl selects JSONL) and
// FOCUS_OBS_KERNEL_SAMPLE (record every Nth kernel invocation, default 16,
// 0 disables kernel spans).
class Tracer {
 public:
  static Tracer& Get();

  bool enabled() const {
    return internal_obs::g_enabled.load(std::memory_order_relaxed);
  }

  // Starts in-memory collection (and kernel-hook installation).
  void Enable();
  // Stops collection; buffered events stay until Clear().
  void Disable();

  // Configures the export file and enables collection. The file is written
  // by Flush(), which is also registered to run at process exit. An empty
  // path clears the output (Flush becomes a no-op).
  void SetOutput(const std::string& path, TraceFormat format);

  void Record(SpanEvent event);
  std::vector<SpanEvent> Snapshot() const;
  void Clear();

  // Writes all buffered events plus the MetricsRegistry contents to the
  // configured path. No-op when no path is set.
  Status Flush();

  std::string output_path() const;
  TraceFormat format() const;
  int kernel_sample_rate() const { return kernel_sample_; }
  void SetKernelSampleRate(int rate) { kernel_sample_ = rate; }

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::string path_;
  TraceFormat format_ = TraceFormat::kChromeTrace;
  bool atexit_registered_ = false;
  int kernel_sample_ = 16;
};

inline bool TracingEnabled() { return Tracer::Get().enabled(); }

// RAII span. `name` must have static lifetime (string literals). Spans must
// be destroyed in LIFO order (automatic storage guarantees this).
class TraceSpan {
 public:
  struct Options {
    // Tag the legacy FlopCounter region with the span name so
    // FlopCounter::Breakdown() attributes FLOPs to it (innermost wins).
    bool attribute_flop_region = true;
    // Whether the span's inclusive FLOPs subtract from the parent's
    // self-FLOPs. Sampled kernel spans set false: they are observations of
    // a fraction of the work and must not perturb component attribution.
    bool counts_toward_parent = true;
    // Marks the span as planned execution (src/plan replay); surfaces
    // in exports and the run-report `planned` column.
    bool planned = false;
  };

  explicit TraceSpan(const char* name) : TraceSpan(name, Options{}) {}
  TraceSpan(const char* name, Options options);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* prev_region_ = nullptr;
  bool region_set_ = false;
  bool active_ = false;
  bool counts_toward_parent_ = true;
  bool planned_ = false;
  int32_t depth_ = 0;
  int64_t start_ts_us_ = 0;
  int64_t start_flops_ = 0;
  int64_t start_allocs_ = 0;
  int64_t start_alloc_hits_ = 0;
  int64_t start_alloc_misses_ = 0;
  int64_t start_bytes_ = 0;
  int64_t saved_peak_ = 0;
  int64_t child_flops_ = 0;
  int64_t start_alloc_bytes_ = 0;
  // Hardware-counter snapshot at entry (zeros unless FOCUS_PERF_COUNTERS
  // is on and the thread's counter group opened).
  bool perf_active_ = false;
  int64_t start_cycles_ = 0;
  int64_t start_instructions_ = 0;
  int64_t start_cache_misses_ = 0;
  int64_t start_branch_misses_ = 0;
};

// Wires the conventional `--trace=<path>` (and optional
// `--trace-format=chrome|jsonl`) flags into the tracer. Call once after
// parsing argv; the FOCUS_TRACE env var is honored independently.
void ApplyTraceFlag(const FlagParser& flags);

}  // namespace obs
}  // namespace focus

#endif  // FOCUS_OBS_TRACE_H_
