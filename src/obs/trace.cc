#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "obs/metrics_registry.h"
#include "obs/prof/perf_counters.h"
#include "obs/prof/run_report.h"
#include "tensor/allocator.h"
#include "tensor/flops.h"
#include "tensor/memory.h"
#include "tensor/profile_hooks.h"
#include "utils/env.h"
#include "utils/flags.h"

namespace focus {
namespace obs {

namespace internal_obs {
std::atomic<bool> g_enabled{false};
}  // namespace internal_obs

namespace {

// Microseconds since a process-wide steady epoch (first call wins).
int64_t NowUs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

// Per-thread span bookkeeping. `stack` holds the live spans (for depth and
// parent self-FLOP accounting); `kernel_spans` holds heap spans opened by
// the kernel begin/end hooks, nullptr for invocations the sampler skipped.
struct ThreadState {
  std::vector<TraceSpan*> stack;
  std::vector<std::unique_ptr<TraceSpan>> kernel_spans;
  uint64_t kernel_counter = 0;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

void KernelBeginHook(const char* name) {
  ThreadState& state = State();
  std::unique_ptr<TraceSpan> span;
  const int rate = Tracer::Get().kernel_sample_rate();
  if (rate > 0 && state.kernel_counter++ % static_cast<uint64_t>(rate) == 0) {
    TraceSpan::Options options;
    options.attribute_flop_region = false;  // don't steal region attribution
    options.counts_toward_parent = false;   // sampled: keep parents honest
    span = std::make_unique<TraceSpan>(name, options);
  }
  state.kernel_spans.push_back(std::move(span));
}

void KernelEndHook() {
  ThreadState& state = State();
  if (!state.kernel_spans.empty()) state.kernel_spans.pop_back();
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendSpanArgs(std::string& out, const SpanEvent& ev) {
  out += "\"flops\":" + std::to_string(ev.flops);
  out += ",\"self_flops\":" + std::to_string(ev.self_flops);
  out += ",\"peak_bytes\":" + std::to_string(ev.peak_bytes);
  out += ",\"allocs\":" + std::to_string(ev.allocs);
  out += ",\"alloc_hits\":" + std::to_string(ev.alloc_hits);
  out += ",\"alloc_misses\":" + std::to_string(ev.alloc_misses);
  out += ",\"alloc_bytes\":" + std::to_string(ev.alloc_bytes);
  out += ",\"wall_us\":" + std::to_string(ev.wall_us);
  out += ",\"depth\":" + std::to_string(ev.depth);
  out += ",\"planned\":";
  out += ev.planned ? "true" : "false";
  // Roofline attribution (obs/prof): achieved GFLOP/s over the span's
  // wall-clock, and arithmetic intensity against the span's logical byte
  // traffic. Always emitted — they derive from fields recorded above.
  out += ",\"gflops\":" + FormatDouble(prof::AchievedGflops(ev));
  out += ",\"arith_intensity\":" +
         FormatDouble(prof::ArithmeticIntensity(ev));
  // Hardware-counter fields only when FOCUS_PERF_COUNTERS asked for them
  // (zeroed when the syscall is unavailable — see perf_counters.h).
  if (prof::CountersRequested()) {
    out += ",\"cycles\":" + std::to_string(ev.cycles);
    out += ",\"instructions\":" + std::to_string(ev.instructions);
    out += ",\"cache_misses\":" + std::to_string(ev.cache_misses);
    out += ",\"branch_misses\":" + std::to_string(ev.branch_misses);
    out += ",\"ipc\":" + FormatDouble(prof::Ipc(ev));
  }
}

void AppendHistogramJson(std::string& out,
                         const MetricsRegistry::HistogramSummary& h) {
  out += "{\"count\":" + std::to_string(h.count);
  out += ",\"min\":" + FormatDouble(h.min);
  out += ",\"max\":" + FormatDouble(h.max);
  out += ",\"mean\":" + FormatDouble(h.mean);
  out += ",\"p50\":" + FormatDouble(h.p50);
  out += ",\"p95\":" + FormatDouble(h.p95);
  out += ",\"p99\":" + FormatDouble(h.p99);
  out += "}";
}

std::string RenderChromeTrace(const std::vector<SpanEvent>& events) {
  std::string out;
  out.reserve(events.size() * 160 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(out, ev.name);
    out += "\",\"cat\":\"focus\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    out += std::to_string(ev.ts_us);
    out += ",\"dur\":" + std::to_string(ev.wall_us);
    out += ",\"args\":{";
    AppendSpanArgs(out, ev);
    out += "}}";
  }
  out += "\n],\n\"focusMetrics\":{";
  const MetricsRegistry& registry = MetricsRegistry::Get();
  out += "\"counters\":{";
  bool f = true;
  for (const auto& [name, value] : registry.Counters()) {
    if (!f) out += ",";
    f = false;
    out += "\"";
    AppendEscaped(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  f = true;
  for (const auto& [name, value] : registry.Gauges()) {
    if (!f) out += ",";
    f = false;
    out += "\"";
    AppendEscaped(out, name);
    out += "\":" + FormatDouble(value);
  }
  out += "},\"histograms\":{";
  f = true;
  for (const auto& [name, summary] : registry.Histograms()) {
    if (!f) out += ",";
    f = false;
    out += "\"";
    AppendEscaped(out, name);
    out += "\":";
    AppendHistogramJson(out, summary);
  }
  out += "}}}\n";
  return out;
}

std::string RenderJsonl(const std::vector<SpanEvent>& events) {
  std::string out;
  out.reserve(events.size() * 160 + 1024);
  for (const SpanEvent& ev : events) {
    out += "{\"type\":\"span\",\"name\":\"";
    AppendEscaped(out, ev.name);
    out += "\",\"ts_us\":" + std::to_string(ev.ts_us) + ",";
    AppendSpanArgs(out, ev);
    out += "}\n";
  }
  const MetricsRegistry& registry = MetricsRegistry::Get();
  for (const auto& [name, value] : registry.Counters()) {
    out += "{\"type\":\"counter\",\"name\":\"";
    AppendEscaped(out, name);
    out += "\",\"value\":" + std::to_string(value) + "}\n";
  }
  for (const auto& [name, value] : registry.Gauges()) {
    out += "{\"type\":\"gauge\",\"name\":\"";
    AppendEscaped(out, name);
    out += "\",\"value\":" + FormatDouble(value) + "}\n";
  }
  for (const auto& [name, summary] : registry.Histograms()) {
    out += "{\"type\":\"histogram\",\"name\":\"";
    AppendEscaped(out, name);
    out += "\",\"summary\":";
    AppendHistogramJson(out, summary);
    out += "}\n";
  }
  return out;
}

TraceFormat FormatForPath(const std::string& path) {
  const std::string fmt = GetEnvOr("FOCUS_TRACE_FORMAT", "");
  if (fmt == "jsonl") return TraceFormat::kJsonl;
  if (fmt == "chrome") return TraceFormat::kChromeTrace;
  const std::string suffix = ".jsonl";
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return TraceFormat::kJsonl;
  }
  return TraceFormat::kChromeTrace;
}

}  // namespace

std::vector<std::pair<std::string, SpanStats>> AggregateSpans(
    const std::vector<SpanEvent>& events) {
  std::vector<std::pair<std::string, SpanStats>> out;
  for (const SpanEvent& ev : events) {
    SpanStats* stats = nullptr;
    for (auto& entry : out) {
      if (entry.first == ev.name) {
        stats = &entry.second;
        break;
      }
    }
    if (stats == nullptr) {
      out.emplace_back(ev.name, SpanStats{});
      stats = &out.back().second;
    }
    ++stats->count;
    stats->wall_us += ev.wall_us;
    stats->flops += ev.flops;
    stats->self_flops += ev.self_flops;
    stats->peak_bytes = std::max(stats->peak_bytes, ev.peak_bytes);
    stats->allocs += ev.allocs;
    stats->alloc_hits += ev.alloc_hits;
    stats->alloc_misses += ev.alloc_misses;
    stats->alloc_bytes += ev.alloc_bytes;
    stats->cycles += ev.cycles;
    stats->instructions += ev.instructions;
    stats->cache_misses += ev.cache_misses;
    stats->branch_misses += ev.branch_misses;
    stats->planned += ev.planned ? 1 : 0;
  }
  return out;
}

Tracer& Tracer::Get() {
  // Leaked singleton (never destroyed) so the atexit flush and spans in
  // static destructors stay safe. First use applies FOCUS_TRACE /
  // FOCUS_OBS_KERNEL_SAMPLE from the environment.
  static Tracer* tracer = [] {
    Tracer* t = new Tracer();
    t->kernel_sample_ = static_cast<int>(GetEnvIntInRangeOr(
        "FOCUS_OBS_KERNEL_SAMPLE", t->kernel_sample_, 1, 1 << 20));
    const std::string path = GetEnvOr("FOCUS_TRACE", "");
    if (!path.empty()) t->SetOutput(path, FormatForPath(path));
    // FOCUS_REPORT_JSON: end-of-run roofline report, independent of
    // FOCUS_TRACE. Enable() on the local pointer — Tracer::Get() must not
    // re-enter its own initialization.
    if (prof::ConfigureRunReportFromEnv()) t->Enable();
    return t;
  }();
  return *tracer;
}

void Tracer::Enable() {
  internal_obs::g_enabled.store(true, std::memory_order_relaxed);
  SetKernelProfileHooks({&KernelBeginHook, &KernelEndHook});
}

void Tracer::Disable() {
  internal_obs::g_enabled.store(false, std::memory_order_relaxed);
  SetKernelProfileHooks({});
}

void Tracer::SetOutput(const std::string& path, TraceFormat format) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = path;
    format_ = format;
    if (!path_.empty() && !atexit_registered_) {
      atexit_registered_ = true;
      std::atexit([] {
        const Status status = Tracer::Get().Flush();
        if (!status.ok()) {
          std::fprintf(stderr, "focus: trace not written: %s\n",
                       status.ToString().c_str());
        }
      });
    }
  }
  if (!path.empty()) Enable();
}

void Tracer::Record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Tracer::output_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

TraceFormat Tracer::format() const {
  std::lock_guard<std::mutex> lock(mu_);
  return format_;
}

Status Tracer::Flush() {
  std::vector<SpanEvent> events;
  std::string path;
  TraceFormat format;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty()) return Status::Ok();
    events = events_;
    path = path_;
    format = format_;
  }
  // Exports embed the MetricsRegistry; refresh the allocator mirror first
  // so "alloc/*" counters in the file match the allocator at flush time.
  PublishAllocatorMetrics();
  const std::string payload = format == TraceFormat::kChromeTrace
                                  ? RenderChromeTrace(events)
                                  : RenderJsonl(events);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open trace file " + path);
  const bool ok =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  std::fclose(f);
  if (!ok) return Status::IoError("short write to trace file " + path);
  return Status::Ok();
}

TraceSpan::TraceSpan(const char* name, Options options) : name_(name) {
  if (options.attribute_flop_region) {
    prev_region_ = internal_flops::SetRegion(name);
    region_set_ = true;
  }
  if (!TracingEnabled()) return;
  active_ = true;
  counts_toward_parent_ = options.counts_toward_parent;
  planned_ = options.planned;
  ThreadState& state = State();
  depth_ = static_cast<int32_t>(state.stack.size());
  state.stack.push_back(this);
  start_ts_us_ = NowUs();
  start_flops_ = FlopCounter::Count();
  start_allocs_ = MemoryStats::TotalAllocations();
  const AllocatorStats alloc_stats = Allocator::Get().Stats();
  start_alloc_hits_ = alloc_stats.hits;
  start_alloc_misses_ = alloc_stats.misses;
  start_bytes_ = MemoryStats::CurrentBytes();
  start_alloc_bytes_ = MemoryStats::TotalAllocatedBytes();
  // Window the global high-water mark to this span: reset it on entry and
  // restore the running maximum on exit, so nested spans and outer
  // observers (e.g. metrics::ProbeEfficiency) both see correct peaks.
  saved_peak_ = MemoryStats::PeakBytes();
  MemoryStats::SetPeak(start_bytes_);
  if (prof::CountersRequested()) {
    // Long-lived per-thread group: entry/exit are counter reads, not
    // perf_event_open calls. Degrades to zeros (one process-wide warning)
    // when the syscall is unavailable.
    prof::PerfCounters& counters = prof::PerfCounters::ThreadLocal();
    if (counters.valid()) {
      perf_active_ = true;
      const prof::PerfSample sample = counters.Read();
      start_cycles_ = sample.cycles;
      start_instructions_ = sample.instructions;
      start_cache_misses_ = sample.cache_misses;
      start_branch_misses_ = sample.branch_misses;
    }
  }
}

TraceSpan::~TraceSpan() {
  if (region_set_) internal_flops::SetRegion(prev_region_);
  if (!active_) return;
  ThreadState& state = State();
  if (!state.stack.empty() && state.stack.back() == this) {
    state.stack.pop_back();
  }
  const int64_t end_ts = NowUs();
  const int64_t inclusive_flops = FlopCounter::Count() - start_flops_;
  const int64_t span_peak = MemoryStats::PeakBytes();
  MemoryStats::SetPeak(std::max(saved_peak_, span_peak));
  if (counts_toward_parent_ && !state.stack.empty()) {
    state.stack.back()->child_flops_ += inclusive_flops;
  }
  SpanEvent event;
  event.name = name_;
  event.depth = depth_;
  event.planned = planned_;
  event.ts_us = start_ts_us_;
  event.wall_us = end_ts - start_ts_us_;
  event.flops = inclusive_flops;
  event.self_flops = inclusive_flops - child_flops_;
  event.peak_bytes = std::max<int64_t>(span_peak - start_bytes_, 0);
  event.allocs = MemoryStats::TotalAllocations() - start_allocs_;
  const AllocatorStats alloc_stats = Allocator::Get().Stats();
  event.alloc_hits = alloc_stats.hits - start_alloc_hits_;
  event.alloc_misses = alloc_stats.misses - start_alloc_misses_;
  event.alloc_bytes = MemoryStats::TotalAllocatedBytes() - start_alloc_bytes_;
  if (perf_active_) {
    const prof::PerfSample sample =
        prof::PerfCounters::ThreadLocal().Read();
    event.cycles = sample.cycles - start_cycles_;
    event.instructions = sample.instructions - start_instructions_;
    event.cache_misses = sample.cache_misses - start_cache_misses_;
    event.branch_misses = sample.branch_misses - start_branch_misses_;
  }
  Tracer::Get().Record(std::move(event));
}

void ApplyTraceFlag(const FlagParser& flags) {
  if (!flags.Has("trace")) return;
  std::string path = flags.GetString("trace", "");
  if (path.empty() || path == "true") path = "trace.json";
  TraceFormat format = FormatForPath(path);
  const std::string fmt = flags.GetString("trace-format", "");
  if (fmt == "jsonl") format = TraceFormat::kJsonl;
  if (fmt == "chrome") format = TraceFormat::kChromeTrace;
  Tracer::Get().SetOutput(path, format);
}

}  // namespace obs
}  // namespace focus
