#include "obs/prof/perf_counters.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include "utils/env.h"
#include "utils/logging.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define FOCUS_PROF_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace focus {
namespace obs {
namespace prof {

namespace {

std::atomic<bool> g_force_unavailable{false};
// One warning per process for the whole degradation family; re-armed by
// ForceUnavailableForTest so tests can exercise the latch.
std::atomic<bool> g_warned{false};
// -1 unset, 0 off, 1 on; SetCountersRequestedForTest overwrites.
std::atomic<int> g_requested_override{-1};

void WarnOnce(const char* what, int err) {
  if (g_warned.exchange(true, std::memory_order_relaxed)) return;
  FOCUS_LOG(Warning) << "hardware perf counters unavailable (" << what
                     << ": " << std::strerror(err)
                     << "); spans will carry zeroed counters";
}

#ifdef FOCUS_PROF_HAVE_PERF
// The four events a group measures, in fds_[] order. Siblings follow the
// cycles leader; a sibling that fails to open (PMU without the event)
// degrades to zero without invalidating the group.
constexpr uint32_t kEventConfigs[PerfCounters::kEvents] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int OpenEvent(uint32_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // time_enabled/time_running let Read() rescale counts when the kernel
  // multiplexes more groups than the PMU has slots.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, /*flags=*/0));
}

int64_t ReadScaled(int fd) {
  if (fd < 0) return 0;
  struct {
    uint64_t value;
    uint64_t time_enabled;
    uint64_t time_running;
  } data = {0, 0, 0};
  if (read(fd, &data, sizeof(data)) != sizeof(data)) return 0;
  if (data.time_running == 0) return 0;
  if (data.time_running >= data.time_enabled) {
    return static_cast<int64_t>(data.value);
  }
  const double scale = static_cast<double>(data.time_enabled) /
                       static_cast<double>(data.time_running);
  return static_cast<int64_t>(static_cast<double>(data.value) * scale);
}
#endif  // FOCUS_PROF_HAVE_PERF

}  // namespace

PerfCounters::PerfCounters() {
#ifdef FOCUS_PROF_HAVE_PERF
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    WarnOnce("forced unavailable for test", ENOSYS);
    return;
  }
  errno = 0;
  fds_[0] = OpenEvent(kEventConfigs[0], /*group_fd=*/-1);
  if (fds_[0] < 0) {
    WarnOnce("perf_event_open(cycles)", errno);
    return;
  }
  valid_ = true;
  for (int i = 1; i < kEvents; ++i) {
    fds_[i] = OpenEvent(kEventConfigs[i], /*group_fd=*/fds_[0]);
  }
#else
  WarnOnce("perf_event_open not supported on this platform", ENOSYS);
#endif
}

PerfCounters::~PerfCounters() {
#ifdef FOCUS_PROF_HAVE_PERF
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

PerfSample PerfCounters::Read() const {
  PerfSample sample;
  if (!valid_) return sample;
#ifdef FOCUS_PROF_HAVE_PERF
  sample.cycles = ReadScaled(fds_[0]);
  sample.instructions = ReadScaled(fds_[1]);
  sample.cache_misses = ReadScaled(fds_[2]);
  sample.branch_misses = ReadScaled(fds_[3]);
#endif
  return sample;
}

PerfCounters& PerfCounters::ThreadLocal() {
  thread_local PerfCounters counters;
  return counters;
}

bool Available() {
  if (g_force_unavailable.load(std::memory_order_relaxed)) return false;
#ifdef FOCUS_PROF_HAVE_PERF
  // Probe with a throwaway group once; the result cannot change within a
  // process (capabilities and paranoid level are fixed at exec time).
  static const bool available = [] {
    PerfCounters probe;
    return probe.valid();
  }();
  return available;
#else
  return false;
#endif
}

bool CountersRequested() {
  const int forced = g_requested_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool requested = [] {
    const std::string v = GetEnvOr("FOCUS_PERF_COUNTERS", "0");
    return v == "1" || v == "true" || v == "on";
  }();
  return requested;
}

void ForceUnavailableForTest(bool force) {
  g_force_unavailable.store(force, std::memory_order_relaxed);
  g_warned.store(false, std::memory_order_relaxed);
}

void SetCountersRequestedForTest(bool requested) {
  g_requested_override.store(requested ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace prof
}  // namespace obs
}  // namespace focus
