// Linux hardware performance counters via perf_event_open.
//
// A PerfCounters object owns one per-thread group of hardware counters
// (cycles, instructions, cache-misses, branch-misses) opened with
// perf_event_open(2). Counters run from construction; Read() returns the
// cumulative counts, multiplex-scaled by time_enabled/time_running, so two
// Read() calls bracket a region the way Stopwatch brackets wall-clock.
//
// Degradation contract: perf_event_open is frequently unavailable
// (containers without CAP_PERFMON, kernel.perf_event_paranoid >= 2,
// non-Linux hosts, VMs without PMU passthrough). Every failure mode
// degrades to a valid object whose Read() returns all-zero samples, and
// the process logs exactly one warning — the first time an open fails —
// naming the errno. Nothing else changes: spans still export, with zeroed
// counter fields (tests/prof_test.cc locks this in).
//
// TraceSpan attachment: when FOCUS_PERF_COUNTERS=1 is set, every
// obs::TraceSpan brackets its scope with the calling thread's long-lived
// counter group (ThreadLocal()) and records the deltas in the SpanEvent,
// from which the exporters derive IPC and cache-miss rates. The env var is
// read once; tests override it with SetCountersRequestedForTest().
//
// This header and its .cc are the only place in the repo allowed to call
// perf_event_open / syscall (enforced by focus_lint.py's perf-containment
// rule).
#ifndef FOCUS_OBS_PROF_PERF_COUNTERS_H_
#define FOCUS_OBS_PROF_PERF_COUNTERS_H_

#include <cstdint>

namespace focus {
namespace obs {
namespace prof {

// One cumulative reading. All values are scaled event counts since the
// owning PerfCounters object was constructed; all-zero when degraded.
struct PerfSample {
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;
};

class PerfCounters {
 public:
  // Opens the counter group for the calling thread. Never throws: on any
  // failure the object is constructed degraded (valid() == false).
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // True when at least the cycle counter is live. Individual siblings
  // (e.g. cache-misses on a PMU without that event) may still be degraded
  // and read zero.
  bool valid() const { return valid_; }

  // Cumulative counts since construction. Zeros when degraded. Safe to
  // call from the owning thread only (the group counts that thread).
  PerfSample Read() const;

  // Long-lived counter group for the calling thread, opened on first use.
  // TraceSpan uses this so span entry/exit is two reads, not an open.
  static PerfCounters& ThreadLocal();

  // Events per group: cycles (leader), instructions, cache-misses,
  // branch-misses.
  static constexpr int kEvents = 4;

 private:
  int fds_[kEvents] = {-1, -1, -1, -1};
  bool valid_ = false;
};

// True when this process can open hardware counters (probes once, then
// cached). Sees ForceUnavailableForTest.
bool Available();

// True when FOCUS_PERF_COUNTERS=1 asked for span attachment (env read
// once; SetCountersRequestedForTest overrides).
bool CountersRequested();

// Test hooks. Force*: newly constructed PerfCounters objects degrade as
// if perf_event_open had failed (existing objects are unaffected), and
// the one-shot warning latch is re-armed so the degradation path can be
// re-exercised. SetCountersRequested*: overrides the env-derived flag.
void ForceUnavailableForTest(bool force);
void SetCountersRequestedForTest(bool requested);

}  // namespace prof
}  // namespace obs
}  // namespace focus

#endif  // FOCUS_OBS_PROF_PERF_COUNTERS_H_
