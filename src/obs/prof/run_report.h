// End-of-run performance report with roofline attribution.
//
// BuildRunReport() folds a run's SpanEvents into one row per span name and
// derives the roofline figures for each:
//
//   achieved GFLOP/s     = flops / wall_us * 1e-3
//   arithmetic intensity = flops / alloc_bytes      (FLOPs per logical
//                          tensor byte allocated in the span — the byte-
//                          traffic proxy; see DESIGN.md §9 for why logical
//                          allocation traffic, not DRAM traffic)
//   IPC                  = instructions / cycles    (zero without
//                          FOCUS_PERF_COUNTERS=1 or on hosts where
//                          perf_event_open fails)
//
// The report ranks the top-N spans by inclusive wall-clock, by FLOPs, and
// by allocated bytes — the three axes a serving/plan PR will optimize —
// and renders as an ASCII table (ToAscii) or JSON (ToJson).
//
// Wiring: binaries that parse flags call ApplyReportFlag() once after
// ApplyTraceFlag(); `--report` prints the table at process exit and
// `--report-json=<path>` additionally writes the JSON file. The
// FOCUS_REPORT_JSON env var is honored independently (any tracing-aware
// binary, no flag plumbing needed). Both enable span collection.
#ifndef FOCUS_OBS_PROF_RUN_REPORT_H_
#define FOCUS_OBS_PROF_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "utils/status.h"

namespace focus {

class FlagParser;

namespace obs {
namespace prof {

// Derived roofline figures for one SpanEvent. Safe on zero denominators
// (return 0). Aggregate overloads use summed stats.
double AchievedGflops(const SpanEvent& ev);
double ArithmeticIntensity(const SpanEvent& ev);
double Ipc(const SpanEvent& ev);
double AchievedGflops(const SpanStats& stats);
double ArithmeticIntensity(const SpanStats& stats);
double Ipc(const SpanStats& stats);

// One aggregated span name with its roofline attribution.
struct RunReportRow {
  std::string name;
  int64_t count = 0;
  int64_t wall_us = 0;
  int64_t flops = 0;
  int64_t alloc_bytes = 0;
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;
  // How many of the aggregated events ran on a compiled execution plan
  // (src/plan); count == planned means the span is fully planned.
  int64_t planned = 0;
  double gflops = 0.0;
  double arith_intensity = 0.0;
  double ipc = 0.0;
};

struct RunReport {
  // Top-N rows per ranking axis, descending. A span name can appear in
  // all three lists.
  std::vector<RunReportRow> by_wall;
  std::vector<RunReportRow> by_flops;
  std::vector<RunReportRow> by_bytes;
  int64_t total_wall_us = 0;
  int64_t total_flops = 0;
  int64_t total_alloc_bytes = 0;

  std::string ToAscii() const;
  std::string ToJson() const;
};

RunReport BuildRunReport(const std::vector<SpanEvent>& events,
                         int top_n = 5);

// Registers an at-exit report over the Tracer's buffered spans. Either
// argument may be empty/false; a no-op when both are. Enables tracing.
void ConfigureRunReport(bool print_table, const std::string& json_path);

// Reads FOCUS_REPORT_JSON and registers the at-exit report when set;
// returns whether it did. Deliberately does NOT enable the tracer — it is
// called from inside Tracer first-use initialization, which enables
// collection itself on a true return.
bool ConfigureRunReportFromEnv();

// Wires `--report` and `--report-json=<path>` into ConfigureRunReport().
void ApplyReportFlag(const FlagParser& flags);

}  // namespace prof
}  // namespace obs
}  // namespace focus

#endif  // FOCUS_OBS_PROF_RUN_REPORT_H_
