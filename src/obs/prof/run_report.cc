#include "obs/prof/run_report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>

#include "obs/metrics_registry.h"
#include "utils/env.h"
#include "utils/flags.h"
#include "utils/table.h"

namespace focus {
namespace obs {
namespace prof {

namespace {

double SafeRatio(double num, double den) {
  return den > 0.0 ? num / den : 0.0;
}

// At-exit report configuration (set once, read by the atexit hook).
std::mutex g_report_mu;
bool g_report_print = false;
std::string g_report_json_path;
bool g_report_atexit_registered = false;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendRowJson(std::string& out, const RunReportRow& row) {
  out += "{\"name\":\"" + row.name + "\"";
  out += ",\"count\":" + std::to_string(row.count);
  out += ",\"wall_us\":" + std::to_string(row.wall_us);
  out += ",\"flops\":" + std::to_string(row.flops);
  out += ",\"alloc_bytes\":" + std::to_string(row.alloc_bytes);
  out += ",\"cycles\":" + std::to_string(row.cycles);
  out += ",\"instructions\":" + std::to_string(row.instructions);
  out += ",\"cache_misses\":" + std::to_string(row.cache_misses);
  out += ",\"branch_misses\":" + std::to_string(row.branch_misses);
  out += ",\"planned\":" + std::to_string(row.planned);
  out += ",\"gflops\":" + FormatDouble(row.gflops);
  out += ",\"arith_intensity\":" + FormatDouble(row.arith_intensity);
  out += ",\"ipc\":" + FormatDouble(row.ipc);
  out += "}";
}

void AppendRowsJson(std::string& out, const char* key,
                    const std::vector<RunReportRow>& rows) {
  out += "\"";
  out += key;
  out += "\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ",";
    AppendRowJson(out, rows[i]);
  }
  out += "]";
}

Table RowsTable(const std::vector<RunReportRow>& rows) {
  Table table({"Span", "Count", "Planned", "Wall(ms)", "FLOPs(M)",
               "GFLOP/s", "Bytes(MB)", "AI(F/B)", "IPC"});
  for (const RunReportRow& row : rows) {
    table.AddRow({row.name, std::to_string(row.count),
                  std::to_string(row.planned),
                  Table::Num(static_cast<double>(row.wall_us) / 1e3, 2),
                  Table::Num(static_cast<double>(row.flops) / 1e6, 2),
                  Table::Num(row.gflops, 2),
                  Table::Num(static_cast<double>(row.alloc_bytes) /
                                 (1024.0 * 1024.0),
                             2),
                  Table::Num(row.arith_intensity, 3),
                  Table::Num(row.ipc, 2)});
  }
  return table;
}

std::vector<RunReportRow> TopBy(
    std::vector<RunReportRow> rows, int top_n,
    const std::function<int64_t(const RunReportRow&)>& key) {
  std::stable_sort(rows.begin(), rows.end(),
                   [&key](const RunReportRow& a, const RunReportRow& b) {
                     return key(a) > key(b);
                   });
  if (top_n >= 0 && rows.size() > static_cast<size_t>(top_n)) {
    rows.resize(static_cast<size_t>(top_n));
  }
  return rows;
}

void EmitAtExit() {
  bool print = false;
  std::string json_path;
  {
    std::lock_guard<std::mutex> lock(g_report_mu);
    print = g_report_print;
    json_path = g_report_json_path;
  }
  if (!print && json_path.empty()) return;
  // Counters belong in the report file's sibling trace export; refresh the
  // allocator mirror so a report-only run still ends with final alloc/*
  // values in the registry.
  PublishAllocatorMetrics();
  const RunReport report = BuildRunReport(Tracer::Get().Snapshot());
  if (print) std::fprintf(stderr, "%s", report.ToAscii().c_str());
  if (!json_path.empty()) {
    const std::string payload = report.ToJson();
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(payload.data(), 1, payload.size(), f) !=
            payload.size()) {
      std::fprintf(stderr, "focus: run report not written to %s\n",
                   json_path.c_str());
    }
    if (f != nullptr) std::fclose(f);
  }
}

}  // namespace

double AchievedGflops(const SpanEvent& ev) {
  return SafeRatio(static_cast<double>(ev.flops),
                   static_cast<double>(ev.wall_us) * 1e3);
}

double ArithmeticIntensity(const SpanEvent& ev) {
  return SafeRatio(static_cast<double>(ev.flops),
                   static_cast<double>(ev.alloc_bytes));
}

double Ipc(const SpanEvent& ev) {
  return SafeRatio(static_cast<double>(ev.instructions),
                   static_cast<double>(ev.cycles));
}

double AchievedGflops(const SpanStats& stats) {
  return SafeRatio(static_cast<double>(stats.flops),
                   static_cast<double>(stats.wall_us) * 1e3);
}

double ArithmeticIntensity(const SpanStats& stats) {
  return SafeRatio(static_cast<double>(stats.flops),
                   static_cast<double>(stats.alloc_bytes));
}

double Ipc(const SpanStats& stats) {
  return SafeRatio(static_cast<double>(stats.instructions),
                   static_cast<double>(stats.cycles));
}

RunReport BuildRunReport(const std::vector<SpanEvent>& events, int top_n) {
  std::vector<RunReportRow> rows;
  for (const auto& [name, stats] : AggregateSpans(events)) {
    RunReportRow row;
    row.name = name;
    row.count = stats.count;
    row.wall_us = stats.wall_us;
    row.flops = stats.flops;
    row.alloc_bytes = stats.alloc_bytes;
    row.cycles = stats.cycles;
    row.instructions = stats.instructions;
    row.cache_misses = stats.cache_misses;
    row.branch_misses = stats.branch_misses;
    row.planned = stats.planned;
    row.gflops = AchievedGflops(stats);
    row.arith_intensity = ArithmeticIntensity(stats);
    row.ipc = Ipc(stats);
    rows.push_back(std::move(row));
  }
  RunReport report;
  // Totals sum top-level spans only (depth 0) so nested spans are not
  // double-counted.
  for (const SpanEvent& ev : events) {
    if (ev.depth != 0) continue;
    report.total_wall_us += ev.wall_us;
    report.total_flops += ev.flops;
    report.total_alloc_bytes += ev.alloc_bytes;
  }
  report.by_wall = TopBy(
      rows, top_n, [](const RunReportRow& r) { return r.wall_us; });
  report.by_flops =
      TopBy(rows, top_n, [](const RunReportRow& r) { return r.flops; });
  report.by_bytes = TopBy(
      rows, top_n, [](const RunReportRow& r) { return r.alloc_bytes; });
  return report;
}

std::string RunReport::ToAscii() const {
  std::string out;
  out += "=== run report: top spans by wall-clock ===\n";
  out += RowsTable(by_wall).ToAscii();
  out += "=== run report: top spans by FLOPs ===\n";
  out += RowsTable(by_flops).ToAscii();
  out += "=== run report: top spans by allocated bytes ===\n";
  out += RowsTable(by_bytes).ToAscii();
  out += "totals (top-level spans): wall ";
  out += Table::Num(static_cast<double>(total_wall_us) / 1e3, 2);
  out += " ms, flops ";
  out += Table::Num(static_cast<double>(total_flops) / 1e6, 2);
  out += " M, alloc ";
  out += Table::Num(static_cast<double>(total_alloc_bytes) /
                        (1024.0 * 1024.0),
                    2);
  out += " MB\n";
  return out;
}

std::string RunReport::ToJson() const {
  std::string out = "{\"focus_run_report\":1,";
  out += "\"total_wall_us\":" + std::to_string(total_wall_us);
  out += ",\"total_flops\":" + std::to_string(total_flops);
  out += ",\"total_alloc_bytes\":" + std::to_string(total_alloc_bytes);
  out += ",";
  AppendRowsJson(out, "by_wall", by_wall);
  out += ",";
  AppendRowsJson(out, "by_flops", by_flops);
  out += ",";
  AppendRowsJson(out, "by_bytes", by_bytes);
  out += "}\n";
  return out;
}

namespace {
void SetReportConfig(bool print_table, const std::string& json_path) {
  std::lock_guard<std::mutex> lock(g_report_mu);
  g_report_print = print_table;
  g_report_json_path = json_path;
  if (!g_report_atexit_registered) {
    g_report_atexit_registered = true;
    std::atexit(EmitAtExit);
  }
}
}  // namespace

void ConfigureRunReport(bool print_table, const std::string& json_path) {
  if (!print_table && json_path.empty()) return;
  SetReportConfig(print_table, json_path);
  Tracer::Get().Enable();
}

bool ConfigureRunReportFromEnv() {
  const std::string path = GetEnvOr("FOCUS_REPORT_JSON", "");
  if (path.empty()) return false;
  SetReportConfig(/*print_table=*/false, path);
  return true;
}

void ApplyReportFlag(const FlagParser& flags) {
  const bool print = flags.GetBool("report", false);
  std::string json_path = flags.GetString("report-json", "");
  if (json_path == "true") json_path = "run_report.json";
  ConfigureRunReport(print, json_path);
}

}  // namespace prof
}  // namespace obs
}  // namespace focus
