// Unified benchmark-result schema.
//
// Every benchmark binary that records numbers into results/ emits this one
// JSON shape, so scripts/bench_diff.py can compare any two recordings —
// across PRs, backends, and machines — and fail the perf gate on a
// regression. The header pins the provenance a fair comparison needs:
//
//   {
//     "focus_bench_schema": 1,
//     "date": "2026-08-08T12:00:00Z",
//     "note": "",
//     "machine": {"cpu_model": "...", "num_cpus": 8},
//     "build": {"git_sha": "abc1234", "simd_backend": "avx2",
//               "build_type": "Release", "threads": 8},
//     "benchmarks": [
//       {"name": "BM_MatMul/256", "ns_per_op": 1234.5, "gflops": 27.2,
//        "items_per_second": 0, "threads": 1, "label": "avx2"}, ...
//     ]
//   }
//
// ns_per_op is the one mandatory per-entry metric (the regression gate's
// axis); gflops/items_per_second/threads/label/bytes_per_op are optional
// context (bytes_per_op — estimated operand bytes moved per op — is
// emitted only when nonzero, so pre-existing reports parse unchanged).
// Adopted by bench_kernels (--focus-bench-json=<path> / FOCUS_BENCH_JSON)
// and bench_fig6_efficiency (--bench-json=<path>); the pre-schema files in
// results/ were backfilled by scripts/bench_schema_backfill.py.
#ifndef FOCUS_OBS_BENCH_REPORT_H_
#define FOCUS_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "utils/status.h"

namespace focus {
namespace obs {

struct BenchEntry {
  std::string name;
  double ns_per_op = 0.0;
  double gflops = 0.0;           // 0 when the bench doesn't measure it
  double items_per_second = 0.0;  // 0 when not measured
  double threads = 0.0;           // pool size the entry ran with
  double bytes_per_op = 0.0;      // operand bytes moved per op; 0 = n/a
  std::string label;              // e.g. the SIMD backend
};

struct BenchReport {
  int schema = 1;
  std::string date;          // ISO-8601 UTC, filled by MakeBenchReport
  std::string note;
  std::string cpu_model;     // /proc/cpuinfo "model name"
  int num_cpus = 0;
  std::string git_sha;       // compiled in at configure time
  std::string simd_backend;  // active simd::BackendName()
  std::string build_type;    // CMAKE_BUILD_TYPE
  int threads = 0;           // ThreadPool size of the recording process
  std::vector<BenchEntry> entries;

  std::string ToJson() const;
};

// Fills the machine/build header for the current process. `threads` is
// passed in so this library stays independent of the thread pool.
BenchReport MakeBenchReport(int threads);

Status WriteBenchReport(const BenchReport& report, const std::string& path);

// Minimal parser for the schema above (exact-shape, not a general JSON
// parser): used by tests for round-trip coverage and by tools that read
// reports back. Returns false on any structural mismatch.
bool ParseBenchReport(const std::string& json, BenchReport* out);

}  // namespace obs
}  // namespace focus

#endif  // FOCUS_OBS_BENCH_REPORT_H_
