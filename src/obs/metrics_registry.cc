#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "tensor/allocator.h"

namespace focus {
namespace obs {

namespace {

// Small flat stores keep first-use order for export; metric sets are tiny
// (dozens of names), so linear search beats a map in practice.
template <typename V>
V* Find(std::vector<std::pair<std::string, V>>& entries,
        const std::string& name) {
  for (auto& entry : entries) {
    if (entry.first == name) return &entry.second;
  }
  return nullptr;
}

template <typename V>
const V* Find(const std::vector<std::pair<std::string, V>>& entries,
              const std::string& name) {
  for (const auto& entry : entries) {
    if (entry.first == name) return &entry.second;
  }
  return nullptr;
}

double NearestRank(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(n)));
  return sorted[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (int64_t* value = Find(counters_, name)) {
    *value += delta;
  } else {
    counters_.emplace_back(name, delta);
  }
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t* value = Find(counters_, name);
  return value ? *value : 0;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (double* slot = Find(gauges_, name)) {
    *slot = value;
  } else {
    gauges_.emplace_back(name, value);
  }
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double* value = Find(gauges_, name);
  return value ? *value : 0.0;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::vector<double>* samples = Find(histograms_, name)) {
    samples->push_back(value);
  } else {
    histograms_.emplace_back(name, std::vector<double>{value});
  }
}

MetricsRegistry::HistogramSummary MetricsRegistry::Summarize(
    const std::string& name) const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const std::vector<double>* s = Find(histograms_, name)) samples = *s;
  }
  HistogramSummary summary;
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  summary.count = static_cast<int64_t>(samples.size());
  summary.min = samples.front();
  summary.max = samples.back();
  double total = 0.0;
  for (double v : samples) total += v;
  summary.mean = total / static_cast<double>(samples.size());
  summary.p50 = NearestRank(samples, 0.50);
  summary.p95 = NearestRank(samples, 0.95);
  summary.p99 = NearestRank(samples, 0.99);
  return summary;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::vector<std::pair<std::string, MetricsRegistry::HistogramSummary>>
MetricsRegistry::Histograms() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(histograms_.size());
    for (const auto& entry : histograms_) names.push_back(entry.first);
  }
  std::vector<std::pair<std::string, HistogramSummary>> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.emplace_back(name, Summarize(name));
  }
  return out;
}

void MetricsRegistry::ResetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::vector<double>* samples = Find(histograms_, name)) {
    samples->clear();
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void PublishAllocatorMetrics() {
  // Counters in the registry are cumulative; the allocator's counters are
  // process-cumulative too, so publish only the delta since the previous
  // publication (guarded for concurrent publishers).
  static std::mutex publish_mu;
  static AllocatorStats last;
  std::lock_guard<std::mutex> lock(publish_mu);
  const AllocatorStats now = Allocator::Get().Stats();
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.AddCounter("alloc/hits", now.hits - last.hits);
  registry.AddCounter("alloc/misses", now.misses - last.misses);
  registry.AddCounter("alloc/frees_cached",
                      now.frees_cached - last.frees_cached);
  registry.AddCounter("alloc/frees_released",
                      now.frees_released - last.frees_released);
  registry.AddCounter("alloc/trims", now.trims - last.trims);
  registry.AddCounter("alloc/arena_leases",
                      now.arena_leases - last.arena_leases);
  registry.SetGauge("alloc/cached_bytes",
                    static_cast<double>(now.cached_bytes));
  registry.SetGauge("alloc/raw_bytes", static_cast<double>(now.raw_bytes));
  registry.SetGauge("alloc/arena_leased_bytes",
                    static_cast<double>(now.arena_leased_bytes));
  last = now;
}

}  // namespace obs
}  // namespace focus
