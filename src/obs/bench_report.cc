#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>

#include "tensor/simd/vec.h"

#ifndef FOCUS_GIT_SHA
#define FOCUS_GIT_SHA "unknown"
#endif
#ifndef FOCUS_BUILD_TYPE
#define FOCUS_BUILD_TYPE "unknown"
#endif

namespace focus {
namespace obs {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips doubles exactly, so Parse(ToJson(r)) == r.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CpuModelName() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[512];
  std::string model = "unknown";
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        model = colon + 1;
        // Trim leading space and the trailing newline.
        while (!model.empty() && model.front() == ' ') model.erase(0, 1);
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == '\r')) {
          model.pop_back();
        }
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

std::string IsoUtcNow() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

// --- minimal exact-shape parsing helpers ------------------------------------

// Finds `"key":` at or after `from` and returns the index just past the
// colon, or npos.
size_t FindKey(const std::string& json, const std::string& key,
               size_t from) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle, from);
  return at == std::string::npos ? at : at + needle.size();
}

bool ParseStringAt(const std::string& json, size_t at, std::string* out) {
  if (at == std::string::npos || at >= json.size() || json[at] != '"') {
    return false;
  }
  std::string value;
  for (size_t i = at + 1; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      const char n = json[++i];
      switch (n) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        default: value += n; break;
      }
      continue;
    }
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    value += c;
  }
  return false;
}

bool ParseNumberAt(const std::string& json, size_t at, double* out) {
  if (at == std::string::npos || at >= json.size()) return false;
  char* end = nullptr;
  const double v = std::strtod(json.c_str() + at, &end);
  if (end == json.c_str() + at) return false;
  *out = v;
  return true;
}

bool GetString(const std::string& json, const std::string& key, size_t from,
               std::string* out) {
  return ParseStringAt(json, FindKey(json, key, from), out);
}

bool GetNumber(const std::string& json, const std::string& key, size_t from,
               double* out) {
  return ParseNumberAt(json, FindKey(json, key, from), out);
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::string out;
  out.reserve(entries.size() * 160 + 1024);
  out += "{\"focus_bench_schema\":" + std::to_string(schema);
  out += ",\"date\":\"";
  AppendEscaped(out, date);
  out += "\",\"note\":\"";
  AppendEscaped(out, note);
  out += "\",\"machine\":{\"cpu_model\":\"";
  AppendEscaped(out, cpu_model);
  out += "\",\"num_cpus\":" + std::to_string(num_cpus);
  out += "},\"build\":{\"git_sha\":\"";
  AppendEscaped(out, git_sha);
  out += "\",\"simd_backend\":\"";
  AppendEscaped(out, simd_backend);
  out += "\",\"build_type\":\"";
  AppendEscaped(out, build_type);
  out += "\",\"threads\":" + std::to_string(threads);
  out += "},\"benchmarks\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    if (i > 0) out += ",";
    out += "\n{\"name\":\"";
    AppendEscaped(out, e.name);
    out += "\",\"ns_per_op\":" + FormatDouble(e.ns_per_op);
    out += ",\"gflops\":" + FormatDouble(e.gflops);
    out += ",\"items_per_second\":" + FormatDouble(e.items_per_second);
    out += ",\"threads\":" + FormatDouble(e.threads);
    // Optional: omitted when not measured, so reports predating the
    // field byte-match their re-serialization.
    if (e.bytes_per_op > 0.0) {
      out += ",\"bytes_per_op\":" + FormatDouble(e.bytes_per_op);
    }
    out += ",\"label\":\"";
    AppendEscaped(out, e.label);
    out += "\"}";
  }
  out += "\n]}\n";
  return out;
}

BenchReport MakeBenchReport(int threads) {
  BenchReport report;
  report.date = IsoUtcNow();
  report.cpu_model = CpuModelName();
  report.num_cpus =
      static_cast<int>(std::thread::hardware_concurrency());
  report.git_sha = FOCUS_GIT_SHA;
  report.simd_backend = simd::BackendName();
  report.build_type = FOCUS_BUILD_TYPE;
  report.threads = threads;
  return report;
}

Status WriteBenchReport(const BenchReport& report, const std::string& path) {
  const std::string payload = report.ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open bench report file " + path);
  }
  const bool ok =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  std::fclose(f);
  if (!ok) return Status::IoError("short write to bench report " + path);
  return Status::Ok();
}

bool ParseBenchReport(const std::string& json, BenchReport* out) {
  double schema = 0.0;
  if (!GetNumber(json, "focus_bench_schema", 0, &schema)) return false;
  // Future schema revisions must fail loudly here, not half-parse.
  if (schema != 1.0) return false;
  out->schema = static_cast<int>(schema);
  GetString(json, "date", 0, &out->date);
  GetString(json, "note", 0, &out->note);
  GetString(json, "cpu_model", 0, &out->cpu_model);
  double num_cpus = 0.0;
  if (GetNumber(json, "num_cpus", 0, &num_cpus)) {
    out->num_cpus = static_cast<int>(num_cpus);
  }
  GetString(json, "git_sha", 0, &out->git_sha);
  GetString(json, "simd_backend", 0, &out->simd_backend);
  GetString(json, "build_type", 0, &out->build_type);
  const size_t build_at = FindKey(json, "build", 0);
  double threads = 0.0;
  if (build_at != std::string::npos &&
      GetNumber(json, "threads", build_at, &threads)) {
    out->threads = static_cast<int>(threads);
  }
  const size_t list_at = FindKey(json, "benchmarks", 0);
  if (list_at == std::string::npos) return false;
  out->entries.clear();
  size_t cursor = json.find('[', list_at);
  if (cursor == std::string::npos) return false;
  while (true) {
    const size_t open = json.find('{', cursor);
    const size_t close_list = json.find(']', cursor);
    if (open == std::string::npos || close_list < open) break;
    const size_t close = json.find('}', open);
    if (close == std::string::npos) return false;
    const std::string obj = json.substr(open, close - open + 1);
    BenchEntry entry;
    if (!GetString(obj, "name", 0, &entry.name)) return false;
    if (!GetNumber(obj, "ns_per_op", 0, &entry.ns_per_op)) return false;
    GetNumber(obj, "gflops", 0, &entry.gflops);
    GetNumber(obj, "items_per_second", 0, &entry.items_per_second);
    GetNumber(obj, "threads", 0, &entry.threads);
    GetNumber(obj, "bytes_per_op", 0, &entry.bytes_per_op);
    GetString(obj, "label", 0, &entry.label);
    out->entries.push_back(std::move(entry));
    cursor = close + 1;
  }
  return true;
}

}  // namespace obs
}  // namespace focus
