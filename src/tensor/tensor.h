// Core tensor type: a shared, contiguous, row-major float32 array with
// reverse-mode autograd hooks.
//
// Design (DESIGN.md Sec. 2):
//  * Value-semantic handle (`Tensor`) over a shared `TensorImpl`.
//  * Always contiguous; shape-changing ops either alias the buffer (Reshape,
//    Detach) or materialize a copy (Transpose, Permute, Slice, Cat).
//  * Autograd is tape-based: each differentiable op attaches an
//    `autograd::Node` holding its inputs and a backward closure; see
//    autograd.h. Gradients of leaves accumulate into `TensorImpl::grad`.
//  * All buffer allocations are tracked by MemoryStats (peak-memory metric)
//    and all kernels report FLOPs to FlopCounter (FLOPs metric). Buffers
//    themselves come from the size-class caching allocator (allocator.h):
//    freed buffers are recycled, so `Empty` memory is uninitialized
//    *garbage*, never dependably zero — write before you read.
#ifndef FOCUS_TENSOR_TENSOR_H_
#define FOCUS_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "utils/check.h"
#include "utils/rng.h"

namespace focus {

using Shape = std::vector<int64_t>;

int64_t ShapeNumel(const Shape& shape);
std::string ShapeToString(const Shape& shape);

namespace autograd {
class Node;
}  // namespace autograd

// Reference-counted storage + metadata. Users interact through Tensor.
class TensorImpl {
 public:
  // Allocates an uninitialized, tracked buffer of ShapeNumel(shape) floats.
  explicit TensorImpl(Shape shape);
  // Aliases an existing buffer (used by Reshape / Detach).
  TensorImpl(Shape shape, std::shared_ptr<float[]> buffer);

  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  float* data() { return buffer_.get(); }
  const float* data() const { return buffer_.get(); }
  const std::shared_ptr<float[]>& buffer() const { return buffer_; }

  Shape shape;
  int64_t numel = 0;

  bool requires_grad = false;
  std::shared_ptr<TensorImpl> grad;          // Leaf gradient accumulator.
  std::shared_ptr<autograd::Node> grad_fn;   // Null for leaves/constants.

 private:
  std::shared_ptr<float[]> buffer_;
};

// Thread-global flag controlling whether ops record autograd nodes.
struct GradMode {
  static bool IsEnabled();
  static void SetEnabled(bool enabled);
};

// RAII: disables autograd recording within a scope (inference, backward).
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::IsEnabled()) { GradMode::SetEnabled(false); }
  ~NoGradGuard() { GradMode::SetEnabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

// Thread-global inference-mode flag. Stronger than NoGradGuard: while it
// is set, creating a tape node is a contract violation (MakeResult
// CHECK-fails instead of silently recording), so inference paths are
// guaranteed tape-free even if someone re-enables GradMode inside the
// scope. Benchmarks, Evaluate, and plan capture all run under it.
struct InferenceMode {
  static bool IsEnabled();
  static void SetEnabled(bool enabled);
};

// RAII: enters inference mode (and disables grad recording) for a scope.
class InferenceModeGuard {
 public:
  InferenceModeGuard() : prev_(InferenceMode::IsEnabled()) {
    InferenceMode::SetEnabled(true);
  }
  ~InferenceModeGuard() { InferenceMode::SetEnabled(prev_); }
  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;

 private:
  NoGradGuard no_grad_;  // ordered first: restored after the mode flag
  bool prev_;
};

class Tensor {
 public:
  // Default-constructed tensors are "undefined"; any data access CHECKs.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------
  // Uninitialized buffer — with the caching allocator the contents are
  // recycled garbage (NaN-poisoned under FOCUS_DEBUG_CHECK), so every
  // element must be written before it is read. Use Zeros for accumulators.
  static Tensor Empty(Shape shape);
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor FromVector(Shape shape, const std::vector<float>& values);
  static Tensor Scalar(float value);  // shape {1}
  // Values in [0, n) as floats; used for positional indices.
  static Tensor Arange(int64_t n);
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor RandUniform(Shape shape, Rng& rng, float lo, float hi);
  static Tensor FromImpl(std::shared_ptr<TensorImpl> impl);

  // --- Introspection -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim() const { return static_cast<int64_t>(shape().size()); }
  // Size along dimension d; negative d counts from the end.
  int64_t size(int64_t d) const;
  int64_t numel() const;
  float* data();
  const float* data() const;
  // Scalar extraction; CHECKs numel()==1.
  float Item() const;
  float At(const std::vector<int64_t>& index) const;
  void Set(const std::vector<int64_t>& index, float value);
  std::vector<float> ToVector() const;
  // Deep copy of the data (no autograd history).
  Tensor Clone() const;

  // --- Autograd ------------------------------------------------------------
  bool requires_grad() const;
  Tensor& SetRequiresGrad(bool requires_grad);
  // Gradient of a leaf after Backward(); undefined Tensor if none.
  Tensor Grad() const;
  void ZeroGrad();
  // Reverse-mode differentiation from this scalar tensor.
  void Backward() const;
  // Shares the buffer but drops autograd history.
  Tensor Detach() const;
  const std::shared_ptr<autograd::Node>& grad_fn() const;
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

  // --- Convenience member ops (defined in ops.cc in terms of free fns) -----
  Tensor Reshape(Shape shape) const;
  Tensor Transpose(int64_t d0, int64_t d1) const;
  Tensor Permute(const std::vector<int64_t>& dims) const;
  Tensor Unsqueeze(int64_t dim) const;
  Tensor Squeeze(int64_t dim) const;

 private:
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace focus

#endif  // FOCUS_TENSOR_TENSOR_H_
