// Radix-2 FFT and FFT-based series analysis utilities.
//
// Powers the Autoformer-lite baseline's auto-correlation mechanism
// (O(L log L), the efficiency trick of Wu et al., NeurIPS 2021) and offers
// a principled period detector. Sizes are padded to the next power of two
// internally.
#ifndef FOCUS_TENSOR_FFT_H_
#define FOCUS_TENSOR_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace focus {
namespace fft {

// In-place iterative radix-2 Cooley-Tukey transform. data.size() must be a
// power of two. `inverse` applies the 1/n-scaled inverse transform.
void Fft(std::vector<std::complex<float>>& data, bool inverse);

// Next power of two >= n.
int64_t NextPow2(int64_t n);

// Linear (non-circular) autocorrelation r[lag] = sum_i x[i] * x[i+lag] of a
// real series, computed via zero-padded FFT in O(n log n). Returns lags
// 0..n-1, normalized so r[0] == 1 (or all zeros for a zero series).
std::vector<float> Autocorrelation(const float* x, int64_t n);

// The `k` lags in [min_period, n/2] with the highest autocorrelation,
// sorted by score descending.
std::vector<int64_t> TopPeriods(const float* x, int64_t n, int64_t k,
                                int64_t min_period);

}  // namespace fft
}  // namespace focus

#endif  // FOCUS_TENSOR_FFT_H_
