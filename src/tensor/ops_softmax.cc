// Fused softmax and layer-norm over the last dimension, with analytic
// backward passes (avoids long autograd chains in the attention hot path).
//
// All passes parallelize over independent rows (or, for the layer-norm
// parameter gradients, independent column chunks) via ParallelFor; every
// output element keeps the serial kernel's accumulation order, so results
// are bit-identical for any FOCUS_NUM_THREADS. FLOPs are counted once from
// the resolved shapes, outside the parallel regions.
#include <cmath>
#include <vector>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/profile_hooks.h"

namespace focus {

namespace {
// Rows are cheap for small n; shard only when a shard carries at least this
// many scalar elements so pool dispatch never dominates.
int64_t RowGrain(int64_t n) { return std::max<int64_t>(1, 4096 / (n + 1)); }
}  // namespace

Tensor SoftmaxLastDim(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("SoftmaxLastDim", x);
  FOCUS_CHECK_GE(x.dim(), 1);
  const int64_t n = x.size(-1);
  const int64_t rows = x.numel() / n;
  Tensor out = Tensor::Empty(x.shape());
  {
    FOCUS_KERNEL_SCOPE("kernel/softmax");
    const float* px = x.data();
    float* po = out.data();
    ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xi = px + r * n;
        float* yi = po + r * n;
        float max_v = xi[0];
        for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, xi[i]);
        float sum = 0.0f;
        for (int64_t i = 0; i < n; ++i) {
          yi[i] = std::exp(xi[i] - max_v);
          sum += yi[i];
        }
        const float inv = 1.0f / sum;
        for (int64_t i = 0; i < n; ++i) yi[i] *= inv;
      }
    });
    FlopCounter::Add(5 * x.numel());
  }

  Tensor y_saved = out.Detach();
  return autograd::MakeResult(
      out, "Softmax", {x},
      [y_saved, n, rows](const Tensor& g) -> std::vector<Tensor> {
        // dx_i = y_i * (g_i - sum_j g_j y_j)
        Tensor gin = Tensor::Empty(y_saved.shape());
        const float* pg = g.data();
        const float* py = y_saved.data();
        float* pi = gin.data();
        ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* gi = pg + r * n;
            const float* yi = py + r * n;
            float* xi = pi + r * n;
            float dot = 0.0f;
            for (int64_t i = 0; i < n; ++i) dot += gi[i] * yi[i];
            for (int64_t i = 0; i < n; ++i) xi[i] = yi[i] * (gi[i] - dot);
          }
        });
        FlopCounter::Add(4 * y_saved.numel());
        return {gin};
      });
}

Tensor LayerNormLastDim(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps) {
  FOCUS_OP_INPUT_CHECK("LayerNorm", x);
  FOCUS_OP_INPUT_CHECK("LayerNorm", gamma);
  FOCUS_OP_INPUT_CHECK("LayerNorm", beta);
  FOCUS_CHECK_GE(x.dim(), 1);
  const int64_t n = x.size(-1);
  FOCUS_CHECK_EQ(gamma.numel(), n) << "LayerNorm gamma size mismatch";
  FOCUS_CHECK_EQ(beta.numel(), n) << "LayerNorm beta size mismatch";
  const int64_t rows = x.numel() / n;

  Tensor out = Tensor::Empty(x.shape());
  // Saved statistics for backward (raw buffers, not autograd tensors).
  std::vector<float> means(static_cast<size_t>(rows));
  std::vector<float> rstds(static_cast<size_t>(rows));
  {
    FOCUS_KERNEL_SCOPE("kernel/layernorm");
    const float* px = x.data();
    const float* pgm = gamma.data();
    const float* pbt = beta.data();
    float* po = out.data();
    float* pmeans = means.data();
    float* prstds = rstds.data();
    ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xi = px + r * n;
        float* yi = po + r * n;
        float mean = 0.0f;
        for (int64_t i = 0; i < n; ++i) mean += xi[i];
        mean /= static_cast<float>(n);
        float var = 0.0f;
        for (int64_t i = 0; i < n; ++i) {
          const float d = xi[i] - mean;
          var += d * d;
        }
        var /= static_cast<float>(n);
        const float rstd = 1.0f / std::sqrt(var + eps);
        pmeans[r] = mean;
        prstds[r] = rstd;
        for (int64_t i = 0; i < n; ++i) {
          yi[i] = (xi[i] - mean) * rstd * pgm[i] + pbt[i];
        }
      }
    });
    FlopCounter::Add(8 * x.numel());
  }

  Tensor x_saved = x.Detach();
  Tensor gamma_saved = gamma.Detach();
  return autograd::MakeResult(
      out, "LayerNorm", {x, gamma, beta},
      [x_saved, gamma_saved, means, rstds, n,
       rows](const Tensor& g) -> std::vector<Tensor> {
        Tensor gx = Tensor::Empty(x_saved.shape());
        Tensor ggamma = Tensor::Zeros({n});
        Tensor gbeta = Tensor::Zeros({n});
        const float* pg = g.data();
        const float* px = x_saved.data();
        const float* pgm = gamma_saved.data();
        const float* pmeans = means.data();
        const float* prstds = rstds.data();
        float* pgx = gx.data();
        float* pgg = ggamma.data();
        float* pgb = gbeta.data();
        const float inv_n = 1.0f / static_cast<float>(n);
        // dX: rows are independent.
        ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float mean = pmeans[r];
            const float rstd = prstds[r];
            const float* gi = pg + r * n;
            const float* xi = px + r * n;
            float* gxi = pgx + r * n;
            // dxhat_i = g_i * gamma_i; dx from the standard layer-norm
            // gradient: rstd * (dxhat - mean(dxhat) - xhat *
            // mean(dxhat*xhat)).
            float sum_dxhat = 0.0f, sum_dxhat_xhat = 0.0f;
            for (int64_t i = 0; i < n; ++i) {
              const float xhat = (xi[i] - mean) * rstd;
              const float dxhat = gi[i] * pgm[i];
              sum_dxhat += dxhat;
              sum_dxhat_xhat += dxhat * xhat;
            }
            sum_dxhat *= inv_n;
            sum_dxhat_xhat *= inv_n;
            for (int64_t i = 0; i < n; ++i) {
              const float xhat = (xi[i] - mean) * rstd;
              const float dxhat = gi[i] * pgm[i];
              gxi[i] = rstd * (dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
            }
          }
        });
        // dgamma/dbeta: columns are independent; the row reduction stays
        // r-ascending inside each column, matching the serial order.
        ParallelFor(0, n, 16, [&](int64_t c0, int64_t c1) {
          for (int64_t r = 0; r < rows; ++r) {
            const float mean = pmeans[r];
            const float rstd = prstds[r];
            const float* gi = pg + r * n;
            const float* xi = px + r * n;
            for (int64_t i = c0; i < c1; ++i) {
              // xhat first, then gi * xhat — the same association as the
              // pre-pool serial kernel, so golden values carry over bit-exact.
              const float xhat = (xi[i] - mean) * rstd;
              pgg[i] += gi[i] * xhat;
              pgb[i] += gi[i];
            }
          }
        });
        FlopCounter::Add(12 * x_saved.numel());
        // gamma/beta grads must match the parameter shapes exactly.
        return {gx, Reshape(ggamma, gamma_saved.shape()),
                Reshape(gbeta, gamma_saved.shape())};
      });
}

}  // namespace focus
