// Fused softmax and layer-norm over the last dimension, with analytic
// backward passes (avoids long autograd chains in the attention hot path).
//
// The row kernels (fused max/exp/normalize softmax sweep, layer-norm
// mean/var/normalize) live in the SIMD layer (src/tensor/simd) and
// parallelize over independent rows via ParallelFor; row reductions use
// the layer's fixed 8-lane split anchored at each row start, so results
// are bit-identical for any FOCUS_NUM_THREADS and FOCUS_SIMD backend.
// The layer-norm parameter gradients keep their scalar column-parallel
// loop (a row-major column reduction defeats contiguous vector loads).
// FLOPs are counted once from the resolved shapes, outside the parallel
// regions.
#include <cmath>
#include <vector>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/plan_hooks.h"
#include "tensor/profile_hooks.h"
#include "tensor/simd/vec.h"

namespace focus {

namespace {
// Rows are cheap for small n; shard only when a shard carries at least
// this many scalar elements so pool dispatch never dominates. The grain
// is shared with the plan compiler (plan_hooks.h) so fused row sweeps
// shard exactly like the eager ops they replace.
using plan_hooks::RowGrain;
}  // namespace

Tensor SoftmaxLastDim(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("SoftmaxLastDim", x);
  FOCUS_CHECK_GE(x.dim(), 1);
  const int64_t n = x.size(-1);
  const int64_t rows = x.numel() / n;
  Tensor out = Tensor::Empty(x.shape());
  {
    FOCUS_KERNEL_SCOPE("kernel/softmax");
    const float* px = x.data();
    float* po = out.data();
    const auto rows_kern = simd::Kernels().softmax_rows;
    ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
      rows_kern(px + r0 * n, po + r0 * n, r1 - r0, n);
    });
    FlopCounter::Add(5 * x.numel());
  }
  if (plan_hooks::CaptureActive()) {
    plan_hooks::StepRecord rec;
    rec.kind = plan_hooks::StepKind::kSoftmaxRows;
    rec.name = "Softmax";
    rec.inputs = {x};
    rec.output = out;
    rec.rows = rows;
    rec.inner = n;
    const auto rows_kern = simd::Kernels().softmax_rows;
    rec.fn = [rows_kern, rows, n](float* const* bufs) {
      const float* rx = bufs[0];
      float* ro = bufs[1];
      ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
        rows_kern(rx + r0 * n, ro + r0 * n, r1 - r0, n);
      });
    };
    plan_hooks::RecordStep(std::move(rec));
  }

  Tensor y_saved = out.Detach();
  return autograd::MakeResult(
      out, "Softmax", {x},
      [y_saved, n, rows](const Tensor& g) -> std::vector<Tensor> {
        // dx_i = y_i * (g_i - sum_j g_j y_j)
        Tensor gin = Tensor::Empty(y_saved.shape());
        const float* pg = g.data();
        const float* py = y_saved.data();
        float* pi = gin.data();
        const auto bwd_kern = simd::Kernels().softmax_bwd_rows;
        ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
          bwd_kern(py + r0 * n, pg + r0 * n, pi + r0 * n, r1 - r0, n);
        });
        FlopCounter::Add(4 * y_saved.numel());
        return {gin};
      });
}

Tensor LayerNormLastDim(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps) {
  FOCUS_OP_INPUT_CHECK("LayerNorm", x);
  FOCUS_OP_INPUT_CHECK("LayerNorm", gamma);
  FOCUS_OP_INPUT_CHECK("LayerNorm", beta);
  FOCUS_CHECK_GE(x.dim(), 1);
  const int64_t n = x.size(-1);
  FOCUS_CHECK_EQ(gamma.numel(), n) << "LayerNorm gamma size mismatch";
  FOCUS_CHECK_EQ(beta.numel(), n) << "LayerNorm beta size mismatch";
  const int64_t rows = x.numel() / n;

  Tensor out = Tensor::Empty(x.shape());
  // Saved statistics for backward (raw buffers, not autograd tensors).
  std::vector<float> means(static_cast<size_t>(rows));
  std::vector<float> rstds(static_cast<size_t>(rows));
  {
    FOCUS_KERNEL_SCOPE("kernel/layernorm");
    const float* px = x.data();
    const float* pgm = gamma.data();
    const float* pbt = beta.data();
    float* po = out.data();
    float* pmeans = means.data();
    float* prstds = rstds.data();
    const auto rows_kern = simd::Kernels().layernorm_rows;
    ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
      rows_kern(px + r0 * n, pgm, pbt, eps, po + r0 * n, pmeans + r0,
                prstds + r0, r1 - r0, n);
    });
    FlopCounter::Add(8 * x.numel());
  }
  if (plan_hooks::CaptureActive()) {
    plan_hooks::StepRecord rec;
    rec.kind = plan_hooks::StepKind::kOpaque;
    rec.name = "LayerNorm";
    rec.inputs = {x, gamma, beta};
    rec.output = out;
    // means/rstds live in per-step slab scratch at replay time (the
    // plan has no backward pass to save them for).
    rec.scratch_numels = {rows, rows};
    const auto rows_kern = simd::Kernels().layernorm_rows;
    rec.fn = [rows_kern, rows, n, eps](float* const* bufs) {
      const float* rx = bufs[0];
      const float* rgm = bufs[1];
      const float* rbt = bufs[2];
      float* ro = bufs[3];
      float* rmeans = bufs[4];
      float* rrstds = bufs[5];
      ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
        rows_kern(rx + r0 * n, rgm, rbt, eps, ro + r0 * n, rmeans + r0,
                  rrstds + r0, r1 - r0, n);
      });
    };
    plan_hooks::RecordStep(std::move(rec));
  }

  Tensor x_saved = x.Detach();
  Tensor gamma_saved = gamma.Detach();
  return autograd::MakeResult(
      out, "LayerNorm", {x, gamma, beta},
      [x_saved, gamma_saved, means, rstds, n,
       rows](const Tensor& g) -> std::vector<Tensor> {
        Tensor gx = Tensor::Empty(x_saved.shape());
        Tensor ggamma = Tensor::Zeros({n});
        Tensor gbeta = Tensor::Zeros({n});
        const float* pg = g.data();
        const float* px = x_saved.data();
        const float* pgm = gamma_saved.data();
        const float* pmeans = means.data();
        const float* prstds = rstds.data();
        float* pgx = gx.data();
        float* pgg = ggamma.data();
        float* pgb = gbeta.data();
        // dX: rows are independent; the fused SIMD kernel computes
        // rstd * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat)) with
        // dxhat_i = g_i * gamma_i.
        const auto dx_kern = simd::Kernels().layernorm_bwd_dx_rows;
        ParallelFor(0, rows, RowGrain(n), [&](int64_t r0, int64_t r1) {
          dx_kern(px + r0 * n, pg + r0 * n, pgm, pmeans + r0,
                  prstds + r0, pgx + r0 * n, r1 - r0, n);
        });
        // dgamma/dbeta: columns are independent; the row reduction stays
        // r-ascending inside each column, matching the serial order.
        ParallelFor(0, n, 16, [&](int64_t c0, int64_t c1) {
          for (int64_t r = 0; r < rows; ++r) {
            const float mean = pmeans[r];
            const float rstd = prstds[r];
            const float* gi = pg + r * n;
            const float* xi = px + r * n;
            for (int64_t i = c0; i < c1; ++i) {
              // xhat first, then gi * xhat — the same association as the
              // pre-pool serial kernel, so golden values carry over bit-exact.
              const float xhat = (xi[i] - mean) * rstd;
              pgg[i] += gi[i] * xhat;
              pgb[i] += gi[i];
            }
          }
        });
        FlopCounter::Add(12 * x_saved.numel());
        // gamma/beta grads must match the parameter shapes exactly.
        return {gx, Reshape(ggamma, gamma_saved.shape()),
                Reshape(gbeta, gamma_saved.shape())};
      });
}

}  // namespace focus
