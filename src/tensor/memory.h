// Tensor memory accounting.
//
// Every tensor buffer allocation/deallocation flows through these hooks so
// experiments can report peak memory usage — one of the paper's three
// efficiency metrics (Fig. 6, Table IV). Counters are process-global; the
// harness resets the peak before a probed forward pass.
//
// These are *logical* bytes: the live-tensor footprint the paper's metric
// is defined over. They are recorded before the caching allocator
// (tensor/allocator.h) gets involved, so recycling, size-class rounding,
// and cached-but-idle buffers never show up here — CurrentBytes/PeakBytes
// are identical whether the cache is on, capped, or bypassed. The
// allocator's own AllocatorStats reports the *raw* system-side view
// (live + cached rounded bytes, hits/misses/trims).
#ifndef FOCUS_TENSOR_MEMORY_H_
#define FOCUS_TENSOR_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace focus {

struct MemoryStats {
  // Bytes currently held by live tensor buffers.
  static int64_t CurrentBytes();
  // High-water mark since the last ResetPeak().
  static int64_t PeakBytes();
  // Total number of allocations since process start.
  static int64_t TotalAllocations();
  // Total logical bytes ever allocated since process start (monotonic).
  // obs::TraceSpan differences this across a span to get the span's byte
  // traffic — the denominator of the roofline arithmetic-intensity figure
  // (see obs/prof/run_report.h).
  static int64_t TotalAllocatedBytes();
  // Sets the peak to the current live byte count.
  static void ResetPeak();
  // Internal: overwrites the high-water mark. obs::TraceSpan uses this to
  // window the peak per span (reset on entry, restored to the running max on
  // exit); ordinary callers should use ResetPeak().
  static void SetPeak(int64_t bytes);

  // Internal: called by the tensor allocator.
  static void RecordAlloc(int64_t bytes);
  static void RecordFree(int64_t bytes);
};

}  // namespace focus

#endif  // FOCUS_TENSOR_MEMORY_H_
