// Matrix multiplication with batch broadcasting, plus its backward pass.
//
// The forward kernel is cache-blocked (MC-row tasks) with a register-tiled
// micro-kernel: a 4×8 C tile lives in registers for the whole k loop, so C
// is written exactly once per element instead of being re-loaded/stored on
// every k step as in the naive i-k-j loop, and the compiler gets eight
// independent accumulation streams to auto-vectorize. Work is split over
// the batch×row-block grid via ParallelFor. For every output element the
// reduction over k runs in ascending order regardless of tiling or thread
// count, so results are bit-identical for any FOCUS_NUM_THREADS.
#include <algorithm>
#include <cstring>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/profile_hooks.h"

namespace focus {

namespace {

// Blocking parameters (floats): MC rows of A per task keeps the A panel
// L2-resident and sizes the parallel grid; the MR×NR micro-tile is the C
// block held in registers across the entire k loop.
constexpr int64_t kBlockM = 64;  // MC: A/C rows per parallel task
constexpr int64_t kMicroM = 4;   // MR: register tile height
constexpr int64_t kMicroN = 8;   // NR: register tile width

// Computes C rows [i0, i1) of one batch entry: ct[i,:] = at[i,:] @ bt.
// Each MR×NR tile of C accumulates in registers over the full k range
// (k ascending per element) and is stored exactly once.
void MatMulRowBlock(const float* at, const float* bt, float* ct, int64_t i0,
                    int64_t i1, int64_t k, int64_t n) {
  int64_t j0 = 0;
  for (; j0 + kMicroN <= n; j0 += kMicroN) {
    int64_t i = i0;
    for (; i + kMicroM <= i1; i += kMicroM) {
      float acc[kMicroM][kMicroN] = {};
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* brow = bt + kk * n + j0;
        for (int64_t r = 0; r < kMicroM; ++r) {
          const float av = at[(i + r) * k + kk];
          for (int64_t c = 0; c < kMicroN; ++c) acc[r][c] += av * brow[c];
        }
      }
      for (int64_t r = 0; r < kMicroM; ++r)
        std::memcpy(ct + (i + r) * n + j0, acc[r], sizeof(acc[r]));
    }
    for (; i < i1; ++i) {  // remainder rows: 1×NR tile
      float acc[kMicroN] = {};
      const float* arow = at + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = bt + kk * n + j0;
        for (int64_t c = 0; c < kMicroN; ++c) acc[c] += av * brow[c];
      }
      std::memcpy(ct + i * n + j0, acc, sizeof(acc));
    }
  }
  for (; j0 < n; ++j0) {  // remainder columns: scalar dot products
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = at + i * k;
      float s = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) s += arow[kk] * bt[kk * n + j0];
      ct[i * n + j0] = s;
    }
  }
}

// C(batch,m,n) = A(batch_a,m,k) @ B(batch_b,k,n), batch_a/batch_b in
// {1, batch}. Parallel over the batch×row-block grid; each task owns a
// disjoint slab of C, so no two threads ever touch the same output element.
void MatMulKernel(const float* a, const float* b, float* c, int64_t batch,
                  int64_t batch_a, int64_t batch_b, int64_t m, int64_t k,
                  int64_t n) {
  const int64_t row_blocks = (m + kBlockM - 1) / kBlockM;
  ParallelFor(0, batch * row_blocks, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t task = t0; task < t1; ++task) {
      const int64_t t = task / row_blocks;
      const int64_t block = task % row_blocks;
      const float* at = a + (batch_a == 1 ? 0 : t) * m * k;
      const float* bt = b + (batch_b == 1 ? 0 : t) * k * n;
      float* ct = c + t * m * n;
      const int64_t i0 = block * kBlockM;
      const int64_t i1 = std::min(m, i0 + kBlockM);
      MatMulRowBlock(at, bt, ct, i0, i1, k, n);
    }
  });
}

// Transposes the last two dims of a 2D/3D tensor (materialized, no graph).
Tensor TransposeLast2(const Tensor& x) {
  NoGradGuard no_grad;
  return Transpose(x, x.dim() - 2, x.dim() - 1);
}

struct MatMulDims {
  int64_t batch, batch_a, batch_b, m, k, n;
};

MatMulDims ResolveDims(const Tensor& a, const Tensor& b) {
  FOCUS_CHECK(a.dim() == 2 || a.dim() == 3)
      << "MatMul lhs rank must be 2 or 3, got " << ShapeToString(a.shape());
  FOCUS_CHECK(b.dim() == 2 || b.dim() == 3)
      << "MatMul rhs rank must be 2 or 3, got " << ShapeToString(b.shape());
  MatMulDims d;
  d.batch_a = a.dim() == 3 ? a.size(0) : 1;
  d.batch_b = b.dim() == 3 ? b.size(0) : 1;
  d.m = a.size(-2);
  d.k = a.size(-1);
  FOCUS_CHECK_EQ(d.k, b.size(-2))
      << "MatMul inner-dim mismatch: " << ShapeToString(a.shape()) << " @ "
      << ShapeToString(b.shape());
  d.n = b.size(-1);
  FOCUS_CHECK(d.batch_a == d.batch_b || d.batch_a == 1 || d.batch_b == 1)
      << "MatMul batch mismatch: " << d.batch_a << " vs " << d.batch_b;
  d.batch = std::max(d.batch_a, d.batch_b);
  return d;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("MatMul", a);
  FOCUS_OP_INPUT_CHECK("MatMul", b);
  const MatMulDims d = ResolveDims(a, b);
  const bool batched_out = (a.dim() == 3 || b.dim() == 3);
  Shape out_shape = batched_out ? Shape{d.batch, d.m, d.n} : Shape{d.m, d.n};
  Tensor out = Tensor::Empty(out_shape);
  {
    FOCUS_KERNEL_SCOPE("kernel/matmul");
    MatMulKernel(a.data(), b.data(), out.data(), d.batch, d.batch_a,
                 d.batch_b, d.m, d.k, d.n);
    // Counted once from the resolved dims, on the launching thread, outside
    // the parallel region: the executed work is 2·batch·m·n·k regardless of
    // which operand (if either) broadcasts its batch dimension.
    FlopCounter::Add(2 * d.batch * d.m * d.n * d.k);
  }

  Tensor ad = a.Detach(), bd = b.Detach();
  return autograd::MakeResult(
      out, "MatMul", {a, b}, [ad, bd](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        // dA = g @ B^T, dB = A^T @ g; batch-broadcast inputs get their
        // batch dimension summed back out.
        Tensor ga = MatMul(g, TransposeLast2(bd));
        Tensor gb = MatMul(TransposeLast2(ad), g);
        if (ga.dim() == 3 && ad.dim() == 2) {
          ga = Sum(ga, 0, /*keepdim=*/false);
        }
        if (gb.dim() == 3 && bd.dim() == 2) {
          gb = Sum(gb, 0, /*keepdim=*/false);
        }
        return {ga, gb};
      });
}

}  // namespace focus
