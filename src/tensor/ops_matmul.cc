// Matrix multiplication with batch broadcasting, plus its backward pass.
//
// The forward kernel is cache-blocked (MC-row tasks) and routed through
// the SIMD layer's matmul_row_block kernel (src/tensor/simd): a 4×8 C
// tile lives in FMA registers for the whole k loop, so C is written
// exactly once per element. Work is split over the batch×row-block grid
// via ParallelFor. For every output element the reduction over k runs
// as one ascending FMA chain regardless of tiling, thread count, or
// backend, so results are bit-identical for any FOCUS_NUM_THREADS and
// FOCUS_SIMD setting.
#include <algorithm>
#include <cstdint>
#include <cstring>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/plan_hooks.h"
#include "tensor/precision.h"
#include "tensor/profile_hooks.h"
#include "tensor/simd/vec.h"

namespace focus {

namespace {

// MC rows of A per task keeps the A panel L2-resident and sizes the
// parallel grid; the 4×8 register micro-tile lives in
// simd::KernelTable::matmul_row_block.
constexpr int64_t kBlockM = 64;  // MC: A/C rows per parallel task

// C(batch,m,n) = A(batch_a,m,k) @ B(batch_b,k,n), batch_a/batch_b in
// {1, batch}. Parallel over the batch×row-block grid; each task owns a
// disjoint slab of C, so no two threads ever touch the same output element.
void MatMulKernel(const float* a, const float* b, float* c, int64_t batch,
                  int64_t batch_a, int64_t batch_b, int64_t m, int64_t k,
                  int64_t n) {
  const int64_t row_blocks = (m + kBlockM - 1) / kBlockM;
  const auto row_block = simd::Kernels().matmul_row_block;
  ParallelFor(0, batch * row_blocks, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t task = t0; task < t1; ++task) {
      const int64_t t = task / row_blocks;
      const int64_t block = task % row_blocks;
      const float* at = a + (batch_a == 1 ? 0 : t) * m * k;
      const float* bt = b + (batch_b == 1 ? 0 : t) * k * n;
      float* ct = c + t * m * n;
      const int64_t i0 = block * kBlockM;
      const int64_t i1 = std::min(m, i0 + kBlockM);
      row_block(at, bt, ct, i0, i1, k, n);
    }
  });
}

// Transposes the last two dims of a 2D/3D tensor (materialized, no graph).
Tensor TransposeLast2(const Tensor& x) {
  NoGradGuard no_grad;
  return Transpose(x, x.dim() - 2, x.dim() - 1);
}

struct MatMulDims {
  int64_t batch, batch_a, batch_b, m, k, n;
};

// MatMulKernel with a bf16-packed B panel: identical task grid and
// per-element f32 FMA chains; only the B loads change (exact bf16->f32
// unpack). A stays f32 — see MatMulBf16 for why the narrowing is
// one-sided.
void MatMulBf16Kernel(const float* a, const uint16_t* b, float* c,
                      int64_t batch, int64_t batch_a, int64_t batch_b,
                      int64_t m, int64_t k, int64_t n) {
  const int64_t row_blocks = (m + kBlockM - 1) / kBlockM;
  const auto row_block = simd::Kernels().matmul_row_block_bf16;
  ParallelFor(0, batch * row_blocks, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t task = t0; task < t1; ++task) {
      const int64_t t = task / row_blocks;
      const int64_t block = task % row_blocks;
      const float* at = a + (batch_a == 1 ? 0 : t) * m * k;
      const uint16_t* bt = b + (batch_b == 1 ? 0 : t) * k * n;
      float* ct = c + t * m * n;
      const int64_t i0 = block * kBlockM;
      const int64_t i1 = std::min(m, i0 + kBlockM);
      row_block(at, bt, ct, i0, i1, k, n);
    }
  });
}

// Rounds `t` into a bf16 payload held in a float-typed byte-capacity
// tensor ((2*numel+3)/4 floats). Under capture the pack is recorded as
// its own step with elem_bytes=2, so the plan compiler gives the packed
// value a byte-sized slab lifetime — and constant-folds the pack away
// entirely when `t` is a parameter (weights pre-pack at compile time).
Tensor PackBf16(const Tensor& t) {
  const int64_t n = t.numel();
  Tensor packed = Tensor::Empty({(n + 1) / 2});
  const auto pack = simd::Kernels().pack_bf16;
  {
    FOCUS_KERNEL_SCOPE("kernel/pack_bf16");
    uint16_t* out = reinterpret_cast<uint16_t*>(packed.data());
    ParallelFor(0, n, plan_hooks::kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  pack(t.data() + i0, out + i0, i1 - i0);
                });
  }
  if (plan_hooks::CaptureActive()) {
    plan_hooks::StepRecord rec;
    rec.name = "PackBf16";
    rec.inputs = {t};
    rec.output = packed;
    rec.out_elem_bytes = 2;
    rec.out_numel = n;
    rec.fn = [n](float* const* bufs) {
      const auto k = simd::Kernels().pack_bf16;
      uint16_t* out = reinterpret_cast<uint16_t*>(bufs[1]);
      ParallelFor(0, n, plan_hooks::kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    k(bufs[0] + i0, out + i0, i1 - i0);
                  });
    };
    plan_hooks::RecordStep(std::move(rec));
  }
  return packed;
}

// bf16 storage path for parameter operands: the stationary B panel (a
// weight — requires_grad marks parameters even on a frozen model)
// rounds to bf16 once, the moving activation A stays f32, and every
// product accumulates in f32 (tensor/bf16.h contract). One-sided on
// purpose: packing an activation costs a full f32 read + bf16 write
// per run before the matmul reads it back, which moves MORE bytes than
// the f32 kernel — whereas a weight pack is constant-folded at plan
// compile time, so replays read half the weight bytes for free.
// Inference-only — the caller guarantees grad mode is off, so no
// backward is wired.
Tensor MatMulBf16(const Tensor& a, const Tensor& b, const MatMulDims& d,
                  const Shape& out_shape) {
  Tensor b16 = PackBf16(b);
  Tensor out = Tensor::Empty(out_shape);
  {
    FOCUS_KERNEL_SCOPE("kernel/matmul_bf16");
    MatMulBf16Kernel(a.data(),
                     reinterpret_cast<const uint16_t*>(b16.data()),
                     out.data(), d.batch, d.batch_a, d.batch_b, d.m, d.k,
                     d.n);
    FlopCounter::Add(2 * d.batch * d.m * d.n * d.k);
  }
  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(plan_hooks::StepKind::kOpaque, "MatMulBf16",
                       {a, b16}, out, [d](float* const* bufs) {
                         MatMulBf16Kernel(
                             bufs[0],
                             reinterpret_cast<const uint16_t*>(bufs[1]),
                             bufs[2], d.batch, d.batch_a, d.batch_b, d.m,
                             d.k, d.n);
                       });
  }
  return autograd::MakeResult(out, "MatMulBf16", {a, b}, nullptr);
}

MatMulDims ResolveDims(const Tensor& a, const Tensor& b) {
  FOCUS_CHECK(a.dim() == 2 || a.dim() == 3)
      << "MatMul lhs rank must be 2 or 3, got " << ShapeToString(a.shape());
  FOCUS_CHECK(b.dim() == 2 || b.dim() == 3)
      << "MatMul rhs rank must be 2 or 3, got " << ShapeToString(b.shape());
  MatMulDims d;
  d.batch_a = a.dim() == 3 ? a.size(0) : 1;
  d.batch_b = b.dim() == 3 ? b.size(0) : 1;
  d.m = a.size(-2);
  d.k = a.size(-1);
  FOCUS_CHECK_EQ(d.k, b.size(-2))
      << "MatMul inner-dim mismatch: " << ShapeToString(a.shape()) << " @ "
      << ShapeToString(b.shape());
  d.n = b.size(-1);
  FOCUS_CHECK(d.batch_a == d.batch_b || d.batch_a == 1 || d.batch_b == 1)
      << "MatMul batch mismatch: " << d.batch_a << " vs " << d.batch_b;
  d.batch = std::max(d.batch_a, d.batch_b);
  return d;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("MatMul", a);
  FOCUS_OP_INPUT_CHECK("MatMul", b);
  const MatMulDims d = ResolveDims(a, b);
  const bool batched_out = (a.dim() == 3 || b.dim() == 3);
  Shape out_shape = batched_out ? Shape{d.batch, d.m, d.n} : Shape{d.m, d.n};
  // Mixed-precision storage path: inference only (training always
  // accumulates AND stores f32), and only when B is a parameter —
  // activations stay f32 (see MatMulBf16). Eager and planned execution
  // route through the identical pack + bf16-matmul kernels, so the
  // planned replay stays bit-identical to the eager bf16 forward.
  if (!GradMode::IsEnabled() &&
      PrecisionMode::Get() != Precision::kF32 && b.requires_grad()) {
    return MatMulBf16(a, b, d, out_shape);
  }
  Tensor out = Tensor::Empty(out_shape);
  {
    FOCUS_KERNEL_SCOPE("kernel/matmul");
    MatMulKernel(a.data(), b.data(), out.data(), d.batch, d.batch_a,
                 d.batch_b, d.m, d.k, d.n);
    // Counted once from the resolved dims, on the launching thread, outside
    // the parallel region: the executed work is 2·batch·m·n·k regardless of
    // which operand (if either) broadcasts its batch dimension.
    FlopCounter::Add(2 * d.batch * d.m * d.n * d.k);
  }
  if (plan_hooks::CaptureActive()) {
    // MatMulKernel re-resolves the row-block kernel from the active
    // table at replay time; the plan guard pins the backend.
    plan_hooks::Record(plan_hooks::StepKind::kOpaque, "MatMul", {a, b},
                       out, [d](float* const* bufs) {
                         MatMulKernel(bufs[0], bufs[1], bufs[2], d.batch,
                                      d.batch_a, d.batch_b, d.m, d.k,
                                      d.n);
                       });
  }

  Tensor ad = a.Detach(), bd = b.Detach();
  return autograd::MakeResult(
      out, "MatMul", {a, b}, [ad, bd](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        // dA = g @ B^T, dB = A^T @ g; batch-broadcast inputs get their
        // batch dimension summed back out.
        Tensor ga = MatMul(g, TransposeLast2(bd));
        Tensor gb = MatMul(TransposeLast2(ad), g);
        if (ga.dim() == 3 && ad.dim() == 2) {
          ga = Sum(ga, 0, /*keepdim=*/false);
        }
        if (gb.dim() == 3 && bd.dim() == 2) {
          gb = Sum(gb, 0, /*keepdim=*/false);
        }
        return {ga, gb};
      });
}

}  // namespace focus
