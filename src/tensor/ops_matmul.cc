// Matrix multiplication with batch broadcasting, plus its backward pass.
#include <cstring>

#include "tensor/autograd.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/profile_hooks.h"

namespace focus {

namespace {

// C(batch,m,n) = A(batch_a,m,k) @ B(batch_b,k,n), batch_a/batch_b in
// {1, batch}. Cache-friendly i-k-j loop with row accumulation.
void MatMulKernel(const float* a, const float* b, float* c, int64_t batch,
                  int64_t batch_a, int64_t batch_b, int64_t m, int64_t k,
                  int64_t n) {
  for (int64_t t = 0; t < batch; ++t) {
    const float* at = a + (batch_a == 1 ? 0 : t) * m * k;
    const float* bt = b + (batch_b == 1 ? 0 : t) * k * n;
    float* ct = c + t * m * n;
    std::memset(ct, 0, static_cast<size_t>(m * n) * sizeof(float));
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = at + i * k;
      float* crow = ct + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = bt + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
  FlopCounter::Add(2 * batch * m * n * k);
}

// Transposes the last two dims of a 2D/3D tensor (materialized, no graph).
Tensor TransposeLast2(const Tensor& x) {
  NoGradGuard no_grad;
  return Transpose(x, x.dim() - 2, x.dim() - 1);
}

struct MatMulDims {
  int64_t batch, batch_a, batch_b, m, k, n;
};

MatMulDims ResolveDims(const Tensor& a, const Tensor& b) {
  FOCUS_CHECK(a.dim() == 2 || a.dim() == 3)
      << "MatMul lhs rank must be 2 or 3, got " << ShapeToString(a.shape());
  FOCUS_CHECK(b.dim() == 2 || b.dim() == 3)
      << "MatMul rhs rank must be 2 or 3, got " << ShapeToString(b.shape());
  MatMulDims d;
  d.batch_a = a.dim() == 3 ? a.size(0) : 1;
  d.batch_b = b.dim() == 3 ? b.size(0) : 1;
  d.m = a.size(-2);
  d.k = a.size(-1);
  FOCUS_CHECK_EQ(d.k, b.size(-2))
      << "MatMul inner-dim mismatch: " << ShapeToString(a.shape()) << " @ "
      << ShapeToString(b.shape());
  d.n = b.size(-1);
  FOCUS_CHECK(d.batch_a == d.batch_b || d.batch_a == 1 || d.batch_b == 1)
      << "MatMul batch mismatch: " << d.batch_a << " vs " << d.batch_b;
  d.batch = std::max(d.batch_a, d.batch_b);
  return d;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const MatMulDims d = ResolveDims(a, b);
  const bool batched_out = (a.dim() == 3 || b.dim() == 3);
  Shape out_shape = batched_out ? Shape{d.batch, d.m, d.n} : Shape{d.m, d.n};
  Tensor out = Tensor::Empty(out_shape);
  {
    FOCUS_KERNEL_SCOPE("kernel/matmul");
    MatMulKernel(a.data(), b.data(), out.data(), d.batch, d.batch_a,
                 d.batch_b, d.m, d.k, d.n);
  }

  Tensor ad = a.Detach(), bd = b.Detach();
  return autograd::MakeResult(
      out, "MatMul", {a, b}, [ad, bd](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        // dA = g @ B^T, dB = A^T @ g; batch-broadcast inputs get their
        // batch dimension summed back out.
        Tensor ga = MatMul(g, TransposeLast2(bd));
        Tensor gb = MatMul(TransposeLast2(ad), g);
        if (ga.dim() == 3 && ad.dim() == 2) {
          ga = Sum(ga, 0, /*keepdim=*/false);
        }
        if (gb.dim() == 3 && bd.dim() == 2) {
          gb = Sum(gb, 0, /*keepdim=*/false);
        }
        return {ga, gb};
      });
}

}  // namespace focus
