// Runtime floating-point operation counter.
//
// Every kernel in the tensor library reports the number of scalar FLOPs it
// executes (a fused multiply-add counts as 2). This measures the actual
// computational workload of a model forward pass — the FLOPs metric of the
// paper's Fig. 6 / Table IV — rather than an analytic estimate, so the
// numbers automatically stay honest as models evolve.
//
// Thread model: every kernel computes its count once, from resolved shapes,
// on the launching thread and *outside* any ParallelFor region, so counts
// are deterministic under concurrency (independent of FOCUS_NUM_THREADS).
// The global counter is atomic and the attribution region is thread-local,
// keeping the pool-enabled build race-free.
#ifndef FOCUS_TENSOR_FLOPS_H_
#define FOCUS_TENSOR_FLOPS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace focus {

struct FlopCounter {
  static int64_t Count();
  static void Reset();
  static void Add(int64_t flops);

  // Per-region attribution (see FlopRegion): (region, flops) pairs in
  // first-use order. Reset() clears the breakdown too.
  static std::vector<std::pair<std::string, int64_t>> Breakdown();
};

namespace internal_flops {
// Swaps the active attribution region and returns the previous one. Used by
// FlopRegion and obs::TraceSpan; not part of the public surface.
const char* SetRegion(const char* name);
const char* CurrentRegion();
}  // namespace internal_flops

// RAII region tag: FLOPs recorded while alive are attributed to `name` in
// FlopCounter::Breakdown(). Regions may nest; the innermost wins. Used to
// split a model's forward cost into embed / branches / fusion.
//
// DEPRECATED: prefer obs::TraceSpan, which feeds the same breakdown and
// additionally records wall-clock, peak-memory, and allocation-count deltas
// per span. FlopRegion remains for old callers; Breakdown() semantics and
// ordering are unchanged.
class FlopRegion {
 public:
  explicit FlopRegion(const char* name);
  ~FlopRegion();
  FlopRegion(const FlopRegion&) = delete;
  FlopRegion& operator=(const FlopRegion&) = delete;

 private:
  const char* previous_;
};

// RAII helper: resets the counter on construction, reads it on Elapsed().
class FlopScope {
 public:
  FlopScope() : start_(FlopCounter::Count()) {}
  int64_t Elapsed() const { return FlopCounter::Count() - start_; }

 private:
  int64_t start_;
};

}  // namespace focus

#endif  // FOCUS_TENSOR_FLOPS_H_
