#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "tensor/allocator.h"
#include "tensor/autograd.h"
#include "tensor/memory.h"
#include "tensor/plan_hooks.h"

namespace focus {

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    FOCUS_CHECK_GE(d, 0) << "negative dimension in shape";
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

namespace {

std::shared_ptr<float[]> AllocateTracked(int64_t numel) {
  const int64_t bytes = numel * static_cast<int64_t>(sizeof(float));
  // MemoryStats tracks *logical* live-tensor bytes (the paper's peak-memory
  // metric) and is deliberately recorded outside the caching allocator:
  // whether a buffer is recycled or fresh never changes these numbers. The
  // custom deleter performs the matching accounting when the last alias
  // dies, then hands the buffer back to the allocator's free lists.
  MemoryStats::RecordAlloc(bytes);
  float* p = Allocator::Get().Allocate(numel);
  return std::shared_ptr<float[]>(p, [bytes, numel](float* q) {
    MemoryStats::RecordFree(bytes);
    // An active plan capture keys recorded values by buffer address;
    // it must forget this one before the allocator hands it to an
    // unrelated tensor.
    if (plan_hooks::CaptureActive()) plan_hooks::NotifyFree(q);
    Allocator::Get().Deallocate(q, numel);
  });
}

bool g_grad_enabled = true;
bool g_inference_mode = false;

}  // namespace

bool GradMode::IsEnabled() { return g_grad_enabled; }
void GradMode::SetEnabled(bool enabled) { g_grad_enabled = enabled; }

bool InferenceMode::IsEnabled() { return g_inference_mode; }
void InferenceMode::SetEnabled(bool enabled) { g_inference_mode = enabled; }

TensorImpl::TensorImpl(Shape shape_in)
    : shape(std::move(shape_in)),
      numel(ShapeNumel(shape)),
      buffer_(AllocateTracked(std::max<int64_t>(numel, 1))) {}

TensorImpl::TensorImpl(Shape shape_in, std::shared_ptr<float[]> buffer)
    : shape(std::move(shape_in)),
      numel(ShapeNumel(shape)),
      buffer_(std::move(buffer)) {
  FOCUS_CHECK(buffer_ != nullptr);
}

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  return Tensor(std::move(impl));
}

Tensor Tensor::Empty(Shape shape) {
  return Tensor(std::make_shared<TensorImpl>(std::move(shape)));
}

Tensor Tensor::Zeros(Shape shape) { return Full(std::move(shape), 0.0f); }
Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Empty(std::move(shape));
  std::fill_n(t.data(), t.numel(), value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, const std::vector<float>& values) {
  Tensor t = Empty(std::move(shape));
  FOCUS_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()))
      << "FromVector size mismatch for shape " << ShapeToString(t.shape());
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Empty({n});
  for (int64_t i = 0; i < n; ++i) t.data()[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t = Empty(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Gaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

const Shape& Tensor::shape() const {
  FOCUS_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::size(int64_t d) const {
  const int64_t nd = dim();
  if (d < 0) d += nd;
  FOCUS_CHECK(d >= 0 && d < nd) << "dim " << d << " out of range for "
                                << ShapeToString(shape());
  return shape()[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const {
  FOCUS_CHECK(defined());
  return impl_->numel;
}

float* Tensor::data() {
  FOCUS_CHECK(defined());
  return impl_->data();
}

const float* Tensor::data() const {
  FOCUS_CHECK(defined());
  return impl_->data();
}

float Tensor::Item() const {
  FOCUS_CHECK_EQ(numel(), 1) << "Item() on non-scalar "
                             << ShapeToString(shape());
  return data()[0];
}

namespace {
int64_t FlattenIndex(const Shape& shape, const std::vector<int64_t>& index) {
  FOCUS_CHECK_EQ(shape.size(), index.size());
  int64_t flat = 0;
  for (size_t d = 0; d < shape.size(); ++d) {
    FOCUS_CHECK(index[d] >= 0 && index[d] < shape[d])
        << "index " << index[d] << " out of range at dim " << d;
    flat = flat * shape[d] + index[d];
  }
  return flat;
}
}  // namespace

float Tensor::At(const std::vector<int64_t>& index) const {
  return data()[FlattenIndex(shape(), index)];
}

void Tensor::Set(const std::vector<int64_t>& index, float value) {
  data()[FlattenIndex(shape(), index)] = value;
}

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + numel());
}

Tensor Tensor::Clone() const {
  Tensor out = Empty(shape());
  std::memcpy(out.data(), data(), numel() * sizeof(float));
  return out;
}

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor& Tensor::SetRequiresGrad(bool requires_grad) {
  FOCUS_CHECK(defined());
  FOCUS_CHECK(!impl_->grad_fn || requires_grad)
      << "cannot clear requires_grad on a non-leaf tensor";
  impl_->requires_grad = requires_grad;
  return *this;
}

Tensor Tensor::Grad() const {
  FOCUS_CHECK(defined());
  return impl_->grad ? Tensor(impl_->grad) : Tensor();
}

void Tensor::ZeroGrad() {
  FOCUS_CHECK(defined());
  impl_->grad.reset();
}

void Tensor::Backward() const { autograd::RunBackward(*this); }

Tensor Tensor::Detach() const {
  FOCUS_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>(impl_->shape, impl_->buffer());
  return Tensor(std::move(impl));
}

const std::shared_ptr<autograd::Node>& Tensor::grad_fn() const {
  FOCUS_CHECK(defined());
  return impl_->grad_fn;
}

}  // namespace focus
