#include "tensor/plan_hooks.h"

#include "utils/check.h"

namespace focus {
namespace plan_hooks {

namespace internal_plan {
std::atomic<CaptureSink*> g_sink{nullptr};
}  // namespace internal_plan

void SetCaptureSink(CaptureSink* sink) {
  if (sink != nullptr) {
    FOCUS_CHECK(internal_plan::g_sink.load(std::memory_order_relaxed) ==
                nullptr)
        << "plan capture already active; captures must not nest";
  }
  internal_plan::g_sink.store(sink, std::memory_order_release);
}

void RecordStep(StepRecord step) {
  CaptureSink* sink = internal_plan::g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) sink->OnStep(std::move(step));
}

void NotifyResult(const char* name, const Tensor& out) {
  CaptureSink* sink = internal_plan::g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) sink->OnResult(name, out);
}

void NotifyUnsupported(const char* what) {
  CaptureSink* sink = internal_plan::g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) sink->OnUnsupported(what);
}

void NotifyFree(const float* ptr) {
  CaptureSink* sink = internal_plan::g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) sink->OnFree(ptr);
}

}  // namespace plan_hooks
}  // namespace focus
