#include "tensor/flops.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace focus {

namespace {
// Kernels compute their FLOP count once, from resolved dims, on the thread
// that launched them — never from inside a ParallelFor body — so in
// practice this counter sees no contention. It is atomic anyway so a stray
// add from a pool thread is merely unattributed, not a data race.
std::atomic<int64_t> g_flops{0};
// Region attribution is thread-local: a pool worker never inherits (or
// clobbers) the launching thread's region tag.
thread_local const char* tl_region = nullptr;

struct RegionEntry {
  const char* name = nullptr;
  int64_t flops = 0;
};
std::mutex g_regions_mu;
// Small flat store: region sets are tiny (a handful per model), and pointer
// identity of string literals makes lookup a pointer compare in the common
// case.
std::vector<RegionEntry>& Regions() {
  static std::vector<RegionEntry>* regions = new std::vector<RegionEntry>();
  return *regions;
}
}  // namespace

int64_t FlopCounter::Count() {
  return g_flops.load(std::memory_order_relaxed);
}

void FlopCounter::Reset() {
  g_flops.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_regions_mu);
  Regions().clear();
}

void FlopCounter::Add(int64_t flops) {
  g_flops.fetch_add(flops, std::memory_order_relaxed);
  if (tl_region != nullptr) {
    std::lock_guard<std::mutex> lock(g_regions_mu);
    for (auto& entry : Regions()) {
      if (entry.name == tl_region ||
          std::strcmp(entry.name, tl_region) == 0) {
        entry.flops += flops;
        return;
      }
    }
    Regions().push_back({tl_region, flops});
  }
}

std::vector<std::pair<std::string, int64_t>> FlopCounter::Breakdown() {
  std::lock_guard<std::mutex> lock(g_regions_mu);
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& entry : Regions()) {
    out.emplace_back(entry.name, entry.flops);
  }
  return out;
}

namespace internal_flops {

const char* SetRegion(const char* name) {
  const char* previous = tl_region;
  tl_region = name;
  return previous;
}

const char* CurrentRegion() { return tl_region; }

}  // namespace internal_flops

FlopRegion::FlopRegion(const char* name)
    : previous_(internal_flops::SetRegion(name)) {}

FlopRegion::~FlopRegion() { internal_flops::SetRegion(previous_); }

}  // namespace focus
