#include "tensor/flops.h"

#include <cstring>

namespace focus {

namespace {
int64_t g_flops = 0;
const char* g_region = nullptr;

struct RegionEntry {
  const char* name;
  int64_t flops;
};
// Small flat store: region sets are tiny (a handful per model), and pointer
// identity of string literals makes lookup a pointer compare in the common
// case.
std::vector<RegionEntry>& Regions() {
  static std::vector<RegionEntry>* regions = new std::vector<RegionEntry>();
  return *regions;
}
}  // namespace

int64_t FlopCounter::Count() { return g_flops; }

void FlopCounter::Reset() {
  g_flops = 0;
  Regions().clear();
}

void FlopCounter::Add(int64_t flops) {
  g_flops += flops;
  if (g_region != nullptr) {
    for (auto& entry : Regions()) {
      if (entry.name == g_region ||
          std::strcmp(entry.name, g_region) == 0) {
        entry.flops += flops;
        return;
      }
    }
    Regions().push_back({g_region, flops});
  }
}

std::vector<std::pair<std::string, int64_t>> FlopCounter::Breakdown() {
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& entry : Regions()) {
    out.emplace_back(entry.name, entry.flops);
  }
  return out;
}

namespace internal_flops {

const char* SetRegion(const char* name) {
  const char* previous = g_region;
  g_region = name;
  return previous;
}

const char* CurrentRegion() { return g_region; }

}  // namespace internal_flops

FlopRegion::FlopRegion(const char* name)
    : previous_(internal_flops::SetRegion(name)) {}

FlopRegion::~FlopRegion() { internal_flops::SetRegion(previous_); }

}  // namespace focus
