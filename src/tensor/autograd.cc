#include "tensor/autograd.h"

#include <unordered_map>
#include <unordered_set>

#include "tensor/ops.h"

namespace focus {
namespace autograd {

Tensor MakeResult(Tensor out, std::string name, std::vector<Tensor> inputs,
                  Node::BackwardFn backward) {
  if (!GradMode::IsEnabled()) return out;
  bool any_requires = false;
  for (const Tensor& in : inputs) {
    if (in.defined() && in.requires_grad()) {
      any_requires = true;
      break;
    }
  }
  if (!any_requires) return out;

  auto node = std::make_shared<Node>(std::move(name), std::move(inputs),
                                     std::move(backward));
  node->set_output(out.impl());
  out.impl()->grad_fn = node;
  out.impl()->requires_grad = true;
  return out;
}

namespace {

// Iterative DFS postorder over the node DAG: inputs appear before the nodes
// consuming them, so iterating the result in reverse propagates gradients
// from the root toward the leaves.
std::vector<Node*> TopologicalOrder(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // Stack frame: node + whether its children were already expanded.
  std::vector<std::pair<Node*, bool>> stack = {{root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      order.push_back(node);
      continue;
    }
    if (!visited.insert(node).second) continue;
    stack.push_back({node, true});
    for (const Tensor& in : node->inputs()) {
      if (in.defined() && in.grad_fn() && !visited.count(in.grad_fn().get())) {
        stack.push_back({in.grad_fn().get(), false});
      }
    }
  }
  return order;
}

void AccumulateInto(Tensor& slot, const Tensor& grad) {
  if (!slot.defined()) {
    slot = grad.Clone();
  } else {
    AddInPlace(slot, grad);
  }
}

}  // namespace

void RunBackward(const Tensor& root) {
  FOCUS_CHECK(root.defined());
  FOCUS_CHECK(root.requires_grad())
      << "Backward() on a tensor that does not require grad";
  FOCUS_CHECK_EQ(root.numel(), 1) << "Backward() requires a scalar loss";

  // Gradients are plain data; recording a second-order graph is unsupported.
  NoGradGuard no_grad;

  // Leaf root: d(root)/d(root) = 1.
  if (!root.grad_fn()) {
    Tensor g = Tensor::Ones(root.shape());
    if (root.impl()->grad) {
      Tensor existing = Tensor::FromImpl(root.impl()->grad);
      AddInPlace(existing, g);
    } else {
      root.impl()->grad = g.impl();
    }
    return;
  }

  std::vector<Node*> order = TopologicalOrder(root.grad_fn().get());

  // Transient gradient accumulators for non-leaf tensors.
  std::unordered_map<TensorImpl*, Tensor> grads;
  grads[root.impl().get()] = Tensor::Ones(root.shape());

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    std::shared_ptr<TensorImpl> out_impl = node->output();
    if (!out_impl) continue;  // Output was never reachable; nothing to do.
    auto grad_it = grads.find(out_impl.get());
    if (grad_it == grads.end()) continue;  // No gradient flowed here.
    Tensor grad_out = grad_it->second;
    grads.erase(grad_it);

    std::vector<Tensor> grad_inputs = node->Backward(grad_out);
    FOCUS_CHECK_EQ(grad_inputs.size(), node->inputs().size())
        << "backward of " << node->name() << " returned wrong arity";

    for (size_t i = 0; i < grad_inputs.size(); ++i) {
      const Tensor& input = node->inputs()[i];
      Tensor& g = grad_inputs[i];
      if (!g.defined()) continue;
      if (!input.defined() || !input.requires_grad()) continue;
      FOCUS_CHECK(g.shape() == input.shape())
          << "backward of " << node->name() << " produced grad "
          << ShapeToString(g.shape()) << " for input "
          << ShapeToString(input.shape());
      if (input.grad_fn()) {
        AccumulateInto(grads[input.impl().get()], g);
      } else {
        // Leaf: accumulate into the persistent grad buffer.
        if (input.impl()->grad) {
          Tensor existing = Tensor::FromImpl(input.impl()->grad);
          AddInPlace(existing, g);
        } else {
          input.impl()->grad = g.Clone().impl();
        }
      }
    }
  }
}

}  // namespace autograd
}  // namespace focus
