#include "tensor/autograd.h"

#include <unordered_map>
#include <unordered_set>

#include "tensor/debug_guard.h"
#include "tensor/ops.h"
#include "tensor/plan_hooks.h"

namespace focus {
namespace autograd {

Tensor MakeResult(Tensor out, std::string name, std::vector<Tensor> inputs,
                  Node::BackwardFn backward) {
  // Central numeric guard: every differentiable op funnels its output
  // through here, so one hook attributes NaN/Inf to the producing op for
  // all of ops_*.cc. Runs before the grad-mode early-outs so inference and
  // backward-internal ops are covered too.
  debug::CheckFiniteOutput(out, name);
  // Plan capture validation: every op output must already be known to
  // the sink (recorded by the op site, or an alias of a known buffer).
  // An unknown output means an uninstrumented op ran; the sink marks
  // the capture failed and the caller stays on the eager path.
  if (plan_hooks::CaptureActive()) {
    plan_hooks::NotifyResult(name.c_str(), out);
  }
  if (!GradMode::IsEnabled()) return out;
  bool any_requires = false;
  for (const Tensor& in : inputs) {
    if (in.defined() && in.requires_grad()) {
      any_requires = true;
      break;
    }
  }
  if (!any_requires) return out;

  // Inference mode promises a tape-free forward; reaching the node
  // constructor under it means GradMode was re-enabled inside an
  // inference scope on a grad-requiring input — a contract violation.
  FOCUS_CHECK(!InferenceMode::IsEnabled())
      << "op '" << name << "' would create a tape node under InferenceMode";
  auto node = std::make_shared<Node>(std::move(name), std::move(inputs),
                                     std::move(backward));
  node->set_output(out.impl());
  out.impl()->grad_fn = node;
  out.impl()->requires_grad = true;
  return out;
}

namespace {

// Iterative DFS postorder over the node DAG: inputs appear before the nodes
// consuming them, so iterating the result in reverse propagates gradients
// from the root toward the leaves.
std::vector<Node*> TopologicalOrder(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // Stack frame: node + whether its children were already expanded.
  std::vector<std::pair<Node*, bool>> stack = {{root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      order.push_back(node);
      continue;
    }
    if (!visited.insert(node).second) continue;
    stack.push_back({node, true});
    for (const Tensor& in : node->inputs()) {
      if (in.defined() && in.grad_fn() && !visited.count(in.grad_fn().get())) {
        stack.push_back({in.grad_fn().get(), false});
      }
    }
  }
  return order;
}

// Materializes a gradient for an accumulator slot. A gradient returned by
// a backward closure is usually a freshly allocated tensor nothing else
// references; the accumulator then adopts the buffer directly — one fewer
// allocation + memcpy per parameter per step. Pass-through gradients
// (e.g. equal-shape Add backward forwards the incoming gradient itself)
// and buffer aliases (Detach/Reshape share the buffer) show up in the use
// counts and fall back to a deep copy. Subsequent accumulation happens in
// place on the (recycled) buffer, guarded by AddInPlace's alias checker.
Tensor CaptureGrad(const Tensor& grad) {
  const bool exclusive = !grad.grad_fn() && !grad.requires_grad() &&
                         grad.impl().use_count() == 1 &&
                         grad.impl()->buffer().use_count() == 1;
  return exclusive ? grad : grad.Clone();
}

void AccumulateInto(Tensor& slot, const Tensor& grad) {
  if (!slot.defined()) {
    slot = CaptureGrad(grad);
  } else {
    AddInPlace(slot, grad);
  }
}

}  // namespace

void RunBackward(const Tensor& root) {
  FOCUS_CHECK(root.defined());
  FOCUS_CHECK(root.requires_grad())
      << "Backward() on a tensor that does not require grad";
  FOCUS_CHECK_EQ(root.numel(), 1) << "Backward() requires a scalar loss";

  // Gradients are plain data; recording a second-order graph is unsupported.
  NoGradGuard no_grad;

  // Leaf root: d(root)/d(root) = 1.
  if (!root.grad_fn()) {
    Tensor g = Tensor::Ones(root.shape());
    if (root.impl()->grad) {
      Tensor existing = Tensor::FromImpl(root.impl()->grad);
      AddInPlace(existing, g);
    } else {
      root.impl()->grad = g.impl();
    }
    return;
  }

  std::vector<Node*> order = TopologicalOrder(root.grad_fn().get());

  // Transient gradient accumulators for non-leaf tensors.
  std::unordered_map<TensorImpl*, Tensor> grads;
  grads[root.impl().get()] = Tensor::Ones(root.shape());

  const bool audit = debug::ChecksEnabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    std::shared_ptr<TensorImpl> out_impl = node->output();
    if (!out_impl) {
      // A reachable node always has a live output (its consumers hold it as
      // an input); an expired output means gradient is about to be dropped.
      FOCUS_DEBUG_CHECK(false)
          << "autograd audit: node '" << node->name()
          << "' lost its output buffer before backward reached it "
             "(dangling gradient)";
      continue;  // Output was never reachable; nothing to do.
    }
    auto grad_it = grads.find(out_impl.get());
    if (grad_it == grads.end()) continue;  // No gradient flowed here.
    Tensor grad_out = grad_it->second;
    grads.erase(grad_it);

    FOCUS_DEBUG_CHECK_EQ(node->backward_runs(), 0)
        << "autograd audit: double backward through node '" << node->name()
        << "' — its intermediate gradients were freed by the previous "
           "backward pass";
    node->mark_backward_run();

    std::vector<Tensor> grad_inputs = node->Backward(grad_out);
    FOCUS_CHECK_EQ(grad_inputs.size(), node->inputs().size())
        << "backward of " << node->name() << " returned wrong arity";

    for (size_t i = 0; i < grad_inputs.size(); ++i) {
      const Tensor& input = node->inputs()[i];
      Tensor& g = grad_inputs[i];
      if (!g.defined()) continue;
      if (audit) {
        // Backward closures that write gradients directly (softmax,
        // layernorm, conv) bypass MakeResult's guard; cover them here.
        debug::CheckFiniteOutput(
            g, node->name() + ".backward[" + std::to_string(i) + "]");
      }
      if (!input.defined() || !input.requires_grad()) continue;
      FOCUS_CHECK(g.shape() == input.shape())
          << "backward of " << node->name() << " produced grad "
          << ShapeToString(g.shape()) << " for input "
          << ShapeToString(input.shape());
      if (input.grad_fn()) {
        AccumulateInto(grads[input.impl().get()], g);
      } else {
        // Leaf: accumulate into the persistent grad buffer.
        if (input.impl()->grad) {
          Tensor existing = Tensor::FromImpl(input.impl()->grad);
          AddInPlace(existing, g);
        } else {
          input.impl()->grad = CaptureGrad(g).impl();
        }
      }
    }
  }

  // Every accumulated gradient must have been consumed by its node; a
  // leftover entry means gradient flowed into a tensor whose node never
  // executed — a dangling gradient buffer.
  FOCUS_DEBUG_CHECK(grads.empty())
      << "autograd audit: " << grads.size()
      << " gradient buffer(s) left dangling after backward";
}

}  // namespace autograd
}  // namespace focus
