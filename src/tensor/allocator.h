// Caching tensor-buffer allocator: size-class buffer recycling for the
// train / inference hot path.
//
// Every tensor buffer (tensor.cc AllocateTracked) flows through this
// allocator. Freed buffers are parked on per-size-class free lists instead
// of going back to the system allocator, so the next tensor of the same
// class is a lock-cheap pop — no malloc metadata churn, and for large
// buffers (past glibc's mmap threshold ceiling) no mmap/munmap round trip
// and no page-fault storm on first touch. This is where PyTorch-style
// frameworks get their step-loop throughput, and the same applies here:
// a training step allocates the same activation/gradient shapes every
// iteration.
//
// Size classes:
//   * small (<= 4 MiB): next power of two, minimum 64 floats. Exact-class
//     match on reuse.
//   * large (> 4 MiB): rounded up to a 1 MiB quantum (PyTorch rounds its
//     large pool to 2 MiB for the same RSS-vs-hit-rate tradeoff). Reuse
//     also requires an exact capacity match, so a recycled buffer's real
//     capacity always equals SizeClassFloats(numel) — nothing ever hands
//     out a buffer smaller than its recorded class.
//
// Threading: free lists are sharded; each thread is pinned round-robin to
// one of kShards shards so concurrent alloc/free (and frees issued from a
// different thread than the matching alloc) never serialize on one mutex.
// An allocation that misses its own shard scavenges the others before
// falling through to the system allocator. Statistics are relaxed atomics.
//
// Accounting contract (the paper's efficiency metric depends on this):
// MemoryStats keeps reporting *logical* live-tensor bytes — RecordAlloc /
// RecordFree fire per tensor buffer exactly as before, so CurrentBytes /
// PeakBytes are identical with the cache on, off, or bypassed. The
// allocator separately tracks *raw* bytes actually obtained from the
// system (live + cached) plus hit/miss/trim counters; see AllocatorStats.
//
// Configuration: FOCUS_ALLOC_CACHE_MB caps the cached (idle) bytes;
// 0 bypasses recycling entirely — every Allocate is a fresh system
// allocation and every Deallocate releases immediately, the seed behaviour.
// Default 256 MB. Tests and servers can override programmatically with
// SetCapBytes() and return idle memory with Trim().
//
// Debug poisoning: recycled memory is uninitialized garbage, not the
// zero pages a fresh mmap would hand out — and a recycled buffer looks
// *live* to AddressSanitizer, which can no longer flag stale reads into
// it. When the FOCUS_DEBUG_CHECK tier is active, recycled buffers are
// therefore filled with quiet NaNs so any kernel that reads its output
// before writing it trips the central finite-output guard.
#ifndef FOCUS_TENSOR_ALLOCATOR_H_
#define FOCUS_TENSOR_ALLOCATOR_H_

#include <cstdint>

namespace focus {

// Snapshot of allocator counters. Monotonic unless noted.
struct AllocatorStats {
  int64_t hits = 0;            // allocations served from a free list
  int64_t misses = 0;          // allocations that went to the system
  int64_t frees_cached = 0;    // deallocations parked on a free list
  int64_t frees_released = 0;  // deallocations returned to the system
  int64_t trims = 0;           // Trim() calls that released something
  int64_t trimmed_bytes = 0;   // total bytes released by Trim()
  int64_t cached_bytes = 0;    // bytes parked on free lists now (gauge)
  int64_t raw_bytes = 0;       // live + cached system bytes now (gauge)
  int64_t arena_leases = 0;        // ArenaLease checkouts ever made
  int64_t arena_leased_bytes = 0;  // bytes checked out to leases now (gauge)
};

class Allocator {
 public:
  // Process-wide allocator (leaked singleton, like ThreadPool / Tracer, so
  // buffers freed from static destructors stay safe). First use reads
  // FOCUS_ALLOC_CACHE_MB.
  static Allocator& Get();

  // Returns a buffer of at least `numel` floats (its real capacity is
  // SizeClassFloats(numel)), 64-byte aligned — one cache line, two AVX2
  // registers — so SIMD kernels never split a load across lines. Contents
  // are uninitialized garbage — callers must write before reading,
  // exactly as with Tensor::Empty.
  float* Allocate(int64_t numel);

  // Returns the buffer from Allocate(numel) — the same `numel` the caller
  // allocated with. Parks it on a free list, or releases it to the system
  // when the cache is full or bypassed.
  void Deallocate(float* ptr, int64_t numel);

  // Releases every cached buffer back to the system. Returns the number of
  // bytes released. Thread-safe; concurrent alloc/free simply miss.
  int64_t Trim();

  AllocatorStats Stats() const;

  // Cached-bytes cap. 0 = bypass (no recycling at all, seed behaviour).
  // Setting the cap to 0 trims first so no cached buffer outlives bypass.
  int64_t cap_bytes() const;
  void SetCapBytes(int64_t bytes);

  // Class capacity (in floats) a request of `numel` floats is rounded to.
  // Exposed for tests and for symmetric accounting in Deallocate.
  static int64_t SizeClassFloats(int64_t numel);

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

 private:
  Allocator() = default;
};

// RAII lease on one allocator buffer held across many uses — the backing
// store for an execution plan's memory slab (src/plan). The slab is
// allocated once at plan-compile time and sub-divided by the plan's
// lifetime solver; steady-state plan execution therefore makes zero
// Allocate/Deallocate calls. Only src/plan derives pointers into the
// leased range (enforced by scripts/focus_lint.py).
class SlabLease {
 public:
  SlabLease() = default;
  explicit SlabLease(int64_t numel)
      : data_(numel > 0 ? Allocator::Get().Allocate(numel) : nullptr),
        numel_(numel) {}
  ~SlabLease() { reset(); }

  SlabLease(SlabLease&& other) noexcept
      : data_(other.data_), numel_(other.numel_) {
    other.data_ = nullptr;
    other.numel_ = 0;
  }
  SlabLease& operator=(SlabLease&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      numel_ = other.numel_;
      other.data_ = nullptr;
      other.numel_ = 0;
    }
    return *this;
  }
  SlabLease(const SlabLease&) = delete;
  SlabLease& operator=(const SlabLease&) = delete;

  void reset() {
    if (data_ != nullptr) Allocator::Get().Deallocate(data_, numel_);
    data_ = nullptr;
    numel_ = 0;
  }

  float* data() const { return data_; }
  int64_t numel() const { return numel_; }

 private:
  float* data_ = nullptr;
  int64_t numel_ = 0;
};

// RAII lease on one allocator slab that a serving worker checks out per
// in-flight batch and returns wholesale (src/serve). Between checkout and
// return the owner carves the slab with a bump pointer: batch staging
// buffers and per-request scratch are AllocFloats() calls that never touch
// the allocator, so a warmed-up request path makes zero global-allocator
// calls — the checkout itself is a free-list hit and the return parks the
// slab for the next batch. Checkout/return are thread-safe (the allocator
// is); the bump pointer belongs to exactly one batch at a time, so
// AllocFloats()/Rewind() are deliberately unsynchronized. Lease traffic is
// surfaced through AllocatorStats (arena_leases / arena_leased_bytes).
class ArenaLease {
 public:
  ArenaLease() = default;
  // Checks a slab of at least `numel` floats out of the allocator.
  explicit ArenaLease(int64_t numel);
  ~ArenaLease() { reset(); }

  ArenaLease(ArenaLease&& other) noexcept
      : data_(other.data_),
        capacity_(other.capacity_),
        numel_(other.numel_),
        used_(other.used_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
    other.numel_ = 0;
    other.used_ = 0;
  }
  ArenaLease& operator=(ArenaLease&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      capacity_ = other.capacity_;
      numel_ = other.numel_;
      used_ = other.used_;
      other.data_ = nullptr;
      other.capacity_ = 0;
      other.numel_ = 0;
      other.used_ = 0;
    }
    return *this;
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  // Bump-pointer sub-allocation: returns a 64-byte-aligned block of
  // `n` floats inside the leased slab. CHECK-fails on exhaustion — the
  // lease holder sizes the slab for its batch up front.
  float* AllocFloats(int64_t n);

  // Forgets every sub-allocation; the slab stays checked out. The next
  // AllocFloats() hands out the same addresses again.
  void Rewind() { used_ = 0; }

  // Returns the slab to the allocator wholesale.
  void reset();

  float* data() const { return data_; }
  // Real slab capacity in floats (the size class `numel` rounded into).
  int64_t capacity() const { return capacity_; }
  int64_t used() const { return used_; }

 private:
  float* data_ = nullptr;
  int64_t capacity_ = 0;  // class capacity backing the lease
  int64_t numel_ = 0;     // original request, for symmetric Deallocate
  int64_t used_ = 0;      // bump offset in floats
};

}  // namespace focus

#endif  // FOCUS_TENSOR_ALLOCATOR_H_
