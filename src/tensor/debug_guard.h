// Runtime invariant guards for tensor / autograd kernels (the
// FOCUS_DEBUG_CHECK tier; see utils/check.h for how the tier is enabled).
//
// Three guard families, all no-ops (one predictable branch) while
// debug::ChecksEnabled() is false:
//
//  * Numeric guards: after every differentiable op, scan the output for
//    NaN/Inf and abort naming the producing op and the offending flat index.
//    Hooked centrally in autograd::MakeResult, so every kernel in
//    ops_*.cc is covered without per-op code; RunBackward additionally
//    guards each gradient a backward closure produces.
//  * Aliasing guards: in-place ops must not read a buffer that overlaps
//    their destination (the update would observe partially-written data).
//  * Graph-audit guards (see autograd.cc): double-backward through an
//    already-consumed tape and gradients left dangling after a backward
//    pass (a node whose output buffer died while its gradient was pending).
#ifndef FOCUS_TENSOR_DEBUG_GUARD_H_
#define FOCUS_TENSOR_DEBUG_GUARD_H_

#include <string>

#include "tensor/tensor.h"
#include "utils/check.h"

namespace focus {
namespace debug {

// Aborts with the op name, value, and flat index if `out` contains a
// non-finite value. `context` distinguishes forward outputs from backward
// gradients (e.g. "MatMul" vs "MatMul.backward[0]").
void CheckFiniteOutput(const Tensor& out, const char* context);
inline void CheckFiniteOutput(const Tensor& out, const std::string& context) {
  if (ChecksEnabled()) CheckFiniteOutput(out, context.c_str());
}

// Aborts if `src` overlaps `dst`'s buffer: an in-place kernel reading an
// overlapping source observes its own partial writes. `op` names the
// in-place entry point for the report.
void CheckInPlaceNoAlias(const Tensor& dst, const Tensor& src, const char* op);

}  // namespace debug
}  // namespace focus

#endif  // FOCUS_TENSOR_DEBUG_GUARD_H_
