// Elementwise binary / scalar / unary kernels and the loss compositions.
//
// All kernels are embarrassingly parallel over the flat output index and
// run through ParallelFor in contiguous chunks, so results are bit-identical
// for any FOCUS_NUM_THREADS. FLOP counts are added once, outside the
// parallel regions.
#include <cmath>
#include <cstring>
#include <functional>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/debug_guard.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"

namespace focus {

namespace {

using internal_ops::BroadcastReadStrides;
using internal_ops::ReduceGradToShape;

// Minimum elements per shard: below this, pool dispatch costs more than the
// arithmetic it spreads.
constexpr int64_t kElemGrain = 16384;

// Applies `f` elementwise with NumPy broadcasting. The fast path covers the
// overwhelmingly common equal-shape case.
template <typename F>
Tensor BinaryKernel(const Tensor& a, const Tensor& b, F f) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Empty(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) po[i] = f(pa[i], pb[i]);
    });
    FlopCounter::Add(n);
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Empty(out_shape);
  const auto sa = BroadcastReadStrides(a.shape(), out_shape);
  const auto sb = BroadcastReadStrides(b.shape(), out_shape);
  const auto so = internal_ops::Strides(out_shape);
  const int64_t n = out.numel();
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, n, kElemGrain / 4, [&](int64_t f0, int64_t f1) {
    for (int64_t flat = f0; flat < f1; ++flat) {
      int64_t rem = flat, oa = 0, ob = 0;
      for (int64_t d = 0; d < rank; ++d) {
        const int64_t idx = rem / so[d];
        rem -= idx * so[d];
        oa += idx * sa[d];
        ob += idx * sb[d];
      }
      po[flat] = f(pa[oa], pb[ob]);
    }
  });
  FlopCounter::Add(n);
  return out;
}

// Unary op scaffold: forward applies `f`; backward multiplies the incoming
// gradient by df(x, y) where y = f(x).
Tensor UnaryOp(const Tensor& x, const char* name,
               const std::function<float(float)>& f,
               const std::function<float(float, float)>& df) {
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const int64_t n = x.numel();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = f(px[i]);
  });
  FlopCounter::Add(2 * n);

  Tensor x_saved = x.Detach();
  Tensor y_saved = out.Detach();
  return autograd::MakeResult(
      out, name, {x},
      [x_saved, y_saved, df](const Tensor& g) -> std::vector<Tensor> {
        Tensor gin = Tensor::Empty(x_saved.shape());
        const float* pg = g.data();
        const float* px = x_saved.data();
        const float* py = y_saved.data();
        float* pi = gin.data();
        const int64_t n = gin.numel();
        ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            pi[i] = pg[i] * df(px[i], py[i]);
          }
        });
        FlopCounter::Add(2 * n);
        return {gin};
      });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Add", a);
  FOCUS_OP_INPUT_CHECK("Add", b);
  Tensor out = BinaryKernel(a, b, [](float x, float y) { return x + y; });
  Shape sa = a.shape(), sb = b.shape();
  return autograd::MakeResult(
      out, "Add", {a, b}, [sa, sb](const Tensor& g) -> std::vector<Tensor> {
        return {ReduceGradToShape(g, sa), ReduceGradToShape(g, sb)};
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Sub", a);
  FOCUS_OP_INPUT_CHECK("Sub", b);
  Tensor out = BinaryKernel(a, b, [](float x, float y) { return x - y; });
  Shape sa = a.shape(), sb = b.shape();
  return autograd::MakeResult(
      out, "Sub", {a, b}, [sa, sb](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {ReduceGradToShape(g, sa), ReduceGradToShape(Neg(g), sb)};
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Mul", a);
  FOCUS_OP_INPUT_CHECK("Mul", b);
  Tensor out = BinaryKernel(a, b, [](float x, float y) { return x * y; });
  Tensor ad = a.Detach(), bd = b.Detach();
  return autograd::MakeResult(
      out, "Mul", {a, b}, [ad, bd](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {ReduceGradToShape(Mul(g, bd), ad.shape()),
                ReduceGradToShape(Mul(g, ad), bd.shape())};
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Div", a);
  FOCUS_OP_INPUT_CHECK("Div", b);
  Tensor out = BinaryKernel(a, b, [](float x, float y) { return x / y; });
  Tensor ad = a.Detach(), bd = b.Detach();
  return autograd::MakeResult(
      out, "Div", {a, b}, [ad, bd](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        Tensor ga = ReduceGradToShape(Div(g, bd), ad.shape());
        Tensor gb = ReduceGradToShape(
            Neg(Div(Mul(g, ad), Mul(bd, bd))), bd.shape());
        return {ga, gb};
      });
}

Tensor AddScalar(const Tensor& x, float s) {
  FOCUS_OP_INPUT_CHECK("AddScalar", x);
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, x.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = px[i] + s;
  });
  FlopCounter::Add(x.numel());
  return autograd::MakeResult(
      out, "AddScalar", {x},
      [](const Tensor& g) -> std::vector<Tensor> { return {g.Clone()}; });
}

Tensor MulScalar(const Tensor& x, float s) {
  FOCUS_OP_INPUT_CHECK("MulScalar", x);
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, x.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = px[i] * s;
  });
  FlopCounter::Add(x.numel());
  return autograd::MakeResult(
      out, "MulScalar", {x}, [s](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {MulScalar(g, s)};
      });
}

Tensor PowScalar(const Tensor& x, float p) {
  FOCUS_OP_INPUT_CHECK("PowScalar", x);
  return UnaryOp(
      x, "PowScalar", [p](float v) { return std::pow(v, p); },
      [p](float v, float) { return p * std::pow(v, p - 1.0f); });
}

Tensor Neg(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Neg", x);
  return UnaryOp(
      x, "Neg", [](float v) { return -v; },
      [](float, float) { return -1.0f; });
}

Tensor Exp(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Exp", x);
  return UnaryOp(
      x, "Exp", [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Log", x);
  return UnaryOp(
      x, "Log", [](float v) { return std::log(v); },
      [](float v, float) { return 1.0f / v; });
}

Tensor Sqrt(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Sqrt", x);
  return UnaryOp(
      x, "Sqrt", [](float v) { return std::sqrt(v); },
      [](float, float y) { return 0.5f / y; });
}

Tensor Abs(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Abs", x);
  return UnaryOp(
      x, "Abs", [](float v) { return std::fabs(v); },
      [](float v, float) { return v > 0 ? 1.0f : (v < 0 ? -1.0f : 0.0f); });
}

Tensor Relu(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Relu", x);
  return UnaryOp(
      x, "Relu", [](float v) { return v > 0 ? v : 0.0f; },
      [](float v, float) { return v > 0 ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Gelu", x);
  // tanh approximation: 0.5 x (1 + tanh(c (x + 0.044715 x^3))),
  // c = sqrt(2/pi).
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  return UnaryOp(
      x, "Gelu",
      [](float v) {
        const float u = kC * (v + kA * v * v * v);
        return 0.5f * v * (1.0f + std::tanh(u));
      },
      [](float v, float) {
        const float u = kC * (v + kA * v * v * v);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * kA * v * v);
        return 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
      });
}

Tensor Sigmoid(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Sigmoid", x);
  return UnaryOp(
      x, "Sigmoid",
      [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Tanh", x);
  return UnaryOp(
      x, "Tanh", [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  FOCUS_OP_INPUT_CHECK("MseLoss", pred);
  FOCUS_OP_INPUT_CHECK("MseLoss", target);
  FOCUS_CHECK(pred.shape() == target.shape())
      << "MseLoss shape mismatch: " << ShapeToString(pred.shape()) << " vs "
      << ShapeToString(target.shape());
  Tensor diff = Sub(pred, target);
  return MeanAll(Mul(diff, diff));
}

Tensor L1Loss(const Tensor& pred, const Tensor& target) {
  FOCUS_OP_INPUT_CHECK("L1Loss", pred);
  FOCUS_OP_INPUT_CHECK("L1Loss", target);
  FOCUS_CHECK(pred.shape() == target.shape())
      << "L1Loss shape mismatch";
  return MeanAll(Abs(Sub(pred, target)));
}

void AddInPlace(Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("AddInPlace", a);
  FOCUS_OP_INPUT_CHECK("AddInPlace", b);
  FOCUS_CHECK(a.shape() == b.shape())
      << "AddInPlace shape mismatch: " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
  debug::CheckInPlaceNoAlias(a, b, "AddInPlace");
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) pa[i] += pb[i];
  });
  FlopCounter::Add(n);
  debug::CheckFiniteOutput(a, "AddInPlace");
}

}  // namespace focus
