// Elementwise binary / scalar / unary kernels and the loss compositions.
//
// All kernels are embarrassingly parallel over the flat output index and
// run through ParallelFor in contiguous chunks, so results are bit-identical
// for any FOCUS_NUM_THREADS. FLOP counts are added once, outside the
// parallel regions.
#include <cmath>
#include <cstring>
#include <functional>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/debug_guard.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/plan_hooks.h"
#include "tensor/simd/vec.h"

namespace focus {

namespace {

using internal_ops::BroadcastReadStrides;
using internal_ops::ReduceGradToShape;

// SIMD kernel-table entry types (see src/tensor/simd/vec.h).
using BinK = void (*)(const float*, const float*, float*, int64_t);
using UnK = void (*)(const float*, float*, int64_t);
// Backward kernels are referenced as table members so the backend is
// re-resolved when the backward pass actually runs.
using BwdKMember = BinK simd::KernelTable::*;

// Minimum elements per shard: below this, pool dispatch costs more than the
// arithmetic it spreads. Shared with the plan compiler (plan_hooks.h) so
// fused sweeps shard exactly like the eager ops they replace.
using plan_hooks::kElemGrain;
using plan_hooks::StepKind;

// Applies `f` elementwise with NumPy broadcasting. The equal-shape fast
// path — the overwhelmingly common case — runs through the SIMD kernel
// `kern`; lane grouping carries no cross-element data flow, so chunk
// boundaries cannot change results. The broadcast path stays scalar
// (`f`): its gather indexing defeats contiguous vector loads.
template <typename F>
Tensor BinaryKernel(const Tensor& a, const Tensor& b, const char* name,
                    StepKind kind, BinK kern, F f) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Empty(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
      kern(pa + i0, pb + i0, po + i0, i1 - i0);
    });
    FlopCounter::Add(n);
    if (plan_hooks::CaptureActive()) {
      plan_hooks::Record(
          kind, name, {a, b}, out, [kern, n](float* const* bufs) {
            const float* ra = bufs[0];
            const float* rb = bufs[1];
            float* ro = bufs[2];
            ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
              kern(ra + i0, rb + i0, ro + i0, i1 - i0);
            });
          });
    }
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Empty(out_shape);
  const auto sa = BroadcastReadStrides(a.shape(), out_shape);
  const auto sb = BroadcastReadStrides(b.shape(), out_shape);
  const auto so = internal_ops::Strides(out_shape);
  const int64_t n = out.numel();
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, n, kElemGrain / 4, [&](int64_t f0, int64_t f1) {
    for (int64_t flat = f0; flat < f1; ++flat) {
      int64_t rem = flat, oa = 0, ob = 0;
      for (int64_t d = 0; d < rank; ++d) {
        const int64_t idx = rem / so[d];
        rem -= idx * so[d];
        oa += idx * sa[d];
        ob += idx * sb[d];
      }
      po[flat] = f(pa[oa], pb[ob]);
    }
  });
  FlopCounter::Add(n);
  if (plan_hooks::CaptureActive()) {
    // Broadcast gather path: no fusion rule applies (kOpaque). The eager
    // loop above pays a rank-long div walk per element; the replay pays
    // it once per output row and sweeps the innermost dimension as a
    // contiguous run. Every element is still one application of the same
    // correctly-rounded op (the SIMD `kern` lanes compute the identical
    // IEEE add/sub/mul/div as scalar `f`), so the restructuring cannot
    // change a single output bit.
    //
    // Innermost read strides are always 0 (that dim broadcasts) or 1
    // (natural stride of a trailing dim), which yields four row shapes:
    // vec-vec, vec-scalar, scalar-vec, and scalar-scalar.
    const int64_t m = rank > 0 ? out_shape.back() : 1;
    const int64_t ta = rank > 0 ? sa[static_cast<size_t>(rank - 1)] : 1;
    const int64_t tb = rank > 0 ? sb[static_cast<size_t>(rank - 1)] : 1;
    plan_hooks::Record(
        StepKind::kOpaque, name, {a, b}, out,
        [sa, sb, so, n, rank, m, ta, tb, kern, f](float* const* bufs) {
          const float* ra = bufs[0];
          const float* rb = bufs[1];
          float* ro = bufs[2];
          const int64_t rows = n / m;
          ParallelFor(
              0, rows, plan_hooks::RowGrain(m), [&](int64_t r0, int64_t r1) {
                for (int64_t row = r0; row < r1; ++row) {
                  int64_t rem = row * m, oa = 0, ob = 0;
                  for (int64_t d = 0; d + 1 < rank; ++d) {
                    const int64_t idx = rem / so[d];
                    rem -= idx * so[d];
                    oa += idx * sa[d];
                    ob += idx * sb[d];
                  }
                  const float* pa = ra + oa;
                  const float* pb = rb + ob;
                  float* o = ro + row * m;
                  if (ta == 1 && tb == 1) {
                    kern(pa, pb, o, m);
                  } else if (ta == 1) {
                    const float s = *pb;
                    for (int64_t j = 0; j < m; ++j) o[j] = f(pa[j], s);
                  } else if (tb == 1) {
                    const float s = *pa;
                    for (int64_t j = 0; j < m; ++j) o[j] = f(s, pb[j]);
                  } else {
                    const float v = f(*pa, *pb);
                    for (int64_t j = 0; j < m; ++j) o[j] = v;
                  }
                }
              });
        });
  }
  return out;
}

// Unary op scaffold: forward applies `f`; backward multiplies the incoming
// gradient by df(x, y) where y = f(x).
Tensor UnaryOp(const Tensor& x, const char* name,
               const std::function<float(float)>& f,
               const std::function<float(float, float)>& df) {
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const int64_t n = x.numel();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = f(px[i]);
  });
  FlopCounter::Add(2 * n);
  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        StepKind::kOpaque, name, {x}, out, [f, n](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) ro[i] = f(rx[i]);
          });
        });
  }

  Tensor x_saved = x.Detach();
  Tensor y_saved = out.Detach();
  return autograd::MakeResult(
      out, name, {x},
      [x_saved, y_saved, df](const Tensor& g) -> std::vector<Tensor> {
        Tensor gin = Tensor::Empty(x_saved.shape());
        const float* pg = g.data();
        const float* px = x_saved.data();
        const float* py = y_saved.data();
        float* pi = gin.data();
        const int64_t n = gin.numel();
        ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            pi[i] = pg[i] * df(px[i], py[i]);
          }
        });
        FlopCounter::Add(2 * n);
        return {gin};
      });
}

// SIMD-routed unary op: forward through a resolved table kernel,
// backward through a table *member* (re-resolved at backward time).
// The backward kernel receives the saved tensor — the input x or the
// output y, whichever `save_input` picks — plus the incoming gradient.
Tensor RoutedUnary(const Tensor& x, const char* name, StepKind kind,
                   UnK fwd, BwdKMember bwd, bool save_input) {
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const int64_t n = x.numel();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    fwd(px + i0, po + i0, i1 - i0);
  });
  FlopCounter::Add(2 * n);
  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        kind, name, {x}, out, [fwd, n](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
            fwd(rx + i0, ro + i0, i1 - i0);
          });
        });
  }

  Tensor saved = save_input ? x.Detach() : out.Detach();
  return autograd::MakeResult(
      out, name, {x},
      [saved, bwd](const Tensor& g) -> std::vector<Tensor> {
        Tensor gin = Tensor::Empty(saved.shape());
        const float* ps = saved.data();
        const float* pg = g.data();
        float* pi = gin.data();
        const int64_t n = gin.numel();
        const BinK k = simd::Kernels().*bwd;
        ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
          k(ps + i0, pg + i0, pi + i0, i1 - i0);
        });
        FlopCounter::Add(2 * n);
        return {gin};
      });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Add", a);
  FOCUS_OP_INPUT_CHECK("Add", b);
  Tensor out = BinaryKernel(a, b, "Add", StepKind::kAdd,
                            simd::Kernels().add,
                            [](float x, float y) { return x + y; });
  Shape sa = a.shape(), sb = b.shape();
  return autograd::MakeResult(
      out, "Add", {a, b}, [sa, sb](const Tensor& g) -> std::vector<Tensor> {
        return {ReduceGradToShape(g, sa), ReduceGradToShape(g, sb)};
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Sub", a);
  FOCUS_OP_INPUT_CHECK("Sub", b);
  Tensor out = BinaryKernel(a, b, "Sub", StepKind::kOpaque,
                            simd::Kernels().sub,
                            [](float x, float y) { return x - y; });
  Shape sa = a.shape(), sb = b.shape();
  return autograd::MakeResult(
      out, "Sub", {a, b}, [sa, sb](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {ReduceGradToShape(g, sa), ReduceGradToShape(Neg(g), sb)};
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Mul", a);
  FOCUS_OP_INPUT_CHECK("Mul", b);
  Tensor out = BinaryKernel(a, b, "Mul", StepKind::kOpaque,
                            simd::Kernels().mul,
                            [](float x, float y) { return x * y; });
  Tensor ad = a.Detach(), bd = b.Detach();
  return autograd::MakeResult(
      out, "Mul", {a, b}, [ad, bd](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {ReduceGradToShape(Mul(g, bd), ad.shape()),
                ReduceGradToShape(Mul(g, ad), bd.shape())};
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("Div", a);
  FOCUS_OP_INPUT_CHECK("Div", b);
  Tensor out = BinaryKernel(a, b, "Div", StepKind::kOpaque,
                            simd::Kernels().div,
                            [](float x, float y) { return x / y; });
  Tensor ad = a.Detach(), bd = b.Detach();
  return autograd::MakeResult(
      out, "Div", {a, b}, [ad, bd](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        Tensor ga = ReduceGradToShape(Div(g, bd), ad.shape());
        Tensor gb = ReduceGradToShape(
            Neg(Div(Mul(g, ad), Mul(bd, bd))), bd.shape());
        return {ga, gb};
      });
}

Tensor AddScalar(const Tensor& x, float s) {
  FOCUS_OP_INPUT_CHECK("AddScalar", x);
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const auto kern = simd::Kernels().add_scalar;
  const int64_t n = x.numel();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    kern(px + i0, s, po + i0, i1 - i0);
  });
  FlopCounter::Add(n);
  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        StepKind::kAddScalar, "AddScalar", {x}, out,
        [kern, s, n](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
            kern(rx + i0, s, ro + i0, i1 - i0);
          });
        },
        s);
  }
  return autograd::MakeResult(
      out, "AddScalar", {x},
      [](const Tensor& g) -> std::vector<Tensor> { return {g.Clone()}; });
}

Tensor MulScalar(const Tensor& x, float s) {
  FOCUS_OP_INPUT_CHECK("MulScalar", x);
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const auto kern = simd::Kernels().mul_scalar;
  const int64_t n = x.numel();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    kern(px + i0, s, po + i0, i1 - i0);
  });
  FlopCounter::Add(n);
  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        StepKind::kMulScalar, "MulScalar", {x}, out,
        [kern, s, n](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
            kern(rx + i0, s, ro + i0, i1 - i0);
          });
        },
        s);
  }
  return autograd::MakeResult(
      out, "MulScalar", {x}, [s](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {MulScalar(g, s)};
      });
}

Tensor PowScalar(const Tensor& x, float p) {
  FOCUS_OP_INPUT_CHECK("PowScalar", x);
  return UnaryOp(
      x, "PowScalar", [p](float v) { return std::pow(v, p); },
      [p](float v, float) { return p * std::pow(v, p - 1.0f); });
}

Tensor Neg(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Neg", x);
  return UnaryOp(
      x, "Neg", [](float v) { return -v; },
      [](float, float) { return -1.0f; });
}

Tensor Exp(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Exp", x);
  // d/dx exp = exp(x) = y, so the backward is just y * g: the plain
  // elementwise-multiply table kernel.
  return RoutedUnary(x, "Exp", StepKind::kOpaque, simd::Kernels().exp_fwd,
                     &simd::KernelTable::mul, /*save_input=*/false);
}

Tensor Log(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Log", x);
  return UnaryOp(
      x, "Log", [](float v) { return std::log(v); },
      [](float v, float) { return 1.0f / v; });
}

Tensor Sqrt(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Sqrt", x);
  return RoutedUnary(x, "Sqrt", StepKind::kSqrt, simd::Kernels().sqrt_fwd,
                     &simd::KernelTable::sqrt_bwd, /*save_input=*/false);
}

Tensor Erf(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Erf", x);
  return RoutedUnary(x, "Erf", StepKind::kOpaque, simd::Kernels().erf_fwd,
                     &simd::KernelTable::erf_bwd, /*save_input=*/true);
}

Tensor Abs(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Abs", x);
  return UnaryOp(
      x, "Abs", [](float v) { return std::fabs(v); },
      [](float v, float) { return v > 0 ? 1.0f : (v < 0 ? -1.0f : 0.0f); });
}

Tensor Relu(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Relu", x);
  return RoutedUnary(x, "Relu", StepKind::kOpaque, simd::Kernels().relu_fwd,
                     &simd::KernelTable::relu_bwd, /*save_input=*/true);
}

Tensor Gelu(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Gelu", x);
  // tanh approximation: 0.5 x (1 + tanh(c (x + 0.044715 x^3))),
  // c = sqrt(2/pi); the polynomial tanh lives in the SIMD layer.
  return RoutedUnary(x, "Gelu", StepKind::kGelu, simd::Kernels().gelu_fwd,
                     &simd::KernelTable::gelu_bwd, /*save_input=*/true);
}

Tensor Sigmoid(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Sigmoid", x);
  return RoutedUnary(x, "Sigmoid", StepKind::kSigmoid,
                     simd::Kernels().sigmoid_fwd,
                     &simd::KernelTable::sigmoid_bwd,
                     /*save_input=*/false);
}

Tensor Tanh(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("Tanh", x);
  return RoutedUnary(x, "Tanh", StepKind::kOpaque, simd::Kernels().tanh_fwd,
                     &simd::KernelTable::tanh_bwd, /*save_input=*/false);
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  FOCUS_OP_INPUT_CHECK("MseLoss", pred);
  FOCUS_OP_INPUT_CHECK("MseLoss", target);
  FOCUS_CHECK(pred.shape() == target.shape())
      << "MseLoss shape mismatch: " << ShapeToString(pred.shape()) << " vs "
      << ShapeToString(target.shape());
  Tensor diff = Sub(pred, target);
  return MeanAll(Mul(diff, diff));
}

Tensor L1Loss(const Tensor& pred, const Tensor& target) {
  FOCUS_OP_INPUT_CHECK("L1Loss", pred);
  FOCUS_OP_INPUT_CHECK("L1Loss", target);
  FOCUS_CHECK(pred.shape() == target.shape())
      << "L1Loss shape mismatch";
  return MeanAll(Abs(Sub(pred, target)));
}

void AddInPlace(Tensor& a, const Tensor& b) {
  FOCUS_OP_INPUT_CHECK("AddInPlace", a);
  FOCUS_OP_INPUT_CHECK("AddInPlace", b);
  FOCUS_CHECK(a.shape() == b.shape())
      << "AddInPlace shape mismatch: " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
  debug::CheckInPlaceNoAlias(a, b, "AddInPlace");
  // In-place mutation breaks the plan IR's single-assignment model.
  if (plan_hooks::CaptureActive()) plan_hooks::NotifyUnsupported("AddInPlace");
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  const auto kern = simd::Kernels().add_inplace;
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    kern(pa + i0, pb + i0, i1 - i0);
  });
  FlopCounter::Add(n);
  debug::CheckFiniteOutput(a, "AddInPlace");
}

}  // namespace focus
