// Kernel-level profiling hooks.
//
// The tensor kernels (matmul / softmax / layer-norm / conv) can emit
// per-invocation profile scopes without depending on the observability
// layer: they call through a pair of process-wide function pointers that
// src/obs installs when tracing is enabled. When no hooks are installed the
// cost is a single pointer load and branch per kernel call; defining the
// build without FOCUS_OBS_KERNELS compiles even that out.
#ifndef FOCUS_TENSOR_PROFILE_HOOKS_H_
#define FOCUS_TENSOR_PROFILE_HOOKS_H_

namespace focus {

struct KernelProfileHooks {
  // Called at kernel entry with a static-lifetime name ("kernel/matmul").
  void (*begin)(const char* name) = nullptr;
  // Called at kernel exit; strictly LIFO with respect to begin().
  void (*end)() = nullptr;
};

// Installs (or, with default-constructed hooks, clears) the process-wide
// kernel hooks. Not thread-safe against in-flight kernels; install before
// the instrumented workload runs.
void SetKernelProfileHooks(KernelProfileHooks hooks);

namespace internal_profile {
extern KernelProfileHooks g_hooks;
}  // namespace internal_profile

// RAII scope a kernel places around its compute loop. begin/end only fire
// while hooks are installed; `began_` guards against hooks being cleared
// between entry and exit.
class KernelProfileScope {
 public:
  explicit KernelProfileScope(const char* name) {
    if (internal_profile::g_hooks.begin != nullptr) {
      internal_profile::g_hooks.begin(name);
      began_ = true;
    }
  }
  ~KernelProfileScope() {
    if (began_ && internal_profile::g_hooks.end != nullptr) {
      internal_profile::g_hooks.end();
    }
  }
  KernelProfileScope(const KernelProfileScope&) = delete;
  KernelProfileScope& operator=(const KernelProfileScope&) = delete;

 private:
  bool began_ = false;
};

}  // namespace focus

#if defined(FOCUS_OBS_KERNELS)
#define FOCUS_KERNEL_SCOPE(name) \
  ::focus::KernelProfileScope focus_kernel_profile_scope_(name)
#else
#define FOCUS_KERNEL_SCOPE(name) static_cast<void>(0)
#endif

#endif  // FOCUS_TENSOR_PROFILE_HOOKS_H_
