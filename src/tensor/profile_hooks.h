// Kernel-level profiling hooks.
//
// The tensor kernels (matmul / softmax / layer-norm / conv) can emit
// per-invocation profile scopes without depending on the observability
// layer: they call through a process-wide hook table that src/obs installs
// when tracing is enabled. When no hooks are installed the cost is a single
// atomic pointer load and branch per kernel call; defining the build
// without FOCUS_OBS_KERNELS compiles even that out.
//
// Hook install/clear is safe against in-flight kernels: the table is
// published through an atomic pointer and a KernelProfileScope pins the
// table it observed at entry, so its end() always pairs with the begin()
// that fired — even if the hooks are swapped or cleared mid-kernel
// (FOCUS_NUM_THREADS > 1 runs kernels while e.g. a test thread toggles
// tracing). Superseded tables are intentionally leaked; installs are rare.
#ifndef FOCUS_TENSOR_PROFILE_HOOKS_H_
#define FOCUS_TENSOR_PROFILE_HOOKS_H_

#include <atomic>

namespace focus {

struct KernelProfileHooks {
  // Called at kernel entry with a static-lifetime name ("kernel/matmul").
  void (*begin)(const char* name) = nullptr;
  // Called at kernel exit; strictly LIFO with respect to begin().
  void (*end)() = nullptr;
};

// Installs (or, with default-constructed hooks, clears) the process-wide
// kernel hooks. May be called at any time, including while kernels run.
void SetKernelProfileHooks(KernelProfileHooks hooks);

namespace internal_profile {
// nullptr when no hooks are installed; otherwise an immutable, leaked table.
extern std::atomic<const KernelProfileHooks*> g_hooks;
}  // namespace internal_profile

// RAII scope a kernel places around its compute loop. The constructor
// snapshots the installed table so begin/end fire as a matched pair.
class KernelProfileScope {
 public:
  explicit KernelProfileScope(const char* name) {
    const KernelProfileHooks* hooks =
        internal_profile::g_hooks.load(std::memory_order_acquire);
    if (hooks != nullptr && hooks->begin != nullptr) {
      hooks->begin(name);
      hooks_ = hooks;
    }
  }
  ~KernelProfileScope() {
    if (hooks_ != nullptr && hooks_->end != nullptr) hooks_->end();
  }
  KernelProfileScope(const KernelProfileScope&) = delete;
  KernelProfileScope& operator=(const KernelProfileScope&) = delete;

 private:
  const KernelProfileHooks* hooks_ = nullptr;
};

}  // namespace focus

#if defined(FOCUS_OBS_KERNELS)
#define FOCUS_KERNEL_SCOPE(name) \
  ::focus::KernelProfileScope focus_kernel_profile_scope_(name)
#else
#define FOCUS_KERNEL_SCOPE(name) static_cast<void>(0)
#endif

#endif  // FOCUS_TENSOR_PROFILE_HOOKS_H_
