#include "tensor/debug_guard.h"

#include <cmath>
#include <cstdint>

#include "utils/check.h"

namespace focus {
namespace debug {

void CheckFiniteOutput(const Tensor& out, const char* context) {
  if (!ChecksEnabled() || !out.defined()) return;
  const float* p = out.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      FOCUS_FATAL("debug check: op '"
                  << context << "' produced non-finite value " << p[i]
                  << " at output index " << i << " (shape "
                  << ShapeToString(out.shape()) << ")");
    }
  }
}

void CheckInPlaceNoAlias(const Tensor& dst, const Tensor& src,
                         const char* op) {
  if (!ChecksEnabled() || !dst.defined() || !src.defined()) return;
  const float* d0 = dst.data();
  const float* d1 = d0 + dst.numel();
  const float* s0 = src.data();
  const float* s1 = s0 + src.numel();
  FOCUS_DEBUG_CHECK(s1 <= d0 || d1 <= s0)
      << "debug check: in-place op '" << op
      << "' source aliases its destination buffer (dst "
      << ShapeToString(dst.shape()) << ", src " << ShapeToString(src.shape())
      << ")";
}

}  // namespace debug
}  // namespace focus
