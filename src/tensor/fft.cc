#include "tensor/fft.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "utils/check.h"

namespace focus {
namespace fft {

int64_t NextPow2(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<float>>& data, bool inverse) {
  const size_t n = data.size();
  FOCUS_CHECK(n > 0 && (n & (n - 1)) == 0) << "FFT size must be a power of 2";

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) *
        (inverse ? 1.0 : -1.0);
    const std::complex<float> wlen(static_cast<float>(std::cos(angle)),
                                   static_cast<float>(std::sin(angle)));
    for (size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<float> u = data[i + j];
        const std::complex<float> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n);
    for (auto& v : data) v *= scale;
  }
}

std::vector<float> Autocorrelation(const float* x, int64_t n) {
  FOCUS_CHECK_GT(n, 0);
  // Zero-pad to 2n (linear, not circular correlation), rounded to pow2.
  const int64_t m = NextPow2(2 * n);
  std::vector<std::complex<float>> freq(static_cast<size_t>(m),
                                        {0.0f, 0.0f});
  for (int64_t i = 0; i < n; ++i) freq[static_cast<size_t>(i)] = {x[i], 0.0f};
  Fft(freq, /*inverse=*/false);
  for (auto& v : freq) v *= std::conj(v);
  Fft(freq, /*inverse=*/true);

  std::vector<float> result(static_cast<size_t>(n));
  const float r0 = freq[0].real();
  if (std::fabs(r0) < 1e-12f) return result;  // zero series
  const float inv = 1.0f / r0;
  for (int64_t lag = 0; lag < n; ++lag) {
    result[static_cast<size_t>(lag)] =
        freq[static_cast<size_t>(lag)].real() * inv;
  }
  return result;
}

std::vector<int64_t> TopPeriods(const float* x, int64_t n, int64_t k,
                                int64_t min_period) {
  FOCUS_CHECK_GE(min_period, 1);
  const std::vector<float> ac = Autocorrelation(x, n);
  std::vector<int64_t> lags;
  for (int64_t lag = min_period; lag <= n / 2; ++lag) lags.push_back(lag);
  std::sort(lags.begin(), lags.end(), [&](int64_t a, int64_t b) {
    return ac[static_cast<size_t>(a)] > ac[static_cast<size_t>(b)];
  });
  if (static_cast<int64_t>(lags.size()) > k) {
    lags.resize(static_cast<size_t>(k));
  }
  return lags;
}

}  // namespace fft
}  // namespace focus
