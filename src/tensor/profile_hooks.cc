#include "tensor/profile_hooks.h"

namespace focus {

namespace internal_profile {
KernelProfileHooks g_hooks;
}  // namespace internal_profile

void SetKernelProfileHooks(KernelProfileHooks hooks) {
  internal_profile::g_hooks = hooks;
}

}  // namespace focus
