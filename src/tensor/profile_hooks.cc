#include "tensor/profile_hooks.h"

#include <memory>
#include <mutex>
#include <vector>

namespace focus {

namespace internal_profile {
std::atomic<const KernelProfileHooks*> g_hooks{nullptr};
}  // namespace internal_profile

void SetKernelProfileHooks(KernelProfileHooks hooks) {
  // Superseded tables are retired into a process-lifetime registry instead
  // of freed: an in-flight KernelProfileScope may still hold a pointer to
  // the table it pinned. Installs happen a handful of times per process
  // (tracer enable/disable), so retention is bounded and tiny — and unlike
  // a bare leak the blocks stay reachable, so LeakSanitizer stays quiet.
  static std::mutex* mu = new std::mutex();
  static auto* retired =
      new std::vector<std::unique_ptr<const KernelProfileHooks>>();
  const KernelProfileHooks* table = nullptr;
  if (hooks.begin != nullptr || hooks.end != nullptr) {
    std::lock_guard<std::mutex> lock(*mu);
    retired->push_back(
        std::make_unique<const KernelProfileHooks>(hooks));
    table = retired->back().get();
  }
  internal_profile::g_hooks.store(table, std::memory_order_release);
}

}  // namespace focus
