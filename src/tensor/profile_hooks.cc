#include "tensor/profile_hooks.h"

namespace focus {

namespace internal_profile {
std::atomic<const KernelProfileHooks*> g_hooks{nullptr};
}  // namespace internal_profile

void SetKernelProfileHooks(KernelProfileHooks hooks) {
  const KernelProfileHooks* table = nullptr;
  if (hooks.begin != nullptr || hooks.end != nullptr) {
    // Leaked on purpose: an in-flight KernelProfileScope may still hold a
    // pointer to a superseded table. Installs happen a handful of times per
    // process (tracer enable/disable), so the leak is bounded and tiny.
    table = new KernelProfileHooks(hooks);
  }
  internal_profile::g_hooks.store(table, std::memory_order_release);
}

}  // namespace focus
