// Internal helpers shared by the op kernels. Not part of the public API.
#ifndef FOCUS_TENSOR_OPS_COMMON_H_
#define FOCUS_TENSOR_OPS_COMMON_H_

#include <vector>

#include "tensor/tensor.h"

// Opens every public op entry point in ops_*.cc (enforced by
// scripts/focus_lint.py): CHECKs the operand is defined before any shape or
// data access, so a misuse fails with the op's name instead of a CHECK deep
// inside Tensor accessors.
#define FOCUS_OP_INPUT_CHECK(op_name, t) \
  FOCUS_CHECK((t).defined()) << op_name << ": undefined input tensor"

namespace focus {
namespace internal_ops {

// Row-major strides in elements.
std::vector<int64_t> Strides(const Shape& shape);

// Effective strides for reading `in` as if it had shape `out`: broadcast
// dimensions get stride 0. `in` must be right-aligned broadcast-compatible
// with `out`.
std::vector<int64_t> BroadcastReadStrides(const Shape& in, const Shape& out);

// Sums `g` (whose shape broadcasts FROM `target`) down to `target`'s shape.
// Used by backward passes of broadcasting binary ops.
Tensor ReduceGradToShape(const Tensor& g, const Shape& target);

// Normalizes a possibly-negative axis.
int64_t NormalizeDim(int64_t dim, int64_t rank);

}  // namespace internal_ops
}  // namespace focus

#endif  // FOCUS_TENSOR_OPS_COMMON_H_
