#include "tensor/precision.h"

#include <cstdio>
#include <string>

#include "utils/env.h"

namespace focus {
namespace {

Precision ParsePrecisionEnv() {
  const std::string raw = GetEnvOr("FOCUS_PRECISION", "f32");
  if (raw == "f32") return Precision::kF32;
  if (raw == "bf16") return Precision::kBf16;
  if (raw == "int8proto") return Precision::kInt8Proto;
  std::fprintf(stderr,
               "focus: FOCUS_PRECISION='%s' not in {f32,bf16,int8proto}; "
               "using f32\n",
               raw.c_str());
  return Precision::kF32;
}

thread_local Precision g_precision = DefaultPrecision();

}  // namespace

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kF32:
      return "f32";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8Proto:
      return "int8proto";
  }
  return "?";
}

Precision DefaultPrecision() {
  static const Precision parsed = ParsePrecisionEnv();
  return parsed;
}

Precision PrecisionMode::Get() { return g_precision; }

void PrecisionMode::Set(Precision p) { g_precision = p; }

}  // namespace focus
