#include "tensor/ops_common.h"

#include "tensor/ops.h"

namespace focus {

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    FOCUS_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << ShapeToString(a) << " vs "
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

namespace internal_ops {

std::vector<int64_t> Strides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t acc = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

std::vector<int64_t> BroadcastReadStrides(const Shape& in, const Shape& out) {
  const std::vector<int64_t> in_strides = Strides(in);
  std::vector<int64_t> strides(out.size(), 0);
  const size_t offset = out.size() - in.size();
  for (size_t i = 0; i < in.size(); ++i) {
    const int64_t din = in[i];
    const int64_t dout = out[offset + i];
    FOCUS_CHECK(din == dout || din == 1)
        << "cannot broadcast " << ShapeToString(in) << " to "
        << ShapeToString(out);
    strides[offset + i] = (din == 1 && dout != 1) ? 0 : in_strides[i];
  }
  return strides;
}

Tensor ReduceGradToShape(const Tensor& g, const Shape& target) {
  NoGradGuard no_grad;
  if (g.shape() == target) return g;
  Tensor reduced = g;
  // Collapse extra leading dims.
  while (reduced.dim() > static_cast<int64_t>(target.size())) {
    reduced = Sum(reduced, 0, /*keepdim=*/false);
  }
  // Sum dims that were broadcast from size 1.
  for (int64_t d = 0; d < reduced.dim(); ++d) {
    if (target[static_cast<size_t>(d)] == 1 && reduced.size(d) != 1) {
      reduced = Sum(reduced, d, /*keepdim=*/true);
    }
  }
  FOCUS_CHECK(reduced.shape() == target)
      << "grad reduction failed: " << ShapeToString(g.shape()) << " -> "
      << ShapeToString(target);
  return reduced;
}

int64_t NormalizeDim(int64_t dim, int64_t rank) {
  if (dim < 0) dim += rank;
  FOCUS_CHECK(dim >= 0 && dim < rank)
      << "dim " << dim << " out of range for rank " << rank;
  return dim;
}

}  // namespace internal_ops
}  // namespace focus
