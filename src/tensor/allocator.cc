#include "tensor/allocator.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "utils/check.h"
#include "utils/env.h"

namespace focus {

namespace {

// Small classes: powers of two from 64 floats (256 B) to 1 Mi floats
// (4 MiB). Larger requests round up to a 1 MiB quantum.
constexpr int kMinSmallLog2 = 6;
constexpr int kMaxSmallLog2 = 20;
constexpr int kNumSmallClasses = kMaxSmallLog2 - kMinSmallLog2 + 1;
constexpr int64_t kSmallMaxFloats = int64_t{1} << kMaxSmallLog2;
constexpr int64_t kLargeQuantumFloats = int64_t{1} << 18;  // 1 MiB

constexpr int64_t kDefaultCapMb = 256;

// Every buffer is cache-line *and* vector-register aligned: 64 bytes
// covers both the x86 cache line and two 32-byte AVX2 lanes, so the SIMD
// layer's unaligned loads never straddle a line on the fast path. All
// frees must pass the same alignment back to operator delete[].
constexpr std::align_val_t kBufferAlign{64};

float* AlignedNewFloats(int64_t cfloats) {
  return static_cast<float*>(::operator new[](
      static_cast<size_t>(cfloats) * sizeof(float), kBufferAlign));
}

void AlignedDeleteFloats(float* ptr) {
  ::operator delete[](static_cast<void*>(ptr), kBufferAlign);
}

// One free-list shard. Threads are pinned round-robin to shards so the
// thread pool never serializes on a single mutex; a miss scavenges the
// other shards before touching the system allocator.
struct Shard {
  std::mutex mu;
  // small[i] holds buffers of exactly 1 << (kMinSmallLog2 + i) floats.
  std::vector<float*> small[kNumSmallClasses];
  // Large buffers keyed by exact capacity (a multiple of the quantum).
  std::vector<std::pair<int64_t, std::vector<float*>>> large;
};

constexpr int kShards = 8;
Shard g_shards[kShards];

// Relaxed atomics: counters are telemetry; the cap check tolerates
// transient over/undershoot of one buffer.
std::atomic<int64_t> g_cap_bytes{-1};  // -1 = env not read yet
std::atomic<int64_t> g_cached_bytes{0};
std::atomic<int64_t> g_raw_bytes{0};
std::atomic<int64_t> g_hits{0};
std::atomic<int64_t> g_misses{0};
std::atomic<int64_t> g_frees_cached{0};
std::atomic<int64_t> g_frees_released{0};
std::atomic<int64_t> g_trims{0};
std::atomic<int64_t> g_trimmed_bytes{0};
std::atomic<int64_t> g_arena_leases{0};
std::atomic<int64_t> g_arena_leased_bytes{0};

int OwnShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kShards);
  return static_cast<int>(idx);
}

// Pops a buffer of exactly `cfloats` capacity from one shard, or nullptr.
float* PopFromShard(Shard& shard, int64_t cfloats) {
  std::lock_guard<std::mutex> lock(shard.mu);
  if (cfloats <= kSmallMaxFloats) {
    int cls = 0;
    while ((int64_t{1} << (kMinSmallLog2 + cls)) < cfloats) ++cls;
    std::vector<float*>& list = shard.small[cls];
    if (list.empty()) return nullptr;
    float* p = list.back();
    list.pop_back();
    return p;
  }
  for (auto& entry : shard.large) {
    if (entry.first == cfloats && !entry.second.empty()) {
      float* p = entry.second.back();
      entry.second.pop_back();
      return p;
    }
  }
  return nullptr;
}

void PushToShard(Shard& shard, float* ptr, int64_t cfloats) {
  std::lock_guard<std::mutex> lock(shard.mu);
  if (cfloats <= kSmallMaxFloats) {
    int cls = 0;
    while ((int64_t{1} << (kMinSmallLog2 + cls)) < cfloats) ++cls;
    shard.small[cls].push_back(ptr);
    return;
  }
  for (auto& entry : shard.large) {
    if (entry.first == cfloats) {
      entry.second.push_back(ptr);
      return;
    }
  }
  shard.large.emplace_back(cfloats, std::vector<float*>{ptr});
}

int64_t CapBytesOnce() {
  int64_t cap = g_cap_bytes.load(std::memory_order_relaxed);
  if (cap >= 0) return cap;
  // First use reads FOCUS_ALLOC_CACHE_MB via the hardened env helpers.
  // A benign race re-reads the same value.
  cap = GetEnvIntInRangeOr("FOCUS_ALLOC_CACHE_MB", kDefaultCapMb, 0,
                           int64_t{1} << 20) *
        (int64_t{1} << 20);
  g_cap_bytes.store(cap, std::memory_order_relaxed);
  return cap;
}

}  // namespace

Allocator& Allocator::Get() {
  // NOLINTNEXTLINE — leaked singleton, same lifetime story as ThreadPool.
  static Allocator* allocator = new Allocator();
  return *allocator;
}

int64_t Allocator::SizeClassFloats(int64_t numel) {
  if (numel < 1) numel = 1;
  if (numel <= kSmallMaxFloats) {
    int64_t c = int64_t{1} << kMinSmallLog2;
    while (c < numel) c <<= 1;
    return c;
  }
  return (numel + kLargeQuantumFloats - 1) / kLargeQuantumFloats *
         kLargeQuantumFloats;
}

float* Allocator::Allocate(int64_t numel) {
  const int64_t cfloats = SizeClassFloats(numel);
  const int64_t cbytes = cfloats * static_cast<int64_t>(sizeof(float));
  if (CapBytesOnce() > 0) {
    const int own = OwnShard();
    float* p = PopFromShard(g_shards[own], cfloats);
    for (int s = 0; p == nullptr && s < kShards; ++s) {
      if (s != own) p = PopFromShard(g_shards[s], cfloats);
    }
    if (p != nullptr) {
      g_cached_bytes.fetch_sub(cbytes, std::memory_order_relaxed);
      g_hits.fetch_add(1, std::memory_order_relaxed);
      // Recycled memory is garbage, and ASan considers it live. Under the
      // debug-check tier, poison it so a kernel that reads its output
      // before writing trips the central finite-output guard.
      if (debug::ChecksEnabled()) {
        std::fill_n(p, cfloats, std::numeric_limits<float>::quiet_NaN());
      }
      return p;
    }
  }
  g_misses.fetch_add(1, std::memory_order_relaxed);
  g_raw_bytes.fetch_add(cbytes, std::memory_order_relaxed);
  // The one place tensor float buffers come from the system allocator.
  return AlignedNewFloats(cfloats);
}

void Allocator::Deallocate(float* ptr, int64_t numel) {
  if (ptr == nullptr) return;
  const int64_t cfloats = SizeClassFloats(numel);
  const int64_t cbytes = cfloats * static_cast<int64_t>(sizeof(float));
  const int64_t cap = CapBytesOnce();
  if (cap > 0) {
    // Optimistically reserve cache space; back out if over the cap.
    const int64_t prev =
        g_cached_bytes.fetch_add(cbytes, std::memory_order_relaxed);
    if (prev + cbytes <= cap) {
      PushToShard(g_shards[OwnShard()], ptr, cfloats);
      g_frees_cached.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    g_cached_bytes.fetch_sub(cbytes, std::memory_order_relaxed);
  }
  g_frees_released.fetch_add(1, std::memory_order_relaxed);
  g_raw_bytes.fetch_sub(cbytes, std::memory_order_relaxed);
  AlignedDeleteFloats(ptr);
}

int64_t Allocator::Trim() {
  int64_t released = 0;
  for (int s = 0; s < kShards; ++s) {
    Shard& shard = g_shards[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (int cls = 0; cls < kNumSmallClasses; ++cls) {
      const int64_t cbytes = (int64_t{1} << (kMinSmallLog2 + cls)) *
                             static_cast<int64_t>(sizeof(float));
      for (float* p : shard.small[cls]) {
        AlignedDeleteFloats(p);
        released += cbytes;
      }
      shard.small[cls].clear();
    }
    for (auto& entry : shard.large) {
      const int64_t cbytes =
          entry.first * static_cast<int64_t>(sizeof(float));
      for (float* p : entry.second) {
        AlignedDeleteFloats(p);
        released += cbytes;
      }
    }
    shard.large.clear();
  }
  if (released > 0) {
    g_cached_bytes.fetch_sub(released, std::memory_order_relaxed);
    g_raw_bytes.fetch_sub(released, std::memory_order_relaxed);
    g_trims.fetch_add(1, std::memory_order_relaxed);
    g_trimmed_bytes.fetch_add(released, std::memory_order_relaxed);
  }
  return released;
}

AllocatorStats Allocator::Stats() const {
  AllocatorStats stats;
  stats.hits = g_hits.load(std::memory_order_relaxed);
  stats.misses = g_misses.load(std::memory_order_relaxed);
  stats.frees_cached = g_frees_cached.load(std::memory_order_relaxed);
  stats.frees_released = g_frees_released.load(std::memory_order_relaxed);
  stats.trims = g_trims.load(std::memory_order_relaxed);
  stats.trimmed_bytes = g_trimmed_bytes.load(std::memory_order_relaxed);
  stats.cached_bytes = g_cached_bytes.load(std::memory_order_relaxed);
  stats.raw_bytes = g_raw_bytes.load(std::memory_order_relaxed);
  stats.arena_leases = g_arena_leases.load(std::memory_order_relaxed);
  stats.arena_leased_bytes =
      g_arena_leased_bytes.load(std::memory_order_relaxed);
  return stats;
}

int64_t Allocator::cap_bytes() const { return CapBytesOnce(); }

void Allocator::SetCapBytes(int64_t bytes) {
  FOCUS_CHECK_GE(bytes, 0) << "allocator cap must be >= 0";
  g_cap_bytes.store(bytes, std::memory_order_relaxed);
  // Bypass (or a lowered cap) must not strand cached buffers.
  const int64_t cached = g_cached_bytes.load(std::memory_order_relaxed);
  if (cached > bytes) Trim();
}

ArenaLease::ArenaLease(int64_t numel) {
  FOCUS_CHECK_GT(numel, 0) << "arena lease must hold at least one float";
  data_ = Allocator::Get().Allocate(numel);
  capacity_ = Allocator::SizeClassFloats(numel);
  numel_ = numel;
  g_arena_leases.fetch_add(1, std::memory_order_relaxed);
  g_arena_leased_bytes.fetch_add(
      capacity_ * static_cast<int64_t>(sizeof(float)),
      std::memory_order_relaxed);
}

float* ArenaLease::AllocFloats(int64_t n) {
  FOCUS_CHECK(data_ != nullptr) << "AllocFloats on an empty lease";
  FOCUS_CHECK_GT(n, 0);
  // Round every block to 16 floats (64 bytes) so successive blocks keep
  // the slab's cache-line / AVX2 alignment.
  const int64_t rounded = (n + 15) / 16 * 16;
  FOCUS_CHECK_LE(used_ + rounded, capacity_)
      << "arena lease exhausted (capacity " << capacity_ << " floats)";
  float* p = data_ + used_;
  used_ += rounded;
  return p;
}

void ArenaLease::reset() {
  if (data_ != nullptr) {
    g_arena_leased_bytes.fetch_sub(
        capacity_ * static_cast<int64_t>(sizeof(float)),
        std::memory_order_relaxed);
    Allocator::Get().Deallocate(data_, numel_);
  }
  data_ = nullptr;
  capacity_ = 0;
  numel_ = 0;
  used_ = 0;
}

}  // namespace focus
