// bf16 (brain float 16) storage type: the top 16 bits of an IEEE-754
// binary32, used as a STORAGE-ONLY dtype for mixed-precision inference.
//
// Contract (DESIGN.md Sec. 13): bf16 buffers hold weights/activations at
// rest; every arithmetic op unpacks to float32 and accumulates in
// float32. Autograd never sees bf16 — training stays full precision.
//
// Conversions are pure integer bit manipulation, shared verbatim by the
// scalar and AVX2 SIMD backends (the AVX2 pack kernel evaluates exactly
// the integer sequence below on 8 lanes), so packed bytes are
// bit-identical across backends and thread counts by construction:
//
//   pack:   round-to-nearest-even on bit 16 — bits + 0x7FFF + lsb(bit16),
//           then take the high half. NaN is special-cased to a quiet NaN
//           that keeps the payload's top bits (the RNE add could carry a
//           signaling NaN into infinity). +-Inf survives the RNE add
//           unchanged (mantissa bits are zero), subnormals flush through
//           the same rounding as any other value.
//   unpack: high half << 16 — exact, every bf16 is a representable f32.
#ifndef FOCUS_TENSOR_BF16_H_
#define FOCUS_TENSOR_BF16_H_

#include <cstdint>
#include <cstring>

namespace focus {

// Number of bf16 payload bytes for n elements (plan slab sizing).
inline constexpr int64_t Bf16Bytes(int64_t n) { return n * 2; }

inline uint16_t Bf16FromF32(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint32_t exp = bits & 0x7F800000u;
  const uint32_t mant = bits & 0x007FFFFFu;
  if (exp == 0x7F800000u && mant != 0) {
    // NaN: truncate the payload but force a mantissa bit so the result
    // stays NaN (and is quiet) instead of rounding up into infinity.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  const uint32_t rounded = bits + 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(rounded >> 16);
}

inline float F32FromBf16(uint16_t h) {
  const uint32_t bits = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace focus

#endif  // FOCUS_TENSOR_BF16_H_
