// Direct (non-im2col) 1D / 2D convolution kernels with fused backward.
// Used by the graph / TCN / inception baselines (MTGNN, Graph WaveNet,
// TimesNet, LightCTS). Sizes in this project are small, so simple loops
// with good inner-stride behaviour are sufficient.
//
// Parallelization: each pass is sharded over an index whose output slices
// are disjoint — (batch, out-channel) for the forward, batch for dX and
// out-channel for dW/db — and inner loop nests keep the per-element
// accumulation order of the serial kernel, so results are bit-identical for
// any FOCUS_NUM_THREADS. FLOP counts are computed once from the resolved
// shapes on the launching thread, outside the parallel regions.
//
// SIMD routing: the stride-1 case (every conv in the model zoo) maps each
// kernel tap to a contiguous inner product — axpy for forward/dX, dot for
// dW — through the SIMD layer; tap order (ci, kk ascending) is preserved,
// so results stay deterministic across backends and thread counts. Strided
// convs keep the scalar gather loops (shared by both backends by
// construction: this TU is compiled once, without ISA-specific flags).
#include <algorithm>
#include <cstring>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/plan_hooks.h"
#include "tensor/profile_hooks.h"
#include "tensor/simd/vec.h"

namespace focus {

namespace {

// Output range [lo0, lo1) whose stride-1 input index lo + base stays
// inside [0, len).
inline void ValidRange(int64_t base, int64_t len, int64_t out_len,
                       int64_t* lo0, int64_t* lo1) {
  *lo0 = std::max<int64_t>(0, -base);
  *lo1 = std::min(out_len, len - base);
}

}  // namespace

Tensor Conv1d(const Tensor& x, const Tensor& w, const Tensor& bias,
              int64_t stride, int64_t padding, int64_t dilation) {
  FOCUS_OP_INPUT_CHECK("Conv1d", x);
  FOCUS_OP_INPUT_CHECK("Conv1d", w);
  FOCUS_CHECK_EQ(x.dim(), 3) << "Conv1d expects (B, Cin, L)";
  FOCUS_CHECK_EQ(w.dim(), 3) << "Conv1d expects weight (Cout, Cin, K)";
  const int64_t B = x.size(0), Cin = x.size(1), L = x.size(2);
  const int64_t Cout = w.size(0), K = w.size(2);
  FOCUS_CHECK_EQ(w.size(1), Cin) << "Conv1d channel mismatch";
  FOCUS_CHECK_GE(stride, 1);
  FOCUS_CHECK_GE(dilation, 1);
  const int64_t span = (K - 1) * dilation + 1;
  const int64_t Lout = (L + 2 * padding - span) / stride + 1;
  FOCUS_CHECK_GE(Lout, 1) << "Conv1d output length would be < 1";
  if (bias.defined()) FOCUS_CHECK_EQ(bias.numel(), Cout);

  Tensor out = Tensor::Zeros({B, Cout, Lout});
  {
    FOCUS_KERNEL_SCOPE("kernel/conv1d");
    const float* px = x.data();
    const float* pw = w.data();
    const float* pb = bias.defined() ? bias.data() : nullptr;
    float* po = out.data();
    const simd::KernelTable& kt = simd::Kernels();
    ParallelFor(0, B * Cout, 1, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t b = r / Cout, co = r % Cout;
        float* orow = po + r * Lout;
        if (pb != nullptr) {
          const float bv = pb[co];
          for (int64_t lo = 0; lo < Lout; ++lo) orow[lo] = bv;
        }
        for (int64_t ci = 0; ci < Cin; ++ci) {
          const float* xrow = px + (b * Cin + ci) * L;
          const float* wrow = pw + (co * Cin + ci) * K;
          for (int64_t kk = 0; kk < K; ++kk) {
            const float wv = wrow[kk];
            const int64_t base = kk * dilation - padding;
            if (stride == 1) {
              int64_t lo0, lo1;
              ValidRange(base, L, Lout, &lo0, &lo1);
              if (lo1 > lo0)
                kt.axpy(wv, xrow + lo0 + base, orow + lo0, lo1 - lo0);
            } else {
              for (int64_t lo = 0; lo < Lout; ++lo) {
                const int64_t li = lo * stride + base;
                if (li >= 0 && li < L) orow[lo] += wv * xrow[li];
              }
            }
          }
        }
      }
    });
    FlopCounter::Add(2 * B * Cout * Lout * Cin * K);
  }
  if (plan_hooks::CaptureActive()) {
    // Replays the zero-init + bias-fill + tap loop above verbatim. The
    // eager path gets its zero start from Tensor::Zeros; the replay
    // buffer is recycled slab memory, so the closure zero-fills rows
    // itself when there is no bias to overwrite them.
    const bool rec_bias = bias.defined();
    std::vector<Tensor> ins = rec_bias
                                  ? std::vector<Tensor>{x, w, bias}
                                  : std::vector<Tensor>{x, w};
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "Conv1d", std::move(ins), out,
        [rec_bias, B, Cin, L, Cout, K, Lout, stride, padding,
         dilation](float* const* bufs) {
          const float* px = bufs[0];
          const float* pw = bufs[1];
          const float* pb = rec_bias ? bufs[2] : nullptr;
          float* po = bufs[rec_bias ? 3 : 2];
          const simd::KernelTable& kt = simd::Kernels();
          ParallelFor(0, B * Cout, 1, [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              const int64_t b = r / Cout, co = r % Cout;
              float* orow = po + r * Lout;
              if (pb != nullptr) {
                const float bv = pb[co];
                for (int64_t lo = 0; lo < Lout; ++lo) orow[lo] = bv;
              } else {
                std::memset(orow, 0, sizeof(float) * Lout);
              }
              for (int64_t ci = 0; ci < Cin; ++ci) {
                const float* xrow = px + (b * Cin + ci) * L;
                const float* wrow = pw + (co * Cin + ci) * K;
                for (int64_t kk = 0; kk < K; ++kk) {
                  const float wv = wrow[kk];
                  const int64_t base = kk * dilation - padding;
                  if (stride == 1) {
                    int64_t lo0, lo1;
                    ValidRange(base, L, Lout, &lo0, &lo1);
                    if (lo1 > lo0)
                      kt.axpy(wv, xrow + lo0 + base, orow + lo0,
                              lo1 - lo0);
                  } else {
                    for (int64_t lo = 0; lo < Lout; ++lo) {
                      const int64_t li = lo * stride + base;
                      if (li >= 0 && li < L) orow[lo] += wv * xrow[li];
                    }
                  }
                }
              }
            }
          });
        });
  }

  Tensor xd = x.Detach(), wd = w.Detach();
  const bool has_bias = bias.defined();
  return autograd::MakeResult(
      out, "Conv1d", {x, w, bias},
      [xd, wd, has_bias, B, Cin, L, Cout, K, Lout, stride, padding,
       dilation](const Tensor& g) -> std::vector<Tensor> {
        Tensor gx = Tensor::Zeros(xd.shape());
        Tensor gw = Tensor::Zeros(wd.shape());
        Tensor gb = has_bias ? Tensor::Zeros({Cout}) : Tensor();
        const float* pg = g.data();
        const float* px = xd.data();
        const float* pw = wd.data();
        float* pgx = gx.data();
        float* pgw = gw.data();
        float* pgb = has_bias ? gb.data() : nullptr;
        const simd::KernelTable& kt = simd::Kernels();
        // dX: batch entries own disjoint gx slices; within one, channels
        // accumulate co-ascending as in the serial kernel.
        ParallelFor(0, B, 1, [&](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) {
            for (int64_t co = 0; co < Cout; ++co) {
              const float* grow = pg + (b * Cout + co) * Lout;
              for (int64_t ci = 0; ci < Cin; ++ci) {
                float* gxrow = pgx + (b * Cin + ci) * L;
                const float* wrow = pw + (co * Cin + ci) * K;
                for (int64_t kk = 0; kk < K; ++kk) {
                  const float wv = wrow[kk];
                  const int64_t base = kk * dilation - padding;
                  if (stride == 1) {
                    int64_t lo0, lo1;
                    ValidRange(base, L, Lout, &lo0, &lo1);
                    if (lo1 > lo0)
                      kt.axpy(wv, grow + lo0, gxrow + lo0 + base,
                              lo1 - lo0);
                  } else {
                    for (int64_t lo = 0; lo < Lout; ++lo) {
                      const int64_t li = lo * stride + base;
                      if (li >= 0 && li < L) gxrow[li] += wv * grow[lo];
                    }
                  }
                }
              }
            }
          }
        });
        // dW / db: out-channels own disjoint gw/gb slices; the batch
        // reduction stays b-ascending inside each shard.
        ParallelFor(0, Cout, 1, [&](int64_t c0, int64_t c1) {
          for (int64_t co = c0; co < c1; ++co) {
            for (int64_t b = 0; b < B; ++b) {
              const float* grow = pg + (b * Cout + co) * Lout;
              if (pgb != nullptr) pgb[co] += kt.row_sum(grow, Lout);
              for (int64_t ci = 0; ci < Cin; ++ci) {
                const float* xrow = px + (b * Cin + ci) * L;
                float* gwrow = pgw + (co * Cin + ci) * K;
                for (int64_t kk = 0; kk < K; ++kk) {
                  const int64_t base = kk * dilation - padding;
                  if (stride == 1) {
                    int64_t lo0, lo1;
                    ValidRange(base, L, Lout, &lo0, &lo1);
                    if (lo1 > lo0)
                      gwrow[kk] += kt.dot(xrow + lo0 + base, grow + lo0,
                                          lo1 - lo0);
                  } else {
                    float wacc = 0.0f;
                    for (int64_t lo = 0; lo < Lout; ++lo) {
                      const int64_t li = lo * stride + base;
                      if (li >= 0 && li < L) wacc += xrow[li] * grow[lo];
                    }
                    gwrow[kk] += wacc;
                  }
                }
              }
            }
          }
        });
        FlopCounter::Add(4 * B * Cout * Lout * Cin * K);
        return {gx, gw, gb};
      });
}

Tensor Conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
              int64_t stride, int64_t padding) {
  FOCUS_OP_INPUT_CHECK("Conv2d", x);
  FOCUS_OP_INPUT_CHECK("Conv2d", w);
  FOCUS_CHECK_EQ(x.dim(), 4) << "Conv2d expects (B, Cin, H, W)";
  FOCUS_CHECK_EQ(w.dim(), 4) << "Conv2d expects weight (Cout, Cin, KH, KW)";
  const int64_t B = x.size(0), Cin = x.size(1), H = x.size(2), W = x.size(3);
  const int64_t Cout = w.size(0), KH = w.size(2), KW = w.size(3);
  FOCUS_CHECK_EQ(w.size(1), Cin) << "Conv2d channel mismatch";
  const int64_t Hout = (H + 2 * padding - KH) / stride + 1;
  const int64_t Wout = (W + 2 * padding - KW) / stride + 1;
  FOCUS_CHECK(Hout >= 1 && Wout >= 1) << "Conv2d output would be empty";
  if (bias.defined()) FOCUS_CHECK_EQ(bias.numel(), Cout);

  Tensor out = Tensor::Zeros({B, Cout, Hout, Wout});
  {
    FOCUS_KERNEL_SCOPE("kernel/conv2d");
    const float* px = x.data();
    const float* pw = w.data();
    const float* pb = bias.defined() ? bias.data() : nullptr;
    float* po = out.data();
    const simd::KernelTable& kt = simd::Kernels();
    ParallelFor(0, B * Cout, 1, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t b = r / Cout, co = r % Cout;
        float* oplane = po + r * Hout * Wout;
        if (pb != nullptr) {
          const float bv = pb[co];
          for (int64_t i = 0; i < Hout * Wout; ++i) oplane[i] = bv;
        }
        for (int64_t ci = 0; ci < Cin; ++ci) {
          const float* xplane = px + (b * Cin + ci) * H * W;
          const float* wplane = pw + (co * Cin + ci) * KH * KW;
          for (int64_t kh = 0; kh < KH; ++kh) {
            for (int64_t kw = 0; kw < KW; ++kw) {
              const float wv = wplane[kh * KW + kw];
              const int64_t base_w = kw - padding;
              for (int64_t ho = 0; ho < Hout; ++ho) {
                const int64_t hi = ho * stride + kh - padding;
                if (hi < 0 || hi >= H) continue;
                float* orow = oplane + ho * Wout;
                const float* xrow = xplane + hi * W;
                if (stride == 1) {
                  int64_t wo0, wo1;
                  ValidRange(base_w, W, Wout, &wo0, &wo1);
                  if (wo1 > wo0)
                    kt.axpy(wv, xrow + wo0 + base_w, orow + wo0,
                            wo1 - wo0);
                } else {
                  for (int64_t wo = 0; wo < Wout; ++wo) {
                    const int64_t wi = wo * stride + base_w;
                    if (wi >= 0 && wi < W) orow[wo] += wv * xrow[wi];
                  }
                }
              }
            }
          }
        }
      }
    });
    FlopCounter::Add(2 * B * Cout * Hout * Wout * Cin * KH * KW);
  }

  Tensor xd = x.Detach(), wd = w.Detach();
  const bool has_bias = bias.defined();
  return autograd::MakeResult(
      out, "Conv2d", {x, w, bias},
      [xd, wd, has_bias, B, Cin, H, W, Cout, KH, KW, Hout, Wout, stride,
       padding](const Tensor& g) -> std::vector<Tensor> {
        Tensor gx = Tensor::Zeros(xd.shape());
        Tensor gw = Tensor::Zeros(wd.shape());
        Tensor gb = has_bias ? Tensor::Zeros({Cout}) : Tensor();
        const float* pg = g.data();
        const float* px = xd.data();
        const float* pw = wd.data();
        float* pgx = gx.data();
        float* pgw = gw.data();
        float* pgb = has_bias ? gb.data() : nullptr;
        const simd::KernelTable& kt = simd::Kernels();
        // dX: parallel over batch (disjoint gx planes per shard).
        ParallelFor(0, B, 1, [&](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) {
            for (int64_t co = 0; co < Cout; ++co) {
              const float* gplane = pg + (b * Cout + co) * Hout * Wout;
              for (int64_t ci = 0; ci < Cin; ++ci) {
                float* gxplane = pgx + (b * Cin + ci) * H * W;
                const float* wplane = pw + (co * Cin + ci) * KH * KW;
                for (int64_t kh = 0; kh < KH; ++kh) {
                  for (int64_t kw = 0; kw < KW; ++kw) {
                    const float wv = wplane[kh * KW + kw];
                    const int64_t base_w = kw - padding;
                    for (int64_t ho = 0; ho < Hout; ++ho) {
                      const int64_t hi = ho * stride + kh - padding;
                      if (hi < 0 || hi >= H) continue;
                      const float* grow = gplane + ho * Wout;
                      float* gxrow = gxplane + hi * W;
                      if (stride == 1) {
                        int64_t wo0, wo1;
                        ValidRange(base_w, W, Wout, &wo0, &wo1);
                        if (wo1 > wo0)
                          kt.axpy(wv, grow + wo0, gxrow + wo0 + base_w,
                                  wo1 - wo0);
                      } else {
                        for (int64_t wo = 0; wo < Wout; ++wo) {
                          const int64_t wi = wo * stride + base_w;
                          if (wi >= 0 && wi < W)
                            gxrow[wi] += wv * grow[wo];
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        });
        // dW / db: parallel over out-channels (disjoint gw/gb slices).
        ParallelFor(0, Cout, 1, [&](int64_t c0, int64_t c1) {
          for (int64_t co = c0; co < c1; ++co) {
            for (int64_t b = 0; b < B; ++b) {
              const float* gplane = pg + (b * Cout + co) * Hout * Wout;
              if (pgb != nullptr)
                pgb[co] += kt.row_sum(gplane, Hout * Wout);
              for (int64_t ci = 0; ci < Cin; ++ci) {
                const float* xplane = px + (b * Cin + ci) * H * W;
                float* gwplane = pgw + (co * Cin + ci) * KH * KW;
                for (int64_t kh = 0; kh < KH; ++kh) {
                  for (int64_t kw = 0; kw < KW; ++kw) {
                    const int64_t base_w = kw - padding;
                    float wacc = 0.0f;
                    for (int64_t ho = 0; ho < Hout; ++ho) {
                      const int64_t hi = ho * stride + kh - padding;
                      if (hi < 0 || hi >= H) continue;
                      const float* grow = gplane + ho * Wout;
                      const float* xrow = xplane + hi * W;
                      if (stride == 1) {
                        int64_t wo0, wo1;
                        ValidRange(base_w, W, Wout, &wo0, &wo1);
                        if (wo1 > wo0)
                          wacc += kt.dot(xrow + wo0 + base_w, grow + wo0,
                                         wo1 - wo0);
                      } else {
                        for (int64_t wo = 0; wo < Wout; ++wo) {
                          const int64_t wi = wo * stride + base_w;
                          if (wi >= 0 && wi < W)
                            wacc += xrow[wi] * grow[wo];
                        }
                      }
                    }
                    gwplane[kh * KW + kw] += wacc;
                  }
                }
              }
            }
          }
        });
        FlopCounter::Add(4 * B * Cout * Hout * Wout * Cin * KH * KW);
        return {gx, gw, gb};
      });
}

}  // namespace focus
