// Runtime backend dispatch for the SIMD layer.
//
// Resolution order (first use of Kernels(), cached in an atomic):
//   1. SetBackend() programmatic override (tests / benchmarks),
//   2. FOCUS_SIMD env var: "scalar"/"off" force the portable backend,
//      "avx2" forces AVX2 (warning + scalar fallback if unavailable),
//      "auto"/unset pick by CPUID,
//   3. CPUID: __builtin_cpu_supports("avx2") && ("fma").
//
// A -DFOCUS_SIMD=OFF build omits the AVX2 translation unit entirely
// (FOCUS_SIMD_AVX2 undefined); every path then resolves to the scalar
// backend, which produces bit-identical results by construction.
#include <atomic>
#include <string>

#include "tensor/simd/vec.h"
#include "utils/env.h"
#include "utils/logging.h"

namespace focus {
namespace simd {

namespace scalar_backend {
const KernelTable* GetTable();
}  // namespace scalar_backend

#ifdef FOCUS_SIMD_AVX2
namespace avx2_backend {
const KernelTable* GetTable();
}  // namespace avx2_backend
#endif

namespace {

std::atomic<const KernelTable*> g_table{nullptr};

const KernelTable* TableFor(Backend backend) {
#ifdef FOCUS_SIMD_AVX2
  if (backend == Backend::kAvx2) return avx2_backend::GetTable();
#endif
  (void)backend;
  return scalar_backend::GetTable();
}

const KernelTable* Resolve() {
  const std::string v = GetEnvOr("FOCUS_SIMD", "auto");
  if (v == "scalar" || v == "off" || v == "OFF" || v == "0")
    return TableFor(Backend::kScalar);
  if (v == "avx2") {
    if (Avx2Available()) return TableFor(Backend::kAvx2);
    FOCUS_LOG(Warning) << "FOCUS_SIMD=avx2 requested but the AVX2 "
                          "backend is unavailable (build disabled or "
                          "CPU lacks AVX2+FMA); using scalar";
    return TableFor(Backend::kScalar);
  }
  if (v != "auto") {
    FOCUS_LOG(Warning) << "FOCUS_SIMD='" << v
                       << "' is not scalar|avx2|auto|off; using auto";
  }
  return TableFor(Avx2Available() ? Backend::kAvx2 : Backend::kScalar);
}

}  // namespace

bool Avx2Available() {
#ifdef FOCUS_SIMD_AVX2
  return __builtin_cpu_supports("avx2") &&
         __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable& Kernels() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first callers resolve the same table.
    t = Resolve();
    g_table.store(t, std::memory_order_release);
  }
  return *t;
}

Backend ActiveBackend() { return Kernels().backend; }

const char* BackendName() { return Kernels().name; }

bool SetBackend(Backend backend) {
  if (backend == Backend::kAvx2 && !Avx2Available()) return false;
  g_table.store(TableFor(backend), std::memory_order_release);
  return true;
}

void ReinitFromEnv() {
  g_table.store(Resolve(), std::memory_order_release);
}

}  // namespace simd
}  // namespace focus
