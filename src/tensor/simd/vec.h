// Public entry point of the SIMD vector-kernel layer.
//
// Every hot tensor kernel (matmul microkernel, elementwise, reductions,
// softmax, layernorm, conv inner products) is written once against a
// fixed-width 8-lane float micro-API and compiled into two backends:
//
//   * avx2   — AVX2 + FMA intrinsics (vec_avx2.cc), selected at runtime
//              when the CPU supports both (CPUID via
//              __builtin_cpu_supports) and the build enabled it
//              (-DFOCUS_SIMD=ON, the default).
//   * scalar — a portable backend (vec_scalar.cc) that *emulates* the
//              8-lane split: same per-element operation sequence, same
//              fixed reduction tree, std::fma for every fused op.
//
// Both backends are generated from the same kernel source
// (kernels.inc), so for every input the two execute the identical
// IEEE-754 operation per element in the identical order. That is the
// lane-order determinism contract: results are bit-identical across
// ISA, across FOCUS_SIMD=OFF builds, and across thread counts (lane
// splits are anchored to row/tile starts, never to thread chunk
// boundaries that could move).
//
// Transcendentals (exp/tanh/sigmoid/erf/gelu) never call libm in either
// backend; both evaluate the shared float-only polynomials in
// vec_common.h (provenance: scripts/gen_simd_coeffs.py), because libm's
// results vary by libc version and ISA and would break the contract.
//
// Dispatch: the table is resolved once, on first use, from (in order)
// a programmatic SetBackend() override, the FOCUS_SIMD environment
// variable ("scalar"/"off" | "avx2" | "auto"), then CPUID.
#ifndef FOCUS_TENSOR_SIMD_VEC_H_
#define FOCUS_TENSOR_SIMD_VEC_H_

#include <cstdint>

namespace focus {
namespace simd {

// Lane width every kernel is written against. Fixed at 8 regardless of
// what the hardware offers (AVX-512 machines still run 8-lane AVX2
// kernels); changing it would change accumulation trees and break
// bit-compatibility with recorded results.
inline constexpr int kLanes = 8;

enum class Backend { kScalar, kAvx2 };

// A resolved set of kernel entry points. All pointers are non-null in
// every table. Buffers may be unaligned (kernels use unaligned loads);
// `n` counts are in floats and may be 0. Binary/unary kernels allow
// out == input aliasing (they are pure elementwise); `axpy` and
// `add_inplace` accumulate into their destination.
struct KernelTable {
  const char* name;  // "scalar" or "avx2"
  Backend backend;

  // C-tile of the blocked matmul: rows [i0, i1) of a row-major k x n
  // panel product, at (rows-major a block) times bt (k x n b panel),
  // accumulating each element as one k-ascending FMA chain.
  void (*matmul_row_block)(const float* at, const float* bt, float* ct,
                           int64_t i0, int64_t i1, int64_t k, int64_t n);

  // Elementwise binary over contiguous equal-length arrays.
  void (*add)(const float* a, const float* b, float* o, int64_t n);
  void (*sub)(const float* a, const float* b, float* o, int64_t n);
  void (*mul)(const float* a, const float* b, float* o, int64_t n);
  void (*div)(const float* a, const float* b, float* o, int64_t n);
  void (*add_inplace)(float* a, const float* b, int64_t n);
  void (*add_scalar)(const float* x, float s, float* o, int64_t n);
  void (*mul_scalar)(const float* x, float s, float* o, int64_t n);

  // BLAS-1 style helpers. axpy: y[i] = fma(s, x[i], y[i]).
  // dot / row_sum reduce with the fixed 8-lane split + tree
  // (see kernels.inc) so the result is backend- and
  // thread-count-invariant for a given [x, x+n) range.
  void (*axpy)(float s, const float* x, float* y, int64_t n);
  float (*dot)(const float* a, const float* b, int64_t n);
  float (*row_sum)(const float* x, int64_t n);

  // Unary forward maps (shared-polynomial transcendentals).
  void (*exp_fwd)(const float* x, float* o, int64_t n);
  void (*tanh_fwd)(const float* x, float* o, int64_t n);
  void (*sigmoid_fwd)(const float* x, float* o, int64_t n);
  void (*erf_fwd)(const float* x, float* o, int64_t n);
  void (*gelu_fwd)(const float* x, float* o, int64_t n);
  void (*relu_fwd)(const float* x, float* o, int64_t n);
  void (*sqrt_fwd)(const float* x, float* o, int64_t n);

  // Unary backward maps: o = dL/dx from the saved forward tensor
  // (input x or output y, whichever the op saves) and incoming grad g.
  void (*tanh_bwd)(const float* y, const float* g, float* o, int64_t n);
  void (*sigmoid_bwd)(const float* y, const float* g, float* o,
                      int64_t n);
  void (*erf_bwd)(const float* x, const float* g, float* o, int64_t n);
  void (*gelu_bwd)(const float* x, const float* g, float* o, int64_t n);
  void (*relu_bwd)(const float* x, const float* g, float* o, int64_t n);
  void (*sqrt_bwd)(const float* y, const float* g, float* o, int64_t n);

  // Fused row kernels over `rows` contiguous rows of length n.
  void (*softmax_rows)(const float* x, float* y, int64_t rows,
                       int64_t n);
  void (*softmax_bwd_rows)(const float* y, const float* g, float* gx,
                           int64_t rows, int64_t n);
  void (*layernorm_rows)(const float* x, const float* gamma,
                         const float* beta, float eps, float* y,
                         float* means, float* rstds, int64_t rows,
                         int64_t n);
  void (*layernorm_bwd_dx_rows)(const float* x, const float* g,
                                const float* gamma, const float* means,
                                const float* rstds, float* gx,
                                int64_t rows, int64_t n);

  // Fused elementwise/activation chains used by the plan compiler
  // (src/plan). Each is exactly the composition of the two unfused
  // kernels above — same per-element operations in the same order,
  // intermediate kept in registers — so substituting them preserves
  // the lane-order determinism contract bit-for-bit.
  void (*add_gelu_fwd)(const float* a, const float* b, float* o,
                       int64_t n);
  void (*add_scalar_sqrt_fwd)(const float* x, float s, float* o,
                              int64_t n);
  void (*mul_scalar_sigmoid_fwd)(const float* x, float s, float* o,
                                 int64_t n);
  void (*mul_scalar_softmax_rows)(const float* x, float s, float* y,
                                  int64_t rows, int64_t n);

  // bf16 storage kernels (mixed-precision inference, DESIGN §13).
  // Packed buffers are raw bf16 payloads (uint16_t). pack is
  // round-to-nearest-even with NaN quieting (tensor/bf16.h) — pure
  // integer bit math, so packed bytes are bit-identical across
  // backends. unpack is exact. add_bf16 unpacks both operands, adds in
  // f32, repacks with the same rounding. matmul_row_block_bf16 takes a
  // f32 A panel and a bf16-packed B panel (the stationary/weight side),
  // unpacks B to f32 lanes and accumulates in f32 with the identical
  // 4x8 FMA-chain structure as matmul_row_block (storage-only precision
  // loss; the accumulator never narrows).
  void (*pack_bf16)(const float* x, uint16_t* o, int64_t n);
  void (*unpack_bf16)(const uint16_t* x, float* o, int64_t n);
  void (*add_bf16)(const uint16_t* a, const uint16_t* b, uint16_t* o,
                   int64_t n);
  void (*matmul_row_block_bf16)(const float* at, const uint16_t* bt,
                                float* ct, int64_t i0, int64_t i1,
                                int64_t k, int64_t n);

  // Exact int32 dot product of two int8 vectors (ProtoAttn int8
  // token-assignment path). Integer math — backend-invariant by
  // construction.
  int32_t (*dot_i8)(const int8_t* a, const int8_t* b, int64_t n);
};

// The active kernel table. First call resolves the backend (cheap
// atomic load afterwards); safe to call concurrently.
const KernelTable& Kernels();

// Identity of the active backend (resolving it if needed).
Backend ActiveBackend();
const char* BackendName();

// True when the AVX2 backend is compiled in *and* the CPU reports
// AVX2 + FMA support.
bool Avx2Available();

// Programmatic override (tests / benchmarks). Returns false — leaving
// the active table unchanged — if the requested backend is
// unavailable. Not safe concurrently with running kernels.
bool SetBackend(Backend backend);

// Drops any SetBackend() override and re-resolves from FOCUS_SIMD /
// CPUID. Not safe concurrently with running kernels.
void ReinitFromEnv();

}  // namespace simd
}  // namespace focus

#endif  // FOCUS_TENSOR_SIMD_VEC_H_
