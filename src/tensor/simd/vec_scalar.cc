// Portable scalar backend of the SIMD layer.
//
// V8 is eight floats processed with the same lane-split order and the
// same per-lane operation semantics as the AVX2 backend (std::fma for
// fused ops, asymmetric Max/Min, nearest-even Round, the identical
// reduction tree). Compiled with -ffp-contract=off so the compiler
// cannot fuse mul+add sequences that the source leaves unfused.
#include <cmath>
#include <cstdint>
#include <cstring>

#include "tensor/bf16.h"
#include "tensor/simd/vec.h"
#include "tensor/simd/vec_common.h"

namespace focus {
namespace simd {
namespace scalar_backend {

constexpr const char* kBackendName = "scalar";
constexpr Backend kBackendId = Backend::kScalar;

struct V8 {
  float v[kLanes];
};
struct M8 {
  bool m[kLanes];
};

inline V8 LoadU(const float* p) {
  V8 r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
}
inline void StoreU(float* p, V8 a) { std::memcpy(p, a.v, sizeof(a.v)); }

inline V8 Add(V8 a, V8 b) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline V8 Sub(V8 a, V8 b) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline V8 Mul(V8 a, V8 b) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
inline V8 Div(V8 a, V8 b) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}
inline V8 Fma(V8 a, V8 b, V8 c) {
  V8 r;
  for (int i = 0; i < kLanes; ++i)
    r.v[i] = std::fma(a.v[i], b.v[i], c.v[i]);
  return r;
}
inline V8 Neg(V8 a) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = -a.v[i];
  return r;
}
inline V8 Abs(V8 a) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = std::fabs(a.v[i]);
  return r;
}
// vmaxps/vminps: strict compare, second operand on ties/NaNs.
inline V8 Max(V8 a, V8 b) {
  V8 r;
  for (int i = 0; i < kLanes; ++i)
    r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline V8 Min(V8 a, V8 b) {
  V8 r;
  for (int i = 0; i < kLanes; ++i)
    r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline V8 Sqrt(V8 a) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}
inline V8 Round(V8 a) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = std::nearbyintf(a.v[i]);
  return r;
}
inline V8 Pow2I(V8 a) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = simd::Pow2I(V1{a.v[i]}).v;
  return r;
}
inline V8 CopySign(V8 mag, V8 sgn) {
  V8 r;
  for (int i = 0; i < kLanes; ++i)
    r.v[i] = std::copysign(mag.v[i], sgn.v[i]);
  return r;
}
inline M8 CmpLt(V8 a, V8 b) {
  M8 r;
  for (int i = 0; i < kLanes; ++i) r.m[i] = a.v[i] < b.v[i];
  return r;
}
inline M8 CmpGt(V8 a, V8 b) {
  M8 r;
  for (int i = 0; i < kLanes; ++i) r.m[i] = a.v[i] > b.v[i];
  return r;
}
inline M8 CmpGe(V8 a, V8 b) {
  M8 r;
  for (int i = 0; i < kLanes; ++i) r.m[i] = a.v[i] >= b.v[i];
  return r;
}
inline V8 Select(M8 m, V8 a, V8 b) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = m.m[i] ? a.v[i] : b.v[i];
  return r;
}

// The fixed reduction tree (mirrors the AVX2 extract/movehl/shuffle
// sequence): lanes pair as (i, i+4), then (0,2)/(1,3), then the final
// add/max.
inline float ReduceAdd(V8 a) {
  const float z0 = (a.v[0] + a.v[4]) + (a.v[2] + a.v[6]);
  const float z1 = (a.v[1] + a.v[5]) + (a.v[3] + a.v[7]);
  return z0 + z1;
}
inline float ReduceMax(V8 a) {
  const auto mx = [](float x, float y) { return x > y ? x : y; };
  const float y0 = mx(a.v[0], a.v[4]);
  const float y1 = mx(a.v[1], a.v[5]);
  const float y2 = mx(a.v[2], a.v[6]);
  const float y3 = mx(a.v[3], a.v[7]);
  return mx(mx(y0, y2), mx(y1, y3));
}

// bf16 lane conversions: per-lane application of the shared integer
// pack/unpack (tensor/bf16.h), which the AVX2 backend evaluates with
// the identical bit sequence — packed bytes are bit-identical.
inline V8 LoadBf16(const uint16_t* p) {
  V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = F32FromBf16(p[i]);
  return r;
}
inline void StoreBf16(uint16_t* p, V8 a) {
  for (int i = 0; i < kLanes; ++i) p[i] = Bf16FromF32(a.v[i]);
}

}  // namespace scalar_backend

template <>
inline scalar_backend::V8 Set1<scalar_backend::V8>(float s) {
  scalar_backend::V8 r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = s;
  return r;
}

namespace scalar_backend {

using Vec = V8;

#include "tensor/simd/kernels.inc"  // NOLINT(build/include)

}  // namespace scalar_backend
}  // namespace simd
}  // namespace focus
