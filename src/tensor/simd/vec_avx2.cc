// AVX2 + FMA backend of the SIMD layer. The only translation unit in
// the repository allowed to include <immintrin.h> (enforced by
// scripts/focus_lint.py). Compiled with -mavx2 -mfma
// -ffp-contract=off; only entered at runtime after CPUID confirms
// both features (dispatch.cc).
#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "tensor/bf16.h"
#include "tensor/simd/vec.h"
#include "tensor/simd/vec_common.h"

namespace focus {
namespace simd {
namespace avx2_backend {

constexpr const char* kBackendName = "avx2";
constexpr Backend kBackendId = Backend::kAvx2;

struct V8 {
  __m256 r;
};
struct M8 {
  __m256 r;
};

inline V8 LoadU(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void StoreU(float* p, V8 a) { _mm256_storeu_ps(p, a.r); }

inline V8 Add(V8 a, V8 b) { return {_mm256_add_ps(a.r, b.r)}; }
inline V8 Sub(V8 a, V8 b) { return {_mm256_sub_ps(a.r, b.r)}; }
inline V8 Mul(V8 a, V8 b) { return {_mm256_mul_ps(a.r, b.r)}; }
inline V8 Div(V8 a, V8 b) { return {_mm256_div_ps(a.r, b.r)}; }
inline V8 Fma(V8 a, V8 b, V8 c) {
  return {_mm256_fmadd_ps(a.r, b.r, c.r)};
}
inline V8 Neg(V8 a) {
  return {_mm256_xor_ps(a.r, _mm256_set1_ps(-0.0f))};
}
inline V8 Abs(V8 a) {
  return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.r)};
}
inline V8 Max(V8 a, V8 b) { return {_mm256_max_ps(a.r, b.r)}; }
inline V8 Min(V8 a, V8 b) { return {_mm256_min_ps(a.r, b.r)}; }
inline V8 Sqrt(V8 a) { return {_mm256_sqrt_ps(a.r)}; }
inline V8 Round(V8 a) {
  return {_mm256_round_ps(
      a.r, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
}
// 2^a for integral-valued a with a+127 in [1, 254].
inline V8 Pow2I(V8 a) {
  const __m256i e = _mm256_add_epi32(_mm256_cvtps_epi32(a.r),
                                     _mm256_set1_epi32(127));
  return {_mm256_castsi256_ps(_mm256_slli_epi32(e, 23))};
}
inline V8 CopySign(V8 mag, V8 sgn) {
  const __m256 mask = _mm256_set1_ps(-0.0f);
  return {_mm256_or_ps(_mm256_and_ps(sgn.r, mask),
                       _mm256_andnot_ps(mask, mag.r))};
}
inline M8 CmpLt(V8 a, V8 b) {
  return {_mm256_cmp_ps(a.r, b.r, _CMP_LT_OQ)};
}
inline M8 CmpGt(V8 a, V8 b) {
  return {_mm256_cmp_ps(a.r, b.r, _CMP_GT_OQ)};
}
inline M8 CmpGe(V8 a, V8 b) {
  return {_mm256_cmp_ps(a.r, b.r, _CMP_GE_OQ)};
}
inline V8 Select(M8 m, V8 a, V8 b) {
  return {_mm256_blendv_ps(b.r, a.r, m.r)};
}

// Fixed reduction tree: (i, i+4) via the 128-bit halves, then
// (0,2)/(1,3) via movehl, then the final scalar op. The scalar
// backend mirrors exactly this association.
inline float ReduceAdd(V8 a) {
  const __m128 lo = _mm256_castps256_ps128(a.r);
  const __m128 hi = _mm256_extractf128_ps(a.r, 1);
  const __m128 y = _mm_add_ps(lo, hi);
  const __m128 z = _mm_add_ps(y, _mm_movehl_ps(y, y));
  const __m128 w = _mm_add_ss(z, _mm_shuffle_ps(z, z, 0x1));
  return _mm_cvtss_f32(w);
}
inline float ReduceMax(V8 a) {
  const __m128 lo = _mm256_castps256_ps128(a.r);
  const __m128 hi = _mm256_extractf128_ps(a.r, 1);
  const __m128 y = _mm_max_ps(lo, hi);
  const __m128 z = _mm_max_ps(y, _mm_movehl_ps(y, y));
  const __m128 w = _mm_max_ss(z, _mm_shuffle_ps(z, z, 0x1));
  return _mm_cvtss_f32(w);
}

// bf16 lane conversions. Unpack widens 8 bf16 payloads to the high
// halves of 8 f32 lanes (exact). Pack evaluates the integer RNE
// sequence of Bf16FromF32 (tensor/bf16.h) on all 8 lanes — including
// the quiet-NaN special case — so the stored bytes match the scalar
// backend bit-for-bit.
inline V8 LoadBf16(const uint16_t* p) {
  const __m128i h =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i w = _mm256_cvtepu16_epi32(h);
  return {_mm256_castsi256_ps(_mm256_slli_epi32(w, 16))};
}
inline void StoreBf16(uint16_t* p, V8 a) {
  const __m256i bits = _mm256_castps_si256(a.r);
  const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16),
                                       _mm256_set1_epi32(1));
  const __m256i rounded = _mm256_add_epi32(
      _mm256_add_epi32(bits, _mm256_set1_epi32(0x7FFF)), lsb);
  const __m256i r16 = _mm256_srli_epi32(rounded, 16);
  // NaN iff (bits & 0x7FFFFFFF) > 0x7F800000; both sides are positive
  // in int32, so the signed compare is exact.
  const __m256i absb =
      _mm256_and_si256(bits, _mm256_set1_epi32(0x7FFFFFFF));
  const __m256i nan_mask =
      _mm256_cmpgt_epi32(absb, _mm256_set1_epi32(0x7F800000));
  const __m256i n16 = _mm256_or_si256(_mm256_srli_epi32(bits, 16),
                                      _mm256_set1_epi32(0x0040));
  const __m256i sel = _mm256_blendv_epi8(r16, n16, nan_mask);
  // Each 32-bit lane now holds a value in [0, 0xFFFF]; packus
  // saturation is the identity. packus interleaves the 128-bit
  // halves, so permute the 64-bit quarters back into lane order.
  const __m256i packed = _mm256_packus_epi32(sel, sel);
  const __m256i ordered = _mm256_permute4x64_epi64(packed, 0xD8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                   _mm256_castsi256_si128(ordered));
}

}  // namespace avx2_backend

template <>
inline avx2_backend::V8 Set1<avx2_backend::V8>(float s) {
  return {_mm256_set1_ps(s)};
}

namespace avx2_backend {

using Vec = V8;

#include "tensor/simd/kernels.inc"  // NOLINT(build/include)

}  // namespace avx2_backend
}  // namespace simd
}  // namespace focus
