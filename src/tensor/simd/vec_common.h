// Backend-shared pieces of the SIMD layer: polynomial coefficients,
// the single-lane V1 type used for tail elements, and the generic
// transcendental algorithms (ExpV/TanhV/SigmoidV/ErfV/GeluV) that both
// backends instantiate with their own 8-lane vector type.
//
// Determinism contract notes (see also vec.h):
//  * Every V1 operation mirrors the exact semantics of the AVX2
//    instruction the vector backend uses — Max/Min use the asymmetric
//    vmaxps/vminps select (`a > b ? a : b`), Round is nearest-even
//    (vroundps), Fma is std::fma (correctly rounded, identical to
//    vfmadd), Pow2I is the same exponent-field construction.
//  * Transcendentals never call libm: both backends evaluate the
//    polynomials below with the same FMA chain, so vector lanes and
//    scalar tails agree bitwise. Coefficients are generated and
//    ULP-validated by scripts/gen_simd_coeffs.py.
//  * Both backend TUs are compiled with -ffp-contract=off so the
//    compiler cannot fuse (or decline to fuse) a*b+c differently per
//    backend; every FMA in this layer is explicit.
#ifndef FOCUS_TENSOR_SIMD_VEC_COMMON_H_
#define FOCUS_TENSOR_SIMD_VEC_COMMON_H_

#include <bit>
#include <cmath>
#include <cstdint>

namespace focus {
namespace simd {

// --- polynomial coefficients (scripts/gen_simd_coeffs.py) -------------

// exp(r) ~= 1 + r + r^2 * P(r) on |r| <= ln(2)/2, after Cody-Waite
// range reduction x = n*ln2 + r. Max observed error 1.0 ulp on
// [-88, 88] (float32-emulated sweep).
inline constexpr float kExpPoly[] = {
    0.5f,            0.166666672f,    0.0416664667f,
    0.00833337288f,  0.00139335904f,  0.000198495371f};

// tanh(x) ~= x + x*z*P(z), z = x^2, on |x| < 0.625. 1.0 ulp.
inline constexpr float kTanhPoly[] = {
    -0.333333284f,   0.133327574f,    -0.0538493544f,
    0.0209908877f,   -0.00608873274f};

// erf(x) ~= x * P(z), z = x^2, on |x| < 0.84375. (2.0 ulp overall.)
inline constexpr float kErfSmallPoly[] = {
    1.12837923f,     -0.376126379f,   0.112837903f,
    -0.0268660132f,  0.00522311497f,  -0.000852230121f,
    0.000116145995f, -1.09210641e-05f};

// erfc(a)*exp(a^2) ~= W(t), t = 1/a, for a in [0.84375, 4.2]; beyond
// 4.2, erf rounds to +-1 in float32.
inline constexpr float kErfTailPoly[] = {
    0.000335514691f, 0.557907104f,    0.0502508581f,
    -0.504254222f,   0.574081242f,    -0.353932023f,
    0.121672302f,    -0.0186834447f,  0.000206211407f};

// exp() range-reduction constants. kLn2Hi/kLn2Lo split ln(2) so that
// n*kLn2Hi is exact for |n| <= 2^15 (Cody-Waite). The clamps sit just
// past the representable range (ln(FLT_MAX) = 88.72, and exp underflows
// to 0 below -103.97): arguments beyond them saturate to +inf / +0 like
// libm, while everything in between still resolves through the two-step
// 2^a * 2^b scaling.
inline constexpr float kExpHi = 89.0f;
inline constexpr float kExpLo = -103.972084045410f;
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kLn2Hi = 0.693359375f;
inline constexpr float kLn2Lo = -2.12194440e-4f;

// Branch points between the polynomial and exp-based evaluations.
inline constexpr float kTanhBranch = 0.625f;
inline constexpr float kErfBranch = 0.84375f;

// GELU (tanh approximation) constants, shared with the pre-SIMD op.
inline constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
inline constexpr float kGeluA = 0.044715f;
// d/dx erf(x) = kErfGradC * exp(-x^2).
inline constexpr float kErfGradC = 1.1283791670955126f;  // 2/sqrt(pi)

// Broadcast, specialized by each backend for its vector type.
template <class V>
V Set1(float s);

// --- V1: the single-lane "vector" used for tail elements --------------

struct V1 {
  float v;
};
struct M1 {
  bool m;
};

template <>
inline V1 Set1<V1>(float s) {
  return {s};
}

inline V1 Add(V1 a, V1 b) { return {a.v + b.v}; }
inline V1 Sub(V1 a, V1 b) { return {a.v - b.v}; }
inline V1 Mul(V1 a, V1 b) { return {a.v * b.v}; }
inline V1 Div(V1 a, V1 b) { return {a.v / b.v}; }
inline V1 Fma(V1 a, V1 b, V1 c) { return {std::fma(a.v, b.v, c.v)}; }
inline V1 Neg(V1 a) { return {-a.v}; }
inline V1 Abs(V1 a) { return {std::fabs(a.v)}; }
// vmaxps/vminps semantics: the *second* operand wins ties and NaNs.
inline V1 Max(V1 a, V1 b) { return {a.v > b.v ? a.v : b.v}; }
inline V1 Min(V1 a, V1 b) { return {a.v < b.v ? a.v : b.v}; }
inline V1 Sqrt(V1 a) { return {std::sqrt(a.v)}; }
// Nearest-even, like vroundps(_MM_FROUND_TO_NEAREST_INT). Assumes the
// default IEEE rounding mode (the process never changes it).
inline V1 Round(V1 a) { return {std::nearbyintf(a.v)}; }
// 2^a for integral-valued a with a+127 in [1, 254]: build the exponent
// field directly (same as cvtps_epi32 + add + slli in the AVX2
// backend).
inline V1 Pow2I(V1 a) {
  const auto e = static_cast<std::uint32_t>(
      static_cast<std::int32_t>(a.v) + 127);
  return {std::bit_cast<float>(e << 23)};
}
inline V1 CopySign(V1 mag, V1 sgn) {
  return {std::copysign(mag.v, sgn.v)};
}
inline M1 CmpLt(V1 a, V1 b) { return {a.v < b.v}; }
inline M1 CmpGt(V1 a, V1 b) { return {a.v > b.v}; }
inline M1 CmpGe(V1 a, V1 b) { return {a.v >= b.v}; }
inline V1 Select(M1 m, V1 a, V1 b) { return m.m ? a : b; }

// --- shared algorithms ------------------------------------------------

// Horner evaluation with an explicit FMA chain, highest degree first.
template <class V, int N>
inline V PolyHorner(const float (&c)[N], V z) {
  V acc = Set1<V>(c[N - 1]);
  for (int i = N - 2; i >= 0; --i) acc = Fma(acc, z, Set1<V>(c[i]));
  return acc;
}

// exp(x). Clamps to the finite float range, Cody-Waite reduces
// x = n*ln2 + r, evaluates exp(r) = 1 + r + r^2*P(r), and scales by
// 2^n in two steps (2^a * 2^b) so subnormal results (x < -87.3) stay
// exact instead of overflowing the single exponent field.
template <class V>
inline V ExpV(V x) {
  x = Max(Min(x, Set1<V>(kExpHi)), Set1<V>(kExpLo));
  const V n = Round(Mul(x, Set1<V>(kLog2e)));
  V r = Fma(Neg(n), Set1<V>(kLn2Hi), x);
  r = Fma(Neg(n), Set1<V>(kLn2Lo), r);
  const V q = PolyHorner(kExpPoly, r);
  const V one = Set1<V>(1.0f);
  const V p = Add(Fma(q, Mul(r, r), r), one);
  const V a = Max(Min(n, Set1<V>(127.0f)), Set1<V>(-126.0f));
  const V b = Sub(n, a);
  return Mul(Mul(p, Pow2I(a)), Pow2I(b));
}

// tanh(x): odd polynomial in z = x^2 below the branch point,
// 1 - 2/(exp(2|x|)+1) with the sign restored above it.
template <class V>
inline V TanhV(V x) {
  const V a = Abs(x);
  const V one = Set1<V>(1.0f);
  const V e = ExpV(Add(a, a));
  V big = Sub(one, Div(Set1<V>(2.0f), Add(e, one)));
  big = CopySign(big, x);
  const V z = Mul(x, x);
  const V p = PolyHorner(kTanhPoly, z);
  const V small = Fma(Mul(p, z), x, x);
  return Select(CmpGe(a, Set1<V>(kTanhBranch)), big, small);
}

template <class V>
inline V SigmoidV(V x) {
  const V one = Set1<V>(1.0f);
  return Div(one, Add(one, ExpV(Neg(x))));
}

// erf(x): odd polynomial below the branch point; above it,
// erf(|x|) = 1 - erfc(|x|) with erfc(a) = W(1/a) * exp(-a^2), where
// the squaring error of a^2 is compensated (l = fma(a,a,-h)) so the
// exp argument keeps full precision.
template <class V>
inline V ErfV(V x) {
  const V a = Abs(x);
  const V one = Set1<V>(1.0f);
  const V z = Mul(x, x);
  const V small = Mul(x, PolyHorner(kErfSmallPoly, z));
  const V t = Div(one, a);
  const V w = PolyHorner(kErfTailPoly, t);
  const V l = Fma(a, a, Neg(z));
  const V e = Mul(ExpV(Neg(z)), Sub(one, l));
  V big = Sub(one, Mul(e, w));
  big = CopySign(big, x);
  return Select(CmpLt(a, Set1<V>(kErfBranch)), small, big);
}

// GELU, tanh approximation (matches the pre-SIMD scalar op):
// 0.5 * x * (1 + tanh(c * (x + a*x^3))).
template <class V>
inline V GeluV(V x) {
  const V one = Set1<V>(1.0f);
  const V x3 = Mul(Mul(x, x), x);
  const V u = Mul(Set1<V>(kGeluC), Fma(Set1<V>(kGeluA), x3, x));
  const V th = TanhV(u);
  return Mul(Mul(Set1<V>(0.5f), x), Add(one, th));
}

// d/dx GELU: 0.5*(1+t) + 0.5*x*(1-t^2)*du, t = tanh(u).
template <class V>
inline V GeluBwdV(V x) {
  const V one = Set1<V>(1.0f);
  const V half = Set1<V>(0.5f);
  const V x2 = Mul(x, x);
  const V x3 = Mul(x2, x);
  const V u = Mul(Set1<V>(kGeluC), Fma(Set1<V>(kGeluA), x3, x));
  const V t = TanhV(u);
  const V du = Mul(Set1<V>(kGeluC),
                   Fma(Set1<V>(3.0f * kGeluA), x2, one));
  const V sech2 = Sub(one, Mul(t, t));
  return Fma(Mul(Mul(half, x), sech2), du, Mul(half, Add(one, t)));
}

// Scalar-path wrappers used by kernel tails and tests.
inline float ExpS(float x) { return ExpV(V1{x}).v; }
inline float TanhS(float x) { return TanhV(V1{x}).v; }
inline float SigmoidS(float x) { return SigmoidV(V1{x}).v; }
inline float ErfS(float x) { return ErfV(V1{x}).v; }
inline float GeluS(float x) { return GeluV(V1{x}).v; }
inline float GeluBwdS(float x) { return GeluBwdV(V1{x}).v; }

}  // namespace simd
}  // namespace focus

#endif  // FOCUS_TENSOR_SIMD_VEC_COMMON_H_
