// Inference precision mode: selects the storage/compute precision used by
// inference-time ops (matmul, ProtoAttn assignment). Modeled on GradMode
// (tensor.h): a thread-local flag read at op entry on the launching
// thread, so concurrent serving tenants can run different precisions.
//
//   kF32       default; bit-identical to the historical float32 path.
//   kBf16      weights/activations stored as bf16 (bf16.h), f32 accumulate.
//   kInt8Proto additionally quantizes the frozen prototype bank to int8
//              with int32 accumulation in ProtoAttn token assignment.
//
// The process-wide default is parsed once from FOCUS_PRECISION
// ({f32,bf16,int8proto}; unset or unrecognized -> f32 with a warning) and
// seeds each thread's initial mode. Training ignores the mode entirely:
// the low-precision paths only engage when gradients are off.
#ifndef FOCUS_TENSOR_PRECISION_H_
#define FOCUS_TENSOR_PRECISION_H_

namespace focus {

enum class Precision { kF32, kBf16, kInt8Proto };

const char* PrecisionName(Precision p);

// Default precision for new threads: FOCUS_PRECISION env, parsed once.
Precision DefaultPrecision();

// Thread-local precision flag (same shape as GradMode).
class PrecisionMode {
 public:
  static Precision Get();
  static void Set(Precision p);
};

class PrecisionGuard {
 public:
  explicit PrecisionGuard(Precision p) : prev_(PrecisionMode::Get()) {
    PrecisionMode::Set(p);
  }
  ~PrecisionGuard() { PrecisionMode::Set(prev_); }
  PrecisionGuard(const PrecisionGuard&) = delete;
  PrecisionGuard& operator=(const PrecisionGuard&) = delete;

 private:
  Precision prev_;
};

}  // namespace focus

#endif  // FOCUS_TENSOR_PRECISION_H_
