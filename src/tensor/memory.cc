#include "tensor/memory.h"

#include <atomic>

namespace focus {

namespace {
// Tensor buffers were historically allocated only on the thread that
// launches kernels (ParallelFor bodies operate on raw pointers into
// preallocated buffers and never construct tensors), but the serving
// engine's workers (src/serve) run whole forwards concurrently, so the
// counters must be thread-safe. Relaxed atomics: these are statistics,
// not synchronization, and the hot-path cost is one uncontended
// lock-free add per alloc/free.
std::atomic<int64_t> g_current_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_total_allocations{0};
std::atomic<int64_t> g_total_allocated_bytes{0};

void RaisePeakTo(int64_t current) {
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (current > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, current,
                                             std::memory_order_relaxed)) {
  }
}
}  // namespace

int64_t MemoryStats::CurrentBytes() {
  return g_current_bytes.load(std::memory_order_relaxed);
}
int64_t MemoryStats::PeakBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}
int64_t MemoryStats::TotalAllocations() {
  return g_total_allocations.load(std::memory_order_relaxed);
}
int64_t MemoryStats::TotalAllocatedBytes() {
  return g_total_allocated_bytes.load(std::memory_order_relaxed);
}

void MemoryStats::ResetPeak() {
  g_peak_bytes.store(g_current_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void MemoryStats::SetPeak(int64_t bytes) {
  g_peak_bytes.store(bytes, std::memory_order_relaxed);
}

void MemoryStats::RecordAlloc(int64_t bytes) {
  const int64_t current =
      g_current_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  g_total_allocations.fetch_add(1, std::memory_order_relaxed);
  g_total_allocated_bytes.fetch_add(bytes, std::memory_order_relaxed);
  RaisePeakTo(current);
}

void MemoryStats::RecordFree(int64_t bytes) {
  g_current_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace focus
