#include "tensor/memory.h"

#include <algorithm>

namespace focus {

namespace {
// Tensor buffers are only ever allocated/freed on the thread that launches
// kernels — ParallelFor bodies operate on raw pointers into preallocated
// buffers and never construct tensors (see DESIGN.md, "Parallel kernel
// execution"). Plain counters therefore keep the hot allocation path free
// of atomic traffic even with the thread pool enabled.
int64_t g_current_bytes = 0;
int64_t g_peak_bytes = 0;
int64_t g_total_allocations = 0;
int64_t g_total_allocated_bytes = 0;
}  // namespace

int64_t MemoryStats::CurrentBytes() { return g_current_bytes; }
int64_t MemoryStats::PeakBytes() { return g_peak_bytes; }
int64_t MemoryStats::TotalAllocations() { return g_total_allocations; }
int64_t MemoryStats::TotalAllocatedBytes() { return g_total_allocated_bytes; }

void MemoryStats::ResetPeak() { g_peak_bytes = g_current_bytes; }

void MemoryStats::SetPeak(int64_t bytes) { g_peak_bytes = bytes; }

void MemoryStats::RecordAlloc(int64_t bytes) {
  g_current_bytes += bytes;
  ++g_total_allocations;
  g_total_allocated_bytes += bytes;
  g_peak_bytes = std::max(g_peak_bytes, g_current_bytes);
}

void MemoryStats::RecordFree(int64_t bytes) { g_current_bytes -= bytes; }

}  // namespace focus
