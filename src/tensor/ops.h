// Differentiable tensor operations (free functions).
//
// Every op returns a fresh tensor; if grad mode is on and an input requires
// grad, the result carries an autograd node. Binary elementwise ops follow
// NumPy broadcasting. Reductions with `dim` accept negative axes.
#ifndef FOCUS_TENSOR_OPS_H_
#define FOCUS_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace focus {

// --- Elementwise binary (broadcasting) --------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }

// --- Scalar -----------------------------------------------------------------
Tensor AddScalar(const Tensor& x, float s);
Tensor MulScalar(const Tensor& x, float s);
Tensor PowScalar(const Tensor& x, float p);

// --- Unary ------------------------------------------------------------------
Tensor Neg(const Tensor& x);
Tensor Exp(const Tensor& x);
Tensor Log(const Tensor& x);    // CHECKs on non-positive inputs in debug use.
Tensor Sqrt(const Tensor& x);
Tensor Abs(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor Gelu(const Tensor& x);   // tanh approximation
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Erf(const Tensor& x);    // Gauss error function

// --- Linear algebra ---------------------------------------------------------
// Supports (m,k)x(k,n), batched (b,m,k)x(b,k,n), and broadcast
// (b,m,k)x(k,n) / (m,k)x(b,k,n).
Tensor MatMul(const Tensor& a, const Tensor& b);

// --- Reductions --------------------------------------------------------------
Tensor SumAll(const Tensor& x);    // -> shape {1}
Tensor MeanAll(const Tensor& x);   // -> shape {1}
Tensor Sum(const Tensor& x, int64_t dim, bool keepdim);
Tensor Mean(const Tensor& x, int64_t dim, bool keepdim);

// --- Normalization / attention helpers ---------------------------------------
// Softmax over the last dimension (numerically stabilized, fused backward).
Tensor SoftmaxLastDim(const Tensor& x);
// LayerNorm over the last dimension with affine params gamma/beta of shape
// {last_dim}.
Tensor LayerNormLastDim(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps = 1e-5f);

// --- Shape ------------------------------------------------------------------
Tensor Reshape(const Tensor& x, Shape shape);           // aliases the buffer
Tensor Transpose(const Tensor& x, int64_t d0, int64_t d1);  // materializes
Tensor Permute(const Tensor& x, const std::vector<int64_t>& dims);
Tensor Slice(const Tensor& x, int64_t dim, int64_t start, int64_t end);
Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim);
// Rows of `x` along `dim` gathered at `indices` (may repeat). Backward
// scatter-adds.
Tensor IndexSelect(const Tensor& x, int64_t dim,
                   const std::vector<int64_t>& indices);
// Materialized NumPy-style broadcast to `shape`.
Tensor BroadcastTo(const Tensor& x, const Shape& shape);

// --- Convolution -------------------------------------------------------------
// x: (B, Cin, L), w: (Cout, Cin, K), optional bias (Cout).
Tensor Conv1d(const Tensor& x, const Tensor& w, const Tensor& bias,
              int64_t stride = 1, int64_t padding = 0, int64_t dilation = 1);
// x: (B, Cin, H, W), w: (Cout, Cin, KH, KW), optional bias (Cout).
Tensor Conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
              int64_t stride = 1, int64_t padding = 0);

// --- Losses ------------------------------------------------------------------
Tensor MseLoss(const Tensor& pred, const Tensor& target);
Tensor L1Loss(const Tensor& pred, const Tensor& target);

// --- Non-differentiable helpers ----------------------------------------------
// a += b with equal shapes; bypasses autograd (used by the engine/optimizers).
void AddInPlace(Tensor& a, const Tensor& b);

// Broadcast result shape per NumPy rules; CHECKs on incompatibility.
Shape BroadcastShapes(const Shape& a, const Shape& b);

}  // namespace focus

#endif  // FOCUS_TENSOR_OPS_H_
