// Reverse-mode autograd tape.
//
// Each differentiable op produces a single output tensor and attaches a Node
// recording (a) the op's input tensors — which keeps the upstream graph
// alive — and (b) a closure mapping d(loss)/d(output) to d(loss)/d(input_i).
// `RunBackward` topologically orders the reachable nodes and propagates
// gradients, accumulating into leaf tensors' `grad` buffers. Intermediate
// gradients live only in a transient map and are freed as soon as consumed.
//
// Limitations (by design, documented): single-output ops only, no
// higher-order gradients (backward runs under NoGradGuard).
#ifndef FOCUS_TENSOR_AUTOGRAD_H_
#define FOCUS_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace focus {
namespace autograd {

class Node {
 public:
  // The backward function receives grad wrt the node's output and returns
  // grads wrt each input (same order); undefined Tensors mark inputs that
  // receive no gradient (e.g. integer-like index tensors).
  using BackwardFn = std::function<std::vector<Tensor>(const Tensor&)>;

  Node(std::string name, std::vector<Tensor> inputs, BackwardFn backward)
      : name_(std::move(name)),
        inputs_(std::move(inputs)),
        backward_(std::move(backward)) {}

  std::vector<Tensor> Backward(const Tensor& grad_output) const {
    return backward_(grad_output);
  }

  const std::string& name() const { return name_; }
  const std::vector<Tensor>& inputs() const { return inputs_; }

  void set_output(const std::shared_ptr<TensorImpl>& impl) { output_ = impl; }
  std::shared_ptr<TensorImpl> output() const { return output_.lock(); }

  // Graph-audit state (FOCUS_DEBUG_CHECK tier): how many backward passes
  // have executed this node. RunBackward frees intermediate gradients as it
  // consumes them, so a second pass through the same node runs on a freed
  // graph; the auditor aborts instead of producing silently-wrong grads.
  int backward_runs() const { return backward_runs_; }
  void mark_backward_run() { ++backward_runs_; }

 private:
  std::string name_;
  std::vector<Tensor> inputs_;
  BackwardFn backward_;
  // Weak: the output impl owns this node, not vice versa.
  std::weak_ptr<TensorImpl> output_;
  int backward_runs_ = 0;
};

// Wires `out` into the tape if grad mode is on and any input requires grad.
// Returns `out` for chaining. Ops call this exactly once per result.
Tensor MakeResult(Tensor out, std::string name, std::vector<Tensor> inputs,
                  Node::BackwardFn backward);

// Entry point used by Tensor::Backward(). `root` must be a scalar.
void RunBackward(const Tensor& root);

}  // namespace autograd
}  // namespace focus

#endif  // FOCUS_TENSOR_AUTOGRAD_H_
