// Reduction kernels (sum / mean, full and per-axis) and BroadcastTo.
//
// Per-axis Sum parallelizes over whichever of the outer/inner index spaces
// is larger; either way each output element is reduced by exactly one
// thread. Contiguous reductions (inner == 1) go through the SIMD layer's
// row_sum — an 8-lane strided partial-sum whose lane split is anchored
// at the row start and whose reduction tree is fixed, so the order is
// identical on every backend and thread count. Strided reductions
// accumulate r-ascending per element via the SIMD add kernels. SumAll
// stays serial on purpose: its double-precision running sum would change
// grouping under sharding.
#include <algorithm>
#include <cstring>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/plan_hooks.h"
#include "tensor/simd/vec.h"

namespace focus {

namespace {
using internal_ops::NormalizeDim;
}  // namespace

Tensor SumAll(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("SumAll", x);
  double acc = 0.0;  // double accumulator for numerical robustness
  const float* px = x.data();
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) acc += px[i];
  FlopCounter::Add(n);
  Tensor out = Tensor::Scalar(static_cast<float>(acc));
  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(plan_hooks::StepKind::kOpaque, "SumAll", {x}, out,
                       [n](float* const* bufs) {
                         const float* rx = bufs[0];
                         double racc = 0.0;
                         for (int64_t i = 0; i < n; ++i) racc += rx[i];
                         bufs[1][0] = static_cast<float>(racc);
                       });
  }
  Shape xs = x.shape();
  return autograd::MakeResult(
      out, "SumAll", {x}, [xs](const Tensor& g) -> std::vector<Tensor> {
        return {Tensor::Full(xs, g.Item())};
      });
}

Tensor MeanAll(const Tensor& x) {
  FOCUS_OP_INPUT_CHECK("MeanAll", x);
  const float inv_n = 1.0f / static_cast<float>(x.numel());
  return MulScalar(SumAll(x), inv_n);
}

Tensor Sum(const Tensor& x, int64_t dim, bool keepdim) {
  FOCUS_OP_INPUT_CHECK("Sum", x);
  dim = NormalizeDim(dim, x.dim());
  const Shape& xs = x.shape();
  Shape out_shape;
  for (int64_t d = 0; d < x.dim(); ++d) {
    if (d == dim) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(xs[static_cast<size_t>(d)]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);

  // View as (outer, reduce, inner) for a cache-friendly loop.
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= xs[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < x.dim(); ++d) {
    inner *= xs[static_cast<size_t>(d)];
  }
  const int64_t reduce = xs[static_cast<size_t>(dim)];

  // The r == 0 pass *assigns* instead of accumulating into a pre-zeroed
  // buffer, so the (possibly recycled, garbage-filled) output needs no
  // zero fill and is written exactly once per reduction step. The
  // per-element accumulation order stays r-ascending, so outputs remain
  // bit-identical across thread counts.
  Tensor out = Tensor::Empty(out_shape);
  const float* px = x.data();
  float* po = out.data();
  const simd::KernelTable& kt = simd::Kernels();
  if (reduce == 0) {
    std::fill_n(po, out.numel(), 0.0f);
  } else if (inner == 1) {
    // Reducing the innermost dim: each output is the sum of a
    // contiguous row — the SIMD row_sum's fixed lane split applies.
    const int64_t grain =
        std::max<int64_t>(1, 16384 / std::max<int64_t>(1, reduce));
    ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        po[o] = kt.row_sum(px + o * reduce, reduce);
      }
    });
  } else if (outer >= inner) {
    // Shards own disjoint outer slices (disjoint output rows); the
    // reduction stays r-ascending per element (vector add over inner).
    const int64_t grain = std::max<int64_t>(
        1, 16384 / std::max<int64_t>(1, reduce * inner));
    ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        float* orow = po + o * inner;
        for (int64_t r = 0; r < reduce; ++r) {
          const float* row = px + (o * reduce + r) * inner;
          if (r == 0) {
            std::memcpy(orow, row,
                        static_cast<size_t>(inner) * sizeof(float));
          } else {
            kt.add_inplace(orow, row, inner);
          }
        }
      }
    });
  } else {
    // Shards own disjoint inner column ranges of every output row; the
    // reduction stays r-ascending per element.
    const int64_t grain =
        std::max<int64_t>(1, 16384 / std::max<int64_t>(1, outer * reduce));
    ParallelFor(0, inner, grain, [&](int64_t i0, int64_t i1) {
      for (int64_t o = 0; o < outer; ++o) {
        float* orow = po + o * inner;
        for (int64_t r = 0; r < reduce; ++r) {
          const float* row = px + (o * reduce + r) * inner;
          if (r == 0) {
            std::memcpy(orow + i0, row + i0,
                        static_cast<size_t>(i1 - i0) * sizeof(float));
          } else {
            kt.add_inplace(orow + i0, row + i0, i1 - i0);
          }
        }
      }
    });
  }
  FlopCounter::Add(x.numel());
  if (plan_hooks::CaptureActive()) {
    const auto row_sum = kt.row_sum;
    const auto add_inplace = kt.add_inplace;
    const int64_t out_numel = out.numel();
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "Sum", {x}, out,
        [row_sum, add_inplace, outer, inner, reduce,
         out_numel](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          if (reduce == 0) {
            std::fill_n(ro, out_numel, 0.0f);
          } else if (inner == 1) {
            const int64_t grain =
                std::max<int64_t>(1, 16384 / std::max<int64_t>(1, reduce));
            ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
              for (int64_t o = o0; o < o1; ++o) {
                ro[o] = row_sum(rx + o * reduce, reduce);
              }
            });
          } else if (outer >= inner) {
            const int64_t grain = std::max<int64_t>(
                1, 16384 / std::max<int64_t>(1, reduce * inner));
            ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
              for (int64_t o = o0; o < o1; ++o) {
                float* orow = ro + o * inner;
                for (int64_t r = 0; r < reduce; ++r) {
                  const float* row = rx + (o * reduce + r) * inner;
                  if (r == 0) {
                    std::memcpy(orow, row,
                                static_cast<size_t>(inner) * sizeof(float));
                  } else {
                    add_inplace(orow, row, inner);
                  }
                }
              }
            });
          } else {
            const int64_t grain = std::max<int64_t>(
                1, 16384 / std::max<int64_t>(1, outer * reduce));
            ParallelFor(0, inner, grain, [&](int64_t i0, int64_t i1) {
              for (int64_t o = 0; o < outer; ++o) {
                float* orow = ro + o * inner;
                for (int64_t r = 0; r < reduce; ++r) {
                  const float* row = rx + (o * reduce + r) * inner;
                  if (r == 0) {
                    std::memcpy(orow + i0, row + i0,
                                static_cast<size_t>(i1 - i0) *
                                    sizeof(float));
                  } else {
                    add_inplace(orow + i0, row + i0, i1 - i0);
                  }
                }
              }
            });
          }
        });
  }

  Shape x_shape = xs;
  Shape keep_shape = xs;
  keep_shape[static_cast<size_t>(dim)] = 1;
  return autograd::MakeResult(
      out, "Sum", {x},
      [x_shape, keep_shape](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {BroadcastTo(Reshape(g, keep_shape), x_shape)};
      });
}

Tensor Mean(const Tensor& x, int64_t dim, bool keepdim) {
  FOCUS_OP_INPUT_CHECK("Mean", x);
  const int64_t d = NormalizeDim(dim, x.dim());
  const float inv = 1.0f / static_cast<float>(x.size(d));
  return MulScalar(Sum(x, d, keepdim), inv);
}

Tensor BroadcastTo(const Tensor& x, const Shape& shape) {
  FOCUS_OP_INPUT_CHECK("BroadcastTo", x);
  if (x.shape() == shape) {
    Tensor copy = x.Clone();
    if (plan_hooks::CaptureActive()) {
      const int64_t n = x.numel();
      plan_hooks::Record(plan_hooks::StepKind::kOpaque, "BroadcastTo",
                         {x}, copy, [n](float* const* bufs) {
                           std::memcpy(bufs[1], bufs[0],
                                       static_cast<size_t>(n) *
                                           sizeof(float));
                         });
    }
    return copy;
  }
  FOCUS_CHECK_LE(x.dim(), static_cast<int64_t>(shape.size()))
      << "BroadcastTo cannot reduce rank";
  Tensor out = Tensor::Empty(shape);
  const auto sx = internal_ops::BroadcastReadStrides(x.shape(), shape);
  const auto so = internal_ops::Strides(shape);
  const int64_t n = out.numel();
  const int64_t rank = static_cast<int64_t>(shape.size());
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, n, 4096, [&](int64_t f0, int64_t f1) {
    for (int64_t flat = f0; flat < f1; ++flat) {
      int64_t rem = flat, ox = 0;
      for (int64_t d = 0; d < rank; ++d) {
        const int64_t idx = rem / so[d];
        rem -= idx * so[d];
        ox += idx * sx[d];
      }
      po[flat] = px[ox];
    }
  });
  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "BroadcastTo", {x}, out,
        [sx, so, n, rank](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          ParallelFor(0, n, 4096, [&](int64_t f0, int64_t f1) {
            for (int64_t flat = f0; flat < f1; ++flat) {
              int64_t rem = flat, ox = 0;
              for (int64_t d = 0; d < rank; ++d) {
                const int64_t idx = rem / so[d];
                rem -= idx * so[d];
                ox += idx * sx[d];
              }
              ro[flat] = rx[ox];
            }
          });
        });
  }

  Shape xs = x.shape();
  return autograd::MakeResult(
      out, "BroadcastTo", {x}, [xs](const Tensor& g) -> std::vector<Tensor> {
        return {internal_ops::ReduceGradToShape(g, xs)};
      });
}

}  // namespace focus
