// Shape manipulation ops: reshape (aliasing), transpose/permute, slice,
// concatenation, index-select; plus Tensor member conveniences.
#include <cstring>
#include <numeric>

#include "parallel/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"
#include "tensor/plan_hooks.h"

namespace focus {

namespace {
using internal_ops::NormalizeDim;
using internal_ops::Strides;
}  // namespace

Tensor Reshape(const Tensor& x, Shape shape) {
  FOCUS_OP_INPUT_CHECK("Reshape", x);
  // Allow one inferred dimension (-1).
  int64_t infer = -1;
  int64_t known = 1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      FOCUS_CHECK_EQ(infer, -1) << "at most one -1 in Reshape";
      infer = static_cast<int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    FOCUS_CHECK(known > 0 && x.numel() % known == 0)
        << "cannot infer dim for reshape of " << ShapeToString(x.shape())
        << " to " << ShapeToString(shape);
    shape[static_cast<size_t>(infer)] = x.numel() / known;
  }
  FOCUS_CHECK_EQ(ShapeNumel(shape), x.numel())
      << "Reshape " << ShapeToString(x.shape()) << " -> "
      << ShapeToString(shape);

  auto impl = std::make_shared<TensorImpl>(shape, x.impl()->buffer());
  Tensor out = Tensor::FromImpl(std::move(impl));
  Shape xs = x.shape();
  return autograd::MakeResult(
      out, "Reshape", {x}, [xs](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {Reshape(g, xs)};
      });
}

Tensor Permute(const Tensor& x, const std::vector<int64_t>& dims) {
  FOCUS_OP_INPUT_CHECK("Permute", x);
  const int64_t rank = x.dim();
  FOCUS_CHECK_EQ(static_cast<int64_t>(dims.size()), rank);
  std::vector<bool> seen(static_cast<size_t>(rank), false);
  Shape out_shape(static_cast<size_t>(rank));
  for (int64_t d = 0; d < rank; ++d) {
    const int64_t src = NormalizeDim(dims[static_cast<size_t>(d)], rank);
    FOCUS_CHECK(!seen[static_cast<size_t>(src)]) << "duplicate dim in Permute";
    seen[static_cast<size_t>(src)] = true;
    out_shape[static_cast<size_t>(d)] = x.size(src);
  }

  Tensor out = Tensor::Empty(out_shape);
  const auto in_strides = Strides(x.shape());
  const auto out_strides = Strides(out_shape);
  const float* px = x.data();
  float* po = out.data();
  const int64_t n = x.numel();
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t rem = flat, off = 0;
    for (int64_t d = 0; d < rank; ++d) {
      const int64_t idx = rem / out_strides[static_cast<size_t>(d)];
      rem -= idx * out_strides[static_cast<size_t>(d)];
      off +=
          idx * in_strides[static_cast<size_t>(dims[static_cast<size_t>(d)])];
    }
    po[flat] = px[off];
  }

  if (plan_hooks::CaptureActive()) {
    // Pure data movement: any traversal produces the identical bytes,
    // so the replay closure may use a faster one. Every output row of
    // `inner` floats reads the source at a fixed stride `stride_in`
    // (the input stride of whichever axis lands last), so the div/mod
    // walk runs once per row, the inner sweep is a plain strided copy —
    // a memcpy when the permutation keeps the last axis — and rows are
    // independent, so the copy also shards across the pool.
    const int64_t inner = rank > 0 ? x.size(dims[static_cast<size_t>(rank - 1)])
                                   : 1;
    const int64_t stride_in =
        rank > 0 ? in_strides[static_cast<size_t>(
                       dims[static_cast<size_t>(rank - 1)])]
                 : 1;
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "Permute", {x}, out,
        [in_strides, out_strides, dims, rank, n, inner,
         stride_in](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          if (rank == 0) {
            ro[0] = rx[0];
            return;
          }
          const int64_t rows = n / inner;
          ParallelFor(
              0, rows, plan_hooks::RowGrain(inner),
              [&](int64_t r0, int64_t r1) {
                for (int64_t row = r0; row < r1; ++row) {
                  int64_t rem = row * inner, off = 0;
                  for (int64_t d = 0; d + 1 < rank; ++d) {
                    const int64_t idx =
                        rem / out_strides[static_cast<size_t>(d)];
                    rem -= idx * out_strides[static_cast<size_t>(d)];
                    off += idx *
                           in_strides[static_cast<size_t>(
                               dims[static_cast<size_t>(d)])];
                  }
                  float* o = ro + row * inner;
                  const float* src = rx + off;
                  if (stride_in == 1) {
                    std::memcpy(o, src,
                                static_cast<size_t>(inner) * sizeof(float));
                  } else {
                    for (int64_t j = 0; j < inner; ++j) {
                      o[j] = src[j * stride_in];
                    }
                  }
                }
              });
        });
  }

  // Inverse permutation for backward.
  std::vector<int64_t> inverse(static_cast<size_t>(rank));
  for (int64_t d = 0; d < rank; ++d) {
    inverse[static_cast<size_t>(dims[static_cast<size_t>(d)])] = d;
  }
  return autograd::MakeResult(
      out, "Permute", {x}, [inverse](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        return {Permute(g, inverse)};
      });
}

Tensor Transpose(const Tensor& x, int64_t d0, int64_t d1) {
  FOCUS_OP_INPUT_CHECK("Transpose", x);
  const int64_t rank = x.dim();
  d0 = NormalizeDim(d0, rank);
  d1 = NormalizeDim(d1, rank);
  std::vector<int64_t> dims(static_cast<size_t>(rank));
  std::iota(dims.begin(), dims.end(), 0);
  std::swap(dims[static_cast<size_t>(d0)], dims[static_cast<size_t>(d1)]);
  return Permute(x, dims);
}

Tensor Slice(const Tensor& x, int64_t dim, int64_t start, int64_t end) {
  FOCUS_OP_INPUT_CHECK("Slice", x);
  dim = NormalizeDim(dim, x.dim());
  const int64_t size = x.size(dim);
  if (start < 0) start += size;
  if (end < 0) end += size;
  FOCUS_CHECK(0 <= start && start < end && end <= size)
      << "Slice [" << start << ", " << end << ") out of range for dim " << dim
      << " of " << ShapeToString(x.shape());

  Shape out_shape = x.shape();
  out_shape[static_cast<size_t>(dim)] = end - start;

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= x.size(d);
  for (int64_t d = dim + 1; d < x.dim(); ++d) inner *= x.size(d);
  const int64_t len = end - start;

  Tensor out = Tensor::Empty(out_shape);
  const float* px = x.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * len * inner, px + (o * size + start) * inner,
                static_cast<size_t>(len * inner) * sizeof(float));
  }

  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "Slice", {x}, out,
        [outer, size, start, inner, len](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          for (int64_t o = 0; o < outer; ++o) {
            std::memcpy(ro + o * len * inner,
                        rx + (o * size + start) * inner,
                        static_cast<size_t>(len * inner) * sizeof(float));
          }
        });
  }

  Shape xs = x.shape();
  return autograd::MakeResult(
      out, "Slice", {x},
      [xs, dim, start, size, outer, inner,
       len](const Tensor& g) -> std::vector<Tensor> {
        Tensor gin = Tensor::Zeros(xs);
        const float* pg = g.data();
        float* pi = gin.data();
        for (int64_t o = 0; o < outer; ++o) {
          std::memcpy(pi + (o * size + start) * inner, pg + o * len * inner,
                      static_cast<size_t>(len * inner) * sizeof(float));
        }
        return {gin};
      });
}

Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim) {
  FOCUS_CHECK(!tensors.empty()) << "Cat of zero tensors";
  for (const Tensor& t : tensors) FOCUS_OP_INPUT_CHECK("Cat", t);
  const int64_t rank = tensors[0].dim();
  dim = NormalizeDim(dim, rank);
  Shape out_shape = tensors[0].shape();
  int64_t total = 0;
  for (const Tensor& t : tensors) {
    FOCUS_CHECK_EQ(t.dim(), rank) << "Cat rank mismatch";
    for (int64_t d = 0; d < rank; ++d) {
      if (d != dim) {
        FOCUS_CHECK_EQ(t.size(d), out_shape[static_cast<size_t>(d)])
            << "Cat shape mismatch at dim " << d;
      }
    }
    total += t.size(dim);
  }
  out_shape[static_cast<size_t>(dim)] = total;

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= out_shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= out_shape[static_cast<size_t>(d)];
  }

  Tensor out = Tensor::Empty(out_shape);
  float* po = out.data();
  int64_t offset = 0;
  std::vector<int64_t> sizes;
  for (const Tensor& t : tensors) {
    const int64_t len = t.size(dim);
    sizes.push_back(len);
    const float* pt = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + (o * total + offset) * inner, pt + o * len * inner,
                  static_cast<size_t>(len * inner) * sizeof(float));
    }
    offset += len;
  }

  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "Cat",
        {tensors.begin(), tensors.end()}, out,
        [sizes, outer, total, inner](float* const* bufs) {
          float* ro = bufs[sizes.size()];
          int64_t off = 0;
          for (size_t t = 0; t < sizes.size(); ++t) {
            const int64_t len = sizes[t];
            const float* rt = bufs[t];
            for (int64_t o = 0; o < outer; ++o) {
              std::memcpy(ro + (o * total + off) * inner,
                          rt + o * len * inner,
                          static_cast<size_t>(len * inner) * sizeof(float));
            }
            off += len;
          }
        });
  }

  return autograd::MakeResult(
      out, "Cat", {tensors.begin(), tensors.end()},
      [sizes, dim](const Tensor& g) -> std::vector<Tensor> {
        NoGradGuard no_grad;
        std::vector<Tensor> grads;
        int64_t start = 0;
        for (int64_t len : sizes) {
          grads.push_back(Slice(g, dim, start, start + len));
          start += len;
        }
        return grads;
      });
}

Tensor IndexSelect(const Tensor& x, int64_t dim,
                   const std::vector<int64_t>& indices) {
  FOCUS_OP_INPUT_CHECK("IndexSelect", x);
  dim = NormalizeDim(dim, x.dim());
  const int64_t size = x.size(dim);
  for (int64_t idx : indices) {
    FOCUS_CHECK(idx >= 0 && idx < size)
        << "IndexSelect index " << idx << " out of range [0, " << size << ")";
  }
  Shape out_shape = x.shape();
  out_shape[static_cast<size_t>(dim)] = static_cast<int64_t>(indices.size());

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= x.size(d);
  for (int64_t d = dim + 1; d < x.dim(); ++d) inner *= x.size(d);
  const int64_t len = static_cast<int64_t>(indices.size());

  Tensor out = Tensor::Empty(out_shape);
  const float* px = x.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < len; ++i) {
      std::memcpy(po + (o * len + i) * inner,
                  px + (o * size + indices[static_cast<size_t>(i)]) * inner,
                  static_cast<size_t>(inner) * sizeof(float));
    }
  }

  if (plan_hooks::CaptureActive()) {
    plan_hooks::Record(
        plan_hooks::StepKind::kOpaque, "IndexSelect", {x}, out,
        [indices, size, outer, inner, len](float* const* bufs) {
          const float* rx = bufs[0];
          float* ro = bufs[1];
          for (int64_t o = 0; o < outer; ++o) {
            for (int64_t i = 0; i < len; ++i) {
              std::memcpy(
                  ro + (o * len + i) * inner,
                  rx + (o * size + indices[static_cast<size_t>(i)]) * inner,
                  static_cast<size_t>(inner) * sizeof(float));
            }
          }
        });
  }

  Shape xs = x.shape();
  return autograd::MakeResult(
      out, "IndexSelect", {x},
      [xs, indices, size, outer, inner,
       len](const Tensor& g) -> std::vector<Tensor> {
        Tensor gin = Tensor::Zeros(xs);
        const float* pg = g.data();
        float* pi = gin.data();
        for (int64_t o = 0; o < outer; ++o) {
          for (int64_t i = 0; i < len; ++i) {
            float* dst =
                pi + (o * size + indices[static_cast<size_t>(i)]) * inner;
            const float* src = pg + (o * len + i) * inner;
            for (int64_t j = 0; j < inner; ++j) dst[j] += src[j];
          }
        }
        return {gin};
      });
}

// --- Tensor member conveniences ---------------------------------------------

Tensor Tensor::Reshape(Shape shape) const {
  return ::focus::Reshape(*this, std::move(shape));
}

Tensor Tensor::Transpose(int64_t d0, int64_t d1) const {
  return ::focus::Transpose(*this, d0, d1);
}

Tensor Tensor::Permute(const std::vector<int64_t>& dims) const {
  return ::focus::Permute(*this, dims);
}

Tensor Tensor::Unsqueeze(int64_t dim) const {
  const int64_t rank = dim >= 0 ? dim : this->dim() + dim + 1;
  FOCUS_CHECK(rank >= 0 && rank <= this->dim());
  Shape s = shape();
  s.insert(s.begin() + rank, 1);
  return ::focus::Reshape(*this, s);
}

Tensor Tensor::Squeeze(int64_t dim) const {
  const int64_t d = internal_ops::NormalizeDim(dim, this->dim());
  FOCUS_CHECK_EQ(size(d), 1) << "Squeeze on non-unit dim";
  Shape s = shape();
  s.erase(s.begin() + d);
  return ::focus::Reshape(*this, s);
}

}  // namespace focus
