// Capture hooks for tape-free execution plans (src/plan).
//
// When a plan capture is active (a CaptureSink is installed), every
// instrumented op site in ops_*.cc records a StepRecord describing the
// kernel launch it just performed: the op kind, its input/output
// tensors, any scalar parameter, and a replay closure that re-runs the
// *same* kernel sequence against caller-supplied raw buffers. The
// closure captures resolved shapes, grains, and kernel pointers by
// value — never the capture-time buffer addresses — so the plan
// compiler can rebind it onto slab offsets and per-call input pointers.
//
// Because the closure is built at the op site from the very code the
// eager path just executed, a plan replay performs the identical IEEE
// operations in the identical order: bit-identity with eager holds by
// construction, for both SIMD backends and any thread count.
//
// MakeResult() additionally notifies the sink of every op output; an
// output the sink has never seen (an op without a record call, e.g.
// Conv2d) marks the capture as failed, and the caller falls back to
// eager execution permanently for that (model, shape). This makes
// uninstrumented ops safe rather than silently wrong.
//
// All hooks are no-ops (one relaxed pointer load) when no sink is
// installed. Captures are process-global and must not run concurrently.
#ifndef FOCUS_TENSOR_PLAN_HOOKS_H_
#define FOCUS_TENSOR_PLAN_HOOKS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace focus {
namespace plan_hooks {

// Step classification the plan compiler fuses over. Anything without a
// fusion rule is kOpaque; the replay closure alone defines what it does.
enum class StepKind {
  kOpaque,
  kAdd,        // equal-shape elementwise add
  kAddScalar,  // x + s
  kMulScalar,  // x * s
  kGelu,
  kSigmoid,
  kSqrt,
  kSoftmaxRows,  // softmax over `rows` rows of length `inner`
};

// Replay closure: bufs holds one float* per recorded tensor, in the
// order [inputs..., output, scratch...]. Buffers are distinct (plans
// never alias step operands) and sized to the recorded numels.
using StepFn = std::function<void(float* const* bufs)>;

struct StepRecord {
  StepKind kind = StepKind::kOpaque;
  const char* name = "";  // static-lifetime op label, for diagnostics
  std::vector<Tensor> inputs;
  Tensor output;
  // Extra per-call scratch buffers (floats); lifetime is the step only.
  // LayerNorm uses two `rows`-sized slots for means/rstds.
  std::vector<int64_t> scratch_numels;
  StepFn fn;
  float scalar = 0.0f;           // kAddScalar / kMulScalar operand
  int64_t rows = 0, inner = 0;   // kSoftmaxRows geometry
  // Storage element size of the output buffer. f32 steps leave the
  // default; bf16-producing steps (PackBf16) set 2 and give the
  // logical element count in out_numel (the backing Tensor is a
  // byte-capacity float buffer whose numel is NOT the element count).
  // The plan slab solver sizes this value's lifetime in bytes from
  // out_numel * out_elem_bytes.
  int32_t out_elem_bytes = 4;
  int64_t out_numel = -1;  // -1: use output.numel()
};

class CaptureSink {
 public:
  virtual ~CaptureSink() = default;
  virtual void OnStep(StepRecord step) = 0;
  // Called from MakeResult for every op output (after the op's own
  // OnStep, if any). Unknown output buffer => capture failure.
  virtual void OnResult(const char* name, const Tensor& out) = 0;
  // An op that cannot be captured at all (in-place mutation).
  virtual void OnUnsupported(const char* what) = 0;
  // A tracked tensor buffer was returned to the allocator. The sink
  // must drop any pointer-keyed state for it: the allocator recycles
  // buffers, so a later unrelated tensor (e.g. a factory-made constant)
  // can reuse the address of a dead intermediate.
  virtual void OnFree(const float* ptr) = 0;
};

namespace internal_plan {
extern std::atomic<CaptureSink*> g_sink;
}  // namespace internal_plan

inline bool CaptureActive() {
  return internal_plan::g_sink.load(std::memory_order_relaxed) != nullptr;
}

// Installs/clears the process-global sink. Passing a sink while one is
// installed is a CHECK failure (captures must not nest).
void SetCaptureSink(CaptureSink* sink);

void RecordStep(StepRecord step);
void NotifyResult(const char* name, const Tensor& out);
void NotifyUnsupported(const char* what);
void NotifyFree(const float* ptr);

// Convenience wrapper for the common record shape (no scratch).
inline void Record(StepKind kind, const char* name,
                   std::vector<Tensor> inputs, const Tensor& out, StepFn fn,
                   float scalar = 0.0f) {
  StepRecord rec;
  rec.kind = kind;
  rec.name = name;
  rec.inputs = std::move(inputs);
  rec.output = out;
  rec.fn = std::move(fn);
  rec.scalar = scalar;
  RecordStep(std::move(rec));
}

// Shard grain every elementwise op uses for ParallelFor. Lives here so
// the plan compiler's fused sweeps shard exactly like the eager ops
// they replace (identical grains keep thread-count bit-identity).
inline constexpr int64_t kElemGrain = 16384;

// Row-sharding grain for softmax/layernorm-style row kernels.
inline int64_t RowGrain(int64_t n) {
  return std::max<int64_t>(1, 4096 / (n + 1));
}

}  // namespace plan_hooks
}  // namespace focus

#endif  // FOCUS_TENSOR_PLAN_HOOKS_H_
