#include "optim/optimizer.h"

#include <cmath>

#include "utils/check.h"

namespace focus {
namespace optim {

Optimizer::Optimizer(std::vector<Tensor> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const Tensor& p : params_) {
    FOCUS_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameter must be a defined leaf requiring grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    Tensor g = p.Grad();
    if (!g.defined()) continue;
    float* pd = p.data();
    const float* gd = g.data();
    const int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[i];
      if (vel.empty()) vel.assign(static_cast<size_t>(n), 0.0f);
      for (int64_t j = 0; j < n; ++j) {
        vel[static_cast<size_t>(j)] =
            momentum_ * vel[static_cast<size_t>(j)] + gd[j];
        pd[j] -= lr_ * vel[static_cast<size_t>(j)];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) pd[j] -= lr_ * gd[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::AdamStep(float weight_decay, bool decoupled) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    Tensor g = p.Grad();
    if (!g.defined()) continue;
    float* pd = p.data();
    const float* gd = g.data();
    const int64_t n = p.numel();
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.empty()) {
      m.assign(static_cast<size_t>(n), 0.0f);
      v.assign(static_cast<size_t>(n), 0.0f);
    }
    for (int64_t j = 0; j < n; ++j) {
      float grad = gd[j];
      if (weight_decay > 0.0f && !decoupled) grad += weight_decay * pd[j];
      m[static_cast<size_t>(j)] =
          beta1_ * m[static_cast<size_t>(j)] + (1.0f - beta1_) * grad;
      v[static_cast<size_t>(j)] = beta2_ * v[static_cast<size_t>(j)] +
                                  (1.0f - beta2_) * grad * grad;
      const float mhat = m[static_cast<size_t>(j)] / bc1;
      const float vhat = v[static_cast<size_t>(j)] / bc2;
      if (weight_decay > 0.0f && decoupled) {
        pd[j] -= lr_ * weight_decay * pd[j];
      }
      pd[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::Step() { AdamStep(/*weight_decay=*/0.0f, /*decoupled=*/false); }

AdamW::AdamW(std::vector<Tensor> params, float lr, float weight_decay,
             float beta1, float beta2, float eps)
    : Adam(std::move(params), lr, beta1, beta2, eps),
      weight_decay_(weight_decay) {}

void AdamW::Step() { AdamStep(weight_decay_, /*decoupled=*/true); }

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  double sq = 0.0;
  for (const Tensor& p : params) {
    Tensor g = p.Grad();
    if (!g.defined()) continue;
    const float* gd = g.data();
    for (int64_t j = 0; j < g.numel(); ++j) {
      sq += static_cast<double>(gd[j]) * gd[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Tensor& p : params) {
      Tensor g = p.Grad();
      if (!g.defined()) continue;
      float* gd = g.data();
      for (int64_t j = 0; j < g.numel(); ++j) gd[j] *= scale;
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace focus
