#include "optim/scheduler.h"

#include <cmath>
#include <numbers>

#include "utils/check.h"

namespace focus {
namespace optim {

CosineDecayLr::CosineDecayLr(float base_lr, int64_t total_steps, float min_lr)
    : base_lr_(base_lr), total_steps_(total_steps), min_lr_(min_lr) {
  FOCUS_CHECK_GT(total_steps, 0);
  FOCUS_CHECK_LE(min_lr, base_lr);
}

float CosineDecayLr::LrAt(int64_t step) const {
  if (step >= total_steps_) return min_lr_;
  const double progress =
      static_cast<double>(step) / static_cast<double>(total_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  return static_cast<float>(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

StepDecayLr::StepDecayLr(float base_lr, int64_t step_size, float gamma)
    : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {
  FOCUS_CHECK_GT(step_size, 0);
  FOCUS_CHECK(gamma > 0.0f && gamma <= 1.0f);
}

float StepDecayLr::LrAt(int64_t step) const {
  const int64_t decays = step / step_size_;
  return base_lr_ * std::pow(gamma_, static_cast<float>(decays));
}

WarmupCosineLr::WarmupCosineLr(float base_lr, int64_t warmup_steps,
                               int64_t total_steps, float min_lr)
    : base_lr_(base_lr),
      warmup_steps_(warmup_steps),
      cosine_(base_lr, std::max<int64_t>(total_steps - warmup_steps, 1),
              min_lr) {
  FOCUS_CHECK_GE(warmup_steps, 0);
  FOCUS_CHECK_GT(total_steps, warmup_steps);
}

float WarmupCosineLr::LrAt(int64_t step) const {
  if (step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  return cosine_.LrAt(step - warmup_steps_);
}

}  // namespace optim
}  // namespace focus
