// Learning-rate schedules. Stateless value objects: LrAt(step) computes the
// rate, Apply() pushes it into an optimizer.
#ifndef FOCUS_OPTIM_SCHEDULER_H_
#define FOCUS_OPTIM_SCHEDULER_H_

#include <cstdint>

#include "optim/optimizer.h"

namespace focus {
namespace optim {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float LrAt(int64_t step) const = 0;

  void Apply(Optimizer& optimizer, int64_t step) const {
    optimizer.SetLr(LrAt(step));
  }
};

// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LrAt(int64_t) const override { return lr_; }

 private:
  float lr_;
};

// Half-cosine decay from base_lr to min_lr over total_steps, then min_lr.
class CosineDecayLr : public LrSchedule {
 public:
  CosineDecayLr(float base_lr, int64_t total_steps, float min_lr = 0.0f);
  float LrAt(int64_t step) const override;

 private:
  float base_lr_;
  int64_t total_steps_;
  float min_lr_;
};

// Multiplies by gamma every step_size steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base_lr, int64_t step_size, float gamma = 0.5f);
  float LrAt(int64_t step) const override;

 private:
  float base_lr_;
  int64_t step_size_;
  float gamma_;
};

// Linear warmup to base_lr over warmup_steps, then cosine decay to min_lr.
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float base_lr, int64_t warmup_steps, int64_t total_steps,
                 float min_lr = 0.0f);
  float LrAt(int64_t step) const override;

 private:
  float base_lr_;
  int64_t warmup_steps_;
  CosineDecayLr cosine_;
};

}  // namespace optim
}  // namespace focus

#endif  // FOCUS_OPTIM_SCHEDULER_H_
