// First-order optimizers: SGD (momentum), Adam, AdamW.
//
// AdamW (decoupled weight decay) is the optimizer the paper uses both for
// prototype refinement in the offline clustering phase (Sec. V) and for
// model training. Optimizers mutate parameter data in place and never build
// autograd graphs.
#ifndef FOCUS_OPTIM_OPTIMIZER_H_
#define FOCUS_OPTIM_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace focus {
namespace optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params, float lr);
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently stored on the params.
  // Parameters with no gradient are skipped.
  virtual void Step() = 0;

  void ZeroGrad();

  float lr() const { return lr_; }
  void SetLr(float lr) { lr_ = lr; }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
  float lr_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

 protected:
  // Shared Adam machinery; `decoupled_weight_decay` selects AdamW behavior.
  void AdamStep(float weight_decay, bool decoupled);

  float beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter), the
// paper's optimizer of record.
class AdamW : public Adam {
 public:
  AdamW(std::vector<Tensor> params, float lr, float weight_decay = 1e-2f,
        float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

 private:
  float weight_decay_;
};

// Scales all gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace optim
}  // namespace focus

#endif  // FOCUS_OPTIM_OPTIMIZER_H_
