# Empty dependencies file for prototype_explorer.
# This may be replaced when dependencies are built.
