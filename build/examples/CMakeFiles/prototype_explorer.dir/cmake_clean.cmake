file(REMOVE_RECURSE
  "CMakeFiles/prototype_explorer.dir/prototype_explorer.cpp.o"
  "CMakeFiles/prototype_explorer.dir/prototype_explorer.cpp.o.d"
  "prototype_explorer"
  "prototype_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prototype_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
