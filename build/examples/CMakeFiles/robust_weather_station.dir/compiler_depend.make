# Empty compiler generated dependencies file for robust_weather_station.
# This may be replaced when dependencies are built.
