file(REMOVE_RECURSE
  "CMakeFiles/robust_weather_station.dir/robust_weather_station.cpp.o"
  "CMakeFiles/robust_weather_station.dir/robust_weather_station.cpp.o.d"
  "robust_weather_station"
  "robust_weather_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_weather_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
