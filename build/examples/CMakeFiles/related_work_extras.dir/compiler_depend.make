# Empty compiler generated dependencies file for related_work_extras.
# This may be replaced when dependencies are built.
