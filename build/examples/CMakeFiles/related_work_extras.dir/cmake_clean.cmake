file(REMOVE_RECURSE
  "CMakeFiles/related_work_extras.dir/related_work_extras.cpp.o"
  "CMakeFiles/related_work_extras.dir/related_work_extras.cpp.o.d"
  "related_work_extras"
  "related_work_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
