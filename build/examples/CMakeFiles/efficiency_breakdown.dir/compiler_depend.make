# Empty compiler generated dependencies file for efficiency_breakdown.
# This may be replaced when dependencies are built.
