file(REMOVE_RECURSE
  "CMakeFiles/efficiency_breakdown.dir/efficiency_breakdown.cpp.o"
  "CMakeFiles/efficiency_breakdown.dir/efficiency_breakdown.cpp.o.d"
  "efficiency_breakdown"
  "efficiency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efficiency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
