# Empty compiler generated dependencies file for focus_cli.
# This may be replaced when dependencies are built.
