# Empty dependencies file for impute_rolling_test.
# This may be replaced when dependencies are built.
