file(REMOVE_RECURSE
  "CMakeFiles/impute_rolling_test.dir/impute_rolling_test.cc.o"
  "CMakeFiles/impute_rolling_test.dir/impute_rolling_test.cc.o.d"
  "impute_rolling_test"
  "impute_rolling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impute_rolling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
