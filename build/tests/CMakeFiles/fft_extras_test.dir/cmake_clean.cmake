file(REMOVE_RECURSE
  "CMakeFiles/fft_extras_test.dir/fft_extras_test.cc.o"
  "CMakeFiles/fft_extras_test.dir/fft_extras_test.cc.o.d"
  "fft_extras_test"
  "fft_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
