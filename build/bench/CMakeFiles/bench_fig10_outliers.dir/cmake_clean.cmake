file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_outliers.dir/bench_fig10_outliers.cc.o"
  "CMakeFiles/bench_fig10_outliers.dir/bench_fig10_outliers.cc.o.d"
  "bench_fig10_outliers"
  "bench_fig10_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
