# Empty dependencies file for bench_theorem1_lowrank.
# This may be replaced when dependencies are built.
