file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_lowrank.dir/bench_theorem1_lowrank.cc.o"
  "CMakeFiles/bench_theorem1_lowrank.dir/bench_theorem1_lowrank.cc.o.d"
  "bench_theorem1_lowrank"
  "bench_theorem1_lowrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_lowrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
