file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cluster_objective.dir/bench_fig8_cluster_objective.cc.o"
  "CMakeFiles/bench_fig8_cluster_objective.dir/bench_fig8_cluster_objective.cc.o.d"
  "bench_fig8_cluster_objective"
  "bench_fig8_cluster_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cluster_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
