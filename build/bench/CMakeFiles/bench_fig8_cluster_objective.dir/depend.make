# Empty dependencies file for bench_fig8_cluster_objective.
# This may be replaced when dependencies are built.
