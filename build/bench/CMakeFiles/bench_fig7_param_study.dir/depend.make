# Empty dependencies file for bench_fig7_param_study.
# This may be replaced when dependencies are built.
