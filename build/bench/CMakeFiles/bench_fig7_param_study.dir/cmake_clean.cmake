file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_param_study.dir/bench_fig7_param_study.cc.o"
  "CMakeFiles/bench_fig7_param_study.dir/bench_fig7_param_study.cc.o.d"
  "bench_fig7_param_study"
  "bench_fig7_param_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_param_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
