file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_prototype_approx.dir/bench_fig11_prototype_approx.cc.o"
  "CMakeFiles/bench_fig11_prototype_approx.dir/bench_fig11_prototype_approx.cc.o.d"
  "bench_fig11_prototype_approx"
  "bench_fig11_prototype_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_prototype_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
