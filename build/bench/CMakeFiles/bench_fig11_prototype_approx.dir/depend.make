# Empty dependencies file for bench_fig11_prototype_approx.
# This may be replaced when dependencies are built.
