file(REMOVE_RECURSE
  "CMakeFiles/focus_core.dir/focus_model.cc.o"
  "CMakeFiles/focus_core.dir/focus_model.cc.o.d"
  "CMakeFiles/focus_core.dir/offline.cc.o"
  "CMakeFiles/focus_core.dir/offline.cc.o.d"
  "CMakeFiles/focus_core.dir/proto_attn.cc.o"
  "CMakeFiles/focus_core.dir/proto_attn.cc.o.d"
  "libfocus_core.a"
  "libfocus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
