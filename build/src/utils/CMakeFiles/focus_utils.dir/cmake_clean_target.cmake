file(REMOVE_RECURSE
  "libfocus_utils.a"
)
