# Empty compiler generated dependencies file for focus_utils.
# This may be replaced when dependencies are built.
