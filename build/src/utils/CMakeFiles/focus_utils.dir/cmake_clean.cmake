file(REMOVE_RECURSE
  "CMakeFiles/focus_utils.dir/flags.cc.o"
  "CMakeFiles/focus_utils.dir/flags.cc.o.d"
  "CMakeFiles/focus_utils.dir/logging.cc.o"
  "CMakeFiles/focus_utils.dir/logging.cc.o.d"
  "CMakeFiles/focus_utils.dir/table.cc.o"
  "CMakeFiles/focus_utils.dir/table.cc.o.d"
  "libfocus_utils.a"
  "libfocus_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
