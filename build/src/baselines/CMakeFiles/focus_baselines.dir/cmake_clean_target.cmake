file(REMOVE_RECURSE
  "libfocus_baselines.a"
)
