file(REMOVE_RECURSE
  "CMakeFiles/focus_baselines.dir/autoformer.cc.o"
  "CMakeFiles/focus_baselines.dir/autoformer.cc.o.d"
  "CMakeFiles/focus_baselines.dir/crossformer.cc.o"
  "CMakeFiles/focus_baselines.dir/crossformer.cc.o.d"
  "CMakeFiles/focus_baselines.dir/dlinear.cc.o"
  "CMakeFiles/focus_baselines.dir/dlinear.cc.o.d"
  "CMakeFiles/focus_baselines.dir/graph_models.cc.o"
  "CMakeFiles/focus_baselines.dir/graph_models.cc.o.d"
  "CMakeFiles/focus_baselines.dir/informer.cc.o"
  "CMakeFiles/focus_baselines.dir/informer.cc.o.d"
  "CMakeFiles/focus_baselines.dir/lightcts.cc.o"
  "CMakeFiles/focus_baselines.dir/lightcts.cc.o.d"
  "CMakeFiles/focus_baselines.dir/patch_tst.cc.o"
  "CMakeFiles/focus_baselines.dir/patch_tst.cc.o.d"
  "CMakeFiles/focus_baselines.dir/timesnet.cc.o"
  "CMakeFiles/focus_baselines.dir/timesnet.cc.o.d"
  "libfocus_baselines.a"
  "libfocus_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
