# Empty dependencies file for focus_baselines.
# This may be replaced when dependencies are built.
