
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/autoformer.cc" "src/baselines/CMakeFiles/focus_baselines.dir/autoformer.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/autoformer.cc.o.d"
  "/root/repo/src/baselines/crossformer.cc" "src/baselines/CMakeFiles/focus_baselines.dir/crossformer.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/crossformer.cc.o.d"
  "/root/repo/src/baselines/dlinear.cc" "src/baselines/CMakeFiles/focus_baselines.dir/dlinear.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/dlinear.cc.o.d"
  "/root/repo/src/baselines/graph_models.cc" "src/baselines/CMakeFiles/focus_baselines.dir/graph_models.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/graph_models.cc.o.d"
  "/root/repo/src/baselines/informer.cc" "src/baselines/CMakeFiles/focus_baselines.dir/informer.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/informer.cc.o.d"
  "/root/repo/src/baselines/lightcts.cc" "src/baselines/CMakeFiles/focus_baselines.dir/lightcts.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/lightcts.cc.o.d"
  "/root/repo/src/baselines/patch_tst.cc" "src/baselines/CMakeFiles/focus_baselines.dir/patch_tst.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/patch_tst.cc.o.d"
  "/root/repo/src/baselines/timesnet.cc" "src/baselines/CMakeFiles/focus_baselines.dir/timesnet.cc.o" "gcc" "src/baselines/CMakeFiles/focus_baselines.dir/timesnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/focus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/focus_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/focus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/focus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/focus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/focus_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
