# Empty compiler generated dependencies file for focus_data.
# This may be replaced when dependencies are built.
