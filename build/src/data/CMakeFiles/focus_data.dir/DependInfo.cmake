
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/focus_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/focus_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/focus_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/focus_data.dir/generator.cc.o.d"
  "/root/repo/src/data/impute.cc" "src/data/CMakeFiles/focus_data.dir/impute.cc.o" "gcc" "src/data/CMakeFiles/focus_data.dir/impute.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/focus_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/focus_data.dir/io.cc.o.d"
  "/root/repo/src/data/perturb.cc" "src/data/CMakeFiles/focus_data.dir/perturb.cc.o" "gcc" "src/data/CMakeFiles/focus_data.dir/perturb.cc.o.d"
  "/root/repo/src/data/registry.cc" "src/data/CMakeFiles/focus_data.dir/registry.cc.o" "gcc" "src/data/CMakeFiles/focus_data.dir/registry.cc.o.d"
  "/root/repo/src/data/window.cc" "src/data/CMakeFiles/focus_data.dir/window.cc.o" "gcc" "src/data/CMakeFiles/focus_data.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/focus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/focus_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
