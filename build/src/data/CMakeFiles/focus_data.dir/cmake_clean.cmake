file(REMOVE_RECURSE
  "CMakeFiles/focus_data.dir/dataset.cc.o"
  "CMakeFiles/focus_data.dir/dataset.cc.o.d"
  "CMakeFiles/focus_data.dir/generator.cc.o"
  "CMakeFiles/focus_data.dir/generator.cc.o.d"
  "CMakeFiles/focus_data.dir/impute.cc.o"
  "CMakeFiles/focus_data.dir/impute.cc.o.d"
  "CMakeFiles/focus_data.dir/io.cc.o"
  "CMakeFiles/focus_data.dir/io.cc.o.d"
  "CMakeFiles/focus_data.dir/perturb.cc.o"
  "CMakeFiles/focus_data.dir/perturb.cc.o.d"
  "CMakeFiles/focus_data.dir/registry.cc.o"
  "CMakeFiles/focus_data.dir/registry.cc.o.d"
  "CMakeFiles/focus_data.dir/window.cc.o"
  "CMakeFiles/focus_data.dir/window.cc.o.d"
  "libfocus_data.a"
  "libfocus_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
