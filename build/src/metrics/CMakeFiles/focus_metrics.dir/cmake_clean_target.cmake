file(REMOVE_RECURSE
  "libfocus_metrics.a"
)
