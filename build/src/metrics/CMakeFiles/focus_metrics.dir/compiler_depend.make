# Empty compiler generated dependencies file for focus_metrics.
# This may be replaced when dependencies are built.
