file(REMOVE_RECURSE
  "CMakeFiles/focus_metrics.dir/metrics.cc.o"
  "CMakeFiles/focus_metrics.dir/metrics.cc.o.d"
  "libfocus_metrics.a"
  "libfocus_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
