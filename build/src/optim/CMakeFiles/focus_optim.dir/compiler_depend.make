# Empty compiler generated dependencies file for focus_optim.
# This may be replaced when dependencies are built.
