file(REMOVE_RECURSE
  "CMakeFiles/focus_optim.dir/optimizer.cc.o"
  "CMakeFiles/focus_optim.dir/optimizer.cc.o.d"
  "CMakeFiles/focus_optim.dir/scheduler.cc.o"
  "CMakeFiles/focus_optim.dir/scheduler.cc.o.d"
  "libfocus_optim.a"
  "libfocus_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
