file(REMOVE_RECURSE
  "libfocus_optim.a"
)
