file(REMOVE_RECURSE
  "libfocus_nn.a"
)
