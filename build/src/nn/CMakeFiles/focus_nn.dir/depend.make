# Empty dependencies file for focus_nn.
# This may be replaced when dependencies are built.
