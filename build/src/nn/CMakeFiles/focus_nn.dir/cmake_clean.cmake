file(REMOVE_RECURSE
  "CMakeFiles/focus_nn.dir/attention.cc.o"
  "CMakeFiles/focus_nn.dir/attention.cc.o.d"
  "CMakeFiles/focus_nn.dir/layers.cc.o"
  "CMakeFiles/focus_nn.dir/layers.cc.o.d"
  "CMakeFiles/focus_nn.dir/module.cc.o"
  "CMakeFiles/focus_nn.dir/module.cc.o.d"
  "CMakeFiles/focus_nn.dir/serialize.cc.o"
  "CMakeFiles/focus_nn.dir/serialize.cc.o.d"
  "libfocus_nn.a"
  "libfocus_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
