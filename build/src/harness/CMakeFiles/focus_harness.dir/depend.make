# Empty dependencies file for focus_harness.
# This may be replaced when dependencies are built.
