file(REMOVE_RECURSE
  "CMakeFiles/focus_harness.dir/ascii_plot.cc.o"
  "CMakeFiles/focus_harness.dir/ascii_plot.cc.o.d"
  "CMakeFiles/focus_harness.dir/experiments.cc.o"
  "CMakeFiles/focus_harness.dir/experiments.cc.o.d"
  "CMakeFiles/focus_harness.dir/rolling.cc.o"
  "CMakeFiles/focus_harness.dir/rolling.cc.o.d"
  "CMakeFiles/focus_harness.dir/trainer.cc.o"
  "CMakeFiles/focus_harness.dir/trainer.cc.o.d"
  "libfocus_harness.a"
  "libfocus_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
