file(REMOVE_RECURSE
  "libfocus_harness.a"
)
