file(REMOVE_RECURSE
  "CMakeFiles/focus_tensor.dir/autograd.cc.o"
  "CMakeFiles/focus_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/focus_tensor.dir/fft.cc.o"
  "CMakeFiles/focus_tensor.dir/fft.cc.o.d"
  "CMakeFiles/focus_tensor.dir/flops.cc.o"
  "CMakeFiles/focus_tensor.dir/flops.cc.o.d"
  "CMakeFiles/focus_tensor.dir/memory.cc.o"
  "CMakeFiles/focus_tensor.dir/memory.cc.o.d"
  "CMakeFiles/focus_tensor.dir/ops_common.cc.o"
  "CMakeFiles/focus_tensor.dir/ops_common.cc.o.d"
  "CMakeFiles/focus_tensor.dir/ops_conv.cc.o"
  "CMakeFiles/focus_tensor.dir/ops_conv.cc.o.d"
  "CMakeFiles/focus_tensor.dir/ops_elementwise.cc.o"
  "CMakeFiles/focus_tensor.dir/ops_elementwise.cc.o.d"
  "CMakeFiles/focus_tensor.dir/ops_matmul.cc.o"
  "CMakeFiles/focus_tensor.dir/ops_matmul.cc.o.d"
  "CMakeFiles/focus_tensor.dir/ops_reduce.cc.o"
  "CMakeFiles/focus_tensor.dir/ops_reduce.cc.o.d"
  "CMakeFiles/focus_tensor.dir/ops_shape.cc.o"
  "CMakeFiles/focus_tensor.dir/ops_shape.cc.o.d"
  "CMakeFiles/focus_tensor.dir/ops_softmax.cc.o"
  "CMakeFiles/focus_tensor.dir/ops_softmax.cc.o.d"
  "CMakeFiles/focus_tensor.dir/tensor.cc.o"
  "CMakeFiles/focus_tensor.dir/tensor.cc.o.d"
  "libfocus_tensor.a"
  "libfocus_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
