file(REMOVE_RECURSE
  "libfocus_tensor.a"
)
