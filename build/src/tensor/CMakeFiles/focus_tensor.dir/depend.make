# Empty dependencies file for focus_tensor.
# This may be replaced when dependencies are built.
