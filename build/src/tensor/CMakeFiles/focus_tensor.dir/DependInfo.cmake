
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/autograd.cc" "src/tensor/CMakeFiles/focus_tensor.dir/autograd.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/autograd.cc.o.d"
  "/root/repo/src/tensor/fft.cc" "src/tensor/CMakeFiles/focus_tensor.dir/fft.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/fft.cc.o.d"
  "/root/repo/src/tensor/flops.cc" "src/tensor/CMakeFiles/focus_tensor.dir/flops.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/flops.cc.o.d"
  "/root/repo/src/tensor/memory.cc" "src/tensor/CMakeFiles/focus_tensor.dir/memory.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/memory.cc.o.d"
  "/root/repo/src/tensor/ops_common.cc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_common.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_common.cc.o.d"
  "/root/repo/src/tensor/ops_conv.cc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_conv.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_conv.cc.o.d"
  "/root/repo/src/tensor/ops_elementwise.cc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_elementwise.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_elementwise.cc.o.d"
  "/root/repo/src/tensor/ops_matmul.cc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_matmul.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_matmul.cc.o.d"
  "/root/repo/src/tensor/ops_reduce.cc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_reduce.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_reduce.cc.o.d"
  "/root/repo/src/tensor/ops_shape.cc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_shape.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_shape.cc.o.d"
  "/root/repo/src/tensor/ops_softmax.cc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_softmax.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/ops_softmax.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/focus_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/focus_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/utils/CMakeFiles/focus_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
