#!/usr/bin/env python3
"""Compare two focus_bench_schema JSON files and gate on ns/op regressions.

Usage:
  scripts/bench_diff.py BASELINE.json CANDIDATE.json [--threshold-pct=10]
  scripts/bench_diff.py BASELINE.json CANDIDATE.json --update-baseline
  scripts/bench_diff.py --selftest

Both inputs must be unified bench reports (obs/bench_report.h schema,
`"focus_bench_schema": 1`). Benchmarks are matched by `name`; for each
match the relative ns/op change is printed, and the script exits nonzero
if any benchmark slowed down by more than --threshold-pct percent.
Benchmarks present in only one file are warned about but never fail the
gate (new/removed benchmarks are not regressions).

--update-baseline rewrites BASELINE.json in place after an intentional
perf change: every baseline entry whose name also appears in CANDIDATE
is replaced wholesale with the candidate's entry (ns_per_op and all
derived fields, including the optional bytes_per_op). Entries present
only in the baseline are kept untouched, entries present only in the
candidate are NOT added — curating which benchmarks gate stays a manual,
reviewable edit. The report header (date/machine/build) is left as-is so
the diff shows exactly which numbers were re-blessed.

--selftest exercises the gate with synthetic reports: identical inputs
must pass, and a 20% slowdown must fail at the default threshold.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("focus_bench_schema") != 1:
        raise ValueError(
            f"{path}: missing focus_bench_schema=1 header "
            "(not a unified bench report)")
    return doc


def entries_of(doc, path="<doc>"):
    entries = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        ns = bench.get("ns_per_op")
        if name is None or ns is None:
            raise ValueError(f"{path}: benchmark entry missing name/ns_per_op")
        entries[name] = float(ns)
    return entries


def load_report(path):
    return entries_of(load_doc(path), path)


def update_baseline(base_doc, cand_doc, out=sys.stdout):
    """Replace matching baseline entries with the candidate's in place.

    Returns the number of entries updated. Baseline-only entries are
    kept; candidate-only entries are reported but never added.
    """
    cand_by_name = {}
    for bench in cand_doc.get("benchmarks", []):
        if bench.get("name") is not None:
            cand_by_name[bench["name"]] = bench
    updated = 0
    benchmarks = base_doc.get("benchmarks", [])
    for i, bench in enumerate(benchmarks):
        name = bench.get("name")
        if name in cand_by_name:
            benchmarks[i] = cand_by_name[name]
            print(f"  updated {name}", file=out)
            updated += 1
    skipped = sorted(set(cand_by_name) -
                     {b.get("name") for b in benchmarks})
    if skipped:
        print(f"  note: {len(skipped)} candidate-only benchmark(s) not "
              f"added to baseline: {', '.join(skipped)}", file=out)
    return updated


def diff_reports(baseline, candidate, threshold_pct, out=sys.stdout):
    """Return the number of regressions beyond threshold_pct."""
    regressions = 0
    common = sorted(set(baseline) & set(candidate))
    if not common:
        print("bench_diff: no common benchmarks between inputs", file=out)
        return 1
    width = max(len(name) for name in common)
    for name in common:
        base_ns = baseline[name]
        cand_ns = candidate[name]
        if base_ns <= 0.0:
            print(f"  {name:<{width}}  SKIP (baseline ns_per_op <= 0)",
                  file=out)
            continue
        delta_pct = 100.0 * (cand_ns - base_ns) / base_ns
        verdict = "ok"
        if delta_pct > threshold_pct:
            verdict = f"REGRESSION (> {threshold_pct:g}%)"
            regressions += 1
        print(f"  {name:<{width}}  {base_ns:12.1f} -> {cand_ns:12.1f} ns/op "
              f"({delta_pct:+7.2f}%)  {verdict}", file=out)
    base_only = sorted(set(baseline) - set(candidate))
    if base_only:
        print(f"  warning: {len(base_only)} benchmark(s) in baseline only "
              f"(removed?): {', '.join(base_only)}", file=out)
    cand_only = sorted(set(candidate) - set(baseline))
    if cand_only:
        print(f"  warning: {len(cand_only)} benchmark(s) in candidate only "
              f"(new benchmark?): {', '.join(cand_only)}", file=out)
    return regressions


def make_synthetic(scale):
    return {
        "BM_MatMul/256": 1000.0 * scale,
        "BM_SoftmaxLastDim/128": 50.0 * scale,
        "BM_Conv1d/16/32/96": 420.0 * scale,
    }


def selftest():
    import io

    base = make_synthetic(1.0)
    sink = io.StringIO()
    if diff_reports(base, dict(base), 10.0, out=sink) != 0:
        print("selftest FAIL: identical inputs reported a regression")
        return 1
    slow = make_synthetic(1.2)  # 20% slower must trip a 10% threshold
    if diff_reports(base, slow, 10.0, out=sink) == 0:
        print("selftest FAIL: 20% slowdown passed a 10% threshold")
        return 1
    # But a generous threshold tolerates it.
    if diff_reports(base, slow, 50.0, out=sink) != 0:
        print("selftest FAIL: 20% slowdown failed a 50% threshold")
        return 1
    # Disjoint benchmark sets are an error, not a silent pass.
    if diff_reports(base, {"BM_Other": 1.0}, 10.0, out=sink) == 0:
        print("selftest FAIL: disjoint benchmark sets passed")
        return 1
    # Asymmetric sets warn with the unmatched entry names on both sides.
    mixed = dict(base)
    del mixed["BM_MatMul/256"]
    mixed["BM_NewKernel/8"] = 3.0
    sink = io.StringIO()
    if diff_reports(base, mixed, 10.0, out=sink) != 0:
        print("selftest FAIL: asymmetric-but-overlapping sets regressed")
        return 1
    warned = sink.getvalue()
    if ("baseline only" not in warned or "BM_MatMul/256" not in warned
            or "candidate only" not in warned
            or "BM_NewKernel/8" not in warned):
        print("selftest FAIL: asymmetric-set warning did not name the "
              "unmatched entries:\n" + warned)
        return 1
    # --update-baseline: matching entries are replaced wholesale (all
    # fields), baseline-only entries survive, candidate-only entries are
    # never added.
    base_doc = {
        "focus_bench_schema": 1,
        "note": "selftest baseline",
        "benchmarks": [
            {"name": "BM_MatMul/256", "ns_per_op": 1000.0, "threads": 1},
            {"name": "BM_Legacy/1", "ns_per_op": 7.0, "threads": 1},
        ],
    }
    cand_doc = {
        "focus_bench_schema": 1,
        "benchmarks": [
            {"name": "BM_MatMul/256", "ns_per_op": 800.0, "threads": 1,
             "bytes_per_op": 786432.0},
            {"name": "BM_NewKernel/8", "ns_per_op": 3.0, "threads": 1},
        ],
    }
    sink = io.StringIO()
    if update_baseline(base_doc, cand_doc, out=sink) != 1:
        print("selftest FAIL: expected exactly 1 baseline entry updated")
        return 1
    names = [b["name"] for b in base_doc["benchmarks"]]
    if names != ["BM_MatMul/256", "BM_Legacy/1"]:
        print(f"selftest FAIL: baseline entry set changed: {names}")
        return 1
    refreshed = base_doc["benchmarks"][0]
    if (refreshed["ns_per_op"] != 800.0
            or refreshed.get("bytes_per_op") != 786432.0):
        print("selftest FAIL: matching entry not replaced wholesale: "
              f"{refreshed}")
        return 1
    if base_doc["benchmarks"][1]["ns_per_op"] != 7.0:
        print("selftest FAIL: baseline-only entry was modified")
        return 1
    if "BM_NewKernel/8" not in sink.getvalue():
        print("selftest FAIL: candidate-only entry not reported as skipped")
        return 1
    if base_doc.get("note") != "selftest baseline":
        print("selftest FAIL: report header was touched")
        return 1
    print("bench_diff selftest OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Gate ns/op regressions between two bench reports.")
    parser.add_argument("baseline", nargs="?", help="baseline report JSON")
    parser.add_argument("candidate", nargs="?", help="candidate report JSON")
    parser.add_argument("--threshold-pct", type=float, default=10.0,
                        help="max tolerated ns/op slowdown (default 10)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in synthetic-regression check")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite BASELINE in place, replacing entries "
                             "whose name matches one in CANDIDATE")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate are required (or --selftest)")

    try:
        base_doc = load_doc(args.baseline)
        cand_doc = load_doc(args.candidate)
        baseline = entries_of(base_doc, args.baseline)
        candidate = entries_of(cand_doc, args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2

    if args.update_baseline:
        print(f"bench_diff: refreshing {args.baseline} from {args.candidate}")
        updated = update_baseline(base_doc, cand_doc)
        if not updated:
            print("bench_diff: no matching benchmarks to update",
                  file=sys.stderr)
            return 1
        with open(args.baseline, "w") as fh:
            json.dump(base_doc, fh, indent=1)
            fh.write("\n")
        print(f"bench_diff: {updated} entr{'y' if updated == 1 else 'ies'} "
              "re-blessed")
        return 0

    print(f"bench_diff: {args.baseline} vs {args.candidate} "
          f"(threshold {args.threshold_pct:g}%)")
    regressions = diff_reports(baseline, candidate, args.threshold_pct)
    if regressions:
        print(f"bench_diff: {regressions} regression(s) beyond "
              f"{args.threshold_pct:g}%", file=sys.stderr)
        return 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
