#!/usr/bin/env python3
"""Generates and validates the polynomial coefficients in src/tensor/simd.

The SIMD layer's determinism contract requires VecExp / VecTanh /
VecSigmoid / VecErf to produce bit-identical results on every backend, so
libm (whose implementation varies by libc and ISA) cannot be used in any
vector or scalar-fallback path. Instead both backends evaluate the *same*
fixed polynomials with the same FMA operation order. This script is the
provenance of those coefficients:

  1. fits each kernel polynomial by weighted least squares on Chebyshev
     nodes (pure python, double precision; no numpy needed),
  2. rounds the coefficients to float32,
  3. re-runs the *float32-emulated* evaluation pipeline (including the
     Cody-Waite reduction and 2^n scaling for exp) over a dense sweep and
     reports the max error in ulps of the float reference
     (double libm rounded to float).

tests/simd_test.cc re-checks the shipped implementation against the same
ULP bounds in C++, which is the authoritative gate; this script exists so
the numbers in vec_common.h are reproducible rather than folklore.

Usage: python3 scripts/gen_simd_coeffs.py
"""

import struct
from math import cos, pi, exp, tanh, erf, erfc, inf


# --- float32 emulation -------------------------------------------------------


def f32(x):
    """Rounds a python float (double) to the nearest float32."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


def f32_bits(x):
    return struct.unpack("<I", struct.pack("<f", x))[0]


def bits_f32(b):
    return struct.unpack("<f", struct.pack("<I", b & 0xFFFFFFFF))[0]


def fma32(a, b, c):
    """float32 fused multiply-add. a*b is exact in double (24+24 bits);
    the +c then float-rounding is a double rounding, which can differ from
    a true single-rounded fma in rare half-ulp cases — fine for the
    generation-time sweep; the C++ test is the authoritative ULP check."""
    return f32(a * b + c)


def ulp32(x):
    """Spacing of float32 at |x| (subnormal-aware)."""
    ax = abs(x)
    b = f32_bits(f32(ax))
    return bits_f32(b + 1) - bits_f32(b) if ax != inf else inf


def ulp_err(approx, ref):
    if approx == ref:
        return 0.0
    if ref == 0.0:
        return abs(approx) / ulp32(0.0)
    return abs(approx - ref) / ulp32(ref)


# --- tiny linear algebra -----------------------------------------------------


def gauss_solve(a, b):
    n = len(b)
    m = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(n):
        piv = max(range(col, n), key=lambda r: abs(m[r][col]))
        m[col], m[piv] = m[piv], m[col]
        for r in range(col + 1, n):
            f = m[r][col] / m[col][col]
            for c in range(col, n + 1):
                m[r][c] -= f * m[col][c]
    x = [0.0] * n
    for r in range(n - 1, -1, -1):
        x[r] = (m[r][n] - sum(m[r][c] * x[c] for c in range(r + 1, n))) \
            / m[r][r]
    return x


def fit_monomial(f, lo, hi, deg, samples=3000):
    """Least-squares fit of f on [lo, hi] (relative-error weighting) in the
    Chebyshev basis, converted to monomial coefficients c0..c_deg."""
    n = deg + 1
    rows, ys = [], []
    for i in range(samples):
        x = (lo + hi) / 2 + (hi - lo) / 2 * cos(pi * (i + 0.5) / samples)
        u = (2 * x - (lo + hi)) / (hi - lo)
        t = [1.0, u]
        for _ in range(2, n):
            t.append(2 * u * t[-1] - t[-2])
        fx = f(x)
        w = 1.0 / abs(fx) if fx != 0 else 1.0
        rows.append([tk * w for tk in t[:n]])
        ys.append(fx * w)
    ata = [[sum(r[i] * r[j] for r in rows) for j in range(n)]
           for i in range(n)]
    atb = [sum(rows[k][i] * ys[k] for k in range(len(rows)))
           for i in range(n)]
    c_cheb = gauss_solve(ata, atb)

    # Chebyshev polynomials as monomials in u.
    polys = [[1.0], [0.0, 1.0]]
    for _ in range(2, n):
        prev, prev2 = polys[-1], polys[-2]
        nxt = [0.0] + [2 * p for p in prev]
        for j, p in enumerate(prev2):
            nxt[j] -= p
        polys.append(nxt)
    mono_u = [0.0] * n
    for k in range(n):
        for j, cj in enumerate(polys[k]):
            mono_u[j] += c_cheb[k] * cj

    # Substitute u = alpha*x + beta (affine map back to [lo, hi]).
    alpha = 2.0 / (hi - lo)
    beta = -(lo + hi) / (hi - lo)
    res = [mono_u[deg]]
    for k in range(deg - 1, -1, -1):
        shifted = [0.0] * (len(res) + 1)
        for j, r in enumerate(res):  # res * (beta + alpha*x)
            shifted[j] += r * beta
            shifted[j + 1] += r * alpha
        shifted[0] += mono_u[k]
        res = shifted
    return [f32(c) for c in res]


def horner32(coeffs, z):
    acc = coeffs[-1]
    for c in reversed(coeffs[:-1]):
        acc = fma32(acc, z, c)
    return acc


# --- emulated kernel pipelines (mirror vec_common.h op for op) ---------------

EXP_HI = f32(89.0)  # just past ln(FLT_MAX); beyond it exp == +inf
EXP_LO = f32(-103.972084045410)
LOG2E = f32(1.44269504088896341)
LN2_HI = f32(0.693359375)
LN2_LO = f32(-2.12194440e-4)


def pow2i32(n):
    return bits_f32((int(n) + 127) << 23)


def emu_exp(coeffs, x):
    x = min(max(x, EXP_LO), EXP_HI)
    n = float(round(f32(x * LOG2E)))  # round half to even, as vroundps
    r = fma32(-n, LN2_HI, x)
    r = fma32(-n, LN2_LO, r)
    q = horner32(coeffs, r)          # (exp(r)-1-r)/r^2
    q = f32(fma32(q, f32(r * r), r) + 1.0)
    a = max(min(n, 127.0), -126.0)
    b = n - a
    return f32(f32(q * pow2i32(a)) * pow2i32(b))


TANH_BRANCH = f32(0.625)


def emu_tanh(exp_coeffs, coeffs, x):
    a = abs(x)
    if a >= TANH_BRANCH:
        e = emu_exp(exp_coeffs, f32(a + a))
        r = f32(1.0 - f32(f32(2.0) / f32(e + 1.0)))
        return f32(-r) if x < 0 else r
    z = f32(x * x)
    p = horner32(coeffs, z)          # (tanh(x)-x)/(x*z)
    return fma32(f32(p * z), x, x)


def emu_sigmoid(exp_coeffs, x):
    e = emu_exp(exp_coeffs, f32(-x))
    return f32(1.0 / f32(1.0 + e))


ERF_BRANCH = f32(0.84375)


def emu_erf(exp_coeffs, small, tail, x):
    a = abs(x)
    if a < ERF_BRANCH:
        z = f32(a * a)
        p = horner32(small, z)       # erf(a)/a
        return f32(x * p)
    t = f32(1.0 / a)
    w = horner32(tail, t)            # erfc(a)*exp(a*a)
    h = f32(a * a)
    l = fma32(a, a, -h)              # exact remainder of the squaring
    e = f32(emu_exp(exp_coeffs, f32(-h)) * f32(1.0 - l))
    r = f32(1.0 - f32(e * w))
    return f32(-r) if x < 0 else r


# --- sweeps ------------------------------------------------------------------


def sweep(name, fn, ref, lo, hi, n=200001, bound=4.0):
    worst, worst_x = 0.0, 0.0
    for i in range(n):
        x = f32(lo + (hi - lo) * i / (n - 1))
        e = ulp_err(fn(x), f32(ref(x)))
        if e > worst:
            worst, worst_x = e, x
    status = "OK" if worst <= bound else "FAIL"
    print(f"  {name:<10} [{lo:+9.2f}, {hi:+9.2f}]  max {worst:5.2f} ulp "
          f"at x={worst_x:+.6g}  ({status}, bound {bound})")
    return worst <= bound


def emit(name, coeffs):
    body = ", ".join(f"{c:.9g}f" for c in coeffs)
    print(f"inline constexpr float {name}[] = {{{body}}};")


def main():
    print("== fitting ==")
    exp_c = fit_monomial(
        lambda r: (exp(r) - 1.0 - r) / (r * r), -0.3466, 0.3466, 5)
    # tanh / erf polynomials are evaluated in z = x^2, so fit over z.
    tanh_c = fit_monomial(
        lambda z: (tanh(z ** 0.5) - z ** 0.5) / (z ** 1.5),
        1e-8, float(TANH_BRANCH) ** 2, 4)
    erf_small_c = fit_monomial(
        lambda z: erf(z ** 0.5) / (z ** 0.5),
        1e-10, float(ERF_BRANCH) ** 2, 7)
    # Tail fitted in t = 1/a: W(t) = erfc(1/t) * exp(1/t^2).
    erf_tail_c = fit_monomial(
        lambda t: erfc(1.0 / t) * exp(1.0 / (t * t)),
        1.0 / 4.2, 1.0 / float(ERF_BRANCH), 8)

    print("\n== float32 coefficient arrays (paste into vec_common.h) ==")
    emit("kExpPoly", exp_c)
    emit("kTanhPoly", tanh_c)
    emit("kErfSmallPoly", erf_small_c)
    emit("kErfTailPoly", erf_tail_c)

    print("\n== emulated-float32 validation sweeps ==")
    ok = True
    ok &= sweep("exp", lambda x: emu_exp(exp_c, x),
                exp, -88.0, 88.0)
    ok &= sweep("tanh", lambda x: emu_tanh(exp_c, tanh_c, x),
                tanh, -10.0, 10.0)
    ok &= sweep("sigmoid", lambda x: emu_sigmoid(exp_c, x),
                lambda x: 1.0 / (1.0 + exp(-x)), -30.0, 30.0)
    ok &= sweep("erf", lambda x: emu_erf(exp_c, erf_small_c, erf_tail_c, x),
                erf, -10.0, 10.0)
    if not ok:
        raise SystemExit("coefficient validation failed")
    print("\nall sweeps within bounds")


if __name__ == "__main__":
    main()
