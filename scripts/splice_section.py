#!/usr/bin/env python3
"""Replaces one bench's section inside bench_output.txt with fresh output.

Usage: scripts/splice_section.py <bench_output.txt> <bench_name> <new_out>

Sections are delimited by '##### RUNNING: .../<bench_name>' markers. Used
when a single bench binary was fixed after the full suite ran, so its
section can be regenerated without re-paying the whole suite.
"""
import sys


def main() -> int:
    path, bench, new_path = sys.argv[1], sys.argv[2], sys.argv[3]
    lines = open(path).read().split("\n")
    marker = "##### RUNNING: "
    start = end = None
    for i, line in enumerate(lines):
        if line.startswith(marker) and line.endswith("/" + bench):
            start = i
        elif start is not None and line.startswith(marker):
            end = i
            break
    if start is None:
        print(f"section {bench} not found", file=sys.stderr)
        return 1
    if end is None:
        end = len(lines)
    new_body = open(new_path).read().rstrip("\n").split("\n")
    lines[start:end] = [lines[start]] + new_body + [""]
    open(path, "w").write("\n".join(lines))
    print(f"spliced {bench}: {end - start - 1} -> {len(new_body)} lines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
