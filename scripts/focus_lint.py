#!/usr/bin/env python3
"""Repo-specific lint for invariants clang-tidy cannot express.

Rule families (select with --rules=repo,format; default both):

repo rules — correctness contracts from the parallel-kernel layer:
  flop-in-parallel   FlopCounter mutation inside a ParallelFor / RunShards
                     body. FLOP counts must be computed once, from resolved
                     dims, outside the parallel region (PR 2's determinism
                     contract: counts must not depend on FOCUS_NUM_THREADS,
                     and the counter must not be contended per-shard).
  raw-array-new      Raw `new T[...]` in kernel code (src/tensor,
                     src/parallel). Buffers must go through the tracked
                     allocator in tensor.cc so MemoryStats stays honest.
                     Suppress deliberate uses with // NOLINT(focus-raw-new).
  raw-float-new      `new float[...]` anywhere outside tensor/allocator.cc.
                     Float buffers must come from Allocator so size-class
                     recycling and raw-byte accounting stay complete; the
                     allocator itself is the only permitted backing-store
                     call site (NOLINT does not suppress this elsewhere).
  op-entry-guard     Every public op entry point in src/tensor/ops_*.cc
                     (a function declared in tensor/ops.h) must open with a
                     FOCUS_*CHECK validation of its operands.
  simd-containment   <immintrin.h> includes and _mm256* identifiers are
                     confined to src/tensor/simd/. Everything else reaches
                     vector code through simd::KernelTable, which is what
                     keeps the scalar backend and the FOCUS_SIMD=OFF build
                     bit-identical; there is no NOLINT escape.
  perf-containment   perf_event_open / raw syscall() calls are confined to
                     src/obs/prof/. Everything else reads hardware counters
                     through obs::prof::PerfCounters, which owns the single
                     degradation path (zeroed counters + one warning) on
                     hosts where the syscall is unavailable; no NOLINT
                     escape.
  plan-containment   SlabLease (the execution-plan slab) is confined to
                     src/plan/ and its definition in tensor/allocator.h.
                     Slab offsets alias each other by design; only the plan
                     compiler's lifetime solver can prove a slab pointer
                     valid, so no other layer may hold one. No NOLINT
                     escape.
  precision-containment
                     Mixed-precision conversion primitives stay behind the
                     kernel table. Float-width conversion intrinsics
                     (_mm*_cvt*, the F16C scalar pair, vcvtneps2bf16) are
                     confined to src/tensor/simd/ — everything else narrows
                     through pack_bf16/unpack_bf16, which is what keeps bf16
                     rounding identical across backends. The int8 requantize
                     primitive dot_i8 is additionally confined to
                     src/core/proto_attn.cc (the sole int8 consumer) plus
                     tests/ and bench/ which exercise the kernel directly; a
                     second consumer would fork the requantization math. No
                     NOLINT escape.
  arena-containment  ArenaLease (the serving scratch slab) is confined to
                     src/serve/, its definition in tensor/allocator.{h,cc},
                     and tests/. A lease's bump pointer has exactly one
                     owner — the in-flight batch that checked it out; any
                     other holder would be ad-hoc manual memory management
                     outside the engine's checkout/return lifecycle. No
                     NOLINT escape.

format rules — mechanical style (what clang-format would enforce; kept
tool-free so the check runs in a bare container):
  trailing-space     No trailing whitespace.
  tab-indent         No hard tabs in C++ sources.
  final-newline      Files end with exactly one newline.
  long-line          Lines <= 80 columns (URLs and includes exempt).

Exit status: 0 = clean, 1 = violations (each printed as file:line: rule).
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CXX_GLOBS = ("src/**/*.cc", "src/**/*.h", "src/**/*.inc", "tests/*.cc",
             "tests/*.h", "bench/**/*.cc", "examples/**/*.cc",
             "examples/**/*.cpp")
KERNEL_DIRS = ("src/tensor", "src/parallel")
MAX_LINE = 80

violations = []


def report(path, line_no, rule, message):
    violations.append(f"{path.relative_to(REPO_ROOT)}:{line_no}: [{rule}] {message}")


def cxx_sources():
    files = []
    for pattern in CXX_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            if c == "\\":
                out.append("\\x")
                i += 2
                continue
            if (state == "str" and c == '"') or (state == "chr" and c == "'"):
                state = None
            out.append(c)
        i += 1
    return "".join(out)


def matching_paren_span(text, open_idx):
    """Returns the index one past the ')' matching the '(' at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


# --- repo rules --------------------------------------------------------------


def check_flop_in_parallel(path, raw, code):
    for m in re.finditer(r"\b(?:ParallelFor|RunShards)\s*\(", code):
        end = matching_paren_span(code, m.end() - 1)
        body = code[m.start():end]
        offset = body.find("FlopCounter::")
        if offset >= 0:
            report(path, line_of(code, m.start() + offset), "flop-in-parallel",
                   "FlopCounter mutated inside a parallel region; hoist the "
                   "count out of the ParallelFor body")


def check_raw_array_new(path, raw, code):
    if not any(str(path.relative_to(REPO_ROOT)).startswith(d)
               for d in KERNEL_DIRS):
        return
    raw_lines = raw.splitlines()
    for m in re.finditer(r"\bnew\s+\w[\w:<>\s]*\[", code):
        ln = line_of(code, m.start())
        context = " ".join(raw_lines[max(0, ln - 2):ln])
        if "NOLINT(focus-raw-new)" in context:
            continue
        report(path, ln, "raw-array-new",
               "raw array new in kernel code; allocate through the tracked "
               "Tensor buffers (or annotate // NOLINT(focus-raw-new))")


def check_raw_float_new(path, raw, code):
    # The caching allocator is the single backing store for float buffers;
    # any other `new float[` bypasses recycling and raw-byte accounting.
    # Unlike raw-array-new there is no NOLINT escape hatch outside
    # allocator.cc — route the buffer through Allocator::Get().Allocate().
    if str(path.relative_to(REPO_ROOT)) == "src/tensor/allocator.cc":
        return
    for m in re.finditer(r"\bnew\s+float\s*\[", code):
        report(path, line_of(code, m.start()), "raw-float-new",
               "new float[] outside tensor/allocator.cc; obtain buffers via "
               "Allocator::Get().Allocate() so they are recycled and counted")


def check_perf_containment(path, raw, code):
    # perf_event_open has exactly one wrapper (obs/prof/perf_counters.cc):
    # it owns fd lifetime, multiplex scaling, and the degrade-to-zeroes
    # path. A second call site would fork that error handling, so raw
    # syscalls are banned outside src/obs/prof/ with no NOLINT escape.
    rel = str(path.relative_to(REPO_ROOT)).replace("\\", "/")
    if rel.startswith("src/obs/prof/"):
        return
    for m in re.finditer(r"\bperf_event_open\b|\bsyscall\s*\(", code):
        report(path, line_of(code, m.start()), "perf-containment",
               f"'{m.group(0).strip()}' outside src/obs/prof/; read hardware "
               "counters through obs::prof::PerfCounters")


def check_plan_containment(path, raw, code):
    # A SlabLease hands out one backing buffer that every plan temp
    # aliases at solver-chosen offsets. Outside the plan compiler there
    # is no lifetime information that could justify touching it, so any
    # other holder is a latent use-after-overwrite; no NOLINT escape.
    rel = str(path.relative_to(REPO_ROOT)).replace("\\", "/")
    if rel.startswith("src/plan/") or rel == "src/tensor/allocator.h":
        return
    for m in re.finditer(r"\bSlabLease\b", code):
        report(path, line_of(code, m.start()), "plan-containment",
               "SlabLease outside src/plan/; run against a compiled "
               "ExecutionPlan instead of holding slab memory directly")


def check_arena_containment(path, raw, code):
    # An ArenaLease's bump pointer belongs to exactly one in-flight batch;
    # the serve engine owns the whole checkout/carve/return lifecycle.
    # Any other holder would be hand-rolled memory management with no
    # lifetime story, so leases are banned elsewhere (tests exercise the
    # lease directly and are exempt); no NOLINT escape.
    rel = str(path.relative_to(REPO_ROOT)).replace("\\", "/")
    if (rel.startswith("src/serve/") or rel.startswith("tests/")
            or rel in ("src/tensor/allocator.h", "src/tensor/allocator.cc")):
        return
    for m in re.finditer(r"\bArenaLease\b", code):
        report(path, line_of(code, m.start()), "arena-containment",
               "ArenaLease outside src/serve/; submit work to the serving "
               "engine instead of carving arena scratch directly")


def check_precision_containment(path, raw, code):
    # bf16/f16 width conversions round; int8 requantization rescales. Both
    # are deterministic only because exactly one implementation of each
    # exists (kernels.inc, both backends from one source). A raw
    # conversion intrinsic elsewhere — including the SSE/F16C ones the
    # _mm256 simd-containment pattern does not catch — would fork the
    # rounding, so they are confined to src/tensor/simd/ with no NOLINT
    # escape. dot_i8 (the only int8 kernel) additionally admits exactly
    # one product consumer: the ProtoAttn assignment path.
    rel = str(path.relative_to(REPO_ROOT)).replace("\\", "/")
    if rel.startswith("src/tensor/simd/"):
        return
    cvt = (r"\b_mm\d*_cvt\w+|\b_mm_cvt\w+|\bvcvtneps2bf16\w*"
           r"|\b_cvtss_sh\b|\b_cvtsh_ss\b")
    for m in re.finditer(cvt, code):
        report(path, line_of(code, m.start()), "precision-containment",
               f"conversion intrinsic '{m.group(0)}' outside "
               "src/tensor/simd/; narrow through the pack_bf16/unpack_bf16 "
               "kernel-table entries")
    if (rel == "src/core/proto_attn.cc" or rel.startswith("tests/")
            or rel.startswith("bench/")):
        return
    for m in re.finditer(r"\bdot_i8\b", code):
        report(path, line_of(code, m.start()), "precision-containment",
               "dot_i8 outside src/core/proto_attn.cc; the int8 requantize "
               "path has exactly one product consumer — go through "
               "ProtoAttn::AssignTokens")


def check_simd_containment(path, raw, code):
    # Raw intrinsics anywhere else would fork the numerics: the determinism
    # contract holds because every vector kernel is compiled once from
    # src/tensor/simd and selected through simd::KernelTable. Like
    # raw-float-new, this rule has no NOLINT escape — add a kernel to the
    # table instead.
    rel = str(path.relative_to(REPO_ROOT)).replace("\\", "/")
    if rel.startswith("src/tensor/simd/"):
        return
    for m in re.finditer(r"#\s*include\s*[<\"]immintrin\.h[>\"]", code):
        report(path, line_of(code, m.start()), "simd-containment",
               "<immintrin.h> outside src/tensor/simd/; route vector code "
               "through simd::KernelTable")
    for m in re.finditer(r"\b_mm256\w*", code):
        report(path, line_of(code, m.start()), "simd-containment",
               f"intrinsic '{m.group(0)}' outside src/tensor/simd/; route "
               "vector code through simd::KernelTable")


def public_op_names():
    """Free functions declared in tensor/ops.h (the public op surface)."""
    header = strip_comments_and_strings(
        (REPO_ROOT / "src/tensor/ops.h").read_text())
    names = set()
    for m in re.finditer(r"^(?:Tensor|void|Shape)\s+(\w+)\(", header, re.M):
        names.add(m.group(1))
    # Declarations wrapped onto the previous line (return type alone).
    for m in re.finditer(r"^(?:Tensor|void|Shape)\n(\w+)\(", header, re.M):
        names.add(m.group(1))
    return names - {"operator"}


def check_op_entry_guard(path, raw, code, op_names):
    if not re.match(r"ops_\w+\.cc$", path.name):
        return
    for m in re.finditer(r"^(?:Tensor|void|Shape)\s+(\w+)\(", code, re.M):
        name = m.group(1)
        if name not in op_names:
            continue
        brace = code.find("{", m.end())
        if brace < 0:
            continue
        # The guard must appear in the opening statements of the body.
        head = code[brace:brace + 600]
        if not re.search(r"FOCUS_\w*CHECK", head):
            report(path, line_of(code, m.start()), "op-entry-guard",
                   f"public op '{name}' does not open with a FOCUS_CHECK "
                   "shape/rank/definedness validation")


# --- format rules ------------------------------------------------------------


def check_format(path, raw):
    lines = raw.split("\n")
    for i, line in enumerate(lines, 1):
        if line != line.rstrip():
            report(path, i, "trailing-space", "trailing whitespace")
        if "\t" in line:
            report(path, i, "tab-indent", "hard tab")
        if len(line) > MAX_LINE and "http" not in line and "#include" not in line:
            report(path, i, "long-line",
                   f"{len(line)} columns (limit {MAX_LINE})")
    if raw and not raw.endswith("\n"):
        report(path, len(lines), "final-newline", "missing final newline")
    elif raw.endswith("\n\n"):
        report(path, len(lines), "final-newline", "multiple final newlines")


# --- driver ------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rules", default="repo,format",
                        help="comma-separated rule families: repo,format")
    args = parser.parse_args()
    families = set(args.rules.split(","))
    unknown = families - {"repo", "format"}
    if unknown:
        parser.error(f"unknown rule families: {sorted(unknown)}")

    op_names = public_op_names() if "repo" in families else set()
    for path in cxx_sources():
        raw = path.read_text()
        if "repo" in families:
            code = strip_comments_and_strings(raw)
            check_flop_in_parallel(path, raw, code)
            check_raw_array_new(path, raw, code)
            check_raw_float_new(path, raw, code)
            check_perf_containment(path, raw, code)
            check_plan_containment(path, raw, code)
            check_arena_containment(path, raw, code)
            check_precision_containment(path, raw, code)
            check_simd_containment(path, raw, code)
            check_op_entry_guard(path, raw, code, op_names)
        if "format" in families:
            check_format(path, raw)

    if violations:
        print(f"focus_lint: {len(violations)} violation(s)", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"focus_lint: clean ({', '.join(sorted(families))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
