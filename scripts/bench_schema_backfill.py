#!/usr/bin/env python3
"""One-shot converter: backfill results/BENCH_*.json into the unified
bench-result schema (obs/bench_report.h, `"focus_bench_schema": 1`).

Each pre-PR6 results file used whatever shape its recording session chose
(raw google-benchmark dumps, per-config maps). This script rewrites them
as a unified report -- header fields plus a flat `benchmarks` list with
one mandatory `ns_per_op` per entry -- and preserves the original
document verbatim under `legacy`. Entry names are suffixed with the run
configuration (`@threads=8`, `@avx2_t1`) so distinct configurations stay
distinct benchmarks for scripts/bench_diff.py.

Run from the repo root:  python3 scripts/bench_schema_backfill.py
Idempotent: files already carrying the schema header are skipped.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_file_info(path):
    """(short sha, ISO date) of the commit that last touched `path`."""
    try:
        out = subprocess.check_output(
            ["git", "log", "-1", "--format=%h %cI", "--", path],
            cwd=REPO, text=True).strip()
        sha, date = out.split(" ", 1)
        return sha, date
    except (subprocess.CalledProcessError, ValueError, OSError):
        return "unknown", "unknown"


def entry(name, ns_per_op, gflops=0.0, items_per_second=0.0, threads=0.0,
          label=""):
    return {
        "name": name,
        "ns_per_op": float(ns_per_op),
        "gflops": float(gflops or 0.0),
        "items_per_second": float(items_per_second or 0.0),
        "threads": float(threads or 0.0),
        "label": label or "",
    }


def gbench_entry(run, suffix):
    """Normalize one google-benchmark run record (time_unit-aware)."""
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    scale = unit_ns.get(run.get("time_unit", "ns"), 1.0)
    items = run.get("items_per_second", 0.0)
    return entry(
        name=run["name"] + suffix,
        ns_per_op=run["real_time"] * scale,
        gflops=items / 1e9 if items > 1e6 else 0.0,
        items_per_second=items,
        threads=run.get("threads", 0.0),
        label=run.get("run_type", ""))


def header(doc, path, note, cpu_model, num_cpus, build_type, simd_backend,
           threads, benchmarks, date=None):
    sha, file_date = git_file_info(path)
    return {
        "focus_bench_schema": 1,
        "date": date or file_date,
        "note": note,
        "machine": {"cpu_model": cpu_model, "num_cpus": num_cpus},
        "build": {
            "git_sha": sha,
            "simd_backend": simd_backend,
            "build_type": build_type,
            "threads": threads,
        },
        "benchmarks": benchmarks,
        "legacy": doc,
    }


def convert_kernels(doc, path):
    ctx = doc["context_t1"]
    benches = []
    for run_key, runs in doc["runs"].items():  # "threads=1", "threads=8"
        for run in runs:
            if run.get("run_type") != "iteration":
                continue
            benches.append(gbench_entry(run, "@" + run_key))
    return header(
        doc, path, doc["note"],
        cpu_model=f"unknown ({ctx['mhz_per_cpu']} MHz)",
        num_cpus=ctx["num_cpus"], build_type=ctx["library_build_type"],
        simd_backend="pre-simd", threads=0, benchmarks=benches,
        date=ctx["date"])


def convert_alloc(doc, path):
    ctx = doc["context"]
    benches = [gbench_entry(run, "")
               for run in doc["benchmarks"]
               if run.get("run_type") == "iteration"]
    # cap_mb is the interesting configuration axis; fold it into the name.
    for bench, run in zip(benches, doc["benchmarks"]):
        cap = run.get("cap_mb")
        if cap is not None:
            bench["name"] += f"@cap_mb={int(cap)}"
    return header(
        doc, path, doc["note"],
        cpu_model=f"unknown ({ctx['mhz_per_cpu']} MHz)",
        num_cpus=ctx["num_cpus"], build_type=ctx["library_build_type"],
        simd_backend="pre-simd", threads=1, benchmarks=benches,
        date=ctx["date"])


def convert_simd(doc, path):
    meta = doc["_meta"]
    benches = []
    for config, runs in doc["runs"].items():  # "avx2_t1" etc.
        for name, run in runs.items():
            benches.append(entry(
                name=f"{name}@{config}",
                ns_per_op=run["real_time_ns"],
                gflops=run.get("gflops", 0.0),
                items_per_second=run.get("items_per_second", 0.0),
                threads=run.get("threads", 0.0),
                label=run.get("backend", "")))
    return header(
        doc, path, meta["description"],
        cpu_model=f"unknown ({meta['mhz_per_cpu']} MHz)",
        num_cpus=meta["host_cpus"], build_type=meta["library_build_type"],
        simd_backend="mixed", threads=0, benchmarks=benches)


CONVERTERS = {
    "results/BENCH_kernels.json": convert_kernels,
    "results/BENCH_alloc.json": convert_alloc,
    "results/BENCH_simd.json": convert_simd,
}


def main():
    for rel, convert in CONVERTERS.items():
        path = os.path.join(REPO, rel)
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("focus_bench_schema") == 1:
            print(f"{rel}: already unified, skipping")
            continue
        unified = convert(doc, rel)
        with open(path, "w") as fh:
            json.dump(unified, fh, indent=2)
            fh.write("\n")
        print(f"{rel}: wrote {len(unified['benchmarks'])} unified entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
