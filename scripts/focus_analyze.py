#!/usr/bin/env python3
"""Semantic contract analyzer: compile-db-driven libclang AST checks.

focus_lint.py catches what a regex can see; this tool enforces the
contracts that need real syntax and scope — which lambda an argument
is, whether a lock is still alive at a call site, whether a statement
is a declaration or a discarded temporary. It parses every translation
unit named by a CMake `compile_commands.json` through libclang
(`clang.cindex`) and walks the AST.

Rules (all AST-level; none expressible in focus_lint's regex layer):

  plan-capture-safety   Lambdas recorded into plan_hooks (arguments to
                        plan_hooks::Record / the closure assigned to
                        StepRecord::fn before RecordStep) must capture
                        only by value: no capture-default `&`, no
                        `&name`, no `this`. Replay closures outlive the
                        capture scope by construction — a by-reference
                        capture is a dangling pointer in every replay.
                        Lambdas *inside* the closure body (the nested
                        ParallelFor bodies) run immediately and are
                        exempt.
  lock-across-parallel  No std::lock_guard / unique_lock / scoped_lock
                        may be live in scope at a ParallelFor/RunShards
                        call site (outside src/parallel/ itself, which
                        owns the pool's internal dispatch locks).
                        Nested ParallelFor serializes onto the caller,
                        so a lock held across the region either
                        deadlocks against a body that takes it or
                        silently serializes the whole pool behind it.
                        Calls inside deferred lambdas are not charged
                        to the enclosing lock scope (they may run
                        later, off-thread).
  unnamed-raii          TraceSpan, InferenceModeGuard, and lock guards
                        constructed as expression-statement temporaries
                        (`TraceSpan("x");`) are destroyed at the end of
                        the full expression — the span/guard covers
                        nothing. The object must be a named local.
  raw-getenv            std::getenv outside src/utils/ bypasses the
                        hardened helpers (GetEnvOr / GetEnvIntInRangeOr
                        in utils/env.h), which own the
                        warn-and-fallback contract for malformed
                        values.
  nondeterministic-emit Range-for over std::unordered_map/set inside an
                        emission path (any function in src/obs/, or a
                        function whose name says it emits: Export*,
                        *Json, *Report, Write*, Dump*, Emit*).
                        Iteration order is hash-seed / libstdc++-
                        version dependent; bench_diff.py and trace
                        diffing need byte-stable output.
  op-entry-guard        Every public op (declared in tensor/ops.h,
                        defined in ops_*.cc) must validate operands
                        before dispatching work: a FOCUS_*CHECK token
                        must appear, in statement order, before the
                        first statement that launches a kernel
                        (ParallelFor / RunShards / simd::Kernels()) or
                        calls another public op. Upgrades focus_lint's
                        600-char regex window to a check over the
                        function body's actual leading statements.

Suppressions: a deliberate exception carries, on the same line or the
line above, `// FOCUS-ANALYZE-OK(rule): reason`. Used suppressions are
counted and reported; unused ones are reported as warnings (they
usually mean the code was fixed but the comment stayed).

Degradation contract: when `clang.cindex` or a loadable libclang shared
library is unavailable, every analysis mode prints a single
`focus_analyze: SKIP (...)` notice and exits 0, mirroring check.sh's
clang-tidy gating; `--selftest-offline` (the libclang-free subset) and
`--probe` still run everywhere. ctest marks the skipped runs as
"Skipped" via SKIP_REGULAR_EXPRESSION.

Exit status: 0 = clean or skipped, 1 = findings (or selftest
mismatch), 2 = usage/configuration error.
"""

import argparse
import json
import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO_ROOT / "tests" / "analyze_fixtures"

# Directories whose TUs we analyze (findings elsewhere are dropped).
ANALYZED_DIRS = ("src", "tests", "bench", "examples")

RULES = (
    "plan-capture-safety",
    "lock-across-parallel",
    "unnamed-raii",
    "raw-getenv",
    "nondeterministic-emit",
    "op-entry-guard",
)

GUARD_TYPES = ("TraceSpan", "InferenceModeGuard", "lock_guard",
               "unique_lock", "scoped_lock", "shared_lock")
LOCK_TYPES = ("lock_guard", "unique_lock", "scoped_lock", "shared_lock")
PARALLEL_CALLS = ("ParallelFor", "RunShards")
GETENV_NAMES = ("getenv", "secure_getenv")
UNORDERED_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\b")
EMIT_FN_RE = re.compile(
    r"(?:^|_)(?:[Ee]xport|[Ww]rite|[Dd]ump|[Ee]mit)"
    r"|(?:Json|Report)(?:$|[A-Z_])"
    r"|(?:^|_)(?:json|report)(?:$|_)")
CHECK_TOKEN_RE = re.compile(r"^FOCUS_\w*CHECK\w*$")
SUPPRESS_RE = re.compile(r"//\s*FOCUS-ANALYZE-OK\((?P<rule>[\w-]+)\)\s*:")
EXPECT_RE = re.compile(r"//\s*EXPECT-FINDING:\s*(?P<rule>[\w-]+)")
OP_NAMES_RE = re.compile(r"//\s*ANALYZE-OP-NAMES:\s*(?P<names>[\w ]+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = Path(path)
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (str(self.path), self.line, self.rule)

    def render(self, root):
        p = self.path
        try:
            p = p.relative_to(root)
        except ValueError:
            pass
        return f"{p}:{self.line}: [{self.rule}] {self.message}"


# --- libclang availability ---------------------------------------------------


def load_cindex():
    """Returns a working clang.cindex module, or None with a reason."""
    try:
        from clang import cindex  # noqa: F401  (optional dependency)
    except ImportError:
        return None, "python module clang.cindex not installed"
    import ctypes.util
    import glob
    import os
    candidates = []
    env = os.environ.get("FOCUS_LIBCLANG")
    if env:
        candidates.append(env)
    found = ctypes.util.find_library("clang")
    if found:
        candidates.append(found)
    for pat in ("/usr/lib/llvm-*/lib/libclang-*.so*",
                "/usr/lib/llvm-*/lib/libclang.so*",
                "/usr/lib/*/libclang-*.so*",
                "/usr/lib/*/libclang.so*",
                "/usr/local/lib/libclang*.so*"):
        candidates.extend(sorted(glob.glob(pat), reverse=True))
    last_err = "no libclang shared library found"
    for cand in candidates:
        # libclang-cpp is the C++ API; cindex needs the C API library.
        if "libclang-cpp" in cand:
            continue
        try:
            cfg = cindex.Config()
            cfg.set_library_file(cand)
            cfg.lib  # force dlopen now, not lazily inside parse()
            cindex.conf = cfg
            return cindex, None
        except Exception as e:  # noqa: BLE001 — any dlopen/ABI failure
            last_err = f"{cand}: {e}"
    # Some installs register libclang with the default loader path.
    try:
        cindex.Index.create()
        return cindex, None
    except Exception:  # noqa: BLE001
        return None, last_err


def skip(reason):
    print(f"focus_analyze: SKIP ({reason}); semantic rules not enforced "
          "on this host")
    return 0


# --- suppressions ------------------------------------------------------------


class Suppressions:
    """FOCUS-ANALYZE-OK(rule) markers for one source file."""

    def __init__(self, path):
        self.by_line = {}  # line -> rule
        self.used = set()
        try:
            text = Path(path).read_text()
        except OSError:
            text = ""
        for i, line in enumerate(text.splitlines(), 1):
            m = SUPPRESS_RE.search(line)
            if m:
                self.by_line[i] = m.group("rule")

    def matches(self, line, rule):
        """True if a marker on `line` or the line above covers `rule`."""
        for cand in (line, line - 1):
            if self.by_line.get(cand) == rule:
                self.used.add(cand)
                return True
        return False

    def unused(self):
        return {ln: rule for ln, rule in self.by_line.items()
                if ln not in self.used}


# --- compile database --------------------------------------------------------


def load_compile_db(arg):
    """Returns a list of (source_path, clang_args) from compile_commands.json.

    `arg` may be the JSON file itself or a directory containing it; when
    None, the conventional build directories are searched.
    """
    candidates = []
    if arg:
        p = Path(arg)
        candidates = [p if p.suffix == ".json" else p / "compile_commands.json"]
    else:
        for d in ("build", "build-check", "build-analyze", "build-tidy"):
            candidates.append(REPO_ROOT / d / "compile_commands.json")
    db_path = next((c for c in candidates if c.is_file()), None)
    if db_path is None:
        tried = ", ".join(str(c) for c in candidates)
        raise FileNotFoundError(
            f"no compile_commands.json (tried: {tried}); configure with "
            "cmake -B build -S . (CMAKE_EXPORT_COMPILE_COMMANDS is on by "
            "default in the top-level CMakeLists)")
    entries = json.loads(db_path.read_text())
    tus = []
    seen = set()
    for entry in entries:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry["directory"]) / src
        src = src.resolve()
        if src in seen:
            continue
        seen.add(src)
        try:
            rel = src.relative_to(REPO_ROOT)
        except ValueError:
            continue
        if rel.parts[0] not in ANALYZED_DIRS:
            continue
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry["command"])
        tus.append((src, adapt_args(argv, src)))
    return tus


def adapt_args(argv, src):
    """Turns a compile-db command line into libclang parse args."""
    out = []
    i = 1  # drop the compiler itself
    while i < len(argv):
        a = argv[i]
        if a in ("-c", "-Werror"):
            i += 1
            continue
        if a == "-o":
            i += 2
            continue
        if a == str(src):
            i += 1
            continue
        out.append(a)
        i += 1
    # We want the AST, not the diagnostics; gcc flag sets may produce
    # clang warnings that are beside the point here.
    out += ["-Wno-everything", "-ferror-limit=50"]
    return out


# --- AST helpers -------------------------------------------------------------


def tokens_of(cursor):
    """Non-comment token spellings of a cursor's extent."""
    out = []
    for t in cursor.get_tokens():
        if t.kind.name != "COMMENT":
            out.append(t.spelling)
    return out


def cursor_file(cursor):
    f = cursor.location.file
    return Path(f.name).resolve() if f else None


def type_names(type_spelling):
    """The identifier set of a type spelling, for guard-type matching."""
    return set(re.findall(r"\w+", type_spelling))


def callee_name(call_cursor):
    """Spelling of a CALL_EXPR's callee, robust to unresolved templates."""
    name = call_cursor.spelling
    if name:
        return name
    ref = call_cursor.referenced
    return ref.spelling if ref else ""


def call_is_qualified(call_cursor, namespace):
    """True if the callee is (lexically or semantically) in `namespace`."""
    ref = call_cursor.referenced
    if ref is not None:
        parent = ref.semantic_parent
        while parent is not None and parent.kind is not None:
            if parent.spelling == namespace:
                return True
            parent = parent.semantic_parent
            if parent is None or parent.spelling == "":
                break
        return False
    # Unresolved (template-dependent) call: look at the spelled tokens up
    # to the opening paren.
    toks = []
    for t in call_cursor.get_tokens():
        if t.spelling == "(":
            break
        toks.append(t.spelling)
        if len(toks) > 8:
            break
    return namespace in toks


def lambda_capture_violations(lam, in_method):
    """Returns [(line, message)] for unsafe captures of LAMBDA_EXPR `lam`.

    Token-level inspection of the capture introducer `[...]`: the
    introducer is pure syntax, so tokens are exact here, while libclang's
    cursor API does not expose by-ref vs by-value capture kinds.
    `in_method` comes from the analyzer's enclosing-function stack (a
    `[=]` inside a member function implicitly captures `this`).
    """
    toks = list(lam.get_tokens())
    if not toks or toks[0].spelling != "[":
        return []
    intro, depth = [], 0
    for t in toks:
        s = t.spelling
        if s == "[":
            depth += 1
            if depth == 1:
                continue
        elif s == "]":
            depth -= 1
            if depth == 0:
                break
        intro.append((s, t.location.line))
    # Split the introducer on top-level commas.
    entries, cur, nest = [], [], 0
    for s, line in intro:
        if s in ("(", "<", "{", "["):
            nest += 1
        elif s in (")", ">", "}", "]"):
            nest -= 1
        if s == "," and nest == 0:
            entries.append(cur)
            cur = []
        else:
            cur.append((s, line))
    if cur:
        entries.append(cur)
    bad = []
    for entry in entries:
        if not entry:
            continue
        first, line = entry[0]
        spelled = "".join(s for s, _ in entry)
        if first == "&":
            what = spelled if len(entry) > 1 else "capture-default [&]"
            bad.append((line, f"by-reference capture '{what}'"))
        elif first == "this":
            bad.append((line, "captures 'this' (the object may be dead "
                              "at replay time)"))
        elif first == "=" and len(entry) == 1 and in_method:
            bad.append((line, "capture-default [=] inside a member "
                              "function implicitly captures 'this'"))
    return bad


def walk_calls_skipping_lambdas(ck, cursor, out):
    """Collects CALL_EXPR cursors, not descending into lambda bodies."""
    if cursor.kind == ck.LAMBDA_EXPR:
        return
    if cursor.kind == ck.CALL_EXPR:
        out.append(cursor)
    for child in cursor.get_children():
        walk_calls_skipping_lambdas(ck, child, out)


def top_level_lambdas(ck, cursor, out):
    """Collects LAMBDA_EXPRs reachable without entering another lambda."""
    if cursor.kind == ck.LAMBDA_EXPR:
        out.append(cursor)
        return
    for child in cursor.get_children():
        top_level_lambdas(ck, child, out)


# --- the analyzer ------------------------------------------------------------


class Analyzer:
    def __init__(self, cindex, op_names, root=REPO_ROOT):
        self.cindex = cindex
        self.ck = cindex.CursorKind
        self.op_names = op_names
        self.root = root
        self.findings = []
        self.fn_stack = []  # (name, is_emit_context)

    # -- entry point per TU --

    def analyze_tu(self, tu, tu_path):
        self.tu_path = Path(tu_path)
        self.visit(tu.cursor)

    def report(self, cursor, rule, message):
        f = cursor_file(cursor)
        if f is None:
            return
        self.findings.append(
            Finding(f, cursor.location.line, rule, message))

    def rel(self, path):
        try:
            return str(Path(path).resolve().relative_to(self.root))
        except ValueError:
            return str(path)

    # -- recursive walk --

    def visit(self, cursor):
        ck = self.ck
        kind = cursor.kind
        in_repo = True
        if kind != ck.TRANSLATION_UNIT:
            f = cursor_file(cursor)
            if f is None:
                in_repo = False
            else:
                try:
                    f.resolve().relative_to(self.root)
                except ValueError:
                    in_repo = False
        if not in_repo:
            return  # system headers: nothing to check, don't descend

        pushed = False
        if kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.FUNCTION_TEMPLATE,
                    ck.CONSTRUCTOR, ck.DESTRUCTOR):
            name = cursor.spelling or ""
            is_method = kind in (ck.CXX_METHOD, ck.CONSTRUCTOR,
                                 ck.DESTRUCTOR)
            self.fn_stack.append(
                (name, self.is_emit_context(cursor, name), is_method))
            pushed = True
            if cursor.is_definition():
                self.check_op_entry_guard(cursor)

        if kind == ck.COMPOUND_STMT:
            self.check_compound(cursor)
        elif kind == ck.CALL_EXPR:
            self.check_call(cursor)
        elif kind == ck.CXX_FOR_RANGE_STMT:
            self.check_range_for(cursor)

        for child in cursor.get_children():
            self.visit(child)
        if pushed:
            self.fn_stack.pop()

    # -- rule: unnamed-raii + lock-across-parallel (need statement order) --

    def check_compound(self, compound):
        ck = self.ck
        live_locks = []  # (decl_line, type_name) declared in this scope
        for stmt in compound.get_children():
            # A lock declared earlier in this scope is still live at
            # every later sibling statement (including initializers of
            # later declarations). Deferred lambda bodies are skipped:
            # the rule charges only calls provably run under the lock.
            if live_locks and not self.in_parallel_impl():
                calls = []
                walk_calls_skipping_lambdas(ck, stmt, calls)
                for call in calls:
                    if callee_name(call) in PARALLEL_CALLS:
                        lock_line, lock_type = live_locks[0]
                        self.report(
                            call, "lock-across-parallel",
                            f"{callee_name(call)} while std::{lock_type} "
                            f"(declared line {lock_line}) is live; nested "
                            "regions serialize onto the caller, so the "
                            "lock is held across every shard — release "
                            "it before dispatching")
            if stmt.kind == ck.DECL_STMT:
                for d in stmt.get_children():
                    if d.kind != ck.VAR_DECL:
                        continue
                    names = type_names(d.type.spelling)
                    hit = next((t for t in LOCK_TYPES if t in names), None)
                    if hit:
                        live_locks.append((d.location.line, hit))
            elif stmt.kind.is_expression():
                names = type_names(stmt.type.spelling)
                hit = next((t for t in GUARD_TYPES if t in names), None)
                if hit:
                    self.report(
                        stmt, "unnamed-raii",
                        f"{hit} constructed as an unnamed temporary; it "
                        "is destroyed at the ';' and guards nothing — "
                        "bind it to a named local")

    def in_parallel_impl(self):
        return self.rel(self.tu_path).startswith("src/parallel/")

    # -- rule: raw-getenv + plan-capture-safety (call sites) --

    def check_call(self, call):
        name = callee_name(call)
        if name in GETENV_NAMES and self.is_libc_getenv(call) \
                and not self.call_site_in_utils(call):
            self.report(
                call, "raw-getenv",
                f"raw {name}() outside src/utils/; use GetEnvOr / "
                "GetEnvIntInRangeOr (utils/env.h), which own the "
                "warn-and-fallback contract for malformed values")
        if name in ("Record", "RecordStep") and \
                call_is_qualified(call, "plan_hooks"):
            self.check_plan_capture_call(call)
        if name == "operator=":
            self.check_stepfn_assignment(call)

    def is_libc_getenv(self, call):
        """True unless the callee is a same-named function in some other
        (non-std) namespace."""
        ck = self.ck
        ref = call.referenced
        if ref is None:
            return True  # unresolved: assume the libc one
        parent = ref.semantic_parent
        while parent is not None and parent.kind in (
                ck.LINKAGE_SPEC, ck.UNEXPOSED_DECL):
            parent = parent.semantic_parent
        if parent is None or parent.kind == ck.TRANSLATION_UNIT:
            return True
        return parent.kind == ck.NAMESPACE and parent.spelling in ("std", "")

    def call_site_in_utils(self, call):
        # Attribution is per call-site file: a header included from many
        # TUs keeps its own path.
        f = cursor_file(call)
        if f is None:
            return False
        rel = self.rel(f)
        return rel.startswith("src/utils/")

    def check_plan_capture_call(self, call):
        ck = self.ck
        args = list(call.get_arguments())
        if not args:  # unresolved overload: fall back to all children
            args = list(call.get_children())[1:]
        lambdas = []
        for a in args:
            top_level_lambdas(ck, a, lambdas)
        in_method = self.current_in_method()
        for lam in lambdas:
            for line, msg in lambda_capture_violations(lam, in_method):
                self.findings.append(Finding(
                    cursor_file(lam), line, "plan-capture-safety",
                    f"replay closure recorded into plan_hooks has {msg}; "
                    "replay outlives the capture scope — capture by "
                    "value"))

    def check_stepfn_assignment(self, call):
        ck = self.ck
        children = list(call.get_children())
        if not children:
            return
        lhs = children[0]
        lhs_names = type_names(lhs.type.spelling)
        if "StepFn" not in lhs_names and not (
                lhs.kind == ck.MEMBER_REF_EXPR and lhs.spelling == "fn"
                and "StepRecord" in type_names(
                    next(iter(lhs.get_children()), lhs).type.spelling)):
            return
        lambdas = []
        for rhs in children[1:]:
            top_level_lambdas(ck, rhs, lambdas)
        in_method = self.current_in_method()
        for lam in lambdas:
            for line, msg in lambda_capture_violations(lam, in_method):
                self.findings.append(Finding(
                    cursor_file(lam), line, "plan-capture-safety",
                    f"StepRecord::fn closure has {msg}; replay outlives "
                    "the capture scope — capture by value"))

    def current_in_method(self):
        return bool(self.fn_stack) and self.fn_stack[-1][2]

    # -- rule: nondeterministic-emit --

    def is_emit_context(self, cursor, name):
        f = cursor_file(cursor)
        if f is not None and self.rel(f).startswith("src/obs/"):
            return True
        return bool(EMIT_FN_RE.search(name or ""))

    def check_range_for(self, cursor):
        if not (self.fn_stack and self.fn_stack[-1][1]):
            return
        # The range initializer's type decides the rule. libclang's
        # child layout for CXXForRangeStmt varies (the range expression
        # may sit bare or inside an implicit declaration), so collect
        # type spellings from every child subtree *except the loop
        # body* (the last child) — an unordered container merely used
        # inside the body is not an iteration over one.
        children = list(cursor.get_children())
        spellings = []

        def collect(c, depth=0):
            spellings.append(c.type.spelling or "")
            if depth < 4:
                for sub in c.get_children():
                    collect(sub, depth + 1)

        for c in children[:-1] if len(children) > 1 else children:
            collect(c)
        if any(UNORDERED_RE.search(s) for s in spellings):
            fn = self.fn_stack[-1][0]
            self.report(
                cursor, "nondeterministic-emit",
                f"range-for over an unordered container in emission "
                f"path '{fn}'; iteration order is hash-seed dependent — "
                "copy to a sorted vector (or use std::map) so trace/"
                "bench JSON stays byte-stable")

    # -- rule: op-entry-guard --

    def check_op_entry_guard(self, fn_cursor):
        name = fn_cursor.spelling
        if name not in self.op_names:
            return
        f = cursor_file(fn_cursor)
        if f is None or not re.match(r"ops_\w+\.(cc|cpp)$", f.name):
            return
        ck = self.ck
        body = None
        for child in fn_cursor.get_children():
            if child.kind == ck.COMPOUND_STMT:
                body = child
        if body is None:
            return
        check_pos = None
        dispatch_pos = None
        dispatch_what = None
        for idx, stmt in enumerate(list(body.get_children())):
            toks = tokens_of(stmt)
            if check_pos is None and any(
                    CHECK_TOKEN_RE.match(t) for t in toks):
                check_pos = idx
            if dispatch_pos is None:
                # Token scan (not call cursors): a dispatch buried in an
                # immediately-run ParallelFor lambda body still touches
                # the operands, so lambda bodies must count here.
                hit = next((t for t in toks if t in PARALLEL_CALLS
                            or t == "Kernels"
                            or (t in self.op_names and t != name)), None)
                if hit is not None:
                    dispatch_pos = idx
                    dispatch_what = hit
            if check_pos is not None and dispatch_pos is not None:
                break
        if check_pos is None:
            self.report(
                fn_cursor, "op-entry-guard",
                f"public op '{name}' has no FOCUS_*CHECK operand "
                "validation anywhere in its body")
        elif dispatch_pos is not None and dispatch_pos < check_pos:
            self.report(
                fn_cursor, "op-entry-guard",
                f"public op '{name}' dispatches work ('{dispatch_what}', "
                f"statement {dispatch_pos + 1}) before its first "
                f"FOCUS_*CHECK (statement {check_pos + 1}); validate "
                "operands first")


# --- op names (shared with focus_lint's regex layer) -------------------------


def public_op_names():
    ops_h = REPO_ROOT / "src/tensor/ops.h"
    if not ops_h.is_file():
        return set()
    text = ops_h.read_text()
    names = set()
    for m in re.finditer(r"^(?:Tensor|void|Shape)\s+(\w+)\(", text, re.M):
        names.add(m.group(1))
    for m in re.finditer(r"^(?:Tensor|void|Shape)\n(\w+)\(", text, re.M):
        names.add(m.group(1))
    return names - {"operator"}


# --- driver: tree scan -------------------------------------------------------


def run_tree(cindex, compile_db, paths):
    try:
        tus = load_compile_db(compile_db)
    except FileNotFoundError as e:
        print(f"focus_analyze: error: {e}", file=sys.stderr)
        return 2
    if paths:
        wanted = [str((REPO_ROOT / p).resolve()) for p in paths]
        tus = [(s, a) for s, a in tus
               if any(str(s).startswith(w) for w in wanted)]
    if not tus:
        print("focus_analyze: error: no translation units matched",
              file=sys.stderr)
        return 2

    analyzer = Analyzer(cindex, public_op_names())
    index = cindex.Index.create()
    parse_failures = []
    for src, args in sorted(tus):
        try:
            tu = index.parse(str(src), args=args)
        except cindex.TranslationUnitLoadError as e:
            parse_failures.append((src, str(e)))
            continue
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            parse_failures.append((src, fatal[0].spelling))
            continue
        analyzer.analyze_tu(tu, src)

    if parse_failures:
        print(f"focus_analyze: {len(parse_failures)} TU(s) failed to "
              "parse; findings below are incomplete", file=sys.stderr)
        for src, why in parse_failures[:10]:
            print(f"  {src}: {why}", file=sys.stderr)

    code = emit_findings(analyzer.findings, len(tus))
    return max(code, 1 if parse_failures else 0)


def emit_findings(findings, n_tus, root=REPO_ROOT):
    # Dedupe (headers are reached through many TUs), then suppress.
    unique = {}
    for f in findings:
        unique.setdefault(f.key(), f)
    suppressions = {}
    kept = []
    n_suppressed = 0
    for f in sorted(unique.values(),
                    key=lambda f: (str(f.path), f.line, f.rule)):
        sup = suppressions.get(f.path)
        if sup is None:
            sup = suppressions[f.path] = Suppressions(f.path)
        if sup.matches(f.line, f.rule):
            n_suppressed += 1
        else:
            kept.append(f)
    for path, sup in sorted(suppressions.items()):
        for ln, rule in sorted(sup.unused().items()):
            rel = path
            try:
                rel = path.relative_to(root)
            except ValueError:
                pass
            print(f"focus_analyze: warning: unused suppression "
                  f"FOCUS-ANALYZE-OK({rule}) at {rel}:{ln}")
    if kept:
        print(f"focus_analyze: {len(kept)} finding(s) across {n_tus} "
              f"TU(s), {n_suppressed} suppressed", file=sys.stderr)
        for f in kept:
            print(f"  {f.render(root)}", file=sys.stderr)
        return 1
    print(f"focus_analyze: clean ({n_tus} TU(s), {len(RULES)} rules, "
          f"{n_suppressed} suppression(s) honored)")
    return 0


# --- driver: fixture selftest ------------------------------------------------

FIXTURE_ARGS = ["-std=c++20", "-x", "c++", "-Wno-everything"]


def fixture_expectations(path):
    """(line -> [rules]) parsed from EXPECT-FINDING markers."""
    expect = {}
    for i, line in enumerate(path.read_text().splitlines(), 1):
        for m in EXPECT_RE.finditer(line):
            expect.setdefault(i, []).append(m.group("rule"))
    return expect


def run_selftest(cindex):
    fixtures = sorted(FIXTURE_DIR.glob("*.cc"))
    if not fixtures:
        print(f"focus_analyze: error: no fixtures in {FIXTURE_DIR}",
              file=sys.stderr)
        return 2
    index = cindex.Index.create()
    failures = []
    fired = {}  # rule -> count across the corpus
    for fx in fixtures:
        text = fx.read_text()
        m = OP_NAMES_RE.search(text)
        op_names = set(m.group("names").split()) if m else public_op_names()
        analyzer = Analyzer(cindex, op_names, root=FIXTURE_DIR)
        tu = index.parse(str(fx), args=FIXTURE_ARGS)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            failures.append(f"{fx.name}: fixture failed to parse: "
                            f"{fatal[0].spelling}")
            continue
        analyzer.analyze_tu(tu, fx)

        sup = Suppressions(fx)
        actual = {}
        for f in analyzer.findings:
            if Path(f.path) != fx:
                continue
            if sup.matches(f.line, f.rule):
                continue
            actual.setdefault(f.line, []).append(f.rule)
            fired[f.rule] = fired.get(f.rule, 0) + 1
        expected = fixture_expectations(fx)
        for line in sorted(set(expected) | set(actual)):
            want = sorted(expected.get(line, []))
            got = sorted(actual.get(line, []))
            if want != got:
                failures.append(
                    f"{fx.name}:{line}: expected {want or 'nothing'}, "
                    f"analyzer reported {got or 'nothing'}")
        # The suppressed fixture also pins the accounting.
        if "suppressed" in fx.name and not sup.used:
            failures.append(f"{fx.name}: suppression was not consumed")

    never_fired = [r for r in RULES if r not in fired]
    if never_fired:
        failures.append(
            f"rules with no firing fixture: {never_fired} — every rule "
            "needs a failing TU in tests/analyze_fixtures/")
    if failures:
        print(f"focus_analyze: selftest FAILED ({len(failures)} "
              "mismatch(es))", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    per_rule = ", ".join(f"{r}={fired[r]}" for r in RULES)
    print(f"focus_analyze: selftest passed over {len(fixtures)} "
          f"fixture(s) ({per_rule})")
    return 0


# --- driver: offline selftest (no libclang required) -------------------------


def run_selftest_offline():
    """Validates every part of the analyzer that does not need libclang.

    Runs everywhere — including hosts where the semantic rules skip — so
    the lint ctest label always carries executable coverage of the
    suppression grammar, the fixture corpus conventions, and the
    compile-db plumbing.
    """
    failures = []

    # 1. Suppression grammar: marker on the line and on the next line.
    import tempfile
    with tempfile.NamedTemporaryFile(
            "w", suffix=".cc", delete=False) as tf:
        tf.write("int a;\n"
                 "// FOCUS-ANALYZE-OK(raw-getenv): restore in test\n"
                 "int b;  // covered by previous line\n"
                 "int c;  // FOCUS-ANALYZE-OK(unnamed-raii): same line\n"
                 "// FOCUS-ANALYZE-OK(lock-across-parallel): never used\n"
                 "int d;\n")
        tmp = tf.name
    sup = Suppressions(tmp)
    if not sup.matches(3, "raw-getenv"):
        failures.append("suppression on preceding line not honored")
    if sup.matches(3, "unnamed-raii"):
        failures.append("suppression matched the wrong rule")
    if not sup.matches(4, "unnamed-raii"):
        failures.append("same-line suppression not honored")
    sup2 = Suppressions(tmp)
    if set(sup2.unused()) != {2, 4, 5}:
        failures.append(f"unused-suppression tracking wrong: "
                        f"{sorted(sup2.unused())}")
    Path(tmp).unlink()

    # 2. Fixture corpus conventions: every fixture parses as
    # expectations, every expected rule name is real, every rule has at
    # least one expectation somewhere, and the clean fixture has none.
    fixtures = sorted(FIXTURE_DIR.glob("*.cc"))
    if len(fixtures) < len(RULES) + 1:
        failures.append(
            f"fixture corpus too small: {len(fixtures)} files for "
            f"{len(RULES)} rules (+1 clean)")
    expected_rules = set()
    for fx in fixtures:
        exp = fixture_expectations(fx)
        for line, rules in exp.items():
            for r in rules:
                if r not in RULES:
                    failures.append(
                        f"{fx.name}:{line}: unknown rule '{r}' in "
                        "EXPECT-FINDING")
                expected_rules.add(r)
        if fx.name.startswith("clean") and exp:
            failures.append(f"{fx.name}: clean fixture must not carry "
                            "EXPECT-FINDING markers")
    missing = set(RULES) - expected_rules
    if fixtures and missing:
        failures.append(f"no fixture expects rule(s): {sorted(missing)}")

    # 3. Compile-db plumbing: adapt_args drops -c/-o/source/-Werror and
    # appends the diagnostic silencers.
    got = adapt_args(
        ["/usr/bin/c++", "-I/x", "-O2", "-Werror", "-c", "-o", "a.o",
         "/r/s.cc"], Path("/r/s.cc"))
    if got[:2] != ["-I/x", "-O2"] or "-Werror" in got or "-c" in got \
            or "a.o" in got or "/r/s.cc" in got \
            or "-Wno-everything" not in got:
        failures.append(f"adapt_args wrong: {got}")

    # 4. Emission-context heuristic.
    for name, want in (("WriteReportJson", True), ("ExportSpans", True),
                       ("DumpTrace", True), ("Accumulate", False),
                       ("report_to_json", True), ("Forecast", False)):
        if bool(EMIT_FN_RE.search(name)) != want:
            failures.append(f"EMIT_FN_RE('{name}') != {want}")

    # 5. Public-op extraction sees the real header (when run in-repo).
    ops = public_op_names()
    if (REPO_ROOT / "src/tensor/ops.h").is_file():
        for probe in ("MatMul", "Add", "SoftmaxLastDim"):
            if probe not in ops:
                failures.append(f"public_op_names missing '{probe}'")

    if failures:
        print(f"focus_analyze: offline selftest FAILED "
              f"({len(failures)})", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"focus_analyze: offline selftest passed "
          f"({len(fixtures)} fixtures, {len(RULES)} rules)")
    return 0


# --- main --------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description="libclang semantic contract analyzer (see module "
                    "docstring for the rule table)")
    parser.add_argument("--compile-db", metavar="DIR_OR_JSON",
                        help="compile_commands.json or its directory "
                             "(default: search build*/ dirs)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture corpus under "
                             "tests/analyze_fixtures/")
    parser.add_argument("--selftest-offline", action="store_true",
                        help="libclang-free checks (suppression grammar, "
                             "fixture conventions, compile-db plumbing)")
    parser.add_argument("--probe", action="store_true",
                        help="exit 0 if libclang is usable, 3 if not")
    parser.add_argument("paths", nargs="*",
                        help="restrict the tree scan to these paths")
    args = parser.parse_args()

    if args.selftest_offline:
        return run_selftest_offline()

    cindex, reason = load_cindex()
    if args.probe:
        if cindex is None:
            print(f"focus_analyze: libclang unavailable ({reason})")
            return 3
        print("focus_analyze: libclang available")
        return 0
    if cindex is None:
        return skip(reason)
    if args.selftest:
        return run_selftest(cindex)
    return run_tree(cindex, args.compile_db, args.paths)


if __name__ == "__main__":
    sys.exit(main())
