#!/usr/bin/env bash
# One-command correctness gate: runs the full matrix the CI would run.
#
#   1. lint      — scripts/focus_lint.py (repo + format rules), plus
#                  clang-format/clang-tidy when those tools are installed,
#                  plus scripts/focus_analyze.py (libclang AST-level
#                  semantic rules over compile_commands.json, gated the
#                  same way; its pure-Python offline selftest always runs).
#   2. default   — Release build with -Werror; full ctest suite.
#   3. simdoff   — Release build with -DFOCUS_SIMD=OFF (the AVX2 backend is
#                  not even compiled); re-runs the `parity` and `core` test
#                  labels to prove the scalar backend alone satisfies the
#                  numeric and bit-identity contracts.
#   4. asan      — AddressSanitizer + UBSan (-fno-sanitize-recover): any
#                  heap error or UB aborts the test. Runs with
#                  FOCUS_SIMD=scalar so every lane access is a plain float
#                  read the sanitizers can attribute byte-exactly (a 32-byte
#                  vector load can mask a 4-byte overrun).
#   5. tsan      — ThreadSanitizer; the suite additionally re-runs the
#                  parallel-sensitive tests with FOCUS_NUM_THREADS=4 and 8
#                  (registered by tests/CMakeLists.txt under FOCUS_TSAN).
#   6. precision — re-runs the `parity` tests and the `quant`
#                  accuracy-budget gate with FOCUS_PRECISION=bf16 and then
#                  =int8proto in the default Release build: the bit-identity
#                  contracts (eager/planned/served, scalar/avx2) must hold
#                  in every precision mode, and the MSE deltas must stay
#                  inside the budgets committed in bench/bench_quant.cc.
#
# An optional `perf` leg (not in the default matrix — it needs a quiet
# machine) builds bench_kernels + bench_serve in Release, runs their
# --smoke subsets with --focus-bench-json, and gates ns/op against the
# committed baseline
# results/BENCH_smoke_baseline.json via scripts/bench_diff.py. The
# threshold is deliberately generous (50%) because CI containers share
# cores; it catches order-of-magnitude regressions, not noise.
#
# Each leg uses its own build directory (build-check / build-asan /
# build-tsan) so instrumented objects never mix. Sanitizer legs disable
# benchmarks/examples (FOCUS_BUILD_BENCH=OFF) — they aren't tests and
# instrumented builds are slow.
#
# Usage:
#   scripts/check.sh                # full matrix
#   scripts/check.sh lint           # one leg:
#                                   #   lint|analyze|default|simdoff|asan|
#                                   #   tsan|precision|perf (analyze = just
#                                   #   the focus_analyze part of lint)
#   FOCUS_CHECK_JOBS=8 scripts/check.sh   # override build parallelism
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${FOCUS_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
cd "$REPO_ROOT"

note() { printf '\n=== check.sh: %s ===\n' "$*"; }

run_leg_lint() {
  note "lint (focus_lint.py repo+format rules)"
  python3 scripts/focus_lint.py --rules=repo,format

  if command -v clang-format >/dev/null 2>&1; then
    note "lint (clang-format --dry-run)"
    git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' \
      | xargs clang-format --dry-run --Werror
  else
    echo "check.sh: clang-format not installed; skipping (format rules" \
         "covered by focus_lint.py)"
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    note "lint (clang-tidy over src/)"
    cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DFOCUS_BUILD_BENCH=OFF >/dev/null
    git ls-files 'src/**/*.cc' | xargs clang-tidy -p build-tidy --quiet
  else
    echo "check.sh: clang-tidy not installed; skipping (.clang-tidy config" \
         "still applies wherever the tool is available)"
  fi

  run_leg_analyze
}

run_leg_analyze() {
  # Semantic contract analyzer (libclang AST rules: plan-capture-safety,
  # lock-across-parallel, unnamed-raii, raw-getenv, nondeterministic-emit,
  # op-entry-guard). Gated on clang.cindex availability exactly like the
  # clang-format/clang-tidy steps above; the offline selftest (pure
  # Python) runs everywhere.
  note "lint (focus_analyze.py offline selftest)"
  python3 scripts/focus_analyze.py --selftest-offline

  if python3 scripts/focus_analyze.py --probe >/dev/null 2>&1; then
    note "lint (focus_analyze.py fixture selftest)"
    python3 scripts/focus_analyze.py --selftest
    note "lint (focus_analyze.py semantic rules over the tree)"
    # Configure-only: emitting compile_commands.json needs no build.
    # Benchmarks/examples stay ON so their TUs are in the database.
    cmake -B build-analyze -S . >/dev/null
    python3 scripts/focus_analyze.py --compile-db build-analyze
  else
    echo "check.sh: clang.cindex (libclang) not installed; skipping" \
         "focus_analyze semantic rules (offline selftest still ran)"
  fi
}

configure_build_test() {
  local dir="$1"; shift
  note "configure $dir ($*)"
  cmake -B "$dir" -S . "$@" >/dev/null
  note "build $dir"
  cmake --build "$dir" -j "$JOBS"
  note "ctest $dir"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_leg_default() {
  configure_build_test build-check \
    -DCMAKE_BUILD_TYPE=Release -DFOCUS_WERROR=ON
}

run_leg_simdoff() {
  # Scalar-only build: -DFOCUS_SIMD=OFF removes the AVX2 TU from the
  # target entirely, so this leg fails to even link if anything outside
  # src/tensor/simd grew a hard dependency on the vector backend. The
  # parity label carries the bit-identity contracts; core carries the
  # numeric kernels and the end-to-end model path.
  local dir=build-simdoff
  note "configure $dir (-DFOCUS_SIMD=OFF)"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DFOCUS_SIMD=OFF \
    -DFOCUS_BUILD_BENCH=OFF >/dev/null
  note "build $dir"
  cmake --build "$dir" -j "$JOBS"
  note "ctest $dir (-L 'parity|core')"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L 'parity|core'
}

run_leg_asan() {
  # Bypass the caching allocator (FOCUS_ALLOC_CACHE_MB=0) so every freed
  # tensor buffer really goes back to the system and ASan keeps catching
  # use-after-free / stale reads across the rest of the suite; a recycled
  # buffer would look live to ASan. The allocator's own caching paths are
  # still exercised here: allocator_test and parity_test raise the cap
  # programmatically via SetCapBytes().
  # FOCUS_SIMD=scalar keeps the run on the portable backend: identical
  # numbers (the parity tests prove it), but every lane access is a plain
  # float read ASan/UBSan can attribute precisely, instead of a 32-byte
  # vector load that can mask a 4-byte overrun.
  # FOCUS_PRECISION=f32 pins the sanitizer run to the default precision
  # even when the invoking shell exported a mixed-precision mode: the
  # precision leg owns bf16/int8proto coverage, and a sanitizer failure
  # should always reproduce under the one canonical configuration.
  FOCUS_ALLOC_CACHE_MB=0 FOCUS_SIMD=scalar FOCUS_PRECISION=f32 \
    configure_build_test build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFOCUS_ASAN=ON -DFOCUS_BUILD_BENCH=OFF
}

run_leg_precision() {
  # Mixed-precision sweep over the default Release build: every
  # bit-identity contract (label `parity`: eager vs planned vs served,
  # scalar vs avx2) must hold under each FOCUS_PRECISION mode, and the
  # `quant` label runs bench_quant --smoke, which fails on any MSE delta
  # beyond the per-dataset budgets committed in bench/bench_quant.cc.
  # f32 needs no separate pass here — the default leg already ran the
  # whole suite at the default precision.
  local dir=build-check
  note "configure $dir (Release, for precision sweep)"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DFOCUS_WERROR=ON \
    >/dev/null
  note "build $dir"
  cmake --build "$dir" -j "$JOBS"
  for mode in bf16 int8proto; do
    note "ctest $dir (-L 'parity|quant', FOCUS_PRECISION=$mode)"
    FOCUS_PRECISION="$mode" ctest --test-dir "$dir" --output-on-failure \
      -j "$JOBS" -L 'parity|quant'
  done
}

run_leg_tsan() {
  configure_build_test build-tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFOCUS_TSAN=ON -DFOCUS_BUILD_BENCH=OFF
}

run_leg_perf() {
  # Opt-in perf-regression gate: smoke-run the kernel benchmarks and
  # compare ns/op against the committed baseline. Threshold is generous
  # (50%) — shared CI cores make tight gates flaky; this catches real
  # regressions (algorithmic slowdowns, lost vectorization), not jitter.
  local dir=build-perf
  note "configure $dir (Release, bench only)"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  note "build $dir (bench_kernels bench_serve)"
  cmake --build "$dir" --target bench_kernels bench_serve -j "$JOBS"
  note "bench_kernels --smoke"
  "$dir/bench/bench_kernels" --smoke \
    --focus-bench-json="$dir/BENCH_smoke.json"
  note "bench_serve --smoke"
  "$dir/bench/bench_serve" --smoke \
    --focus-bench-json="$dir/BENCH_serve_smoke.json"
  # The shared baseline holds both binaries' entries; each comparison
  # warns about (but does not gate on) the other binary's names.
  note "bench_diff vs results/BENCH_smoke_baseline.json (kernels)"
  python3 scripts/bench_diff.py results/BENCH_smoke_baseline.json \
    "$dir/BENCH_smoke.json" --threshold-pct=50
  note "bench_diff vs results/BENCH_smoke_baseline.json (serve)"
  python3 scripts/bench_diff.py results/BENCH_smoke_baseline.json \
    "$dir/BENCH_serve_smoke.json" --threshold-pct=50
}

LEGS=("${@:-lint default simdoff precision asan tsan}")
[ $# -gt 0 ] && LEGS=("$@") \
  || LEGS=(lint default simdoff precision asan tsan)
for leg in "${LEGS[@]}"; do
  case "$leg" in
    lint)      run_leg_lint ;;
    analyze)   run_leg_analyze ;;
    default)   run_leg_default ;;
    simdoff)   run_leg_simdoff ;;
    precision) run_leg_precision ;;
    asan)      run_leg_asan ;;
    tsan)      run_leg_tsan ;;
    perf)      run_leg_perf ;;
    *) echo "check.sh: unknown leg '$leg'" \
            "(want lint|analyze|default|simdoff|precision|asan|tsan|perf)" >&2
       exit 2 ;;
  esac
done

note "all legs passed (${LEGS[*]})"
