# Sanitizer build configurations for the correctness matrix
# (scripts/check.sh drives all of them; see README "Correctness tooling").
#
#   -DFOCUS_ASAN=ON   AddressSanitizer + UndefinedBehaviorSanitizer,
#                     non-recoverable: any report aborts the process so a
#                     passing ctest run certifies zero findings.
#   -DFOCUS_TSAN=ON   ThreadSanitizer for the parallel kernel layer; the
#                     test suite adds pooled ctest entries at 4 and 8
#                     threads (see tests/CMakeLists.txt).
#
# Use a separate build directory per sanitizer (the flags are global):
#   cmake -B build-asan -S . -DFOCUS_ASAN=ON
#   cmake -B build-tsan -S . -DFOCUS_TSAN=ON

option(FOCUS_ASAN
  "Build with AddressSanitizer + UndefinedBehaviorSanitizer (fatal reports)"
  OFF)
option(FOCUS_TSAN
  "Build with ThreadSanitizer and add pooled-test entries" OFF)

function(focus_enable_sanitizers)
  if(FOCUS_ASAN AND FOCUS_TSAN)
    message(FATAL_ERROR
      "FOCUS_ASAN and FOCUS_TSAN are mutually exclusive (ASan and TSan "
      "cannot instrument the same binary); configure separate build dirs.")
  endif()

  if(FOCUS_ASAN)
    add_compile_options(
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer
      -g)
    add_link_options(-fsanitize=address,undefined)
  endif()

  if(FOCUS_TSAN)
    add_compile_options(-fsanitize=thread -g -fno-omit-frame-pointer)
    add_link_options(-fsanitize=thread)
  endif()
endfunction()
