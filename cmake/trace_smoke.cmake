# Runs the quickstart example with FOCUS_TRACE set and asserts the trace
# file is non-empty, structurally JSON, and contains the core spans with
# their cost attributes. Invoked by the quickstart_trace_smoke ctest target:
#   cmake -DQUICKSTART_BIN=... -DTRACE_FILE=... -P trace_smoke.cmake
if(NOT DEFINED QUICKSTART_BIN OR NOT DEFINED TRACE_FILE)
  message(FATAL_ERROR "trace_smoke.cmake needs -DQUICKSTART_BIN and -DTRACE_FILE")
endif()

file(REMOVE "${TRACE_FILE}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "FOCUS_TRACE=${TRACE_FILE}" "${QUICKSTART_BIN}"
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_output
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "quickstart failed (${run_result}):\n${run_output}")
endif()

if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR "no trace written to ${TRACE_FILE}")
endif()
file(READ "${TRACE_FILE}" trace)
string(LENGTH "${trace}" trace_len)
if(trace_len EQUAL 0)
  message(FATAL_ERROR "trace file ${TRACE_FILE} is empty")
endif()

string(STRIP "${trace}" stripped)
string(SUBSTRING "${stripped}" 0 1 first_char)
if(NOT first_char STREQUAL "{")
  message(FATAL_ERROR "trace does not start with '{': ${first_char}")
endif()
string(LENGTH "${stripped}" stripped_len)
math(EXPR last_index "${stripped_len} - 1")
string(SUBSTRING "${stripped}" ${last_index} 1 last_char)
if(NOT last_char STREQUAL "}")
  message(FATAL_ERROR "trace does not end with '}': ${last_char}")
endif()

foreach(needle
    "\"traceEvents\""
    "train_step"
    "focus/proto_attn"
    "focus/fusion"
    "cluster/assign"
    "\"flops\""
    "\"peak_bytes\""
    "\"wall_us\"")
  string(FIND "${trace}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace is missing ${needle}")
  endif()
endforeach()

file(REMOVE "${TRACE_FILE}")
message(STATUS "trace smoke OK (${trace_len} bytes)")
