// Unit tests for the obs subsystem: TraceSpan attribution, exporter output,
// the disabled path, and the MetricsRegistry.
#include "obs/trace.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "tensor/allocator.h"
#include "tensor/flops.h"
#include "tensor/memory.h"
#include "tensor/tensor.h"

namespace focus {
namespace {

// Finds the aggregate for `name`, failing the test if absent.
obs::SpanStats StatsFor(
    const std::vector<std::pair<std::string, obs::SpanStats>>& agg,
    const std::string& name) {
  for (const auto& [n, stats] : agg) {
    if (n == name) return stats;
  }
  ADD_FAILURE() << "no span named " << name;
  return {};
}

int64_t BreakdownFor(
    const std::vector<std::pair<std::string, int64_t>>& breakdown,
    const std::string& name) {
  for (const auto& [n, flops] : breakdown) {
    if (n == name) return flops;
  }
  return 0;
}

// Minimal structural JSON check: every brace/bracket outside of strings
// balances, and the document is a single object. Enough to catch broken
// escaping or truncated output without a full parser.
bool JsonBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
    }
  }
  return stack.empty() && !in_string;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Every test runs with a clean tracer and counters, and leaves tracing off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
    FlopCounter::Reset();
  }
  void TearDown() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
    FlopCounter::Reset();
  }
};

TEST_F(ObsTest, NestedSpansAttributeToInnermostScope) {
  auto& tracer = obs::Tracer::Get();
  tracer.Enable();
  const int64_t tensor_bytes =
      static_cast<int64_t>(sizeof(float)) * 256;
  {
    obs::TraceSpan outer("test/outer");
    FlopCounter::Add(1000);
    {
      obs::TraceSpan inner("test/inner");
      FlopCounter::Add(500);
      Tensor scratch = Tensor::Zeros({256});  // peaks inside `inner`
    }
    FlopCounter::Add(200);
  }
  tracer.Disable();

  const auto agg = obs::AggregateSpans(tracer.Snapshot());
  const auto outer = StatsFor(agg, "test/outer");
  const auto inner = StatsFor(agg, "test/inner");

  EXPECT_EQ(inner.flops, 500);
  EXPECT_EQ(inner.self_flops, 500);
  EXPECT_EQ(outer.flops, 1700);       // inclusive of inner
  EXPECT_EQ(outer.self_flops, 1200);  // exclusive of inner
  EXPECT_GE(inner.peak_bytes, tensor_bytes);
  EXPECT_GE(outer.peak_bytes, tensor_bytes);
  EXPECT_GE(inner.allocs, 1);

  // The legacy region breakdown sees the same attribution (innermost wins).
  const auto breakdown = FlopCounter::Breakdown();
  EXPECT_EQ(BreakdownFor(breakdown, "test/inner"), 500);
  EXPECT_EQ(BreakdownFor(breakdown, "test/outer"), 1200);
}

TEST_F(ObsTest, SpanPeakWindowDoesNotLowerOuterPeak) {
  // An outer observer (metrics::ProbeEfficiency) must still see the true
  // high-water mark after spans reset and restore it.
  auto& tracer = obs::Tracer::Get();
  MemoryStats::ResetPeak();
  const int64_t baseline_peak = MemoryStats::PeakBytes();
  tracer.Enable();
  {
    obs::TraceSpan span("test/peak");
    Tensor scratch = Tensor::Zeros({1024});
  }
  tracer.Disable();
  EXPECT_GE(MemoryStats::PeakBytes(),
            baseline_peak + static_cast<int64_t>(sizeof(float)) * 1024);
}

TEST_F(ObsTest, ChromeTraceExportRoundTrip) {
  auto& tracer = obs::Tracer::Get();
  tracer.Enable();
  {
    obs::TraceSpan span("test/export \"quoted\"");
    FlopCounter::Add(42);
  }
  obs::MetricsRegistry::Get().SetGauge("test/gauge", 1.5);

  const std::string path = "obs_test_trace.json";
  tracer.SetOutput(path, obs::TraceFormat::kChromeTrace);
  ASSERT_TRUE(tracer.Flush().ok());
  tracer.SetOutput("", obs::TraceFormat::kChromeTrace);
  tracer.Disable();

  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonBalanced(text));
  EXPECT_EQ(text.find_first_not_of(" \n"), text.find('{'));
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("test/export \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\"flops\":42"), std::string::npos);
  EXPECT_NE(text.find("\"peak_bytes\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_us\""), std::string::npos);
  EXPECT_NE(text.find("\"focusMetrics\""), std::string::npos);
  EXPECT_NE(text.find("\"test/gauge\":1.5"), std::string::npos);
}

TEST_F(ObsTest, JsonlExportRoundTrip) {
  auto& tracer = obs::Tracer::Get();
  tracer.Enable();
  {
    obs::TraceSpan span("test/jsonl");
    FlopCounter::Add(7);
  }

  const std::string path = "obs_test_trace.jsonl";
  tracer.SetOutput(path, obs::TraceFormat::kJsonl);
  ASSERT_TRUE(tracer.Flush().ok());
  tracer.SetOutput("", obs::TraceFormat::kJsonl);
  tracer.Disable();

  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty());
  // Every line is one balanced JSON object.
  size_t start = 0;
  bool saw_span = false;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty()) {
      EXPECT_EQ(line.front(), '{') << line;
      EXPECT_EQ(line.back(), '}') << line;
      EXPECT_TRUE(JsonBalanced(line)) << line;
      if (line.find("\"type\":\"span\"") != std::string::npos &&
          line.find("test/jsonl") != std::string::npos) {
        saw_span = true;
        EXPECT_NE(line.find("\"flops\":7"), std::string::npos);
      }
    }
    start = end + 1;
  }
  EXPECT_TRUE(saw_span);
}

TEST_F(ObsTest, DisabledTracingRecordsNothingButRegionsStillWork) {
  auto& tracer = obs::Tracer::Get();
  ASSERT_FALSE(tracer.enabled());
  {
    obs::TraceSpan span("test/disabled");
    FlopCounter::Add(123);
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  // The FlopCounter region tag works even with tracing off, so legacy
  // Breakdown() consumers lose nothing.
  EXPECT_EQ(BreakdownFor(FlopCounter::Breakdown(), "test/disabled"), 123);
}

TEST_F(ObsTest, BreakdownPreservesFirstUseOrder) {
  // Regression: Breakdown() reports regions in first-use order, not sorted.
  {
    obs::TraceSpan a("zeta");
    FlopCounter::Add(1);
  }
  {
    FlopRegion b("alpha");
    FlopCounter::Add(2);
  }
  {
    obs::TraceSpan c("mid");
    FlopCounter::Add(3);
  }
  const auto breakdown = FlopCounter::Breakdown();
  std::vector<std::string> names;
  for (const auto& [name, flops] : breakdown) names.push_back(name);
  const std::vector<std::string> expected = {"zeta", "alpha", "mid"};
  EXPECT_EQ(names, expected);
}

TEST_F(ObsTest, SpansAndExportsCarryAllocatorCounters) {
  Allocator& alloc = Allocator::Get();
  const int64_t prev_cap = alloc.cap_bytes();
  alloc.SetCapBytes(64 * (int64_t{1} << 20));
  auto& tracer = obs::Tracer::Get();
  tracer.Enable();
  {
    obs::TraceSpan warm("test/alloc_warm");
    Tensor a = Tensor::Zeros({2048});
  }  // `a`'s buffer is now parked on a free list
  {
    obs::TraceSpan reuse("test/alloc_reuse");
    Tensor b = Tensor::Zeros({2048});  // same class: recycled
  }

  const auto agg = obs::AggregateSpans(tracer.Snapshot());
  EXPECT_GE(StatsFor(agg, "test/alloc_reuse").alloc_hits, 1);

  const std::string path = "obs_test_alloc.jsonl";
  tracer.SetOutput(path, obs::TraceFormat::kJsonl);
  ASSERT_TRUE(tracer.Flush().ok());  // publishes alloc/* into the registry
  tracer.SetOutput("", obs::TraceFormat::kJsonl);
  tracer.Disable();

  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"alloc_hits\""), std::string::npos);
  EXPECT_NE(text.find("\"alloc_misses\""), std::string::npos);
  EXPECT_NE(text.find("\"alloc/hits\""), std::string::npos);
  EXPECT_NE(text.find("\"alloc/cached_bytes\""), std::string::npos);
  EXPECT_GE(obs::MetricsRegistry::Get().CounterValue("alloc/hits"), 1);

  alloc.Trim();
  alloc.SetCapBytes(prev_cap);
}

TEST_F(ObsTest, MetricsRegistryCountersGaugesPercentiles) {
  auto& registry = obs::MetricsRegistry::Get();
  registry.AddCounter("test/count");
  registry.AddCounter("test/count", 4);
  EXPECT_EQ(registry.CounterValue("test/count"), 5);

  registry.SetGauge("test/g", 2.0);
  registry.SetGauge("test/g", 3.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("test/g"), 3.5);

  registry.ResetHistogram("test/h");
  for (int i = 1; i <= 100; ++i) {
    registry.Observe("test/h", static_cast<double>(i));
  }
  const auto summary = registry.Summarize("test/h");
  EXPECT_EQ(summary.count, 100);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
  registry.ResetHistogram("test/h");
  EXPECT_EQ(registry.Summarize("test/h").count, 0);
}

TEST_F(ObsTest, HistogramPercentilesNearestRank) {
  // Pin the nearest-rank contract on a known distribution: with ten
  // samples 10..100, rank(q) = ceil(q*n) one-indexed, so p50 is the 5th
  // sample and p95 the 10th. A switch to interpolation would silently
  // change every reported step-time percentile; this test makes that a
  // visible decision.
  auto& registry = obs::MetricsRegistry::Get();
  registry.ResetHistogram("test/ranks");
  for (int i = 10; i <= 100; i += 10) {
    registry.Observe("test/ranks", static_cast<double>(i));
  }
  const auto ten = registry.Summarize("test/ranks");
  EXPECT_EQ(ten.count, 10);
  EXPECT_DOUBLE_EQ(ten.p50, 50.0);
  EXPECT_DOUBLE_EQ(ten.p95, 100.0);
  EXPECT_DOUBLE_EQ(ten.p99, 100.0);
  EXPECT_DOUBLE_EQ(ten.mean, 55.0);

  // A single sample is every percentile at once.
  registry.ResetHistogram("test/ranks");
  registry.Observe("test/ranks", 7.0);
  const auto one = registry.Summarize("test/ranks");
  EXPECT_DOUBLE_EQ(one.p50, 7.0);
  EXPECT_DOUBLE_EQ(one.p95, 7.0);
  EXPECT_DOUBLE_EQ(one.p99, 7.0);

  // Insertion order must not matter: observe descending, summarize sorted.
  registry.ResetHistogram("test/ranks");
  for (int i = 100; i >= 1; --i) {
    registry.Observe("test/ranks", static_cast<double>(i));
  }
  const auto descending = registry.Summarize("test/ranks");
  EXPECT_DOUBLE_EQ(descending.min, 1.0);
  EXPECT_DOUBLE_EQ(descending.p50, 50.0);
  EXPECT_DOUBLE_EQ(descending.p95, 95.0);
  EXPECT_DOUBLE_EQ(descending.p99, 99.0);
  registry.ResetHistogram("test/ranks");
}

TEST_F(ObsTest, HistogramConcurrentObserveAndSummarize) {
  // Hammer one histogram from 4 then 8 recorder threads while the main
  // thread concurrently summarizes — under the TSan matrix (check.sh
  // tsan leg re-runs obs_test) any lock hole in Observe/Summarize/Reset
  // becomes a reported race; under plain builds the final count/min/max
  // still pin the no-lost-update contract.
  auto& registry = obs::MetricsRegistry::Get();
  constexpr int kPerThread = 1000;
  for (int num_threads : {4, 8}) {
    registry.ResetHistogram("test/stress");
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([&registry, t] {
        for (int i = 0; i < kPerThread; ++i) {
          registry.Observe("test/stress",
                           static_cast<double>(t * kPerThread + i));
        }
      });
    }
    // Concurrent reads must observe a consistent snapshot: count grows
    // monotonically and min/max stay inside the produced range.
    int64_t last_count = 0;
    for (int probe = 0; probe < 50; ++probe) {
      const auto mid = registry.Summarize("test/stress");
      EXPECT_GE(mid.count, last_count);
      last_count = mid.count;
      if (mid.count > 0) {
        EXPECT_GE(mid.min, 0.0);
        EXPECT_LE(mid.max, static_cast<double>(num_threads * kPerThread - 1));
      }
    }
    for (auto& worker : workers) worker.join();
    const auto final_summary = registry.Summarize("test/stress");
    EXPECT_EQ(final_summary.count, num_threads * kPerThread);
    EXPECT_DOUBLE_EQ(final_summary.min, 0.0);
    EXPECT_DOUBLE_EQ(final_summary.max,
                     static_cast<double>(num_threads * kPerThread - 1));
    // Uniform 0..N-1: nearest-rank p50 sits at ceil(N/2)-1.
    EXPECT_DOUBLE_EQ(final_summary.p50,
                     static_cast<double>(num_threads * kPerThread / 2 - 1));
  }
  registry.ResetHistogram("test/stress");
}

}  // namespace
}  // namespace focus
