// Golden parity tests for the parallel kernel layer: every parallelized
// kernel must produce BIT-IDENTICAL outputs (forward and backward) for
// every pool size (1, 4, and 8 threads — more workers than this container
// has cores). This is the enforcement of the determinism guarantee
// documented in README "Performance" — the work split never changes any
// per-element floating-point accumulation order. The final test extends
// the same contract to the SIMD dispatch axis: a training run must not
// care which vector backend executed it.
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/dlinear.h"
#include "baselines/patch_tst.h"
#include "cluster/segment_clustering.h"
#include "core/focus_model.h"
#include "core/planned_forecaster.h"
#include "optim/optimizer.h"
#include "parallel/thread_pool.h"
#include "serve/engine.h"
#include "tensor/allocator.h"
#include "tensor/ops.h"
#include "tensor/simd/vec.h"
#include "tensor/tensor.h"

namespace focus {
namespace {

// Runs `fn` under 1-, 4-, and 8-thread pools and asserts all returned
// tensors match byte-for-byte across every pool size.
void ExpectBitIdenticalAcrossThreadCounts(
    const std::function<std::vector<Tensor>()>& fn) {
  ThreadPool::Global().Resize(1);
  const std::vector<Tensor> serial = fn();
  for (int threads : {4, 8}) {
    ThreadPool::Global().Resize(threads);
    const std::vector<Tensor> pooled = fn();
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t t = 0; t < serial.size(); ++t) {
      ASSERT_TRUE(serial[t].defined());
      ASSERT_TRUE(pooled[t].defined());
      ASSERT_EQ(serial[t].shape(), pooled[t].shape()) << "tensor " << t;
      const int64_t n = serial[t].numel();
      ASSERT_EQ(0, std::memcmp(serial[t].data(), pooled[t].data(),
                               static_cast<size_t>(n) * sizeof(float)))
          << "tensor " << t << " differs at " << threads << " threads";
    }
  }
  ThreadPool::Global().Resize(1);
}

// Builds loss = SumAll(out), backprops, and returns {out, grads...}.
std::vector<Tensor> ForwardBackward(
    const std::function<Tensor(std::vector<Tensor>&)>& build,
    const std::function<std::vector<Tensor>()>& make_inputs) {
  std::vector<Tensor> inputs = make_inputs();
  for (Tensor& t : inputs) t.SetRequiresGrad(true);
  Tensor out = build(inputs);
  SumAll(out).Backward();
  std::vector<Tensor> result = {out};
  for (Tensor& t : inputs) result.push_back(t.Grad());
  return result;
}

TEST(ParityTest, MatMul2D) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
        [] {
          Rng rng(7);
          return std::vector<Tensor>{Tensor::Randn({129, 65}, rng),
                                     Tensor::Randn({65, 71}, rng)};
        });
  });
}

TEST(ParityTest, MatMulBatched) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
        [] {
          Rng rng(8);
          return std::vector<Tensor>{Tensor::Randn({6, 67, 33}, rng),
                                     Tensor::Randn({6, 33, 41}, rng)};
        });
  });
}

TEST(ParityTest, MatMulBroadcastBatch) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
        [] {
          Rng rng(9);
          // 3D lhs against shared 2D rhs: exercises the broadcast-batch
          // kernel path and the batch-sum in backward.
          return std::vector<Tensor>{Tensor::Randn({5, 31, 17}, rng),
                                     Tensor::Randn({17, 23}, rng)};
        });
  });
}

TEST(ParityTest, Conv1dForwardBackward) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) {
          return Conv1d(in[0], in[1], in[2], /*stride=*/2, /*padding=*/3,
                        /*dilation=*/2);
        },
        [] {
          Rng rng(10);
          return std::vector<Tensor>{Tensor::Randn({5, 4, 37}, rng),
                                     Tensor::Randn({6, 4, 5}, rng),
                                     Tensor::Randn({6}, rng)};
        });
  });
}

TEST(ParityTest, Conv2dForwardBackward) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) {
          return Conv2d(in[0], in[1], in[2], /*stride=*/1, /*padding=*/1);
        },
        [] {
          Rng rng(11);
          return std::vector<Tensor>{Tensor::Randn({3, 3, 13, 11}, rng),
                                     Tensor::Randn({5, 3, 3, 3}, rng),
                                     Tensor::Randn({5}, rng)};
        });
  });
}

TEST(ParityTest, SoftmaxForwardBackward) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) { return SoftmaxLastDim(in[0]); },
        [] {
          Rng rng(12);
          return std::vector<Tensor>{Tensor::Randn({61, 47}, rng)};
        });
  });
}

TEST(ParityTest, LayerNormForwardBackward) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) {
          return LayerNormLastDim(in[0], in[1], in[2], 1e-5f);
        },
        [] {
          Rng rng(13);
          return std::vector<Tensor>{Tensor::Randn({53, 19}, rng),
                                     Tensor::Randn({19}, rng),
                                     Tensor::Randn({19}, rng)};
        });
  });
}

TEST(ParityTest, ElementwiseBinaryAndUnary) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) {
          return Gelu(Add(Mul(in[0], in[1]), Sub(in[0], in[1])));
        },
        [] {
          Rng rng(14);
          return std::vector<Tensor>{Tensor::Randn({100000}, rng),
                                     Tensor::Randn({100000}, rng)};
        });
  });
}

TEST(ParityTest, BroadcastBinary) {
  ExpectBitIdenticalAcrossThreadCounts([] {
    return ForwardBackward(
        [](std::vector<Tensor>& in) { return Mul(in[0], in[1]); },
        [] {
          Rng rng(15);
          return std::vector<Tensor>{Tensor::Randn({64, 33, 9}, rng),
                                     Tensor::Randn({33, 1}, rng)};
        });
  });
}

TEST(ParityTest, SumOverEachAxis) {
  for (int64_t dim = 0; dim < 3; ++dim) {
    ExpectBitIdenticalAcrossThreadCounts([dim] {
      return ForwardBackward(
          [dim](std::vector<Tensor>& in) {
            return Sum(in[0], dim, /*keepdim=*/false);
          },
          [] {
            Rng rng(16);
            return std::vector<Tensor>{Tensor::Randn({23, 300, 7}, rng)};
          });
    });
  }
}

TEST(ParityTest, ClusterAssignment) {
  Rng rng(17);
  Tensor segments = Tensor::Randn({4096, 24}, rng);
  Tensor prototypes = Tensor::Randn({16, 24}, rng);
  ThreadPool::Global().Resize(1);
  const auto serial =
      cluster::SegmentClustering::Assign(segments, prototypes, 0.3f);
  ThreadPool::Global().Resize(4);
  const auto pooled =
      cluster::SegmentClustering::Assign(segments, prototypes, 0.3f);
  ThreadPool::Global().Resize(1);
  EXPECT_EQ(serial, pooled);
}

TEST(ParityTest, ClusterFitIsThreadCountInvariant) {
  Rng rng(18);
  Tensor segments = Tensor::Randn({512, 16}, rng);
  cluster::ClusteringConfig cfg;
  cfg.segment_length = 16;
  cfg.num_prototypes = 8;
  cfg.max_iters = 4;
  cfg.refine_steps = 3;
  cfg.seed = 19;
  ThreadPool::Global().Resize(1);
  const auto serial = cluster::SegmentClustering(cfg).Fit(segments);
  ThreadPool::Global().Resize(4);
  const auto pooled = cluster::SegmentClustering(cfg).Fit(segments);
  ThreadPool::Global().Resize(1);
  EXPECT_EQ(serial.assignments, pooled.assignments);
  ASSERT_EQ(serial.prototypes.numel(), pooled.prototypes.numel());
  EXPECT_EQ(0, std::memcmp(
                   serial.prototypes.data(), pooled.prototypes.data(),
                   static_cast<size_t>(serial.prototypes.numel()) *
                       sizeof(float)));
}

// Buffer recycling must be numerically invisible: the same training run
// with the allocator cache on and bypassed (FOCUS_ALLOC_CACHE_MB=0
// semantics, set programmatically) must produce bit-identical parameters
// and losses. Recycling only changes *which* memory a kernel writes into,
// never what it computes — this test is the enforcement.
TEST(ParityTest, TrainStepCacheOnVsBypassBitIdentical) {
  auto run_training = [](int64_t cap_bytes) {
    Allocator& alloc = Allocator::Get();
    const int64_t prev_cap = alloc.cap_bytes();
    alloc.SetCapBytes(cap_bytes);

    Rng rng(20);
    Tensor x = Tensor::Randn({24, 17}, rng);
    Tensor y = Tensor::Randn({24, 5}, rng);
    Tensor w1 = Tensor::Randn({17, 8}, rng);
    Tensor b1 = Tensor::Zeros({8});
    Tensor w2 = Tensor::Randn({8, 5}, rng);
    Tensor b2 = Tensor::Zeros({5});
    std::vector<Tensor> params = {w1, b1, w2, b2};
    for (Tensor& p : params) p.SetRequiresGrad(true);
    optim::AdamW opt(params, /*lr=*/1e-2f);

    Tensor loss;
    for (int step = 0; step < 5; ++step) {
      opt.ZeroGrad();
      Tensor h = Gelu(Add(MatMul(x, w1), b1));
      Tensor d = Sub(Add(MatMul(h, w2), b2), y);
      loss = MeanAll(Mul(d, d));
      loss.Backward();
      opt.Step();
    }

    alloc.Trim();
    alloc.SetCapBytes(prev_cap);
    std::vector<Tensor> result = params;
    result.push_back(loss);
    return result;
  };

  const std::vector<Tensor> cached = run_training(256 * (int64_t{1} << 20));
  const std::vector<Tensor> bypass = run_training(0);
  ASSERT_EQ(cached.size(), bypass.size());
  for (size_t t = 0; t < cached.size(); ++t) {
    ASSERT_EQ(cached[t].shape(), bypass[t].shape()) << "tensor " << t;
    ASSERT_EQ(0, std::memcmp(cached[t].data(), bypass[t].data(),
                             static_cast<size_t>(cached[t].numel()) *
                                 sizeof(float)))
        << "tensor " << t << " differs between cache-on and bypass";
  }
}

// The SIMD axis of the same contract: a 5-step AdamW training run must
// produce bit-identical parameters and losses on the AVX2 and scalar
// backends. This is what lets FOCUS_SIMD=OFF builds, the ASan scalar leg,
// and non-AVX2 machines reproduce recorded results exactly.
TEST(ParityTest, TrainStepSimdBackendBitIdentical) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "AVX2 backend not compiled in or not supported";
  }
  auto run_training = [](simd::Backend backend) {
    EXPECT_TRUE(simd::SetBackend(backend));

    Rng rng(21);
    Tensor x = Tensor::Randn({24, 17}, rng);
    Tensor y = Tensor::Randn({24, 5}, rng);
    Tensor w1 = Tensor::Randn({17, 8}, rng);
    Tensor b1 = Tensor::Zeros({8});
    Tensor w2 = Tensor::Randn({8, 5}, rng);
    Tensor b2 = Tensor::Zeros({5});
    std::vector<Tensor> params = {w1, b1, w2, b2};
    for (Tensor& p : params) p.SetRequiresGrad(true);
    optim::AdamW opt(params, /*lr=*/1e-2f);

    Tensor loss;
    for (int step = 0; step < 5; ++step) {
      opt.ZeroGrad();
      Tensor h = Gelu(Add(MatMul(x, w1), b1));
      Tensor d = Sub(Add(MatMul(h, w2), b2), y);
      loss = MeanAll(Mul(d, d));
      loss.Backward();
      opt.Step();
    }

    std::vector<Tensor> result = params;
    result.push_back(loss);
    return result;
  };

  std::vector<Tensor> avx2;
  std::vector<Tensor> scalar;
  run_training(simd::Backend::kAvx2).swap(avx2);
  run_training(simd::Backend::kScalar).swap(scalar);
  simd::ReinitFromEnv();
  ASSERT_EQ(avx2.size(), scalar.size());
  for (size_t t = 0; t < avx2.size(); ++t) {
    ASSERT_EQ(avx2[t].shape(), scalar[t].shape()) << "tensor " << t;
    ASSERT_EQ(0, std::memcmp(avx2[t].data(), scalar[t].data(),
                             static_cast<size_t>(avx2[t].numel()) *
                                 sizeof(float)))
        << "tensor " << t << " differs between avx2 and scalar backends";
  }
}

// The execution-plan axis of the bit-identity contract: a compiled plan
// (src/plan) replays the exact eager kernel sequence, so for FOCUS and
// the baselines the planned forecast must match the eager inference
// forward byte-for-byte on every SIMD backend and at every pool size.
// Fresh models and plans per backend — plan closures pin the kernel
// table they were captured against.
TEST(ParityTest, ForecastPlannedVsEagerBitIdentical) {
  struct Case {
    const char* name;
    std::function<std::unique_ptr<ForecastModel>()> make;
  };
  const std::vector<Case> cases = {
      {"FOCUS",
       [] {
         core::FocusConfig cfg;
         cfg.lookback = 32;
         cfg.horizon = 8;
         cfg.num_entities = 3;
         cfg.patch_len = 8;
         cfg.d_model = 16;
         cfg.readout_queries = 2;
         cfg.seed = 23;
         Rng rng(24);
         return std::unique_ptr<ForecastModel>(
             std::make_unique<core::FocusModel>(
                 cfg, Tensor::Randn({4, 8}, rng)));
       }},
      {"PatchTST",
       [] {
         baselines::PatchTstConfig cfg;
         cfg.lookback = 32;
         cfg.horizon = 8;
         cfg.patch_len = 8;
         cfg.stride = 8;
         cfg.d_model = 16;
         cfg.num_heads = 2;
         cfg.num_layers = 1;
         cfg.ffn_dim = 32;
         cfg.seed = 25;
         return std::unique_ptr<ForecastModel>(
             std::make_unique<baselines::PatchTst>(cfg));
       }},
      {"DLinear",
       [] {
         baselines::DLinearConfig cfg;
         cfg.lookback = 32;
         cfg.horizon = 8;
         cfg.moving_avg = 7;
         cfg.seed = 26;
         return std::unique_ptr<ForecastModel>(
             std::make_unique<baselines::DLinear>(cfg));
       }},
  };

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);
  for (simd::Backend backend : backends) {
    ASSERT_TRUE(simd::SetBackend(backend));
    for (const Case& c : cases) {
      auto model = c.make();
      model->SetTraining(false);
      Rng rng(27);
      Tensor x = Tensor::Randn({2, 3, 32}, rng);
      ThreadPool::Global().Resize(1);
      Tensor eager;
      {
        InferenceModeGuard inference;
        eager = model->Forward(x);
      }
      core::PlannedForecaster planned(model.get());
      for (int threads : {1, 4, 8}) {
        ThreadPool::Global().Resize(threads);
        Tensor out = planned.Forward(x);
        EXPECT_TRUE(planned.last_was_planned())
            << c.name << " did not compile a plan";
        ASSERT_EQ(out.shape(), eager.shape()) << c.name;
        ASSERT_EQ(0, std::memcmp(out.data(), eager.data(),
                                 static_cast<size_t>(out.numel()) *
                                     sizeof(float)))
            << c.name << " planned forecast differs from eager at "
            << threads << " threads, backend "
            << (backend == simd::Backend::kAvx2 ? "avx2" : "scalar");
      }
      ThreadPool::Global().Resize(1);
    }
  }
  simd::ReinitFromEnv();
}

// The serving axis of the bit-identity contract: a forecast answered by
// the serving engine must match the eager single-request forward of the
// same window byte-for-byte, no matter which requests it was admission-
// batched with, how the batch was ladder-padded, how many serving workers
// raced for the queue, the kernel pool size, or the SIMD backend. Row
// independence of every batched kernel plus plan-replay bit-identity
// reduce all of these axes to the one golden eager reference.
TEST(ParityTest, ServedVsEagerBitIdentical) {
  core::FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 3;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 23;
  constexpr int kWindows = 6;
  constexpr int kClients = 2;

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);
  for (simd::Backend backend : backends) {
    ASSERT_TRUE(simd::SetBackend(backend));
    const char* backend_name =
        backend == simd::Backend::kAvx2 ? "avx2" : "scalar";
    Rng prng(24);
    auto model =
        std::make_unique<core::FocusModel>(cfg, Tensor::Randn({4, 8}, prng));
    model->SetTraining(false);

    // Golden references: eager batch-1 forwards on a serial pool.
    ThreadPool::Global().Resize(1);
    std::vector<Tensor> windows, refs;
    for (int i = 0; i < kWindows; ++i) {
      Rng rng(100 + static_cast<uint64_t>(i));
      windows.push_back(Tensor::Randn({3, 32}, rng));
      InferenceModeGuard inference;
      refs.push_back(model->Forward(windows.back().Reshape({1, 3, 32})));
    }

    for (int serve_threads : {1, 2}) {
      for (int pool_threads : {1, 4}) {
        ThreadPool::Global().Resize(pool_threads);
        for (bool batched : {false, true}) {
          serve::ServeOptions opts;
          opts.threads = serve_threads;
          opts.batch_window_us = batched ? 500 : 0;
          opts.max_batch = batched ? 8 : 1;
          serve::ForecastEngine engine(model.get(), 3, 32, opts);
          std::vector<std::thread> clients;
          clients.reserve(kClients);
          for (int c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
              for (int i = 0; i < kWindows; ++i) {
                const int w = (i + c) % kWindows;
                Tensor served = engine.Forecast(windows[w]);
                ASSERT_TRUE(served.defined());
                ASSERT_EQ(served.numel(), refs[w].numel());
                ASSERT_EQ(0,
                          std::memcmp(served.data(), refs[w].data(),
                                      static_cast<size_t>(served.numel()) *
                                          sizeof(float)))
                    << "window " << w << " differs when served ("
                    << backend_name << ", " << serve_threads
                    << " serve threads, " << pool_threads
                    << " pool threads, "
                    << (batched ? "batched" : "batch-1") << ")";
              }
            });
          }
          for (std::thread& t : clients) t.join();
        }
      }
    }
    ThreadPool::Global().Resize(1);
  }
  simd::ReinitFromEnv();
}

}  // namespace
}  // namespace focus
