// Mixed-precision inference contracts (DESIGN §13):
//   * routing — the bf16 matmul path engages only for parameter (B)
//     operands with grad mode off and a non-f32 ambient precision; the
//     default f32 path stays byte-identical to the plain kernel.
//   * eager/planned bit-identity per precision mode — a plan captured
//     under bf16/int8proto replays the exact eager kernels, and
//     ExecutionPlan::Matches() pins the precision the plan was captured
//     at, so a mode switch recaptures instead of replaying wrong math.
//   * int8 prototype bank — freeze-time quantization statistics agree
//     with a brute-force dequantized reference; assignments are
//     backend-invariant and agree with f32 on separated prototypes.
//   * serving — per-tenant engines serve bit-identically to the eager
//     forward at their own precision.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/focus_model.h"
#include "core/offline.h"
#include "core/proto_attn.h"
#include "plan/plan.h"
#include "serve/engine.h"
#include "tensor/bf16.h"
#include "tensor/ops.h"
#include "tensor/precision.h"
#include "tensor/simd/vec.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace focus {
namespace {

void ExpectSameBytes(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.numel()) * sizeof(float)))
      << what;
}

TEST(PrecisionModeTest, GuardRestoresAndNamesRoundTrip) {
  // Ambient mode comes from FOCUS_PRECISION (check.sh's precision leg
  // sweeps it), so assert restoration, not a specific starting mode.
  const Precision ambient = PrecisionMode::Get();
  {
    PrecisionGuard guard(Precision::kBf16);
    EXPECT_EQ(PrecisionMode::Get(), Precision::kBf16);
    EXPECT_STREQ("bf16", PrecisionName(PrecisionMode::Get()));
    {
      PrecisionGuard inner(Precision::kInt8Proto);
      EXPECT_STREQ("int8proto", PrecisionName(PrecisionMode::Get()));
    }
    EXPECT_EQ(PrecisionMode::Get(), Precision::kBf16);
  }
  EXPECT_EQ(PrecisionMode::Get(), ambient);
  EXPECT_STREQ("f32", PrecisionName(Precision::kF32));
}

TEST(Bf16MatMulTest, RoutesOnlyForParameterOperands) {
  Rng rng(3);
  Tensor a = Tensor::Randn({9, 33}, rng);
  Tensor w = Tensor::Randn({33, 17}, rng);
  NoGradGuard no_grad;
  PrecisionGuard ambient_f32(Precision::kF32);
  const Tensor f32_out = MatMul(a, w);

  // Non-parameter B: bf16 mode must leave the op on the f32 kernel.
  {
    PrecisionGuard guard(Precision::kBf16);
    ExpectSameBytes(MatMul(a, w), f32_out, "activation @ activation");
  }

  // Parameter B: the bf16 route rounds the weights, so some output
  // bits must change — and equal the explicit unpack-then-f32-matmul.
  w.SetRequiresGrad(true);
  Tensor bf16_out;
  {
    PrecisionGuard guard(Precision::kBf16);
    bf16_out = MatMul(a, w);
  }
  EXPECT_NE(0, std::memcmp(bf16_out.data(), f32_out.data(),
                           static_cast<size_t>(f32_out.numel()) *
                               sizeof(float)))
      << "bf16 weight rounding changed no bits — route not taken?";
  Tensor w_rounded = Tensor::Empty(w.shape());
  for (int64_t i = 0; i < w.numel(); ++i) {
    w_rounded.data()[i] = F32FromBf16(Bf16FromF32(w.data()[i]));
  }
  ExpectSameBytes(bf16_out, MatMul(a, w_rounded),
                  "bf16 matmul vs f32 matmul of rounded weights");

  // int8proto is a superset of bf16: matmuls take the same bf16 path.
  {
    PrecisionGuard guard(Precision::kInt8Proto);
    ExpectSameBytes(MatMul(a, w), bf16_out, "int8proto matmul vs bf16");
  }
}

// A small parameterized function with one foldable weight matmul.
struct SmallNet {
  Tensor w1, w2, bias;
  explicit SmallNet(uint64_t seed) {
    Rng rng(seed);
    w1 = Tensor::Randn({24, 16}, rng);
    w2 = Tensor::Randn({16, 8}, rng);
    bias = Tensor::Randn({8}, rng);
    w1.SetRequiresGrad(true);
    w2.SetRequiresGrad(true);
    bias.SetRequiresGrad(true);
  }
  Tensor Forward(const Tensor& x) const {
    return Add(MatMul(Gelu(MatMul(x, w1)), w2), bias);
  }
};

TEST(Bf16PlanTest, EagerAndPlannedBitIdentical) {
  SmallNet net(7);
  Rng rng(8);
  Tensor x = Tensor::Randn({5, 24}, rng);
  PrecisionGuard guard(Precision::kBf16);
  Tensor eager;
  {
    InferenceModeGuard inference;
    eager = net.Forward(x);
  }
  auto plan = plan::ExecutionPlan::Capture(
      [&](const Tensor& in) { return net.Forward(in); }, x);
  ASSERT_NE(plan, nullptr);
  ExpectSameBytes(plan->Run(x), eager, "planned bf16 vs eager bf16");
  // With folding on, the weight packs fold into pinned bf16 constants:
  // the replayed program must move fewer bytes than its f32 twin.
  {
    PrecisionGuard f32(Precision::kF32);
    auto f32_plan = plan::ExecutionPlan::Capture(
        [&](const Tensor& in) { return net.Forward(in); }, x);
    ASSERT_NE(f32_plan, nullptr);
    EXPECT_LT(plan->stats().bytes_per_run, f32_plan->stats().bytes_per_run)
        << "bf16 weight folding did not reduce per-run operand traffic";
  }
}

TEST(Bf16PlanTest, UnfoldedPackGetsByteSizedSlabValue) {
  // Folding off keeps the PackBf16 step alive, so the packed weight
  // must live in the slab as a 2-byte-element value (the ":bf16"
  // layout suffix plan_test's overlap checker also parses).
  SmallNet net(9);
  Rng rng(10);
  Tensor x = Tensor::Randn({3, 24}, rng);
  PrecisionGuard guard(Precision::kBf16);
  plan::Options opts;
  opts.fold = false;
  auto plan = plan::ExecutionPlan::Capture(
      [&](const Tensor& in) { return net.Forward(in); }, x, opts);
  ASSERT_NE(plan, nullptr);
  EXPECT_NE(plan->DebugLayout().find(":bf16]"), std::string::npos)
      << plan->DebugLayout();
  Tensor eager;
  {
    InferenceModeGuard inference;
    eager = net.Forward(x);
  }
  ExpectSameBytes(plan->Run(x), eager, "unfolded planned bf16 vs eager");
}

TEST(Bf16PlanTest, MatchesPinsCapturePrecision) {
  SmallNet net(11);
  Rng rng(12);
  Tensor x = Tensor::Randn({4, 24}, rng);
  std::unique_ptr<plan::ExecutionPlan> plan;
  {
    PrecisionGuard guard(Precision::kBf16);
    plan = plan::ExecutionPlan::Capture(
        [&](const Tensor& in) { return net.Forward(in); }, x);
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(plan->Matches(x));
  }
  // Ambient precision back to f32: the bf16 plan must refuse to replay
  // (PlannedForecaster then drops and recaptures).
  {
    PrecisionGuard guard(Precision::kF32);
    EXPECT_FALSE(plan->Matches(x));
  }
  {
    PrecisionGuard guard(Precision::kInt8Proto);
    EXPECT_FALSE(plan->Matches(x));
  }
}

// --- int8 prototype bank ----------------------------------------------------

Tensor MakeSeparatedPrototypes(int64_t k, int64_t p, uint64_t seed) {
  // Orthogonal-ish spike patterns: far apart in both Euclidean and
  // correlation distance, so the nearest prototype is unambiguous.
  Tensor protos = Tensor::Zeros({k, p});
  Rng rng(seed);
  Tensor noise = Tensor::Randn({k, p}, rng);
  for (int64_t j = 0; j < k; ++j) {
    for (int64_t d = 0; d < p; ++d) {
      float v = 0.05f * noise.data()[j * p + d];
      if (d % k == j) v += (j % 2 == 0) ? 3.0f : -3.0f;
      protos.data()[j * p + d] = v;
    }
  }
  return protos;
}

TEST(QuantBankTest, StatisticsMatchDequantizedReference) {
  Tensor protos = MakeSeparatedPrototypes(6, 16, 21);
  const core::QuantizedPrototypeBank bank =
      core::QuantizePrototypeBank(protos);
  ASSERT_EQ(bank.k, 6);
  ASSERT_EQ(bank.p, 16);
  for (int64_t j = 0; j < bank.k; ++j) {
    const size_t sj = static_cast<size_t>(j);
    int32_t row_sum_q = 0;
    double sq = 0.0, sum = 0.0;
    float max_err = 0.0f;
    for (int64_t d = 0; d < bank.p; ++d) {
      const int8_t q = bank.q[static_cast<size_t>(j * bank.p + d)];
      const float deq =
          bank.scale[sj] * static_cast<float>(q - bank.zero_point[sj]);
      const float orig = protos.data()[j * bank.p + d];
      max_err = std::max(max_err, std::fabs(deq - orig));
      row_sum_q += q;
      sq += static_cast<double>(deq) * deq;
      sum += deq;
    }
    // Affine quantization error is bounded by half a step.
    EXPECT_LE(max_err, 0.5f * bank.scale[sj] + 1e-6f) << "row " << j;
    EXPECT_EQ(bank.row_sum_q[sj], row_sum_q) << "row " << j;
    const float mean = static_cast<float>(sum) / bank.p;
    EXPECT_FLOAT_EQ(bank.sq_norm[sj], static_cast<float>(sq));
    EXPECT_FLOAT_EQ(bank.mean[sj], mean);
    EXPECT_FLOAT_EQ(bank.var[sj],
                    static_cast<float>(sq) - bank.p * mean * mean);
  }
}

TEST(QuantBankTest, ConstantRowQuantizesExactly) {
  Tensor protos = Tensor::Full({2, 8}, 1.25f);
  const core::QuantizedPrototypeBank bank =
      core::QuantizePrototypeBank(protos);
  for (int64_t j = 0; j < 2; ++j) {
    const size_t sj = static_cast<size_t>(j);
    EXPECT_EQ(bank.zero_point[sj], 0);
    for (int64_t d = 0; d < 8; ++d) {
      const int8_t q = bank.q[static_cast<size_t>(j * 8 + d)];
      EXPECT_NEAR(bank.scale[sj] * static_cast<float>(q), 1.25f, 1e-2f);
    }
  }
}

std::unique_ptr<core::ProtoAttn> MakeAttn(const Tensor& protos,
                                          uint64_t seed) {
  Rng rng(seed);
  auto embed =
      std::make_shared<nn::Linear>(protos.size(1), /*d_model=*/16, rng);
  return std::make_unique<core::ProtoAttn>(protos, embed, 16, 0.2f, rng);
}

TEST(Int8AssignTest, AgreesWithF32OnSeparatedPrototypes) {
  const int64_t k = 6, p = 16;
  Tensor protos = MakeSeparatedPrototypes(k, p, 22);
  auto attn = MakeAttn(protos, 23);
  // Tokens are noisy copies of the prototypes: the argmin is clear-cut,
  // so requantization error cannot flip it.
  Tensor tokens = Tensor::Zeros({2, k, p});
  Rng rng(24);
  Tensor noise = Tensor::Randn({2, k, p}, rng);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t j = 0; j < k; ++j) {
      for (int64_t d = 0; d < p; ++d) {
        tokens.data()[(b * k + j) * p + d] =
            protos.data()[j * p + d] +
            0.02f * noise.data()[(b * k + j) * p + d];
      }
    }
  }
  InferenceModeGuard inference;
  std::vector<int64_t> f32_assign;
  {
    PrecisionGuard f32(Precision::kF32);
    f32_assign = attn->AssignTokens(tokens);
  }
  PrecisionGuard guard(Precision::kInt8Proto);
  const std::vector<int64_t> int8_assign = attn->AssignTokens(tokens);
  ASSERT_EQ(f32_assign.size(), int8_assign.size());
  for (size_t i = 0; i < f32_assign.size(); ++i) {
    EXPECT_EQ(f32_assign[i], static_cast<int64_t>(i % k)) << "token " << i;
    EXPECT_EQ(int8_assign[i], f32_assign[i]) << "token " << i;
  }
}

TEST(Int8AssignTest, BackendInvariant) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  Tensor protos = MakeSeparatedPrototypes(8, 16, 25);
  auto attn = MakeAttn(protos, 26);
  Rng rng(27);
  Tensor tokens = Tensor::Randn({3, 10, 16}, rng);
  InferenceModeGuard inference;
  PrecisionGuard guard(Precision::kInt8Proto);
  ASSERT_TRUE(simd::SetBackend(simd::Backend::kScalar));
  const std::vector<int64_t> scalar_assign = attn->AssignTokens(tokens);
  ASSERT_TRUE(simd::SetBackend(simd::Backend::kAvx2));
  const std::vector<int64_t> avx2_assign = attn->AssignTokens(tokens);
  simd::ReinitFromEnv();
  EXPECT_EQ(scalar_assign, avx2_assign);
}

// --- end-to-end + serving ---------------------------------------------------

constexpr int64_t kEntities = 3;
constexpr int64_t kLookback = 32;
constexpr int64_t kHorizon = 8;

std::unique_ptr<core::FocusModel> ServableModel() {
  core::FocusConfig cfg;
  cfg.lookback = kLookback;
  cfg.horizon = kHorizon;
  cfg.num_entities = kEntities;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 31;
  Rng rng(37);
  auto model = std::make_unique<core::FocusModel>(
      cfg, Tensor::Randn({4, 8}, rng));
  model->SetTraining(false);
  return model;
}

Tensor EagerReference(core::FocusModel& model, const Tensor& window,
                      Precision precision) {
  InferenceModeGuard inference;
  PrecisionGuard guard(precision);
  Tensor out = model.Forward(window.Reshape({1, kEntities, kLookback}));
  Tensor ref = Tensor::Empty({kEntities, kHorizon});
  std::memcpy(ref.data(), out.data(),
              static_cast<size_t>(kEntities * kHorizon) * sizeof(float));
  return ref;
}

TEST(QuantServeTest, PerTenantPrecisionBitIdenticalToEager) {
  auto model = ServableModel();
  Rng rng(41);
  Tensor window = Tensor::Randn({kEntities, kLookback}, rng);
  const Tensor f32_ref = EagerReference(*model, window, Precision::kF32);
  const Tensor bf16_ref = EagerReference(*model, window, Precision::kBf16);
  const Tensor int8_ref =
      EagerReference(*model, window, Precision::kInt8Proto);
  // bf16 must actually change the forecast bits on this model, else the
  // three tenants below would be indistinguishable.
  ASSERT_NE(0, std::memcmp(f32_ref.data(), bf16_ref.data(),
                           static_cast<size_t>(f32_ref.numel()) *
                               sizeof(float)));
  const struct {
    Precision precision;
    const Tensor* ref;
    const char* what;
  } kTenants[] = {
      {Precision::kF32, &f32_ref, "f32 tenant"},
      {Precision::kBf16, &bf16_ref, "bf16 tenant"},
      {Precision::kInt8Proto, &int8_ref, "int8proto tenant"},
  };
  for (const auto& tenant : kTenants) {
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.batch_window_us = 0;
    opts.max_batch = 4;
    opts.precision = tenant.precision;
    serve::ForecastEngine engine(model.get(), kEntities, kLookback, opts);
    EXPECT_EQ(engine.precision(), tenant.precision);
    Tensor served = engine.Forecast(window);
    ExpectSameBytes(served, *tenant.ref, tenant.what);
    const serve::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.planned_batches, 1) << tenant.what;
    engine.Shutdown();
  }
}

}  // namespace
}  // namespace focus
