// Tests for accuracy metrics and efficiency probes.
#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include "core/focus_model.h"
#include "tensor/flops.h"

namespace focus {
namespace {

TEST(MetricsTest, KnownValues) {
  Tensor pred = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor truth = Tensor::FromVector({4}, {1, 1, 1, 1});
  auto m = metrics::ComputeMetrics(pred, truth);
  EXPECT_NEAR(m.mse, (0.0 + 1 + 4 + 9) / 4, 1e-9);
  EXPECT_NEAR(m.mae, (0.0 + 1 + 2 + 3) / 4, 1e-9);
  EXPECT_NEAR(m.rmse, std::sqrt(m.mse), 1e-9);
  EXPECT_EQ(m.count, 4);
}

TEST(MetricsTest, PerfectPredictionIsZero) {
  Tensor x = Tensor::FromVector({3}, {1, -2, 5});
  auto m = metrics::ComputeMetrics(x, x.Clone());
  EXPECT_EQ(m.mse, 0.0);
  EXPECT_EQ(m.mae, 0.0);
}

TEST(MetricsTest, StreamingAccumulationMatchesOneShot) {
  Rng rng(1);
  Tensor p1 = Tensor::Randn({8}, rng), t1 = Tensor::Randn({8}, rng);
  Tensor p2 = Tensor::Randn({8}, rng), t2 = Tensor::Randn({8}, rng);

  metrics::ForecastMetrics streamed;
  streamed.Accumulate(p1, t1);
  streamed.Accumulate(p2, t2);
  streamed.Finalize();

  Tensor pall = Cat({p1, p2}, 0);
  Tensor tall = Cat({t1, t2}, 0);
  auto oneshot = metrics::ComputeMetrics(pall, tall);
  EXPECT_NEAR(streamed.mse, oneshot.mse, 1e-9);
  EXPECT_NEAR(streamed.mae, oneshot.mae, 1e-9);
}

TEST(EfficiencyTest, ProbeReportsPlausibleNumbers) {
  Rng rng(2);
  core::FocusConfig cfg;
  cfg.lookback = 64;
  cfg.horizon = 16;
  cfg.num_entities = 3;
  cfg.patch_len = 16;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  core::FocusModel model(cfg, Tensor::Randn({4, 16}, rng));
  Tensor sample = Tensor::Randn({1, 3, 64}, rng);
  auto report = metrics::ProbeEfficiency(model, sample);
  EXPECT_GT(report.flops, 0);
  EXPECT_GT(report.peak_bytes, 0);
  EXPECT_EQ(report.parameters, model.NumParameters());
  EXPECT_GT(report.latency_ms, 0.0);
  // The probe must not leave the model in eval mode.
  EXPECT_TRUE(model.training());
}

TEST(EfficiencyTest, ProbeIsRepeatable) {
  // FLOPs are deterministic; repeated probes must agree exactly.
  Rng rng(3);
  core::FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  core::FocusModel model(cfg, Tensor::Randn({4, 8}, rng));
  Tensor sample = Tensor::Randn({1, 2, 32}, rng);
  auto a = metrics::ProbeEfficiency(model, sample);
  auto b = metrics::ProbeEfficiency(model, sample);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.parameters, b.parameters);
}

}  // namespace
}  // namespace focus
