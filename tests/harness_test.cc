// Integration tests for the experiment harness: profiles, dataset
// preparation, window plumbing, the model zoo, end-to-end train+evaluate,
// and the ASCII plot helpers.
#include <cstdlib>

#include <gtest/gtest.h>

#include "harness/ascii_plot.h"
#include "harness/experiments.h"

namespace focus {
namespace {

harness::ExperimentProfile TinyProfile() {
  auto profile = harness::MakeProfile(data::Profile::kQuick);
  profile.train_steps = 4;
  profile.batch_size = 2;
  profile.eval_stride = 16;
  profile.lookback = 96;
  profile.d_model = 16;
  profile.conv_channels = 8;
  profile.num_prototypes = 6;
  return profile;
}

TEST(HarnessTest, ProfileEnvOverrides) {
  setenv("FOCUS_TRAIN_STEPS", "123", 1);
  auto p = harness::MakeProfile(data::Profile::kQuick);
  EXPECT_EQ(p.train_steps, 123);
  unsetenv("FOCUS_TRAIN_STEPS");
  auto q = harness::MakeProfile(data::Profile::kQuick);
  EXPECT_EQ(q.train_steps, 300);
  auto full = harness::MakeProfile(data::Profile::kFull);
  EXPECT_EQ(full.lookback, 512);
}

TEST(HarnessTest, ReadoutQueriesMatchPaperRule) {
  EXPECT_EQ(harness::ReadoutQueriesFor(96), 6);    // paper: 6
  EXPECT_EQ(harness::ReadoutQueriesFor(336), 21);  // paper: 21
  EXPECT_EQ(harness::ReadoutQueriesFor(1), 2);     // floor of 2
}

TEST(HarnessTest, FocusPatchLenAlignsWithDailyPeriod) {
  auto profile = harness::MakeProfile(data::Profile::kQuick);
  EXPECT_EQ(harness::FocusPatchLenFor("Traffic", profile), 24);
  EXPECT_EQ(harness::FocusPatchLenFor("ETTh1", profile), 24);
  EXPECT_EQ(harness::FocusPatchLenFor("Weather", profile), 12);
  EXPECT_EQ(harness::FocusPatchLenFor("PEMS08", profile), 24);
  EXPECT_EQ(harness::FocusPatchLenFor("ETTm1", profile),
            profile.patch_len);
  EXPECT_EQ(harness::FocusPrototypesFor("PEMS08", profile), 32);
  EXPECT_EQ(harness::FocusPrototypesFor("Weather", profile),
            profile.num_prototypes);
}

TEST(HarnessTest, PrepareDatasetNormalizesTrainRegion) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  // Train-region mean of each entity approximately zero after z-scoring.
  const int64_t t = data.normalized.size(1);
  for (int64_t e = 0; e < data.normalized.size(0); ++e) {
    double mean = 0;
    for (int64_t i = 0; i < data.splits.train_end; ++i) {
      mean += data.normalized.At({e, i});
    }
    EXPECT_NEAR(mean / data.splits.train_end, 0.0, 1e-3);
  }
  EXPECT_EQ(t, data.dataset.num_steps());
}

TEST(HarnessTest, WindowRangesCoverExpectedRegions) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  const int64_t L = 96, H = 24;
  auto train = harness::TrainWindows(data, L, H);
  auto val = harness::ValWindows(data, L, H);
  auto test = harness::TestWindows(data, L, H);
  EXPECT_GT(train.NumWindows(), 0);
  EXPECT_GT(val.NumWindows(), 0);
  EXPECT_GT(test.NumWindows(), 0);
  // Every forecast step of a test window lies inside the test region:
  // first test window's label starts exactly at val_end.
  auto first = test.GetWindow(0);
  EXPECT_EQ(first.y.At({0, 0, 0}),
            data.normalized.At({0, data.splits.val_end}));
}

TEST(HarnessTest, ModelZooBuildsAllEightModels) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("PEMS08", profile);
  auto names = harness::ModelZooNames();
  EXPECT_EQ(names.size(), 8u);
  Rng rng(1);
  Tensor x = Tensor::Randn({1, data.dataset.num_entities(), 96}, rng);
  for (const auto& name : names) {
    auto model = harness::BuildModel(name, data, 96, 24, profile);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->Forward(x).shape(),
              (Shape{1, data.dataset.num_entities(), 24}))
        << name;
  }
}

TEST(HarnessTest, TrainAndEvaluateEndToEnd) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  auto model = harness::BuildModel("DLinear", data, 96, 24, profile);
  auto outcome = harness::TrainAndEvaluate(*model, data, 96, 24, profile);
  EXPECT_EQ(outcome.train.steps, profile.train_steps);
  EXPECT_GT(outcome.test.count, 0);
  EXPECT_TRUE(std::isfinite(outcome.test.mse));
}

TEST(HarnessTest, TrainingIsDeterministicPerSeed) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  auto run = [&] {
    auto model = harness::BuildModel("FOCUS", data, 96, 24, profile, 7);
    return harness::TrainAndEvaluate(*model, data, 96, 24, profile, 7)
        .test.mse;
  };
  EXPECT_EQ(run(), run());
}

TEST(HarnessTest, EarlyStoppingRestoresBestCheckpoint) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  auto model = harness::BuildModel("DLinear", data, 96, 24, profile);
  auto train = harness::TrainWindows(data, 96, 24);
  auto val = harness::ValWindows(data, 96, 24);

  harness::TrainConfig tc;
  tc.max_steps = 60;
  tc.batch_size = 4;
  tc.lr = 1e-2f;
  tc.val = &val;
  tc.eval_every = 10;
  tc.patience = 2;
  auto result = harness::TrainModel(*model, train, tc);
  ASSERT_GT(result.best_val_mse, 0.0);
  // The restored parameters must reproduce the recorded best val MSE.
  auto val_metrics = harness::EvaluateModel(*model, val, 4, 4);
  EXPECT_NEAR(val_metrics.mse, result.best_val_mse, 1e-6);
}

TEST(HarnessTest, CosineScheduleStillConverges) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  auto model = harness::BuildModel("DLinear", data, 96, 24, profile);
  auto train = harness::TrainWindows(data, 96, 24);
  harness::TrainConfig tc;
  tc.max_steps = 40;
  tc.batch_size = 4;
  tc.lr = 1e-2f;
  tc.cosine_schedule = true;
  auto result = harness::TrainModel(*model, train, tc);
  EXPECT_LT(result.final_loss, result.first_loss);
}

TEST(AsciiPlotTest, ChartContainsGlyphsAndLegend) {
  std::vector<double> a = {0, 1, 2, 3, 2, 1, 0};
  std::vector<double> b = {3, 2, 1, 0, 1, 2, 3};
  std::string chart = harness::AsciiChart({a, b}, {"up", "down"}, 40, 8);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
  EXPECT_NE(chart.find("up"), std::string::npos);
}

TEST(AsciiPlotTest, ChartHandlesConstantSeries) {
  std::vector<double> flat = {1, 1, 1, 1};
  std::string chart = harness::AsciiChart({flat}, {"flat"}, 20, 5);
  EXPECT_FALSE(chart.empty());
}

TEST(AsciiPlotTest, HeatmapUsesDensityRamp) {
  std::vector<double> v = {0, 0.5, 1.0, 0.2, 0.7, 0.9};
  std::string map = harness::AsciiHeatmap(v, 2, 3);
  EXPECT_NE(map.find('@'), std::string::npos);  // max value
  EXPECT_NE(map.find(' '), std::string::npos);  // min value
}

}  // namespace
}  // namespace focus
