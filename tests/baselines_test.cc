// Baseline model tests: forward shapes across a grid, gradient flow,
// mechanism-specific invariants, and trainability on a tiny problem.
#include <memory>

#include <gtest/gtest.h>

#include "baselines/common.h"
#include "baselines/crossformer.h"
#include "baselines/dlinear.h"
#include "baselines/graph_models.h"
#include "baselines/lightcts.h"
#include "baselines/patch_tst.h"
#include "baselines/timesnet.h"
#include "data/generator.h"
#include "data/window.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace focus {
namespace {

using baselines::CrossformerConfig;
using baselines::CrossformerLite;
using baselines::DLinear;
using baselines::DLinearConfig;
using baselines::GraphWaveNetConfig;
using baselines::GraphWaveNetLite;
using baselines::LightCtsConfig;
using baselines::LightCtsLite;
using baselines::MtgnnConfig;
using baselines::MtgnnLite;
using baselines::PatchTst;
using baselines::PatchTstConfig;
using baselines::TimesNetConfig;
using baselines::TimesNetLite;

constexpr int64_t kB = 2, kN = 4, kL = 64, kH = 16;

std::unique_ptr<ForecastModel> MakeModel(const std::string& name) {
  if (name == "DLinear") {
    DLinearConfig cfg;
    cfg.lookback = kL;
    cfg.horizon = kH;
    return std::make_unique<DLinear>(cfg);
  }
  if (name == "PatchTST") {
    PatchTstConfig cfg;
    cfg.lookback = kL;
    cfg.horizon = kH;
    cfg.patch_len = 16;
    cfg.stride = 8;
    cfg.d_model = 32;
    cfg.num_heads = 2;
    cfg.num_layers = 1;
    cfg.ffn_dim = 64;
    return std::make_unique<PatchTst>(cfg);
  }
  if (name == "Crossformer") {
    CrossformerConfig cfg;
    cfg.lookback = kL;
    cfg.horizon = kH;
    cfg.patch_len = 16;
    cfg.d_model = 32;
    cfg.num_heads = 2;
    cfg.ffn_dim = 64;
    return std::make_unique<CrossformerLite>(cfg);
  }
  if (name == "MTGNN") {
    MtgnnConfig cfg;
    cfg.lookback = kL;
    cfg.horizon = kH;
    cfg.num_entities = kN;
    cfg.channels = 8;
    return std::make_unique<MtgnnLite>(cfg);
  }
  if (name == "GraphWaveNet") {
    GraphWaveNetConfig cfg;
    cfg.lookback = kL;
    cfg.horizon = kH;
    cfg.num_entities = kN;
    cfg.channels = 8;
    cfg.skip_channels = 16;
    return std::make_unique<GraphWaveNetLite>(cfg);
  }
  if (name == "TimesNet") {
    TimesNetConfig cfg;
    cfg.lookback = kL;
    cfg.horizon = kH;
    cfg.channels = 4;
    return std::make_unique<TimesNetLite>(cfg);
  }
  if (name == "LightCTS") {
    LightCtsConfig cfg;
    cfg.lookback = kL;
    cfg.horizon = kH;
    cfg.channels = 8;
    return std::make_unique<LightCtsLite>(cfg);
  }
  return nullptr;
}

class BaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineTest, ForwardShapeAndName) {
  auto model = MakeModel(GetParam());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());
  EXPECT_EQ(model->horizon(), kH);
  Rng rng(1);
  Tensor x = Tensor::Randn({kB, kN, kL}, rng);
  Tensor y = model->Forward(x);
  EXPECT_EQ(y.shape(), (Shape{kB, kN, kH}));
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST_P(BaselineTest, GradientsReachAllParameters) {
  auto model = MakeModel(GetParam());
  Rng rng(2);
  Tensor x = Tensor::Randn({kB, kN, kL}, rng);
  Tensor target = Tensor::Randn({kB, kN, kH}, rng);
  MseLoss(model->Forward(x), target).Backward();
  int64_t with_grad = 0, total = 0;
  for (const auto& [pname, param] : model->NamedParameters()) {
    ++total;
    if (param.Grad().defined()) ++with_grad;
  }
  EXPECT_EQ(with_grad, total) << "some parameters received no gradient";
  EXPECT_GT(total, 0);
}

TEST_P(BaselineTest, LossDecreasesWithTraining) {
  auto model = MakeModel(GetParam());
  data::GeneratorConfig gen;
  gen.num_entities = kN;
  gen.num_steps = 300;
  gen.steps_per_day = 32;
  gen.noise_std = 0.05f;
  gen.seed = 3;
  Tensor values = data::Generate(gen).values;
  data::WindowDataset windows(values, kL, kH, 0, 300);
  auto batch = windows.GetBatch({0, 50, 100, 150});

  optim::AdamW opt(model->Parameters(), 5e-3f, 1e-5f);
  float first = 0, last = 0;
  for (int step = 0; step < 40; ++step) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(model->Forward(batch.x), batch.y);
    if (step == 0) first = loss.Item();
    last = loss.Item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first) << "training did not reduce the loss";
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineTest,
                         ::testing::Values("DLinear", "PatchTST",
                                           "Crossformer", "MTGNN",
                                           "GraphWaveNet", "TimesNet",
                                           "LightCTS"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(CommonTest, ExtractPatchesOverlapping) {
  Tensor x = Tensor::Arange(10).Reshape({1, 10});
  Tensor p = baselines::ExtractPatches(x, 4, 2);
  EXPECT_EQ(p.shape(), (Shape{1, 4, 4}));
  EXPECT_EQ(p.At({0, 0, 0}), 0.0f);
  EXPECT_EQ(p.At({0, 1, 0}), 2.0f);
  EXPECT_EQ(p.At({0, 3, 3}), 9.0f);
}

TEST(CommonTest, MovingAverageSmoothsAndPreservesConstants) {
  Tensor constant = Tensor::Full({1, 10}, 3.0f);
  Tensor avg = baselines::MovingAverage(constant, 5);
  for (int64_t i = 0; i < 10; ++i) EXPECT_NEAR(avg.At({0, i}), 3.0f, 1e-5);

  // A spike gets spread out.
  Tensor spike = Tensor::Zeros({1, 9});
  spike.Set({0, 4}, 9.0f);
  Tensor smoothed = baselines::MovingAverage(spike, 3);
  EXPECT_NEAR(smoothed.At({0, 4}), 3.0f, 1e-5);
  EXPECT_NEAR(smoothed.At({0, 3}), 3.0f, 1e-5);
  EXPECT_NEAR(smoothed.At({0, 0}), 0.0f, 1e-5);
}

TEST(DLinearTest, DecomposesTrendExactlyOnLinearRamp) {
  // A pure linear ramp is (approximately) all trend; DLinear must be able
  // to extrapolate it once trained. Quick smoke: forward is finite and the
  // model has exactly 2 * (L * H + H) parameters.
  DLinearConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  DLinear model(cfg);
  EXPECT_EQ(model.NumParameters(), 2 * (32 * 8 + 8));
}

TEST(AdaptiveAdjacencyTest, RowStochastic) {
  Rng rng(4);
  baselines::AdaptiveAdjacency adj(5, 4, rng);
  Tensor a = adj.Forward();
  EXPECT_EQ(a.shape(), (Shape{5, 5}));
  for (int64_t i = 0; i < 5; ++i) {
    float sum = 0;
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_GE(a.At({i, j}), 0.0f);
      sum += a.At({i, j});
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(TimesNetTest, DetectsPlantedPeriod) {
  TimesNetConfig cfg;
  cfg.lookback = 96;
  cfg.horizon = 8;
  TimesNetLite model(cfg);
  // Strong period-12 sinusoid.
  Tensor flat = Tensor::Empty({2, 96});
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t i = 0; i < 96; ++i) {
      flat.data()[r * 96 + i] =
          std::sin(2.0f * 3.14159265f * static_cast<float>(i) / 12.0f);
    }
  }
  const int64_t period = model.DetectPeriod(flat);
  EXPECT_EQ(period % 12, 0) << "detected " << period;
}

TEST(PatchTstTest, PatchCountFormula) {
  PatchTstConfig cfg;
  cfg.lookback = 64;
  cfg.horizon = 8;
  cfg.patch_len = 16;
  cfg.stride = 8;
  PatchTst model(cfg);
  EXPECT_EQ(model.num_patches(), (64 - 16) / 8 + 1);
}

}  // namespace
}  // namespace focus
