// Tests for missing-value handling, rolling-origin evaluation and the
// FLOP-region attribution.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baselines/dlinear.h"
#include "data/generator.h"
#include "data/impute.h"
#include "harness/rolling.h"
#include "tensor/flops.h"
#include "tensor/ops.h"

namespace focus {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

TEST(ImputeTest, ScanGapsCountsRunsAndEntities) {
  Tensor v = Tensor::FromVector(
      {2, 6}, {1, kNan, kNan, 4, kNan, 6, 1, 2, 3, 4, 5, 6});
  auto report = data::ScanGaps(v);
  EXPECT_EQ(report.missing_values, 3);
  EXPECT_EQ(report.longest_gap, 2);
  EXPECT_EQ(report.affected_entities, 1);
}

TEST(ImputeTest, ForwardFillBasics) {
  Tensor v = Tensor::FromVector({1, 6}, {kNan, 2, kNan, kNan, 5, kNan});
  EXPECT_EQ(data::ForwardFillImpute(&v), 4);
  EXPECT_EQ(v.At({0, 0}), 2.0f);  // leading NaN back-filled
  EXPECT_EQ(v.At({0, 2}), 2.0f);
  EXPECT_EQ(v.At({0, 3}), 2.0f);
  EXPECT_EQ(v.At({0, 5}), 5.0f);  // trailing NaN forward-filled
}

TEST(ImputeTest, ForwardFillAllNanRowZeroFills) {
  Tensor v = Tensor::FromVector({1, 3}, {kNan, kNan, kNan});
  EXPECT_EQ(data::ForwardFillImpute(&v), 3);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(v.At({0, i}), 0.0f);
}

TEST(ImputeTest, LinearInterpolationIsExactOnRamps) {
  Tensor v = Tensor::FromVector({1, 5}, {0, kNan, kNan, kNan, 4});
  EXPECT_EQ(data::LinearInterpolateImpute(&v), 3);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(v.At({0, i}), static_cast<float>(i), 1e-5);
  }
}

TEST(ImputeTest, LinearInterpolationEdgesFallBackToNearest) {
  Tensor v = Tensor::FromVector({1, 5}, {kNan, 3, kNan, 7, kNan});
  EXPECT_EQ(data::LinearInterpolateImpute(&v), 3);
  EXPECT_EQ(v.At({0, 0}), 3.0f);
  EXPECT_NEAR(v.At({0, 2}), 5.0f, 1e-5);
  EXPECT_EQ(v.At({0, 4}), 7.0f);
}

TEST(ImputeTest, NoNansIsNoOp) {
  Tensor v = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
  Tensor copy = v.Clone();
  EXPECT_EQ(data::ForwardFillImpute(&v), 0);
  EXPECT_EQ(data::LinearInterpolateImpute(&v), 0);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(v.At({0, i}), copy.At({0, i}));
}

TEST(RollingTest, FoldsAdvanceAndAggregate) {
  data::GeneratorConfig gen;
  gen.num_entities = 3;
  gen.num_steps = 1200;
  gen.steps_per_day = 24;
  gen.seed = 5;
  Tensor values = data::Generate(gen).values;

  harness::RollingConfig cfg;
  cfg.lookback = 48;
  cfg.horizon = 12;
  cfg.num_folds = 3;
  cfg.fold_span = 100;
  cfg.train.max_steps = 15;
  cfg.train.batch_size = 4;
  cfg.train.lr = 1e-2f;

  auto result = harness::RollingOriginEvaluate(values, cfg, [&] {
    baselines::DLinearConfig dl;
    dl.lookback = 48;
    dl.horizon = 12;
    return std::make_unique<baselines::DLinear>(dl);
  });
  ASSERT_EQ(result.folds.size(), 3u);
  EXPECT_EQ(result.folds[0].origin, 1200 - 300);
  EXPECT_EQ(result.folds[1].origin, 1200 - 200);
  EXPECT_EQ(result.folds[2].origin, 1200 - 100);
  for (const auto& fold : result.folds) {
    EXPECT_TRUE(std::isfinite(fold.metrics.mse));
    EXPECT_GT(fold.metrics.count, 0);
  }
  // Aggregate is the count-weighted mean of the folds.
  double expect_mse = 0;
  int64_t total = 0;
  for (const auto& fold : result.folds) {
    expect_mse += fold.metrics.mse * fold.metrics.count;
    total += fold.metrics.count;
  }
  EXPECT_NEAR(result.aggregate.mse, expect_mse / total, 1e-9);
  EXPECT_EQ(result.aggregate.count, total);
}

TEST(FlopRegionTest, AttributesToInnermostRegion) {
  FlopCounter::Reset();
  Rng rng(6);
  Tensor a = Tensor::Randn({8, 8}, rng);
  {
    FlopRegion outer("outer");
    MatMul(a, a);
    {
      FlopRegion inner("inner");
      MatMul(a, a);
    }
    MatMul(a, a);
  }
  MatMul(a, a);  // untagged

  int64_t outer = 0, inner = 0;
  for (const auto& [region, flops] : FlopCounter::Breakdown()) {
    if (region == "outer") outer = flops;
    if (region == "inner") inner = flops;
  }
  const int64_t one = 2 * 8 * 8 * 8;
  EXPECT_EQ(inner, one);
  EXPECT_EQ(outer, 2 * one);
  EXPECT_EQ(FlopCounter::Count(), 4 * one);
}

TEST(FlopRegionTest, ResetClearsBreakdown) {
  FlopCounter::Reset();
  {
    FlopRegion region("temp");
    FlopCounter::Add(10);
  }
  EXPECT_FALSE(FlopCounter::Breakdown().empty());
  FlopCounter::Reset();
  EXPECT_TRUE(FlopCounter::Breakdown().empty());
  EXPECT_EQ(FlopCounter::Count(), 0);
}

}  // namespace
}  // namespace focus
