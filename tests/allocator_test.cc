// Tests for the caching tensor allocator (tensor/allocator.h): size-class
// rounding, buffer recycling, cap/trim behaviour, bypass parity, the
// logical-vs-raw accounting contract with MemoryStats, debug NaN
// poisoning, and a concurrent alloc/free stress (registered in the TSAN
// ctest matrix at 4 and 8 threads).
#include "tensor/allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "tensor/memory.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "utils/check.h"
#include "utils/env.h"
#include "utils/rng.h"

namespace focus {
namespace {

// Pins the allocator cap for one test and restores it afterwards, trimming
// so no cached buffer from this test leaks into the next one's counters.
class ScopedCap {
 public:
  explicit ScopedCap(int64_t bytes) : prev_(Allocator::Get().cap_bytes()) {
    Allocator::Get().SetCapBytes(bytes);
  }
  ~ScopedCap() {
    Allocator::Get().Trim();
    Allocator::Get().SetCapBytes(prev_);
  }

 private:
  int64_t prev_;
};

class ScopedDebugChecks {
 public:
  explicit ScopedDebugChecks(bool enabled) : prev_(debug::ChecksEnabled()) {
    debug::SetChecksEnabled(enabled);
  }
  ~ScopedDebugChecks() { debug::SetChecksEnabled(prev_); }

 private:
  bool prev_;
};

constexpr int64_t kMiB = int64_t{1} << 20;

TEST(SizeClassTest, SmallClassesRoundToNextPowerOfTwo) {
  EXPECT_EQ(Allocator::SizeClassFloats(1), 64);
  EXPECT_EQ(Allocator::SizeClassFloats(64), 64);
  EXPECT_EQ(Allocator::SizeClassFloats(65), 128);
  EXPECT_EQ(Allocator::SizeClassFloats(1000), 1024);
  EXPECT_EQ(Allocator::SizeClassFloats(1 << 20), 1 << 20);
}

TEST(SizeClassTest, LargeClassesRoundToQuantum) {
  const int64_t quantum = int64_t{1} << 18;  // 1 MiB of floats
  EXPECT_EQ(Allocator::SizeClassFloats((1 << 20) + 1), 5 * quantum);
  EXPECT_EQ(Allocator::SizeClassFloats(5 * quantum), 5 * quantum);
  EXPECT_EQ(Allocator::SizeClassFloats(5 * quantum + 1), 6 * quantum);
}

TEST(SizeClassTest, ClassIsNeverSmallerThanRequest) {
  for (int64_t n : {int64_t{1}, int64_t{63}, int64_t{64}, int64_t{65},
                    int64_t{4097}, (int64_t{1} << 20) - 1,
                    (int64_t{1} << 20) + 1, int64_t{3} << 20}) {
    EXPECT_GE(Allocator::SizeClassFloats(n), n) << "numel " << n;
  }
}

TEST(AllocatorTest, RecyclesSameClassBuffer) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* p = alloc.Allocate(1000);
  alloc.Deallocate(p, 1000);
  // Same size class (1024 floats) on the same thread: the free-list pop
  // must hand the identical buffer back.
  float* q = alloc.Allocate(700);
  EXPECT_EQ(q, p);
  alloc.Deallocate(q, 700);

  const AllocatorStats after = alloc.Stats();
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.frees_cached - before.frees_cached, 2);
}

TEST(AllocatorTest, CapBoundsCachedBytesAndTrimReleases) {
  // Cap admits one 64-float buffer (256 B) but not two.
  ScopedCap cap(256);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* a = alloc.Allocate(64);
  float* b = alloc.Allocate(64);
  alloc.Deallocate(a, 64);  // fits the cap: cached
  alloc.Deallocate(b, 64);  // over the cap: released to the system

  AllocatorStats after = alloc.Stats();
  EXPECT_EQ(after.frees_cached - before.frees_cached, 1);
  EXPECT_EQ(after.frees_released - before.frees_released, 1);
  EXPECT_EQ(after.cached_bytes, 256);

  EXPECT_EQ(alloc.Trim(), 256);
  after = alloc.Stats();
  EXPECT_EQ(after.cached_bytes, 0);
  EXPECT_GE(after.trims - before.trims, 1);
  EXPECT_GE(after.trimmed_bytes - before.trimmed_bytes, 256);
}

TEST(AllocatorTest, BypassNeverRecycles) {
  ScopedCap cap(0);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* p = alloc.Allocate(4096);
  alloc.Deallocate(p, 4096);
  float* q = alloc.Allocate(4096);
  alloc.Deallocate(q, 4096);

  const AllocatorStats after = alloc.Stats();
  EXPECT_EQ(after.hits - before.hits, 0);
  EXPECT_EQ(after.frees_cached - before.frees_cached, 0);
  EXPECT_EQ(after.misses - before.misses, 2);
  EXPECT_EQ(after.frees_released - before.frees_released, 2);
  // Every byte went back to the system.
  EXPECT_EQ(after.raw_bytes, before.raw_bytes);
}

TEST(AllocatorTest, RawBytesReflectLiveAndCachedClassBytes) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* p = alloc.Allocate(1000);  // class 1024 floats = 4096 B
  AllocatorStats live = alloc.Stats();
  EXPECT_EQ(live.raw_bytes - before.raw_bytes, 4096);

  alloc.Deallocate(p, 1000);  // cached: raw bytes stay with the allocator
  AllocatorStats cached = alloc.Stats();
  EXPECT_EQ(cached.raw_bytes - before.raw_bytes, 4096);
  EXPECT_EQ(cached.cached_bytes - before.cached_bytes, 4096);

  alloc.Trim();
  AllocatorStats trimmed = alloc.Stats();
  EXPECT_EQ(trimmed.raw_bytes - before.raw_bytes, 0);
}

// The paper's peak-memory metric (Fig. 6) is defined over logical
// live-tensor bytes; caching must be invisible to it. Run the same tensor
// workload cached and bypassed and require identical MemoryStats deltas.
TEST(AllocatorTest, MemoryStatsAreCacheInvariant) {
  auto workload = [] {
    MemoryStats::ResetPeak();
    const int64_t base_current = MemoryStats::CurrentBytes();
    const int64_t base_allocs = MemoryStats::TotalAllocations();
    for (int iter = 0; iter < 3; ++iter) {
      Tensor a = Tensor::Zeros({128, 64});
      Tensor b = Tensor::Full({128, 64}, 2.0f);
      Tensor c = Tensor::Zeros({32});
      (void)a;
      (void)b;
      (void)c;
    }
    struct Deltas {
      int64_t peak, current, allocs;
    };
    return Deltas{MemoryStats::PeakBytes(),
                  MemoryStats::CurrentBytes() - base_current,
                  MemoryStats::TotalAllocations() - base_allocs};
  };

  int64_t cached_peak, cached_current, cached_allocs;
  {
    ScopedCap cap(64 * kMiB);
    auto d = workload();
    cached_peak = d.peak;
    cached_current = d.current;
    cached_allocs = d.allocs;
  }
  {
    ScopedCap cap(0);
    auto d = workload();
    EXPECT_EQ(d.peak, cached_peak);
    EXPECT_EQ(d.current, cached_current);
    EXPECT_EQ(d.allocs, cached_allocs);
  }
  EXPECT_EQ(cached_current, 0);  // everything was freed
}

TEST(AllocatorTest, DebugChecksPoisonRecycledBuffers) {
  ScopedCap cap(64 * kMiB);
  ScopedDebugChecks checks(true);
  Allocator& alloc = Allocator::Get();

  float* p = alloc.Allocate(256);
  std::fill_n(p, 256, 1.0f);
  alloc.Deallocate(p, 256);
  float* q = alloc.Allocate(256);
  ASSERT_EQ(q, p);  // recycled, so the old contents would otherwise leak
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(std::isnan(q[i])) << "index " << i;
  }
  alloc.Deallocate(q, 256);
}

// Concurrent alloc/free stress over mixed size classes, including frees
// issued from a different thread than the matching alloc (the sharded
// free lists must tolerate cross-shard traffic). Uses the raw Allocator
// API rather than Tensors: MemoryStats' logical counters are plain
// non-atomic globals owned by the main thread by design.
TEST(AllocatorTest, ConcurrentAllocFreeStress) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const int num_threads = static_cast<int>(
      GetEnvIntInRangeOr("FOCUS_NUM_THREADS", 4, 1, 64));
  constexpr int kIters = 400;
  const int64_t sizes[] = {60, 64, 1000, 4096, 70000, (int64_t{1} << 20) + 5};

  // Phase 1: each thread churns private buffers, verifying its writes.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t pick = static_cast<size_t>(t + i) %
                            (sizeof(sizes) / sizeof(int64_t));
        const int64_t numel = sizes[pick];
        float* p = alloc.Allocate(numel);
        const float sentinel = static_cast<float>(t * kIters + i);
        p[0] = sentinel;
        p[numel - 1] = sentinel;
        ASSERT_EQ(p[0], sentinel);
        ASSERT_EQ(p[numel - 1], sentinel);
        alloc.Deallocate(p, numel);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  threads.clear();

  // Phase 2: producer/consumer — buffers allocated here, freed on workers.
  std::vector<std::vector<std::pair<float*, int64_t>>> handoff(
      static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    for (int i = 0; i < 32; ++i) {
      const int64_t numel = sizes[i % (sizeof(sizes) / sizeof(int64_t))];
      handoff[static_cast<size_t>(t)].emplace_back(alloc.Allocate(numel),
                                                   numel);
    }
  }
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (auto& [ptr, numel] : handoff[static_cast<size_t>(t)]) {
        alloc.Deallocate(ptr, numel);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Nothing live remains from this test: after a trim the allocator holds
  // no more raw bytes than it did cached-elsewhere before the test.
  alloc.Trim();
  EXPECT_EQ(alloc.Stats().cached_bytes, 0);
}

TEST(ArenaLeaseTest, BumpAllocatesAlignedBlocksAndRewinds) {
  ScopedCap cap(64 * kMiB);
  ArenaLease lease(1000);
  ASSERT_NE(lease.data(), nullptr);
  EXPECT_EQ(lease.capacity(), Allocator::SizeClassFloats(1000));
  EXPECT_EQ(lease.used(), 0);

  float* a = lease.AllocFloats(10);  // rounds to 16 floats (64 B)
  float* b = lease.AllocFloats(16);
  float* c = lease.AllocFloats(17);  // rounds to 32
  EXPECT_EQ(a, lease.data());
  EXPECT_EQ(b, a + 16);
  EXPECT_EQ(c, b + 16);
  EXPECT_EQ(lease.used(), 16 + 16 + 32);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);

  lease.Rewind();
  EXPECT_EQ(lease.used(), 0);
  EXPECT_EQ(lease.AllocFloats(8), a);  // same addresses after rewind
}

TEST(ArenaLeaseTest, StatsCountCheckoutsAndTrackLeasedBytes) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();
  {
    ArenaLease lease(1000);  // class 1024 floats = 4096 B
    const AllocatorStats held = alloc.Stats();
    EXPECT_EQ(held.arena_leases - before.arena_leases, 1);
    EXPECT_EQ(held.arena_leased_bytes - before.arena_leased_bytes, 4096);
  }
  const AllocatorStats returned = alloc.Stats();
  // arena_leases is monotonic; the byte gauge dropped back on return.
  EXPECT_EQ(returned.arena_leases - before.arena_leases, 1);
  EXPECT_EQ(returned.arena_leased_bytes, before.arena_leased_bytes);

  // A warmed cache makes the checkout a free-list hit: no system traffic.
  const AllocatorStats warm_before = alloc.Stats();
  {
    ArenaLease lease(1000);
    (void)lease;
  }
  const AllocatorStats warm_after = alloc.Stats();
  EXPECT_EQ(warm_after.hits - warm_before.hits, 1);
  EXPECT_EQ(warm_after.misses - warm_before.misses, 0);
  EXPECT_EQ(warm_after.frees_released - warm_before.frees_released, 0);
}

TEST(ArenaLeaseTest, MoveTransfersOwnershipWithoutDoubleReturn) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();
  {
    ArenaLease lease(256);
    float* data = lease.data();
    ArenaLease moved = std::move(lease);
    EXPECT_EQ(moved.data(), data);
    EXPECT_EQ(lease.data(), nullptr);
    // The moved-from lease must not decrement the gauge on destruction.
    EXPECT_EQ(alloc.Stats().arena_leased_bytes -
                  before.arena_leased_bytes,
              static_cast<int64_t>(Allocator::SizeClassFloats(256)) * 4);
  }
  EXPECT_EQ(alloc.Stats().arena_leased_bytes, before.arena_leased_bytes);
}

// Arena memory is plain allocator memory: a kernel reading a tensor
// aliased over a leased slab must produce bit-identical output to the
// same kernel over a normally-allocated tensor with the same contents.
TEST(ArenaLeaseTest, LeasedBufferKernelsBitMatchGlobalAllocation) {
  ScopedCap cap(64 * kMiB);
  constexpr int64_t kRows = 8, kCols = 32;
  Rng rng(123);
  Tensor normal = Tensor::Randn({kRows, kCols}, rng);
  Rng wrng(77);
  Tensor weights = Tensor::Randn({kCols, 16}, wrng);

  ArenaLease lease(kRows * kCols);
  float* staged = lease.AllocFloats(kRows * kCols);
  std::memcpy(staged, normal.data(),
              static_cast<size_t>(kRows * kCols) * sizeof(float));
  Tensor aliased = Tensor::FromImpl(std::make_shared<TensorImpl>(
      Shape{kRows, kCols}, std::shared_ptr<float[]>(staged, [](float*) {})));

  InferenceModeGuard inference;
  Tensor out_normal = MatMul(normal, weights);
  Tensor out_aliased = MatMul(aliased, weights);
  ASSERT_EQ(out_normal.shape(), out_aliased.shape());
  EXPECT_EQ(0, std::memcmp(out_normal.data(), out_aliased.data(),
                           static_cast<size_t>(out_normal.numel()) *
                               sizeof(float)));
}

// Concurrent checkout/carve/return across threads (the serve engine's
// steady state with multiple workers). Registered in the TSAN ctest
// matrix at 4 and 8 threads via FOCUS_NUM_THREADS.
TEST(ArenaLeaseTest, ConcurrentCheckoutStress) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const int num_threads = static_cast<int>(
      GetEnvIntInRangeOr("FOCUS_NUM_THREADS", 4, 1, 64));
  constexpr int kIters = 300;
  const int64_t slab_sizes[] = {128, 1000, 4096, 70000};
  const AllocatorStats before = alloc.Stats();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int64_t numel =
            slab_sizes[static_cast<size_t>(t + i) %
                       (sizeof(slab_sizes) / sizeof(int64_t))];
        ArenaLease lease(numel);
        // Carve the slab in uneven strides (each rounds up to 64 floats)
        // and verify the writes: blocks from one lease never overlap
        // another thread's lease.
        const float sentinel = static_cast<float>(t * kIters + i);
        const int64_t n = 49 + t % 16;  // rounds to a 64-float block
        while (lease.used() + 64 <= lease.capacity()) {
          float* block = lease.AllocFloats(n);
          block[0] = sentinel;
          block[n - 1] = sentinel;
          ASSERT_EQ(block[0], sentinel);
          ASSERT_EQ(block[n - 1], sentinel);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const AllocatorStats after = alloc.Stats();
  EXPECT_EQ(after.arena_leases - before.arena_leases,
            static_cast<int64_t>(num_threads) * kIters);
  // Every lease was returned.
  EXPECT_EQ(after.arena_leased_bytes, before.arena_leased_bytes);
}

}  // namespace
}  // namespace focus
