// Tests for the caching tensor allocator (tensor/allocator.h): size-class
// rounding, buffer recycling, cap/trim behaviour, bypass parity, the
// logical-vs-raw accounting contract with MemoryStats, debug NaN
// poisoning, and a concurrent alloc/free stress (registered in the TSAN
// ctest matrix at 4 and 8 threads).
#include "tensor/allocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "tensor/memory.h"
#include "tensor/tensor.h"
#include "utils/check.h"
#include "utils/env.h"

namespace focus {
namespace {

// Pins the allocator cap for one test and restores it afterwards, trimming
// so no cached buffer from this test leaks into the next one's counters.
class ScopedCap {
 public:
  explicit ScopedCap(int64_t bytes) : prev_(Allocator::Get().cap_bytes()) {
    Allocator::Get().SetCapBytes(bytes);
  }
  ~ScopedCap() {
    Allocator::Get().Trim();
    Allocator::Get().SetCapBytes(prev_);
  }

 private:
  int64_t prev_;
};

class ScopedDebugChecks {
 public:
  explicit ScopedDebugChecks(bool enabled) : prev_(debug::ChecksEnabled()) {
    debug::SetChecksEnabled(enabled);
  }
  ~ScopedDebugChecks() { debug::SetChecksEnabled(prev_); }

 private:
  bool prev_;
};

constexpr int64_t kMiB = int64_t{1} << 20;

TEST(SizeClassTest, SmallClassesRoundToNextPowerOfTwo) {
  EXPECT_EQ(Allocator::SizeClassFloats(1), 64);
  EXPECT_EQ(Allocator::SizeClassFloats(64), 64);
  EXPECT_EQ(Allocator::SizeClassFloats(65), 128);
  EXPECT_EQ(Allocator::SizeClassFloats(1000), 1024);
  EXPECT_EQ(Allocator::SizeClassFloats(1 << 20), 1 << 20);
}

TEST(SizeClassTest, LargeClassesRoundToQuantum) {
  const int64_t quantum = int64_t{1} << 18;  // 1 MiB of floats
  EXPECT_EQ(Allocator::SizeClassFloats((1 << 20) + 1), 5 * quantum);
  EXPECT_EQ(Allocator::SizeClassFloats(5 * quantum), 5 * quantum);
  EXPECT_EQ(Allocator::SizeClassFloats(5 * quantum + 1), 6 * quantum);
}

TEST(SizeClassTest, ClassIsNeverSmallerThanRequest) {
  for (int64_t n : {int64_t{1}, int64_t{63}, int64_t{64}, int64_t{65},
                    int64_t{4097}, (int64_t{1} << 20) - 1,
                    (int64_t{1} << 20) + 1, int64_t{3} << 20}) {
    EXPECT_GE(Allocator::SizeClassFloats(n), n) << "numel " << n;
  }
}

TEST(AllocatorTest, RecyclesSameClassBuffer) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* p = alloc.Allocate(1000);
  alloc.Deallocate(p, 1000);
  // Same size class (1024 floats) on the same thread: the free-list pop
  // must hand the identical buffer back.
  float* q = alloc.Allocate(700);
  EXPECT_EQ(q, p);
  alloc.Deallocate(q, 700);

  const AllocatorStats after = alloc.Stats();
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.frees_cached - before.frees_cached, 2);
}

TEST(AllocatorTest, CapBoundsCachedBytesAndTrimReleases) {
  // Cap admits one 64-float buffer (256 B) but not two.
  ScopedCap cap(256);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* a = alloc.Allocate(64);
  float* b = alloc.Allocate(64);
  alloc.Deallocate(a, 64);  // fits the cap: cached
  alloc.Deallocate(b, 64);  // over the cap: released to the system

  AllocatorStats after = alloc.Stats();
  EXPECT_EQ(after.frees_cached - before.frees_cached, 1);
  EXPECT_EQ(after.frees_released - before.frees_released, 1);
  EXPECT_EQ(after.cached_bytes, 256);

  EXPECT_EQ(alloc.Trim(), 256);
  after = alloc.Stats();
  EXPECT_EQ(after.cached_bytes, 0);
  EXPECT_GE(after.trims - before.trims, 1);
  EXPECT_GE(after.trimmed_bytes - before.trimmed_bytes, 256);
}

TEST(AllocatorTest, BypassNeverRecycles) {
  ScopedCap cap(0);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* p = alloc.Allocate(4096);
  alloc.Deallocate(p, 4096);
  float* q = alloc.Allocate(4096);
  alloc.Deallocate(q, 4096);

  const AllocatorStats after = alloc.Stats();
  EXPECT_EQ(after.hits - before.hits, 0);
  EXPECT_EQ(after.frees_cached - before.frees_cached, 0);
  EXPECT_EQ(after.misses - before.misses, 2);
  EXPECT_EQ(after.frees_released - before.frees_released, 2);
  // Every byte went back to the system.
  EXPECT_EQ(after.raw_bytes, before.raw_bytes);
}

TEST(AllocatorTest, RawBytesReflectLiveAndCachedClassBytes) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const AllocatorStats before = alloc.Stats();

  float* p = alloc.Allocate(1000);  // class 1024 floats = 4096 B
  AllocatorStats live = alloc.Stats();
  EXPECT_EQ(live.raw_bytes - before.raw_bytes, 4096);

  alloc.Deallocate(p, 1000);  // cached: raw bytes stay with the allocator
  AllocatorStats cached = alloc.Stats();
  EXPECT_EQ(cached.raw_bytes - before.raw_bytes, 4096);
  EXPECT_EQ(cached.cached_bytes - before.cached_bytes, 4096);

  alloc.Trim();
  AllocatorStats trimmed = alloc.Stats();
  EXPECT_EQ(trimmed.raw_bytes - before.raw_bytes, 0);
}

// The paper's peak-memory metric (Fig. 6) is defined over logical
// live-tensor bytes; caching must be invisible to it. Run the same tensor
// workload cached and bypassed and require identical MemoryStats deltas.
TEST(AllocatorTest, MemoryStatsAreCacheInvariant) {
  auto workload = [] {
    MemoryStats::ResetPeak();
    const int64_t base_current = MemoryStats::CurrentBytes();
    const int64_t base_allocs = MemoryStats::TotalAllocations();
    for (int iter = 0; iter < 3; ++iter) {
      Tensor a = Tensor::Zeros({128, 64});
      Tensor b = Tensor::Full({128, 64}, 2.0f);
      Tensor c = Tensor::Zeros({32});
      (void)a;
      (void)b;
      (void)c;
    }
    struct Deltas {
      int64_t peak, current, allocs;
    };
    return Deltas{MemoryStats::PeakBytes(),
                  MemoryStats::CurrentBytes() - base_current,
                  MemoryStats::TotalAllocations() - base_allocs};
  };

  int64_t cached_peak, cached_current, cached_allocs;
  {
    ScopedCap cap(64 * kMiB);
    auto d = workload();
    cached_peak = d.peak;
    cached_current = d.current;
    cached_allocs = d.allocs;
  }
  {
    ScopedCap cap(0);
    auto d = workload();
    EXPECT_EQ(d.peak, cached_peak);
    EXPECT_EQ(d.current, cached_current);
    EXPECT_EQ(d.allocs, cached_allocs);
  }
  EXPECT_EQ(cached_current, 0);  // everything was freed
}

TEST(AllocatorTest, DebugChecksPoisonRecycledBuffers) {
  ScopedCap cap(64 * kMiB);
  ScopedDebugChecks checks(true);
  Allocator& alloc = Allocator::Get();

  float* p = alloc.Allocate(256);
  std::fill_n(p, 256, 1.0f);
  alloc.Deallocate(p, 256);
  float* q = alloc.Allocate(256);
  ASSERT_EQ(q, p);  // recycled, so the old contents would otherwise leak
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(std::isnan(q[i])) << "index " << i;
  }
  alloc.Deallocate(q, 256);
}

// Concurrent alloc/free stress over mixed size classes, including frees
// issued from a different thread than the matching alloc (the sharded
// free lists must tolerate cross-shard traffic). Uses the raw Allocator
// API rather than Tensors: MemoryStats' logical counters are plain
// non-atomic globals owned by the main thread by design.
TEST(AllocatorTest, ConcurrentAllocFreeStress) {
  ScopedCap cap(64 * kMiB);
  Allocator& alloc = Allocator::Get();
  const int num_threads = static_cast<int>(
      GetEnvIntInRangeOr("FOCUS_NUM_THREADS", 4, 1, 64));
  constexpr int kIters = 400;
  const int64_t sizes[] = {60, 64, 1000, 4096, 70000, (int64_t{1} << 20) + 5};

  // Phase 1: each thread churns private buffers, verifying its writes.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t pick = static_cast<size_t>(t + i) %
                            (sizeof(sizes) / sizeof(int64_t));
        const int64_t numel = sizes[pick];
        float* p = alloc.Allocate(numel);
        const float sentinel = static_cast<float>(t * kIters + i);
        p[0] = sentinel;
        p[numel - 1] = sentinel;
        ASSERT_EQ(p[0], sentinel);
        ASSERT_EQ(p[numel - 1], sentinel);
        alloc.Deallocate(p, numel);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  threads.clear();

  // Phase 2: producer/consumer — buffers allocated here, freed on workers.
  std::vector<std::vector<std::pair<float*, int64_t>>> handoff(
      static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    for (int i = 0; i < 32; ++i) {
      const int64_t numel = sizes[i % (sizeof(sizes) / sizeof(int64_t))];
      handoff[static_cast<size_t>(t)].emplace_back(alloc.Allocate(numel),
                                                   numel);
    }
  }
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (auto& [ptr, numel] : handoff[static_cast<size_t>(t)]) {
        alloc.Deallocate(ptr, numel);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Nothing live remains from this test: after a trim the allocator holds
  // no more raw bytes than it did cached-elsewhere before the test.
  alloc.Trim();
  EXPECT_EQ(alloc.Stats().cached_bytes, 0);
}

}  // namespace
}  // namespace focus
