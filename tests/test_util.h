// Shared test helpers: numerical gradient checking and tensor comparisons.
#ifndef FOCUS_TESTS_TEST_UTIL_H_
#define FOCUS_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace focus {
namespace testing {

inline void ExpectTensorNear(const Tensor& a, const Tensor& b,
                             double tol = 1e-5) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

// Verifies reverse-mode gradients of a scalar-valued function against
// central finite differences, for every element of every parameter.
//
// `fn` must rebuild the computation from the current parameter values each
// time it is called. Tolerances are sized for float32.
inline void CheckGradients(const std::function<Tensor()>& fn,
                           const std::vector<Tensor>& params,
                           double eps = 1e-2, double rtol = 2e-2,
                           double atol = 2e-3) {
  // Analytic gradients.
  for (const Tensor& p : params) {
    Tensor mutable_p = p;
    mutable_p.ZeroGrad();
  }
  Tensor loss = fn();
  ASSERT_EQ(loss.numel(), 1) << "gradcheck needs a scalar loss";
  loss.Backward();

  std::vector<std::vector<float>> analytic;
  for (const Tensor& p : params) {
    Tensor g = p.Grad();
    ASSERT_TRUE(g.defined()) << "parameter received no gradient";
    analytic.push_back(g.ToVector());
  }

  // Numerical gradients.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor p = params[pi];
    for (int64_t i = 0; i < p.numel(); ++i) {
      const float orig = p.data()[i];
      p.data()[i] = orig + static_cast<float>(eps);
      const double plus = [&] {
        NoGradGuard ng;
        return static_cast<double>(fn().Item());
      }();
      p.data()[i] = orig - static_cast<float>(eps);
      const double minus = [&] {
        NoGradGuard ng;
        return static_cast<double>(fn().Item());
      }();
      p.data()[i] = orig;
      const double numeric = (plus - minus) / (2.0 * eps);
      const double exact = analytic[pi][static_cast<size_t>(i)];
      const double err = std::fabs(numeric - exact);
      const double scale = std::max(std::fabs(numeric), std::fabs(exact));
      EXPECT_LE(err, atol + rtol * scale)
          << "param " << pi << " element " << i << ": analytic " << exact
          << " vs numeric " << numeric;
    }
  }
}

}  // namespace testing
}  // namespace focus

#endif  // FOCUS_TESTS_TEST_UTIL_H_
