// Tests for CSV dataset I/O and the flag parser.
#include <fstream>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"
#include "tests/test_util.h"
#include "utils/flags.h"

namespace focus {
namespace {

TEST(CsvIoTest, RoundTripPreservesValuesAndMetadata) {
  data::GeneratorConfig gen;
  gen.name = "roundtrip";
  gen.domain = "Test";
  gen.frequency = "5 mins";
  gen.num_entities = 4;
  gen.num_steps = 120;
  gen.train_fraction = 0.6;
  gen.val_fraction = 0.2;
  gen.seed = 3;
  auto dataset = data::Generate(gen);

  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(data::SaveCsv(dataset, path).ok());
  auto loaded = data::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const auto& round = loaded.value();
  EXPECT_EQ(round.name, "roundtrip");
  EXPECT_EQ(round.domain, "Test");
  EXPECT_EQ(round.frequency, "5 mins");
  EXPECT_NEAR(round.train_fraction, 0.6, 1e-9);
  EXPECT_NEAR(round.val_fraction, 0.2, 1e-9);
  ASSERT_EQ(round.values.shape(), dataset.values.shape());
  // %.6g formatting: compare with a loose relative tolerance.
  for (int64_t i = 0; i < dataset.values.numel(); ++i) {
    EXPECT_NEAR(round.values.data()[i], dataset.values.data()[i],
                1e-4 * (1.0 + std::fabs(dataset.values.data()[i])));
  }
}

TEST(CsvIoTest, LoadsPlainCsvWithoutMetadata) {
  const std::string path = ::testing::TempDir() + "/plain.csv";
  std::ofstream out(path);
  out << "a,b\n1,2\n3,4\n5,6\n";
  out.close();
  auto loaded = data::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().values.shape(), (Shape{2, 3}));
  EXPECT_EQ(loaded.value().values.At({0, 1}), 3.0f);  // entity a, step 1
  EXPECT_EQ(loaded.value().values.At({1, 2}), 6.0f);
}

TEST(CsvIoTest, RejectsMalformedFiles) {
  const std::string ragged = ::testing::TempDir() + "/ragged.csv";
  {
    std::ofstream out(ragged);
    out << "a,b\n1,2\n3\n";
  }
  EXPECT_EQ(data::LoadCsv(ragged).status().code(), Status::Code::kCorruption);

  const std::string non_numeric = ::testing::TempDir() + "/nonnum.csv";
  {
    std::ofstream out(non_numeric);
    out << "a,b\n1,2\nx,4\n";
  }
  EXPECT_EQ(data::LoadCsv(non_numeric).status().code(),
            Status::Code::kCorruption);

  EXPECT_EQ(data::LoadCsv("/no/such/file.csv").status().code(),
            Status::Code::kNotFound);

  const std::string empty = ::testing::TempDir() + "/empty.csv";
  { std::ofstream out(empty); }
  EXPECT_EQ(data::LoadCsv(empty).status().code(), Status::Code::kCorruption);
}

TEST(FlagParserTest, ParsesAllForms) {
  const char* argv[] = {"prog",        "train",        "--steps=50",
                        "--lr",        "0.01",         "--verbose",
                        "--name=test", "positional2"};
  FlagParser flags(8, argv);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "train");
  EXPECT_EQ(flags.positional()[1], "positional2");
  EXPECT_EQ(flags.GetInt("steps", 0), 50);
  EXPECT_NEAR(flags.GetDouble("lr", 0.0), 0.01, 1e-12);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("name", ""), "test");
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("absent"));
}

TEST(FlagParserTest, FallbacksApplyOnMissingOrUnparsable) {
  const char* argv[] = {"prog", "--num=abc"};
  FlagParser flags(2, argv);
  EXPECT_EQ(flags.GetInt("num", 7), 7);       // unparsable
  EXPECT_EQ(flags.GetInt("missing", 9), 9);   // missing
  EXPECT_EQ(flags.GetString("num", "x"), "abc");
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_TRUE(flags.GetBool("missing", true));
}

TEST(FlagParserTest, BareFlagBeforeFlagIsBoolean) {
  const char* argv[] = {"prog", "--a", "--b=2"};
  FlagParser flags(3, argv);
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_EQ(flags.GetInt("b", 0), 2);
}

}  // namespace
}  // namespace focus
