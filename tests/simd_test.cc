// SIMD layer contract tests.
//
// Three contracts, in order of importance:
//   1. Bit-identity: for every kernel in simd::KernelTable the AVX2 and
//      scalar backends produce byte-identical outputs, including the odd
//      tails (n = 1..17 crosses every lane-remainder case twice) and a
//      large buffer. This is what makes FOCUS_SIMD a pure acceleration
//      knob rather than a numerics knob.
//   2. Accuracy: the shared polynomial transcendentals stay within 4 ULP
//      of double-precision libm rounded to float across their full
//      argument ranges (exp over [-88, 88], tanh/erf over [-10, 10]).
//   3. Dispatch: FOCUS_SIMD=scalar|avx2|auto resolves to the documented
//      backend on this machine.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/bf16.h"
#include "tensor/ops.h"
#include "tensor/simd/vec.h"
#include "tensor/tensor.h"

namespace focus {
namespace {

// Deterministic pseudo-random floats in (lo, hi); plain LCG so the test
// inputs are reproducible without the tensor Rng.
std::vector<float> TestVec(int64_t n, uint32_t seed, float lo = -3.0f,
                           float hi = 3.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  uint32_t s = seed * 2654435761u + 12345u;
  for (float& x : v) {
    s = s * 1664525u + 1013904223u;
    const float u = static_cast<float>(s >> 8) / 16777216.0f;  // [0, 1)
    x = lo + (hi - lo) * u;
  }
  return v;
}

// n = 1..17 crosses the 8-lane boundary twice (every tail remainder, the
// exact-multiple cases, and one odd block past them); 1037 exercises the
// long-stride main loop.
const int64_t kSizes[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,
                          10, 11, 12, 13, 14, 15, 16, 17, 1037};

// Runs `run` once per backend and asserts the `out_n`-float outputs are
// byte-identical. Callers must SetUp via SimdBitIdentityTest (skips when
// the AVX2 backend is unavailable).
void ExpectBackendsMatch(
    const std::function<void(const simd::KernelTable&, float*)>& run,
    int64_t out_n, const std::string& what) {
  std::vector<float> scalar_out(static_cast<size_t>(out_n), -777.0f);
  std::vector<float> avx2_out(static_cast<size_t>(out_n), -777.0f);
  ASSERT_TRUE(simd::SetBackend(simd::Backend::kScalar));
  run(simd::Kernels(), scalar_out.data());
  ASSERT_TRUE(simd::SetBackend(simd::Backend::kAvx2));
  run(simd::Kernels(), avx2_out.data());
  ASSERT_EQ(0, std::memcmp(scalar_out.data(), avx2_out.data(),
                           static_cast<size_t>(out_n) * sizeof(float)))
      << what << ": scalar and avx2 outputs differ";
}

class SimdBitIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::Avx2Available()) {
      GTEST_SKIP() << "AVX2 backend not compiled in or not supported";
    }
  }
  void TearDown() override { simd::ReinitFromEnv(); }
};

TEST_F(SimdBitIdentityTest, BinaryKernels) {
  using BinK = void (*)(const float*, const float*, float*, int64_t);
  struct Entry {
    const char* name;
    BinK simd::KernelTable::* kern;
  };
  const Entry kEntries[] = {
      {"add", &simd::KernelTable::add},
      {"sub", &simd::KernelTable::sub},
      {"mul", &simd::KernelTable::mul},
      {"div", &simd::KernelTable::div},
  };
  for (const Entry& e : kEntries) {
    for (int64_t n : kSizes) {
      const auto a = TestVec(n, 1);
      // Denominators bounded away from 0 so div stays finite.
      const auto b = TestVec(n, 2, 0.5f, 4.0f);
      ExpectBackendsMatch(
          [&](const simd::KernelTable& kt, float* o) {
            (kt.*e.kern)(a.data(), b.data(), o, n);
          },
          n, std::string(e.name) + " n=" + std::to_string(n));
    }
  }
}

TEST_F(SimdBitIdentityTest, AccumulatingAndScalarKernels) {
  for (int64_t n : kSizes) {
    const auto x = TestVec(n, 3);
    const auto y0 = TestVec(n, 4);
    const std::string sz = " n=" + std::to_string(n);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          std::memcpy(o, y0.data(), static_cast<size_t>(n) * sizeof(float));
          kt.add_inplace(o, x.data(), n);
        },
        n, "add_inplace" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          std::memcpy(o, y0.data(), static_cast<size_t>(n) * sizeof(float));
          kt.axpy(1.7f, x.data(), o, n);
        },
        n, "axpy" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          kt.add_scalar(x.data(), 0.37f, o, n);
        },
        n, "add_scalar" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          kt.mul_scalar(x.data(), -2.13f, o, n);
        },
        n, "mul_scalar" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          o[0] = kt.dot(x.data(), y0.data(), n);
        },
        1, "dot" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          o[0] = kt.row_sum(x.data(), n);
        },
        1, "row_sum" + sz);
  }
}

TEST_F(SimdBitIdentityTest, UnaryForwardKernels) {
  using UnK = void (*)(const float*, float*, int64_t);
  struct Entry {
    const char* name;
    UnK simd::KernelTable::* kern;
    float lo, hi;  // input range (sqrt needs non-negative inputs)
  };
  const Entry kEntries[] = {
      {"exp", &simd::KernelTable::exp_fwd, -20.0f, 20.0f},
      {"tanh", &simd::KernelTable::tanh_fwd, -6.0f, 6.0f},
      {"sigmoid", &simd::KernelTable::sigmoid_fwd, -20.0f, 20.0f},
      {"erf", &simd::KernelTable::erf_fwd, -6.0f, 6.0f},
      {"gelu", &simd::KernelTable::gelu_fwd, -6.0f, 6.0f},
      {"relu", &simd::KernelTable::relu_fwd, -3.0f, 3.0f},
      {"sqrt", &simd::KernelTable::sqrt_fwd, 0.0f, 9.0f},
  };
  for (const Entry& e : kEntries) {
    for (int64_t n : kSizes) {
      const auto x = TestVec(n, 5, e.lo, e.hi);
      ExpectBackendsMatch(
          [&](const simd::KernelTable& kt, float* o) {
            (kt.*e.kern)(x.data(), o, n);
          },
          n, std::string(e.name) + "_fwd n=" + std::to_string(n));
    }
  }
}

TEST_F(SimdBitIdentityTest, UnaryBackwardKernels) {
  using BinK = void (*)(const float*, const float*, float*, int64_t);
  struct Entry {
    const char* name;
    BinK simd::KernelTable::* kern;
    float lo, hi;  // saved-tensor range (sqrt_bwd divides by saved y)
  };
  const Entry kEntries[] = {
      {"tanh", &simd::KernelTable::tanh_bwd, -0.99f, 0.99f},
      {"sigmoid", &simd::KernelTable::sigmoid_bwd, 0.01f, 0.99f},
      {"erf", &simd::KernelTable::erf_bwd, -6.0f, 6.0f},
      {"gelu", &simd::KernelTable::gelu_bwd, -6.0f, 6.0f},
      {"relu", &simd::KernelTable::relu_bwd, -3.0f, 3.0f},
      {"sqrt", &simd::KernelTable::sqrt_bwd, 0.5f, 3.0f},
  };
  for (const Entry& e : kEntries) {
    for (int64_t n : kSizes) {
      const auto saved = TestVec(n, 6, e.lo, e.hi);
      const auto g = TestVec(n, 7);
      ExpectBackendsMatch(
          [&](const simd::KernelTable& kt, float* o) {
            (kt.*e.kern)(saved.data(), g.data(), o, n);
          },
          n, std::string(e.name) + "_bwd n=" + std::to_string(n));
    }
  }
}

TEST_F(SimdBitIdentityTest, MatMulRowBlock) {
  struct Dims {
    int64_t m, k, n;
  };
  // Covers the full 4x8 tile, the 1x8 row remainder, the scalar column
  // remainder, and degenerate edges.
  const Dims kDims[] = {{4, 16, 8}, {5, 13, 11}, {3, 7, 17},
                        {1, 1, 1},  {6, 9, 3},   {9, 33, 24}};
  for (const Dims& d : kDims) {
    const auto a = TestVec(d.m * d.k, 8);
    const auto b = TestVec(d.k * d.n, 9);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          kt.matmul_row_block(a.data(), b.data(), o, 0, d.m, d.k, d.n);
        },
        d.m * d.n,
        "matmul_row_block m=" + std::to_string(d.m) +
            " k=" + std::to_string(d.k) + " n=" + std::to_string(d.n));
  }
}

TEST_F(SimdBitIdentityTest, RowKernels) {
  const int64_t rows = 3;
  for (int64_t n : kSizes) {
    const auto x = TestVec(rows * n, 10);
    const auto g = TestVec(rows * n, 11);
    const auto gamma = TestVec(n, 12, 0.5f, 1.5f);
    const auto beta = TestVec(n, 13);
    const std::string sz = " n=" + std::to_string(n);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          kt.softmax_rows(x.data(), o, rows, n);
        },
        rows * n, "softmax_rows" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          // y rows must be a valid softmax output; reuse the kernel.
          std::vector<float> y(static_cast<size_t>(rows * n));
          kt.softmax_rows(x.data(), y.data(), rows, n);
          kt.softmax_bwd_rows(y.data(), g.data(), o, rows, n);
        },
        rows * n, "softmax_bwd_rows" + sz);
    // Layer-norm outputs y plus the saved means/rstds, all compared.
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          kt.layernorm_rows(x.data(), gamma.data(), beta.data(), 1e-5f, o,
                            o + rows * n, o + rows * n + rows, rows, n);
        },
        rows * n + 2 * rows, "layernorm_rows" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          std::vector<float> y(static_cast<size_t>(rows * n));
          std::vector<float> means(static_cast<size_t>(rows));
          std::vector<float> rstds(static_cast<size_t>(rows));
          kt.layernorm_rows(x.data(), gamma.data(), beta.data(), 1e-5f,
                            y.data(), means.data(), rstds.data(), rows, n);
          kt.layernorm_bwd_dx_rows(x.data(), g.data(), gamma.data(),
                                   means.data(), rstds.data(), o, rows, n);
        },
        rows * n, "layernorm_bwd_dx_rows" + sz);
  }
}

// End-to-end: the public ops (which route through ParallelFor and the
// dispatch table) must also be backend-invariant, forward and backward.
TEST_F(SimdBitIdentityTest, PublicOpsForwardBackward) {
  auto run = [](simd::Backend backend) {
    EXPECT_TRUE(simd::SetBackend(backend));
    Rng rng(31);
    Tensor a = Tensor::Randn({7, 129}, rng);
    Tensor b = Tensor::Randn({7, 129}, rng);
    Tensor w = Tensor::Randn({129, 33}, rng);
    Tensor gamma = Tensor::Randn({33}, rng);
    Tensor beta = Tensor::Randn({33}, rng);
    for (Tensor* t : {&a, &b, &w, &gamma, &beta}) {
      t->SetRequiresGrad(true);
    }
    Tensor h = MatMul(Gelu(Add(Mul(a, b), Erf(b))), w);
    Tensor out = SoftmaxLastDim(LayerNormLastDim(h, gamma, beta, 1e-5f));
    SumAll(out).Backward();
    std::vector<Tensor> r = {out};
    for (Tensor* t : {&a, &b, &w, &gamma, &beta}) r.push_back(t->Grad());
    return r;
  };
  std::vector<Tensor> avx2 = run(simd::Backend::kAvx2);
  std::vector<Tensor> scalar = run(simd::Backend::kScalar);
  ASSERT_EQ(avx2.size(), scalar.size());
  for (size_t t = 0; t < avx2.size(); ++t) {
    ASSERT_TRUE(avx2[t].defined());
    ASSERT_EQ(avx2[t].shape(), scalar[t].shape()) << "tensor " << t;
    EXPECT_EQ(0, std::memcmp(avx2[t].data(), scalar[t].data(),
                             static_cast<size_t>(avx2[t].numel()) *
                                 sizeof(float)))
        << "tensor " << t << " differs between backends";
  }
}

// --- bf16 / int8 kernels ----------------------------------------------------

uint32_t F32Bits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float F32FromBits(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Round-to-nearest-even at the bf16 boundary: a tie (discarded half
// exactly 0x8000) keeps an even kept-mantissa and bumps an odd one.
TEST(Bf16ConversionTest, RoundToNearestEvenTies) {
  // 1.00390625: kept payload 0x3F80 (even) — tie rounds DOWN.
  EXPECT_EQ(0x3F80, Bf16FromF32(F32FromBits(0x3F808000u)));
  // Kept payload 0x3F81 (odd) — tie rounds UP to even 0x3F82.
  EXPECT_EQ(0x3F82, Bf16FromF32(F32FromBits(0x3F818000u)));
  // One ULP above the tie always rounds up regardless of parity.
  EXPECT_EQ(0x3F81, Bf16FromF32(F32FromBits(0x3F808001u)));
  // One ULP below the tie always rounds down.
  EXPECT_EQ(0x3F80, Bf16FromF32(F32FromBits(0x3F807FFFu)));
  // Sign is carried through the same integer path.
  EXPECT_EQ(0xBF80, Bf16FromF32(F32FromBits(0xBF808000u)));
  EXPECT_EQ(0xBF82, Bf16FromF32(F32FromBits(0xBF818000u)));
}

TEST(Bf16ConversionTest, SubnormalsNanInfPreserved) {
  // f32 subnormals round like any other value (no flush-to-zero): the
  // smallest ones vanish, ones past the bf16 subnormal tie survive.
  EXPECT_EQ(0x0000, Bf16FromF32(F32FromBits(0x00000001u)));
  EXPECT_EQ(0x0002, Bf16FromF32(F32FromBits(0x00018000u)));  // odd+tie: up
  EXPECT_EQ(0x8000, Bf16FromF32(F32FromBits(0x80000001u)));  // -0 keeps sign
  // Infinities pass through exactly; FLT_MAX overflows to inf under RNE.
  EXPECT_EQ(0x7F80, Bf16FromF32(F32FromBits(0x7F800000u)));
  EXPECT_EQ(0xFF80, Bf16FromF32(F32FromBits(0xFF800000u)));
  EXPECT_EQ(0x7F80, Bf16FromF32(F32FromBits(0x7F7FFFFFu)));
  // NaNs stay NaN (payload quieted, never rounded into infinity).
  EXPECT_EQ(0x7FC0, Bf16FromF32(F32FromBits(0x7F800001u)));
  EXPECT_EQ(0xFFC0, Bf16FromF32(F32FromBits(0xFF800001u)));
  EXPECT_EQ(0x7FC0, Bf16FromF32(F32FromBits(0x7FC00001u)));
  // Unpack is exact: bf16 payload << 16 reproduces the f32 bits.
  EXPECT_EQ(0x3F800000u, F32Bits(F32FromBf16(0x3F80)));
  EXPECT_EQ(0x7F800000u, F32Bits(F32FromBf16(0x7F80)));
  EXPECT_TRUE(std::isnan(F32FromBf16(0x7FC0)));
}

// Test vector that deliberately mixes ties, subnormals, NaN and ±inf in
// with ordinary values, so the vector lanes hit every rounding branch.
std::vector<float> Bf16EdgeVec(int64_t n, uint32_t seed) {
  std::vector<float> v = TestVec(n, seed);
  const uint32_t specials[] = {0x3F808000u, 0x3F818000u, 0x00000001u,
                               0x00018000u, 0x7F800000u, 0xFF800000u,
                               0x7FC00001u, 0x7F7FFFFFu, 0x80000000u};
  for (int64_t i = 0; i < n; i += 3) {
    v[static_cast<size_t>(i)] =
        F32FromBits(specials[static_cast<size_t>(i / 3) % 9]);
  }
  return v;
}

// pack/unpack/add bit-identity across backends at every tail length,
// including the special values above. Packed uint16 payloads are
// compared as raw bytes through the float-typed scratch buffer.
TEST_F(SimdBitIdentityTest, Bf16PackUnpackAddKernels) {
  for (int64_t n : kSizes) {
    const auto x = Bf16EdgeVec(n, 14);
    const auto y = Bf16EdgeVec(n, 15);
    const std::string sz = " n=" + std::to_string(n);
    const int64_t packed_floats = (n + 1) / 2;
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          kt.pack_bf16(x.data(), reinterpret_cast<uint16_t*>(o), n);
        },
        packed_floats, "pack_bf16" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          std::vector<uint16_t> h(static_cast<size_t>(n));
          kt.pack_bf16(x.data(), h.data(), n);
          kt.unpack_bf16(h.data(), o, n);
        },
        n, "unpack_bf16" + sz);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          std::vector<uint16_t> a(static_cast<size_t>(n));
          std::vector<uint16_t> b(static_cast<size_t>(n));
          kt.pack_bf16(x.data(), a.data(), n);
          kt.pack_bf16(y.data(), b.data(), n);
          kt.add_bf16(a.data(), b.data(),
                      reinterpret_cast<uint16_t*>(o), n);
        },
        packed_floats, "add_bf16" + sz);
  }
}

// Pack-then-unpack equals the scalar helper composition for every lane
// (the AVX2 StoreBf16 path must evaluate the identical integer RNE).
TEST_F(SimdBitIdentityTest, Bf16RoundTripMatchesScalarHelpers) {
  const int64_t n = 1037;
  const auto x = Bf16EdgeVec(n, 16);
  ASSERT_TRUE(simd::SetBackend(simd::Backend::kAvx2));
  std::vector<uint16_t> h(static_cast<size_t>(n));
  simd::Kernels().pack_bf16(x.data(), h.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bf16FromF32(x[static_cast<size_t>(i)]),
              h[static_cast<size_t>(i)])
        << "lane " << i;
  }
}

TEST_F(SimdBitIdentityTest, Bf16MatMulRowBlock) {
  struct Dims {
    int64_t m, k, n;
  };
  const Dims kDims[] = {{4, 16, 8}, {5, 13, 11}, {3, 7, 17},
                        {1, 1, 1},  {6, 9, 3},   {9, 33, 24}};
  for (const Dims& d : kDims) {
    const auto a = TestVec(d.m * d.k, 17);
    const auto b = TestVec(d.k * d.n, 18);
    ExpectBackendsMatch(
        [&](const simd::KernelTable& kt, float* o) {
          std::vector<uint16_t> b16(static_cast<size_t>(d.k * d.n));
          kt.pack_bf16(b.data(), b16.data(), d.k * d.n);
          kt.matmul_row_block_bf16(a.data(), b16.data(), o, 0, d.m, d.k,
                                   d.n);
        },
        d.m * d.n,
        "matmul_row_block_bf16 m=" + std::to_string(d.m) +
            " k=" + std::to_string(d.k) + " n=" + std::to_string(d.n));
  }
}

TEST_F(SimdBitIdentityTest, DotI8ExactAcrossBackends) {
  for (int64_t n : kSizes) {
    std::vector<int8_t> a(static_cast<size_t>(n));
    std::vector<int8_t> b(static_cast<size_t>(n));
    int32_t want = 0;
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] =
          static_cast<int8_t>((i * 37 + 11) % 255 - 127);
      b[static_cast<size_t>(i)] =
          static_cast<int8_t>((i * 53 + 5) % 255 - 127);
      want += static_cast<int32_t>(a[static_cast<size_t>(i)]) *
              static_cast<int32_t>(b[static_cast<size_t>(i)]);
    }
    for (simd::Backend backend :
         {simd::Backend::kScalar, simd::Backend::kAvx2}) {
      ASSERT_TRUE(simd::SetBackend(backend));
      EXPECT_EQ(want, simd::Kernels().dot_i8(a.data(), b.data(), n))
          << "n=" << n;
    }
  }
}

// --- accuracy ---------------------------------------------------------------

// Maps float bits to a monotonic integer line so ULP distance is a
// subtraction; +0 and -0 coincide.
int64_t OrderedBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return (u & 0x80000000u) ? -static_cast<int64_t>(u & 0x7fffffffu)
                           : static_cast<int64_t>(u);
}

int64_t UlpDiff(float a, float b) {
  const int64_t d = OrderedBits(a) - OrderedBits(b);
  return d < 0 ? -d : d;
}

void ExpectUlpBound(void (*kern)(const float*, float*, int64_t),
                    double (*ref)(double), float lo, float hi,
                    int64_t points, int64_t bound, const char* name) {
  std::vector<float> x(static_cast<size_t>(points));
  std::vector<float> y(static_cast<size_t>(points));
  for (int64_t i = 0; i < points; ++i) {
    x[static_cast<size_t>(i)] =
        lo + (hi - lo) * static_cast<float>(i) /
                 static_cast<float>(points - 1);
  }
  kern(x.data(), y.data(), points);
  int64_t worst = 0;
  float worst_x = 0.0f;
  for (int64_t i = 0; i < points; ++i) {
    const float xi = x[static_cast<size_t>(i)];
    const float want =
        static_cast<float>(ref(static_cast<double>(xi)));
    const int64_t d = UlpDiff(y[static_cast<size_t>(i)], want);
    if (d > worst) {
      worst = d;
      worst_x = xi;
    }
  }
  EXPECT_LE(worst, bound) << name << ": worst " << worst << " ULP at x="
                          << worst_x;
}

TEST(SimdAccuracyTest, ExpWithin4UlpOfLibm) {
  ExpectUlpBound(simd::Kernels().exp_fwd, std::exp, -88.0f, 88.0f,
                 200001, 4, "exp");
}

TEST(SimdAccuracyTest, TanhWithin4UlpOfLibm) {
  ExpectUlpBound(simd::Kernels().tanh_fwd, std::tanh, -10.0f, 10.0f,
                 200001, 4, "tanh");
}

TEST(SimdAccuracyTest, ErfWithin4UlpOfLibm) {
  ExpectUlpBound(simd::Kernels().erf_fwd, std::erf, -10.0f, 10.0f,
                 200001, 4, "erf");
}

// Saturation and special values: exp underflows to +0 and overflows to
// +inf exactly; tanh/erf saturate to ±1 well inside float range.
TEST(SimdAccuracyTest, ExtremeArguments) {
  const simd::KernelTable& kt = simd::Kernels();
  const float x[] = {-1000.0f, -104.0f, 89.0f, 1000.0f, 0.0f, -0.0f};
  float y[6];
  kt.exp_fwd(x, y, 6);
  EXPECT_EQ(0.0f, y[0]);
  EXPECT_EQ(0.0f, y[1]);
  EXPECT_TRUE(std::isinf(y[2]));
  EXPECT_TRUE(std::isinf(y[3]));
  EXPECT_EQ(1.0f, y[4]);
  EXPECT_EQ(1.0f, y[5]);
  kt.tanh_fwd(x, y, 6);
  EXPECT_EQ(-1.0f, y[0]);
  EXPECT_EQ(1.0f, y[2]);
  EXPECT_EQ(0.0f, y[4]);
  kt.erf_fwd(x, y, 6);
  EXPECT_EQ(-1.0f, y[0]);
  EXPECT_EQ(1.0f, y[2]);
  EXPECT_EQ(0.0f, y[4]);
}

// --- dispatch ---------------------------------------------------------------

TEST(SimdDispatchTest, EnvSelectsBackend) {
  // Save/restore must distinguish unset from empty, which the hardened
  // GetEnvOr helper deliberately hides behind its fallback.
  // FOCUS-ANALYZE-OK(raw-getenv): env save/restore needs unset-vs-set
  const char* saved = std::getenv("FOCUS_SIMD");
  const std::string restore = saved != nullptr ? saved : "";

  setenv("FOCUS_SIMD", "scalar", 1);
  simd::ReinitFromEnv();
  EXPECT_EQ(simd::Backend::kScalar, simd::ActiveBackend());
  EXPECT_STREQ("scalar", simd::BackendName());

  setenv("FOCUS_SIMD", "avx2", 1);
  simd::ReinitFromEnv();
  if (simd::Avx2Available()) {
    EXPECT_EQ(simd::Backend::kAvx2, simd::ActiveBackend());
    EXPECT_STREQ("avx2", simd::BackendName());
  } else {
    // Unavailable: warn and fall back to scalar rather than crash.
    EXPECT_EQ(simd::Backend::kScalar, simd::ActiveBackend());
  }

  setenv("FOCUS_SIMD", "auto", 1);
  simd::ReinitFromEnv();
  EXPECT_EQ(simd::Avx2Available() ? simd::Backend::kAvx2
                                  : simd::Backend::kScalar,
            simd::ActiveBackend());

  // Garbage value: documented to warn and fall back to auto.
  setenv("FOCUS_SIMD", "sse9", 1);
  simd::ReinitFromEnv();
  EXPECT_EQ(simd::Avx2Available() ? simd::Backend::kAvx2
                                  : simd::Backend::kScalar,
            simd::ActiveBackend());

  if (saved != nullptr) {
    setenv("FOCUS_SIMD", restore.c_str(), 1);
  } else {
    unsetenv("FOCUS_SIMD");
  }
  simd::ReinitFromEnv();
}

TEST(SimdDispatchTest, SetBackendOverridesAndReinitClears) {
  ASSERT_TRUE(simd::SetBackend(simd::Backend::kScalar));
  EXPECT_EQ(simd::Backend::kScalar, simd::ActiveBackend());
  if (!simd::Avx2Available()) {
    EXPECT_FALSE(simd::SetBackend(simd::Backend::kAvx2));
    EXPECT_EQ(simd::Backend::kScalar, simd::ActiveBackend());
  } else {
    EXPECT_TRUE(simd::SetBackend(simd::Backend::kAvx2));
    EXPECT_EQ(simd::Backend::kAvx2, simd::ActiveBackend());
  }
  simd::ReinitFromEnv();
}

}  // namespace
}  // namespace focus
