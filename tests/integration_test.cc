// Cross-module integration tests: the full offline -> persist -> online
// pipeline, validation-driven behaviour, and robustness properties the
// paper's studies rely on.
#include <cstdio>

#include <gtest/gtest.h>

#include "cluster/segment_clustering.h"
#include "core/focus_model.h"
#include "core/offline.h"
#include "data/generator.h"
#include "data/perturb.h"
#include "harness/experiments.h"
#include "tests/test_util.h"

namespace focus {
namespace {

harness::ExperimentProfile TinyProfile() {
  auto profile = harness::MakeProfile(data::Profile::kQuick);
  profile.train_steps = 30;
  profile.batch_size = 4;
  profile.eval_stride = 8;
  profile.lookback = 96;
  profile.d_model = 16;
  profile.num_prototypes = 8;
  return profile;
}

TEST(IntegrationTest, OfflinePersistOnlineRoundTrip) {
  // Prototypes trained offline, saved, reloaded, and consumed online must
  // produce bit-identical forecasts to the in-memory prototypes.
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  Tensor prototypes = harness::FitPrototypes(data, 16, 8, 0.2f, true, 1);

  const std::string path = ::testing::TempDir() + "/pipeline_protos.bin";
  ASSERT_TRUE(cluster::SavePrototypes(path, prototypes).ok());
  auto loaded = cluster::LoadPrototypes(path);
  ASSERT_TRUE(loaded.ok());

  core::FocusConfig cfg;
  cfg.lookback = 96;
  cfg.horizon = 24;
  cfg.num_entities = data.dataset.num_entities();
  cfg.patch_len = 16;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 5;
  core::FocusModel model_a(cfg, prototypes);
  core::FocusModel model_b(cfg, loaded.value());

  Rng rng(6);
  Tensor x = Tensor::Randn({2, cfg.num_entities, 96}, rng);
  NoGradGuard no_grad;
  testing::ExpectTensorNear(model_a.Forward(x), model_b.Forward(x), 0.0);
}

TEST(IntegrationTest, FocusBeatsNaivePersistenceOnPeriodicData) {
  // Sanity floor: a trained FOCUS must beat the repeat-last-value
  // persistence forecast on strongly periodic data.
  auto profile = TinyProfile();
  profile.train_steps = 80;
  auto data = harness::PrepareDataset("PEMS08", profile);
  const int64_t horizon = 24;
  auto model = harness::BuildModel("FOCUS", data, 96, horizon, profile);
  auto outcome = harness::TrainAndEvaluate(*model, data, 96, horizon,
                                           profile);

  // Persistence baseline on the same evaluation windows.
  auto test = harness::TestWindows(data, 96, horizon);
  metrics::ForecastMetrics persistence;
  for (int64_t w = 0; w < test.NumWindows(); w += profile.eval_stride) {
    auto batch = test.GetWindow(w);
    Tensor last = Slice(batch.x, 2, 95, 96);  // (1, N, 1)
    Tensor repeated = BroadcastTo(last, {1, batch.y.size(1), horizon});
    persistence.Accumulate(repeated, batch.y);
  }
  persistence.Finalize();
  EXPECT_LT(outcome.test.mse, persistence.mse);
}

TEST(IntegrationTest, ValidationWindowsPredictTestOrdering) {
  // The val split exists for model selection: a model that is clearly
  // better on val should not be clearly worse on test (same data process).
  auto profile = TinyProfile();
  profile.train_steps = 60;
  auto data = harness::PrepareDataset("PEMS08", profile);
  auto focus = harness::BuildModel("FOCUS", data, 96, 24, profile);
  harness::TrainAndEvaluate(*focus, data, 96, 24, profile);
  auto val = harness::ValWindows(data, 96, 24);
  auto test = harness::TestWindows(data, 96, 24);
  auto val_m = harness::EvaluateModel(*focus, val, 8, 8);
  auto test_m = harness::EvaluateModel(*focus, test, 8, 8);
  // Same generating process: val and test errors within a factor of two.
  EXPECT_LT(test_m.mse, 2.0 * val_m.mse + 0.05);
  EXPECT_LT(val_m.mse, 2.0 * test_m.mse + 0.05);
}

TEST(IntegrationTest, ClusteringSurvivesOutlierInjection) {
  // The Fig. 10 mechanism: prototypes fitted on 10%-corrupted data stay
  // close (in assignment behaviour) to prototypes from clean data.
  auto cfg = data::PaperDatasetConfig("PEMS08", data::Profile::kQuick);
  auto clean = data::Generate(cfg);
  auto dirty = data::Generate(cfg);
  auto splits = data::ComputeSplits(clean);
  Rng rng(9);
  data::InjectOutliers(&dirty, 0.10, splits.train_end, rng);

  auto fit = [&](const data::TimeSeriesDataset& ds) {
    auto prepared = harness::PrepareDataset(ds);
    return harness::FitPrototypes(prepared, 16, 8, 0.2f, true, 3);
  };
  Tensor protos_clean = fit(clean);
  Tensor protos_dirty = fit(dirty);

  // Compare assignment agreement on clean evaluation segments.
  auto prepared_clean = harness::PrepareDataset(clean);
  Tensor eval_segments = cluster::ExtractSegments(
      Slice(prepared_clean.normalized, 1, splits.val_end, splits.total), 16,
      true);
  auto a_clean =
      cluster::SegmentClustering::Assign(eval_segments, protos_clean, 0.2f);
  auto a_dirty =
      cluster::SegmentClustering::Assign(eval_segments, protos_dirty, 0.2f);
  // Prototype indices are arbitrary, so compare induced co-membership on a
  // sample of segment pairs instead of raw labels.
  Rng pair_rng(10);
  int64_t agree = 0, total = 0;
  const int64_t n = static_cast<int64_t>(a_clean.size());
  for (int trial = 0; trial < 2000; ++trial) {
    const auto i = pair_rng.UniformInt(static_cast<uint64_t>(n));
    const auto j = pair_rng.UniformInt(static_cast<uint64_t>(n));
    if (i == j) continue;
    const bool same_clean = a_clean[i] == a_clean[j];
    const bool same_dirty = a_dirty[i] == a_dirty[j];
    agree += same_clean == same_dirty;
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.75)
      << "outliers changed the clustering structure too much";
}

TEST(IntegrationTest, AblationVariantsTrainEndToEnd) {
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("ETTh1", profile);
  Tensor prototypes = harness::FitPrototypes(data, 16, 8, 0.2f, true, 1);
  for (auto variant : {core::FocusVariant::kFull, core::FocusVariant::kAttn,
                       core::FocusVariant::kLnrFusion,
                       core::FocusVariant::kAllLnr}) {
    core::FocusConfig cfg;
    cfg.lookback = 96;
    cfg.horizon = 24;
    cfg.num_entities = data.dataset.num_entities();
    cfg.patch_len = 16;
    cfg.d_model = 16;
    cfg.readout_queries = 2;
    cfg.variant = variant;
    core::FocusModel model(cfg, prototypes);
    auto outcome = harness::TrainAndEvaluate(model, data, 96, 24, profile);
    EXPECT_TRUE(std::isfinite(outcome.test.mse))
        << core::FocusVariantName(variant);
    EXPECT_LT(outcome.train.final_loss, outcome.train.first_loss)
        << core::FocusVariantName(variant);
  }
}

TEST(IntegrationTest, RecCorrObjectiveChangesDownstreamModel) {
  // Fig. 8 plumbing: the use_correlation switch must flow through
  // FitPrototypes into genuinely different prototype sets.
  auto profile = TinyProfile();
  auto data = harness::PrepareDataset("Electricity", profile);
  Tensor with_corr = harness::FitPrototypes(data, 16, 8, 0.2f, true, 1);
  Tensor rec_only = harness::FitPrototypes(data, 16, 8, 0.2f, false, 1);
  double diff = 0;
  for (int64_t i = 0; i < with_corr.numel(); ++i) {
    diff += std::fabs(with_corr.data()[i] - rec_only.data()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

}  // namespace
}  // namespace focus
