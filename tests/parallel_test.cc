// ThreadPool / ParallelFor unit tests: coverage of the range split, worker
// reuse across many regions, exception propagation to the caller, nested
// ParallelFor serialization, and pool resizing.
#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace focus {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::Global().Resize(1); }
};

TEST_F(ParallelTest, GlobalPoolHasAtLeastOneThread) {
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
}

TEST_F(ParallelTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool::Global().Resize(4);
  const int64_t n = 10007;  // prime: exercises uneven shard remainders
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, n, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ShardBoundariesAreContiguousAndOrdered) {
  ThreadPool::Global().Resize(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> shards;
  ParallelFor(100, 1100, 10, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    shards.emplace_back(b, e);
  });
  ASSERT_FALSE(shards.empty());
  EXPECT_LE(shards.size(), 4u);
  std::sort(shards.begin(), shards.end());
  EXPECT_EQ(shards.front().first, 100);
  EXPECT_EQ(shards.back().second, 1100);
  for (size_t i = 1; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i - 1].second, shards[i].first) << "gap at shard " << i;
  }
}

TEST_F(ParallelTest, EmptyAndTinyRanges) {
  ThreadPool::Global().Resize(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A sub-grain range must collapse to one inline body call.
  ParallelFor(0, 3, 100, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 3);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, PoolIsReusedAcrossManyRegions) {
  ThreadPool::Global().Resize(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ParallelFor(0, 256, 8, [&](int64_t b, int64_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 200 * 256);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  ThreadPool::Global().Resize(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [&](int64_t b, int64_t) {
                    if (b >= 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must stay usable after an exception drained the region.
  std::atomic<int64_t> total{0};
  ParallelFor(0, 100, 1,
              [&](int64_t b, int64_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 100);
}

TEST_F(ParallelTest, NestedParallelForRunsSerially) {
  ThreadPool::Global().Resize(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int64_t> inner_total{0};
  ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    EXPECT_TRUE(InParallelRegion());
    for (int64_t i = b; i < e; ++i) {
      int inner_calls = 0;
      ParallelFor(0, 50, 1, [&](int64_t ib, int64_t ie) {
        ++inner_calls;
        inner_total.fetch_add(ie - ib);
      });
      // Nested: exactly one inline body call covering the full range.
      EXPECT_EQ(inner_calls, 1);
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 50);
  EXPECT_FALSE(InParallelRegion());
}

TEST_F(ParallelTest, ResizeThenImmediateDispatchIsSafe) {
  // Regression: workers spawned by Resize start with seen_generation = 0.
  // If the pool's generation counter were not reset on stop, a fresh worker
  // would treat the stale counter as an already-published region, run a
  // phantom pass, and could double-decrement the active-worker count for
  // the next real region (releasing the caller while a shard is still
  // executing). Hammer Resize immediately followed by dispatches so a
  // phantom pass, if reintroduced, overlaps a real region.
  for (int round = 0; round < 50; ++round) {
    ThreadPool::Global().Resize(4);
    for (int region = 0; region < 4; ++region) {
      const int64_t n = 4096;
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(0, n, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "round " << round << " region " << region << " index " << i;
      }
    }
  }
}

TEST_F(ParallelTest, ResizeChangesThreadCount) {
  ThreadPool::Global().Resize(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::Global().Resize(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  // Serial pool still executes work.
  int64_t sum = 0;
  ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45);
}

}  // namespace
}  // namespace focus
